#!/usr/bin/env bash
# CI gate for the tf-eager workspace.
#
# Order is cheap-to-expensive: formatting, then clippy with warnings
# denied, then the full (multi-threaded) test suite in debug, then the
# executor differential + concurrency stress suites again in release —
# the scheduler races worth catching only show up with optimized codegen
# and real thread interleavings.
set -euo pipefail
cd "$(dirname "$0")/.."

THREADS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (debug, ${THREADS} threads)"
cargo test --workspace -q -- --test-threads "${THREADS}"

echo "==> executor differential + concurrency stress (release, ${THREADS} threads)"
cargo test --release -q --test exec_differential --test concurrency -- --test-threads "${THREADS}"

# Same differential suite with the worker pool collapsed to one thread:
# kernels promise identical bits at every intra-op thread count, so the
# serial==parallel guarantees must also hold when nothing actually runs
# concurrently (and when the pool has no helpers to steal tiles).
echo "==> differential + kernel parity with TFE_NUM_THREADS=1 (release)"
TFE_NUM_THREADS=1 cargo test --release -q --test exec_differential --test kernel_parity

# Async eager gate, both directions: the differential suite under an
# ambient TFE_ASYNC=1 proves sync == async dispatch bitwise on all the
# random graphs (eager interpretation included), and the async_eager
# suite pins the deferred-error contract (surfacing at value reads,
# explicit syncs, scope exits, fast-failed enqueues, checkpoint saves).
echo "==> async eager differential + deferred errors with TFE_ASYNC=1 (release)"
TFE_ASYNC=1 cargo test --release -q --test exec_differential --test async_eager

# Pass-pipeline gate: the pass-level differential fuzz harness in
# release — every corpus graph (stateless, stateful, algebraic-biased,
# dead-store-biased; all seeds fixed) must agree with the unoptimized
# serial baseline under every pass configuration, the fixpoint must
# converge within the 8-sweep cap on every graph, and the rewrite
# counters for the new passes must be nonzero on the biased corpora.
# TFE_FUZZ_CASES scales the corpora (default sizes here; raise for
# overnight soaks, lower for a smoke run).
echo "==> pass-pipeline differential fuzz gate (release)"
cargo test --release -q --test pass_pipeline -- --test-threads "${THREADS}"

# Fused-executor gate: the compiled tile executor must stay bitwise
# against the register interpreter (every op variant, random chains,
# several thread counts, generic fallback, compile-cache identity) with
# release codegen — the lane kernels only vectorize there.
echo "==> fused executor differential (release)"
cargo test --release -q --test fused_executor -- --test-threads "${THREADS}"

# Serving gate, both dispatch modes: the differential suite proves N
# concurrent batched requests are bitwise identical to N sequential
# unbatched calls (across batch sizes, zero-row members, version swaps,
# poisoned batches fanning the typed error to every member), the
# degenerate-shape suite pins the concat/split/reduce edge cases the
# batcher leans on, and the importer fuzz suite feeds the registry's
# bundle loader mutated/truncated bundles.
echo "==> serving differential + degenerate shapes + importer fuzz (release)"
cargo test --release -q --test serving --test degenerate_shapes --test saved_hardening \
    -- --test-threads "${THREADS}"
echo "==> serving differential with TFE_ASYNC=1 (release)"
TFE_ASYNC=1 cargo test --release -q --test serving

# Serving smoke: a SavedFunction bundle behind the registry under 8
# concurrent clients — responses must match the direct staged call
# bitwise, the batcher must actually coalesce (mean batch rows > 1.5),
# and the tfe_serve_* metric families must account for every request.
echo "==> serving smoke (bundle behind the batcher, metrics audited)"
cargo run --release -q -p tfe-bench --bin serving_smoke > /dev/null

# The kernel bench doubles as the async dispatch-overhead smoke and the
# fused-executor perf gate: it times a ~1k-op eager chain sync vs async
# (the async_dispatch entry of BENCH_kernels.json) and a 10-op fused f32
# chain unfused / interpreted / tiled (the fused_chain entry). Under
# TFE_ASSERT_ASYNC with >= 2 hardware threads, async wall time must beat
# the sync baseline; under TFE_ASSERT_FUSED the tiled executor must beat
# op-by-op by >= 2x and a compile-cache hit must beat a re-parse; under
# TFE_ASSERT_SERVING with >= 4 hardware threads the adaptive
# micro-batcher must beat the unbatched serving front by >= 2x at
# concurrency 8 (the serving entry; skipped on smaller runners, where
# the wall-clock ratio flakes).
echo "==> kernel bench smoke (--quick, async + fused + serving asserted)"
TFE_ASSERT_ASYNC=1 TFE_ASSERT_FUSED=1 TFE_ASSERT_SERVING=1 \
    cargo run --release -q -p tfe-bench --bin kernel_bench -- --quick > /dev/null

# Profiler gate: asserts the disabled probe costs < 2% of an eager
# dispatch, then profiles two staged parallel training steps and
# validates the chrome trace (JSON parses, spans land on >= 2 thread
# rows, spans per thread nest, cache miss/hit instants present).
echo "==> profiler smoke (overhead + trace validation)"
cargo run --release -q -p tfe-bench --bin profiler_smoke > /dev/null

# Metrics gate: asserts a counter bump costs < 5 ns, trains a staged model
# briefly, and validates the always-on registry (Prometheus text parses,
# histograms internally consistent, no counter decreases between scrapes,
# trace_cache_retraces_total flat during steady-state training).
echo "==> metrics smoke (probe overhead + exposition validation)"
cargo run --release -q -p tfe-bench --bin metrics_smoke > /dev/null

# Distribution gate: integration suite over both transports (typed
# failure semantics under worker death included), the wire-format
# hardening fuzz (truncations, single-byte mutations, hostile lengths),
# and the dist differential — every sampled corpus graph must execute
# bitwise-identically locally, over the in-process transport, and over
# real TCP; the differential is repeated with an ambient TFE_ASYNC=1.
echo "==> distribution suite + wire hardening + dist differential (release)"
cargo test --release -q --test distributed --test wire_hardening --test dist_differential \
    -- --test-threads "${THREADS}"
echo "==> dist differential with TFE_ASYNC=1 (release)"
TFE_ASYNC=1 cargo test --release -q --test dist_differential

# Distribution smoke: boots real TCP workers on localhost, trains
# data-parallel through both collectives bitwise-equal to the
# single-process reference, reconciles the tfe_dist_* metric families
# (RPC completions == latency samples, bytes moved both ways), and kills
# a worker mid-run — every RPC path must surface a typed DistError
# within the deadline while the survivor keeps serving.
echo "==> dist smoke (TCP workers, bitwise training parity, chaos)"
cargo run --release -q -p tfe-bench --bin dist_smoke > /dev/null

# Causal-tracing gate: asserts the flight recorder's disabled path costs
# < 5 ns per probe site, runs a batched serve workload (async dispatch,
# parallel executor) under profiling and checks every request's flow
# events form one connected s -> t* -> f chain across >= 3 thread rows
# (>= 4 on at least one: front door, batcher, stream, pool), that thread
# rows carry role names, and that a poisoned batch leaves a flight dump
# naming the failing op with the request's trace id.
echo "==> trace smoke (flight overhead + causal chain validation)"
cargo run --release -q -p tfe-bench --bin trace_smoke > /dev/null

echo "CI gate passed."
