//! # tf-eager
//!
//! A Rust reproduction of *TensorFlow Eager: A Multi-Stage, Python-Embedded
//! DSL for Machine Learning* (Agrawal et al., MLSys 2019) — an
//! imperative-by-default, optionally-staged differentiable-programming
//! runtime.
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`api`] — the op surface (`tf.*`): works identically eagerly and
//!   under tracing;
//! - [`function`] / [`Func`] — the multi-stage JIT tracer (§4.6);
//! - [`GradientTape`] — tape-based autodiff, composable for higher-order
//!   derivatives (§4.2);
//! - [`Variable`] — program state with by-reference capture (§4.3);
//! - [`nn`], [`state`], [`dist`], [`device`], [`graph`] — the substrate
//!   crates (models, checkpointing, distribution, devices, graph IR).
//!
//! ## Quickstart
//!
//! ```
//! use tf_eager::prelude::*;
//! # fn main() -> Result<(), tf_eager::RuntimeError> {
//! tf_eager::init();
//!
//! // Imperative by default: ops run immediately (§4.1).
//! let x = api::constant(vec![2.0f32, -2.0], [2, 1])?;
//! let a = api::constant(vec![1.0f32, 0.0], [1, 2])?;
//! assert_eq!(api::matmul(&a, &x)?.scalar_f64()?, 2.0);
//!
//! // Differentiate with a tape (§4.2).
//! let v = api::scalar(3.0f32);
//! let tape = GradientTape::new();
//! tape.watch(&v);
//! let y = api::mul(&v, &v)?;
//! assert_eq!(tape.gradient1(&y, &v)?.scalar_f64()?, 6.0);
//!
//! // Stage with `function` (§4.6) — same code, now a dataflow graph.
//! let f = function1("square", |t| api::mul(t, t));
//! assert_eq!(f.call1(&api::scalar(4.0f32))?.scalar_f64()?, 16.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use tfe_autodiff::{value_and_grad, GradientTape};
pub use tfe_core::{cond, function, function1, init_scope, while_loop};
pub use tfe_core::{
    Arg, ConcreteFunction, Func, FuncStats, HostFunc, RetraceCause, RetraceEvent, TensorSpec,
};
pub use tfe_ops::{Attrs, OpError};
pub use tfe_runtime::api;
pub use tfe_runtime::{
    async_scope, context, sync, sync_scope, DeviceScope, ExecMode, RuntimeError, Tensor, Variable,
};
pub use tfe_tensor::{DType, Shape, TensorData, TensorError};

/// Device abstraction (names, kinds, simulation profiles).
pub mod device {
    pub use tfe_device::*;
}

/// Dataflow-graph IR and optimization passes.
pub mod graph {
    pub use tfe_graph::*;
}

/// Neural-network layers, optimizers, models and datasets.
pub mod nn {
    pub use tfe_nn::*;
}

/// Checkpointing and SavedFunction bundles.
pub mod state {
    pub use tfe_state::*;
}

/// Model serving: versioned registry + adaptive micro-batching
/// (DESIGN.md §15).
pub mod serve {
    pub use tfe_serve::*;
}

/// Distributed execution (coordinator + workers).
pub mod dist {
    pub use tfe_dist::*;
}

/// Op-level profiling: spans, counters, chrome-trace export (DESIGN.md §10).
pub mod profile {
    pub use tfe_profile::*;
}

/// Always-on runtime metrics: counters, gauges, histograms, Prometheus
/// export and programmatic snapshots (DESIGN.md §11).
pub mod metrics {
    pub use tfe_metrics::*;
}

/// JSON encoding used by on-disk formats.
pub mod encode {
    pub use tfe_encode::*;
}

/// Everything most programs need, in one import.
pub mod prelude {
    pub use crate::api;
    pub use crate::{
        function, function1, init_scope, Arg, Func, GradientTape, HostFunc, Tensor, TensorSpec,
        Variable,
    };
    pub use tfe_tensor::{DType, Shape, TensorData};
}

/// Initialize every registry (ops, kernels, gradients, the `call`
/// gradient). Idempotent; the public entry points call it themselves, so
/// this is only needed when talking to low-level registries directly.
pub fn init() {
    tfe_core::init();
}

/// Register a simulated accelerator (GPU/TPU) with a calibrated profile.
/// Most programs use real host execution and never call this; the
/// benchmark harness and the device examples do.
///
/// # Errors
/// Duplicate device names.
pub fn register_sim_device(
    name: &str,
    compute: tfe_device::ComputeModel,
    mode: tfe_device::KernelMode,
) -> Result<(), RuntimeError> {
    let parsed = tfe_device::DeviceName::parse(name).map_err(RuntimeError::Device)?;
    context::device_manager()
        .register(tfe_device::Device::simulated(parsed, compute, mode))
        .map_err(RuntimeError::Device)
}
