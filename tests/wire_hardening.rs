//! Wire-frame hardening (mirrors `tests/saved_hardening.rs` for the
//! on-disk format): every one-byte mutation and every truncation of a
//! valid frame must decode to a typed `WireError` or to a (different but
//! well-formed) frame — never a panic, never an oversized allocation.

use tf_eager::dist::{Frame, WireError, MAX_FRAME_LEN};
use tfe_encode::Value;

fn sample_frames() -> Vec<Frame> {
    vec![
        Frame::new(1, None, Value::Null),
        Frame::new(42, Some((7, 9)), Value::str("pong")),
        Frame::new(
            u64::MAX,
            Some((u64::MAX, 1)),
            Value::object([
                ("type".to_string(), Value::str("execute_op")),
                ("op".to_string(), Value::str("add")),
                (
                    "inputs".to_string(),
                    Value::Array(vec![Value::object([(
                        "inline".to_string(),
                        Value::object([
                            ("dtype".to_string(), Value::str("float32")),
                            ("shape".to_string(), Value::Array(vec![Value::Int(2)])),
                            (
                                "data".to_string(),
                                Value::Array(vec![Value::Float(1.5), Value::Float(-2.25)]),
                            ),
                        ]),
                    )])]),
                ),
            ]),
        ),
    ]
}

/// Every truncation prefix decodes to a typed error (or, for the empty
/// tail case, the full frame).
#[test]
fn truncations_are_typed_errors() {
    for frame in sample_frames() {
        let bytes = frame.encode();
        for cut in 0..bytes.len() {
            match Frame::decode(&bytes[..cut]) {
                Err(_) => {}
                Ok(decoded) => panic!("truncated at {cut} decoded to {decoded:?}"),
            }
        }
        assert_eq!(Frame::decode(&bytes).unwrap(), frame);
    }
}

/// Every single-byte corruption decodes to a typed error or a well-formed
/// frame — the decoder must not panic on any of them.
#[test]
fn single_byte_mutations_never_panic() {
    for frame in sample_frames() {
        let bytes = frame.encode();
        for pos in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut mutated = bytes.clone();
                mutated[pos] ^= flip;
                // Must return, not panic; both Ok (benign payload edit)
                // and Err (structural damage) are acceptable.
                let _ = Frame::decode(&mutated);
            }
        }
    }
}

/// A hostile length field is rejected before any allocation happens.
#[test]
fn oversized_length_is_guarded() {
    let mut bytes = Frame::new(1, None, Value::str("x")).encode();
    for len in [MAX_FRAME_LEN as u32 + 1, u32::MAX, u32::MAX / 2] {
        bytes[30..34].copy_from_slice(&len.to_le_bytes());
        assert!(
            matches!(Frame::decode(&bytes), Err(WireError::Oversized { .. })),
            "length {len} must be rejected"
        );
    }
}

/// Structured garbage: random-looking inputs with valid prefixes of
/// increasing depth all fail with typed errors.
#[test]
fn garbage_inputs_are_typed_errors() {
    let cases: Vec<Vec<u8>> = vec![
        vec![],
        b"hello world this is not a frame at all".to_vec(),
        b"TFEW".to_vec(),                      // magic only
        [b"TFEW".as_slice(), &[2u8]].concat(), // wrong version
        vec![0xff; 64],
    ];
    for bytes in cases {
        assert!(Frame::decode(&bytes).is_err(), "{bytes:?} must not decode");
    }
    // Valid header, payload that is not UTF-8 JSON.
    let mut bytes = Frame::new(9, None, Value::str("abcd")).encode();
    let payload_start = bytes.len() - 6; // "abcd" plus quotes
    bytes[payload_start] = 0xc0; // invalid UTF-8 lead byte
    assert!(matches!(Frame::decode(&bytes), Err(WireError::Payload(_))));
}

/// Stream reads tolerate arbitrary chunking: a frame split at every
/// possible boundary still reassembles exactly.
#[test]
fn chunked_stream_reads_reassemble() {
    use std::io::Read;

    /// A reader that returns at most `chunk` bytes per read call.
    struct Dribble<'a> {
        data: &'a [u8],
        pos: usize,
        chunk: usize,
    }
    impl Read for Dribble<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    for frame in sample_frames() {
        let bytes = frame.encode();
        for chunk in [1, 2, 3, 7, 16] {
            let mut r = Dribble { data: &bytes, pos: 0, chunk };
            let (decoded, total) =
                tf_eager::dist::wire::read_frame(&mut r, false).unwrap().unwrap();
            assert_eq!(decoded, frame, "chunk size {chunk}");
            assert_eq!(total, bytes.len());
        }
    }
}
