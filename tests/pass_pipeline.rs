//! Pass-level differential fuzz harness for the fixpoint optimization
//! pipeline: every random graph from the `exec_differential` corpus
//! generator is optimized under {no passes, each pass alone, a single
//! sweep, full fixpoint, fixpoint+fusion} and every configuration must
//! agree with the unoptimized serial run — across the serial planner,
//! the parallel scheduler, and eager interpretation. Stateful graphs
//! additionally require bit-identical final variable state.
//!
//! Two corpora are biased toward the new passes (algebraic identities and
//! dead stores) and assert their rewrite counters actually fired — a
//! differential harness that never triggers the rewrites it gates proves
//! nothing. On a mismatch the failing graph is shrunk (output narrowing +
//! prefix truncation) and persisted as Graphviz dot; the panic names the
//! artifact. `TFE_FUZZ_CASES` scales every corpus.

mod common;

use common::fuzz_cases;
use std::sync::Arc;
use tf_eager::graph::passes::{self, OptimizeOptions, OptimizeStats, PASS_NAMES};
use tf_eager::graph::{GraphFunction, Node};
use tf_eager::ExecMode;
use tfe_device::Device;
use tfe_runtime::executor;
use tfe_tensor::TensorData;

fn evaluator(node: &Node, ins: &[Arc<TensorData>]) -> Result<Vec<TensorData>, String> {
    tfe_runtime::kernels::run_kernel(&node.op, &node.attrs, ins).map_err(|e| e.to_string())
}

/// Every optimization configuration under differential test. `only_*`
/// configs run one pass for one sweep; `single_sweep` runs the whole
/// pipeline once; `fixpoint` iterates to convergence; `fixpoint_fused`
/// additionally lowers elementwise islands into fused kernels.
fn configs() -> Vec<(String, OptimizeOptions)> {
    let mut v = vec![("none".to_string(), OptimizeOptions::none())];
    for pass in PASS_NAMES {
        v.push((format!("only_{pass}"), OptimizeOptions::only(pass)));
    }
    v.push(("single_sweep".to_string(), OptimizeOptions { fixpoint: false, ..Default::default() }));
    v.push(("fixpoint".to_string(), OptimizeOptions::default()));
    v.push(("fixpoint_fused".to_string(), OptimizeOptions::aggressive()));
    v
}

/// Optimize `f` under `opts` and compare against the unoptimized serial
/// baseline `want` in serial, parallel, and eager interpretation.
/// Returns a description of the first divergence instead of panicking so
/// the caller can shrink the graph before reporting.
fn check_config(
    f: &GraphFunction,
    args: &[Arc<TensorData>],
    want: &[Arc<TensorData>],
    opts: &OptimizeOptions,
    device: &Device,
) -> Result<OptimizeStats, String> {
    let (g, stats) = passes::optimize_with_stats(f, opts, Some(&evaluator));
    if opts.fixpoint && !stats.converged {
        return Err(format!("did not converge within {} sweeps", opts.max_sweeps));
    }
    for mode in [ExecMode::SerialPlanned, ExecMode::Parallel] {
        let got = executor::run_function(&g, args, device, mode)
            .map_err(|e| format!("{mode:?} failed on optimized graph: {e}"))?;
        for (k, (w, o)) in want.iter().zip(&got).enumerate() {
            // Folding/fusion may reassociate floating point: 1e-6, like
            // the executor differential. Everything else is exact.
            if !w.all_close(o, 1e-6, 1e-6) {
                return Err(format!("output {k} ({mode:?}): want {w:?} got {o:?}"));
            }
        }
    }
    let eager = common::eager_interpret(&g, args)
        .map_err(|e| format!("eager interpretation of optimized graph failed: {e}"))?;
    for (k, (w, o)) in want.iter().zip(&eager).enumerate() {
        if !w.all_close(o, 1e-6, 1e-6) {
            return Err(format!("output {k} (eager): want {w:?} got {o:?}"));
        }
    }
    Ok(stats)
}

/// Shrink a failing (graph, config) pair and panic with the dot artifact.
fn fail_with_artifact(
    seed: u64,
    config: &str,
    err: &str,
    f: &GraphFunction,
    args: &[Arc<TensorData>],
    opts: &OptimizeOptions,
    device: &Device,
) -> ! {
    let shrunk = common::shrink_failing_graph(f, &|cand| {
        executor::run_function(cand, args, device, ExecMode::SerialPlanned)
            .ok()
            .map(|want| check_config(cand, args, &want, opts, device).is_err())
            .unwrap_or(false)
    });
    let path = common::dot_artifact(&shrunk);
    panic!(
        "case {seed} config {config}: {err}\nshrunk failing graph written to {}\n{}",
        path.display(),
        shrunk.dump()
    );
}

/// The headline differential: all stateless corpus graphs, all pass
/// configurations, all three execution paths.
#[test]
fn all_pass_configs_agree_on_random_graphs() {
    tf_eager::init();
    let device = tfe_runtime::context::device_manager().host_cpu();
    for seed in 0..fuzz_cases(120) {
        let (f, shapes) = common::generate(seed);
        let args = common::make_args(seed, &shapes);
        let want = executor::run_function(&f, &args, &device, ExecMode::SerialPlanned)
            .unwrap_or_else(|e| panic!("case {seed} baseline failed: {e}\n{}", f.dump()));
        for (name, opts) in configs() {
            if let Err(err) = check_config(&f, &args, &want, &opts, &device) {
                fail_with_artifact(seed, &name, &err, &f, &args, &opts, &device);
            }
        }
    }
}

/// Stateful corpus: every pass configuration must preserve outputs *and*
/// final variable state bit-for-bit, in both executors. This is the test
/// that keeps dead-store elimination honest about liveness.
#[test]
fn all_pass_configs_preserve_variable_state() {
    run_stateful_differential(common::generate_stateful, fuzz_cases(40), &mut |_| {});
}

/// Dead-store-biased corpus: same obligations as the stateful
/// differential, plus the eliminator must actually fire — every graph
/// opens with a guaranteed clobbered store.
#[test]
fn dead_store_corpus_is_eliminated_and_preserved() {
    let mut dse_rewrites = 0u64;
    run_stateful_differential(common::generate_dead_store, fuzz_cases(40), &mut |stats| {
        dse_rewrites += stats.rewrites_for("eliminate_dead_stores");
    });
    assert!(dse_rewrites > 0, "biased corpus never triggered dead-store elimination");
}

fn run_stateful_differential(
    gen: fn(u64, &[i64]) -> GraphFunction,
    cases: u64,
    on_fixpoint_stats: &mut dyn FnMut(&OptimizeStats),
) {
    tf_eager::init();
    let device = tfe_runtime::context::device_manager().host_cpu();
    for seed in 0..cases {
        let vars: Vec<tf_eager::Variable> =
            (0..2).map(|k| tf_eager::Variable::new(TensorData::scalar(k as f64 + 1.0))).collect();
        let initial: Vec<Arc<TensorData>> = vars.iter().map(|v| v.peek()).collect();
        let var_ids: Vec<i64> = vars.iter().map(|v| v.id() as i64).collect();
        let f = gen(seed, &var_ids);
        let reset = |vars: &[tf_eager::Variable]| {
            for (v, init) in vars.iter().zip(&initial) {
                v.restore((**init).clone()).unwrap();
            }
        };

        let want = executor::run_function(&f, &[], &device, ExecMode::SerialPlanned)
            .unwrap_or_else(|e| panic!("case {seed} baseline failed: {e}\n{}", f.dump()));
        let want_state: Vec<f64> = vars.iter().map(|v| v.peek().scalar_f64().unwrap()).collect();

        for (name, opts) in configs() {
            let (g, stats) = passes::optimize_with_stats(&f, &opts, Some(&evaluator));
            assert!(
                !opts.fixpoint || stats.converged,
                "case {seed} config {name}: no fixpoint within {} sweeps\n{}",
                opts.max_sweeps,
                f.dump()
            );
            if name == "fixpoint" {
                on_fixpoint_stats(&stats);
            }
            for mode in [ExecMode::SerialPlanned, ExecMode::Parallel] {
                reset(&vars);
                let got = executor::run_function(&g, &[], &device, mode).unwrap_or_else(|e| {
                    panic!("case {seed} config {name} {mode:?} failed: {e}\n{}", g.dump())
                });
                let state: Vec<f64> = vars.iter().map(|v| v.peek().scalar_f64().unwrap()).collect();
                for (k, (w, o)) in want.iter().zip(&got).enumerate() {
                    assert!(
                        w.all_close(o, 0.0, 0.0),
                        "case {seed} config {name} output {k} ({mode:?}): {w:?} vs {o:?}\n{}\n{}",
                        f.dump(),
                        g.dump()
                    );
                }
                assert_eq!(
                    want_state,
                    state,
                    "case {seed} config {name} ({mode:?}) variable state\n{}\n{}",
                    f.dump(),
                    g.dump()
                );
            }
        }
    }
}

/// Algebraic-biased corpus: the differential holds, the fixpoint
/// converges, and the rewrite counters for both new stateless passes are
/// nonzero across the corpus — the harness demonstrably gates the
/// rewrites it claims to.
#[test]
fn algebraic_corpus_is_simplified_and_preserved() {
    tf_eager::init();
    let device = tfe_runtime::context::device_manager().host_cpu();
    let mut algebraic = 0u64;
    let mut propagated = 0u64;
    let mut removed = 0usize;
    for seed in 0..fuzz_cases(60) {
        let (f, shapes) = common::generate_algebraic(seed);
        let args = common::make_args(seed ^ 0xa19, &shapes);
        let want = executor::run_function(&f, &args, &device, ExecMode::SerialPlanned)
            .unwrap_or_else(|e| panic!("case {seed} baseline failed: {e}\n{}", f.dump()));
        for (name, opts) in configs() {
            match check_config(&f, &args, &want, &opts, &device) {
                Err(err) => fail_with_artifact(seed, &name, &err, &f, &args, &opts, &device),
                Ok(stats) => {
                    if name == "fixpoint" {
                        algebraic += stats.rewrites_for("simplify_algebraic");
                        propagated += stats.rewrites_for("propagate_constants");
                    }
                }
            }
        }
        let optimized = passes::optimize(&f, &OptimizeOptions::default(), Some(&evaluator));
        removed += f.executable_node_count().saturating_sub(optimized.executable_node_count());
    }
    assert!(algebraic > 0, "biased corpus never triggered algebraic simplification");
    assert!(propagated > 0, "biased corpus never triggered constant propagation");
    assert!(removed > 0, "optimization never shrank a biased graph");
}

/// The compiled tile executor vs the register interpreter, over every
/// fused graph the corpus produces: optimize with fusion on, execute the
/// optimized graph once on the default (tiled) fused path and once with
/// `force_interpreted`, and require bit-identical outputs. This is the
/// integration-level differential behind `set_force_interpreted` being a
/// safe kill switch. Also asserts fusion actually fires on the corpus.
#[test]
fn fused_tiled_and_interpreted_agree_bitwise() {
    use tf_eager::graph::program;

    tf_eager::init();
    let device = tfe_runtime::context::device_manager().host_cpu();
    let opts = OptimizeOptions::aggressive();
    let bits = |t: &TensorData| -> Option<Vec<u64>> {
        match t.dtype() {
            tfe_tensor::DType::F32 => {
                Some(t.as_slice::<f32>().unwrap().iter().map(|x| u64::from(x.to_bits())).collect())
            }
            tfe_tensor::DType::F64 => {
                Some(t.as_slice::<f64>().unwrap().iter().map(|x| x.to_bits()).collect())
            }
            _ => None,
        }
    };
    let mut fused_graphs = 0u64;
    for seed in 0..fuzz_cases(60) {
        let (f, shapes) = common::generate(seed);
        let args = common::make_args(seed, &shapes);
        let (g, stats) = passes::optimize_with_stats(&f, &opts, Some(&evaluator));
        if stats.rewrites_for("fuse_elementwise") == 0 {
            continue;
        }
        fused_graphs += 1;
        for mode in [ExecMode::SerialPlanned, ExecMode::Parallel] {
            let tiled = executor::run_function(&g, &args, &device, mode)
                .unwrap_or_else(|e| panic!("case {seed} tiled {mode:?} failed: {e}\n{}", g.dump()));
            let prev = program::set_force_interpreted(true);
            let interp = executor::run_function(&g, &args, &device, mode);
            program::set_force_interpreted(prev);
            let interp = interp.unwrap_or_else(|e| {
                panic!("case {seed} interpreted {mode:?} failed: {e}\n{}", g.dump())
            });
            for (k, (t, i)) in tiled.iter().zip(&interp).enumerate() {
                let same = match (bits(t), bits(i)) {
                    (Some(tb), Some(ib)) => tb == ib,
                    _ => t.all_close(i, 0.0, 0.0),
                };
                assert!(
                    same,
                    "case {seed} output {k} ({mode:?}): tiled and interpreted fused \
                     executors diverged\n{}",
                    g.dump()
                );
            }
        }
    }
    assert!(fused_graphs > 0, "corpus never produced a fused kernel");
}

/// Applying any single pass twice must equal applying it once —
/// structural hash equality, table-driven over all seven passes, on both
/// the general and the algebraic-biased corpus.
#[test]
fn single_passes_are_idempotent() {
    tf_eager::init();
    for seed in 0..fuzz_cases(30) {
        let graphs = [common::generate(seed).0, common::generate_algebraic(seed).0];
        for f in &graphs {
            for pass in PASS_NAMES {
                let opts = OptimizeOptions::only(pass);
                let once = passes::optimize(f, &opts, Some(&evaluator));
                let twice = passes::optimize(&once, &opts, Some(&evaluator));
                assert_eq!(
                    once.structural_hash(),
                    twice.structural_hash(),
                    "pass {pass} not idempotent on seed {seed}\nonce:\n{}\ntwice:\n{}",
                    once.dump(),
                    twice.dump()
                );
            }
        }
    }
}

/// Graph hashes after optimization are reproducible run-to-run — the
/// property the fixpoint driver's convergence test rests on (a pass with
/// nondeterministic output order would never stabilize the hash).
#[test]
fn optimized_hashes_are_reproducible() {
    tf_eager::init();
    for seed in 0..fuzz_cases(20) {
        let (f, _) = common::generate(seed);
        let base = passes::optimize(&f, &OptimizeOptions::aggressive(), Some(&evaluator))
            .structural_hash();
        for round in 0..4 {
            let again = passes::optimize(&f, &OptimizeOptions::aggressive(), Some(&evaluator))
                .structural_hash();
            assert_eq!(base, again, "seed {seed} round {round}: optimized hash drifted");
        }
    }
}

/// The shrinker itself: a graph whose failure is confined to an early
/// prefix must shrink past the unrelated tail, and the artifact must be
/// valid dot on disk.
#[test]
fn shrinker_truncates_to_failing_prefix() {
    tf_eager::init();
    let (f, _) = common::generate(7);
    // "Failure" = the graph still contains its first non-placeholder node.
    let marker = f
        .nodes
        .iter()
        .position(|n| n.op != "placeholder")
        .expect("corpus graphs have executable nodes");
    let shrunk = common::shrink_failing_graph(&f, &|cand| cand.nodes.len() > marker);
    assert!(shrunk.nodes.len() < f.nodes.len(), "shrinker failed to drop the unrelated tail");
    assert_eq!(shrunk.outputs.len(), 1, "shrunk graph keeps a single output");
    let path = common::dot_artifact(&shrunk);
    let dot = std::fs::read_to_string(&path).expect("artifact readable");
    assert!(dot.starts_with("digraph"), "artifact is dot: {dot:.40}");
    std::fs::remove_file(&path).ok();
}
