//! Serialization integration: graph functions and whole libraries survive
//! JSON round trips *and still execute*; SavedFunction bundles deploy a
//! ResNet; checkpoints interoperate with the Listing 3 model.

use std::sync::Arc;
use tf_eager::encode::Value;
use tf_eager::graph::serial;
use tf_eager::nn::layers::Layer;
use tf_eager::nn::resnet::resnet_tiny;
use tf_eager::nn::Initializer;
use tf_eager::prelude::*;
use tfe_runtime::{context, executor, ExecMode};

#[test]
fn serialized_graph_still_executes() {
    tf_eager::init();
    let f = function1("serial_exec", |x| {
        let a = api::mul(x, &api::scalar(3.0f64))?;
        api::softplus(&a)
    });
    let conc = f.concrete_for(&[Arg::from(&api::zeros(DType::F64, [4]))]).unwrap();
    // JSON text round trip.
    let text = serial::function_to_value(&conc.function).to_json();
    let back = serial::function_from_value(&Value::parse(&text).unwrap()).unwrap();
    // Execute the deserialized graph directly through the executor.
    let x = Arc::new(TensorData::from_vec(vec![0.0f64, 1.0, -1.0, 2.0], Shape::from([4])).unwrap());
    let device = context::device_manager().host_cpu();
    let out =
        executor::run_function(&back, std::slice::from_ref(&x), &device, ExecMode::SerialPlanned)
            .unwrap();
    let direct = f.call1(&Tensor::from_data(x.as_ref().clone())).unwrap().value().unwrap();
    assert!(out[0].all_close(&direct, 1e-12, 1e-12));
}

#[test]
fn library_round_trip_preserves_call_edges() {
    tf_eager::init();
    let inner = function1("serial_inner", api::square);
    let outer = {
        let inner = inner.clone();
        function1("serial_outer", move |x| Ok(inner.call_tensors(&[x])?.remove(0)))
    };
    let conc = outer.concrete_for(&[Arg::from(&api::scalar(2.0f64))]).unwrap();
    // Collect entry + callees into a standalone library and round trip it.
    let lib = tf_eager::graph::FunctionLibrary::new();
    let entry = context::library().get(&conc.function.name).unwrap();
    for name in entry.callee_names() {
        lib.insert(context::library().get(&name).unwrap().as_ref().clone());
    }
    lib.insert(entry.as_ref().clone());
    let v = serial::library_to_value(&lib);
    let restored = serial::library_from_value(&Value::parse(&v.to_json()).unwrap()).unwrap();
    assert_eq!(restored.names(), lib.names());
    let rf = restored.get(&conc.function.name).unwrap();
    assert!(rf.nodes.iter().any(|n| n.op == "call"));
}

#[test]
fn saved_function_deploys_a_resnet() {
    tf_eager::init();
    let model = Arc::new(resnet_tiny(3, &mut Initializer::seeded(8)));
    let infer = {
        let model = model.clone();
        function1("resnet_infer", move |x| model.call(x, false))
    };
    let x = Tensor::from_data(
        tfe_tensor::rng::TensorRng::seed_from_u64(4)
            .uniform(DType::F32, Shape::from([2, 8, 8, 3]), 0.0, 1.0)
            .unwrap(),
    );
    let reference = infer.call1(&x).unwrap().to_f64_vec().unwrap();
    let conc = infer.concrete_for(&[Arg::from(&api::zeros(DType::F32, [2, 8, 8, 3]))]).unwrap();
    let bundle = tf_eager::state::saved::export_to_value(&conc).unwrap();
    // The bundle text is a real JSON document.
    let text = bundle.to_json();
    assert!(text.len() > 10_000, "resnet bundle suspiciously small");
    let loaded = tf_eager::state::saved::import_from_value(&Value::parse(&text).unwrap()).unwrap();
    // Batch-norm moving statistics and conv filters all came along.
    assert!(loaded.variables.len() >= 20, "{} variables", loaded.variables.len());
    let served = loaded.call(&[&x]).unwrap()[0].to_f64_vec().unwrap();
    for (a, b) in reference.iter().zip(&served) {
        assert!((a - b).abs() < 1e-5, "deployed resnet diverged: {a} vs {b}");
    }
}

#[test]
fn listing3_net_checkpoint_through_files() {
    tf_eager::init();
    let net = tf_eager::nn::layers::Net::new(&mut Initializer::seeded(2));
    let x = api::constant(vec![1.0f32, -1.0], [2, 1]).unwrap();
    let before = net.call(&x, false).unwrap().to_f64_vec().unwrap();

    let dir = std::env::temp_dir().join(format!("tfe_listing3_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("net.ckpt");
    tf_eager::state::checkpoint::save(net.trackable().as_ref(), &path).unwrap();

    // A brand-new Net (different variable ids, same structure) restores by
    // graph matching, not by names or creation order (§4.3).
    let net2 = tf_eager::nn::layers::Net::new(&mut Initializer::seeded(999));
    let status = tf_eager::state::checkpoint::restore(net2.trackable().as_ref(), &path).unwrap();
    assert!(status.is_complete(), "{status:?}");
    let after = net2.call(&x, false).unwrap().to_f64_vec().unwrap();
    assert_eq!(before, after);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_artifacts_rejected_cleanly() {
    tf_eager::init();
    // Checkpoints and bundles both validate structure before mutating
    // anything.
    assert!(tf_eager::state::saved::import_from_value(&Value::parse("{}").unwrap()).is_err());
    let net = tf_eager::nn::layers::Net::new(&mut Initializer::seeded(1));
    let bogus =
        Value::parse(r#"{"format":"tfe-checkpoint-v1","nodes":[{"kind":"mystery"}]}"#).unwrap();
    assert!(
        tf_eager::state::checkpoint::restore_from_value(net.trackable().as_ref(), &bogus).is_err()
    );
    // Graph with a cycle/forward edge is rejected at decode time.
    let f = function1("validate_me", api::relu);
    let conc = f.concrete_for(&[Arg::from(&api::scalar(1.0f32))]).unwrap();
    let mut v = serial::function_to_value(&conc.function);
    if let Value::Object(map) = &mut v {
        map.insert("inputs".to_string(), Value::Array(vec![Value::Int(999)]));
    }
    assert!(serial::function_from_value(&v).is_err());
}
