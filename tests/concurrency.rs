//! Thread-safety: the context is thread-local, but registries (ops,
//! kernels, gradients, the function library, variables) are process-wide.
//! Concurrent eager math, tracing, staged calls and shared-variable
//! updates must all be sound.

use std::sync::Arc;
use tf_eager::prelude::*;
use tf_eager::{context, ExecMode, RuntimeError};

#[test]
fn non_persistent_tape_race_has_exactly_one_winner() {
    // Many threads race `gradient()` on one shared non-persistent tape.
    // consume() checks and sets under a single lock, so exactly one call
    // may succeed; every loser must get the typed TapeConsumed error, and
    // nothing may panic or deadlock.
    tf_eager::init();
    let x = api::scalar(3.0f64);
    let tape = GradientTape::new();
    tape.watch(&x);
    let y = api::mul(&x, &x).unwrap();

    let tape = Arc::new(tape);
    let barrier = Arc::new(std::sync::Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let tape = tape.clone();
            let barrier = barrier.clone();
            let x = x.clone();
            let y = y.clone();
            std::thread::spawn(move || {
                barrier.wait();
                tape.gradient1(&y, &x)
            })
        })
        .collect();
    let mut winners = 0;
    for h in handles {
        match h.join().unwrap() {
            Ok(g) => {
                winners += 1;
                assert_eq!(g.scalar_f64().unwrap(), 6.0);
            }
            Err(e) => {
                assert!(matches!(e, RuntimeError::TapeConsumed), "unexpected error: {e}");
            }
        }
    }
    assert_eq!(winners, 1, "exactly one gradient call may win a non-persistent tape");

    // The tape stays consumed afterwards, and a persistent tape never errors.
    assert!(matches!(tape.gradient1(&y, &x), Err(RuntimeError::TapeConsumed)));
    let p = GradientTape::persistent();
    p.watch(&x);
    let y2 = api::mul(&x, &x).unwrap();
    for _ in 0..3 {
        assert_eq!(p.gradient1(&y2, &x).unwrap().scalar_f64().unwrap(), 6.0);
    }
}

#[test]
fn concurrent_eager_math() {
    tf_eager::init();
    let handles: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let a = api::constant(vec![t as f32; 64], [64]).unwrap();
                let mut acc = a.clone();
                for _ in 0..200 {
                    acc = api::tanh(&api::add(&acc, &a).unwrap()).unwrap();
                }
                acc.to_f64_vec().unwrap()[0]
            })
        })
        .collect();
    for h in handles {
        assert!(h.join().unwrap().is_finite());
    }
}

#[test]
fn concurrent_tracing_and_calls() {
    tf_eager::init();
    // One shared Func called from many threads with distinct signatures:
    // the trace cache must stay consistent.
    let f = function1("concurrent_fn", |x| {
        let y = api::mul(x, x)?;
        api::reduce_sum(&y, &[], false)
    });
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let f = f.clone();
            std::thread::spawn(move || {
                let n = 1 + (t % 4);
                for _ in 0..50 {
                    let x = api::ones(DType::F64, [n]);
                    let y = f.call1(&x).unwrap();
                    assert_eq!(y.scalar_f64().unwrap(), n as f64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // At most one concrete function per distinct signature (4 sizes), even
    // under racy first-calls (duplicate traces are discarded, not cached).
    assert!(f.num_concrete() <= 4, "{} concretes", f.num_concrete());
}

#[test]
fn concurrent_tapes_are_thread_local() {
    tf_eager::init();
    // A tape on one thread must not record ops from other threads.
    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let x = api::scalar(t as f64 + 1.0);
                let tape = GradientTape::new();
                tape.watch(&x);
                let mut y = x.clone();
                for _ in 0..5 {
                    y = api::mul(&y, &x).unwrap();
                }
                // y = x^6, dy/dx = 6x^5
                let g = tape.gradient1(&y, &x).unwrap().scalar_f64().unwrap();
                let expect = 6.0 * (t as f64 + 1.0).powi(5);
                assert!((g - expect).abs() < 1e-9 * expect.max(1.0), "{g} vs {expect}");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn concurrent_variable_updates_are_atomic_per_op() {
    tf_eager::init();
    let v = Arc::new(Variable::new(TensorData::scalar(0.0f32)));
    let per_thread = 100;
    let threads = 8;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let v = v.clone();
            std::thread::spawn(move || {
                for _ in 0..per_thread {
                    v.assign_add(&api::scalar(1.0f32)).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // assign_add is read-modify-write at kernel granularity; because the
    // storage lock is held per set_value, increments can race and some may
    // be lost — like TF's non-locking assign_add. Assert sanity bounds and
    // document the semantics rather than pretend it's a fetch_add.
    let total = v.peek().scalar_f64().unwrap();
    assert!(total > 0.0 && total <= (per_thread * threads) as f64);
}

#[test]
fn concurrent_parallel_staged_calls_are_deterministic() {
    tf_eager::init();
    // A wide fan-out graph — eight independent branches joined by a sum —
    // so the dependency-counted scheduler has real concurrency to exploit.
    let f = function1("concurrent_parallel_fn", |x| {
        let mut branches = Vec::new();
        for i in 0..8 {
            let scaled = api::mul(x, &api::scalar((i + 1) as f64))?;
            branches.push(api::tanh(&scaled)?);
        }
        let mut acc = branches[0].clone();
        for b in &branches[1..] {
            acc = api::add(&acc, b)?;
        }
        api::reduce_sum(&acc, &[], false)
    });
    // Serial baseline on the main thread.
    let expected = {
        let x = api::ones(DType::F64, [32]);
        f.call1(&x).unwrap().scalar_f64().unwrap()
    };
    // Eight threads hammer the same Func through the shared worker pool;
    // every result must be bit-identical to the serial run.
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let f = f.clone();
            std::thread::spawn(move || {
                context::set_exec_mode(ExecMode::Parallel);
                for _ in 0..30 {
                    let x = api::ones(DType::F64, [32]);
                    let y = f.call1(&x).unwrap().scalar_f64().unwrap();
                    assert_eq!(y.to_bits(), expected.to_bits(), "{y} vs {expected}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn parallel_stateful_train_step_matches_serial() {
    tf_eager::init();
    // A traced train-step-style graph: read the weight, derive an update
    // from it, apply it, read back. Sequencing edges must keep the
    // read/update/read chain in program order on the parallel executor,
    // so the whole trajectory matches the serial one bit for bit.
    let w = Arc::new(Variable::new(TensorData::scalar(2.0f64)));
    let step = {
        let w = w.clone();
        function("parallel_train_step", move |_args| {
            let cur = w.read()?;
            let g = api::sin(&cur)?;
            let upd = api::mul(&g, &api::scalar(0.1f64))?;
            w.assign_sub(&upd)?;
            Ok(vec![w.read()?])
        })
    };
    let steps = 10;
    let serial: Vec<u64> = (0..steps)
        .map(|_| step.call_tensors(&[]).unwrap()[0].scalar_f64().unwrap().to_bits())
        .collect();
    let serial_final = w.peek().scalar_f64().unwrap().to_bits();

    w.restore(TensorData::scalar(2.0f64)).unwrap();
    let prev = context::set_exec_mode(ExecMode::Parallel);
    let before = context::exec_stats().parallel_runs;
    let parallel: Vec<u64> = (0..steps)
        .map(|_| step.call_tensors(&[]).unwrap()[0].scalar_f64().unwrap().to_bits())
        .collect();
    let parallel_final = w.peek().scalar_f64().unwrap().to_bits();
    assert!(context::exec_stats().parallel_runs > before, "stateful step fell back to serial");
    context::set_exec_mode(prev);

    assert_eq!(serial, parallel);
    assert_eq!(serial_final, parallel_final);
}

#[test]
fn concurrent_parallel_stateful_steps_keep_program_order() {
    tf_eager::init();
    // Eight threads, each with a private variable and a private traced step
    // that mixes stateless fan-out with a read/assign_add/read chain, all
    // contending for the one shared worker pool. Program order per variable
    // makes every intermediate read deterministic.
    let handles: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                context::set_exec_mode(ExecMode::Parallel);
                let w = Arc::new(Variable::new(TensorData::scalar(0.0f64)));
                let step = {
                    let w = w.clone();
                    function(&format!("stress_step_{t}"), move |_args| {
                        let cur = w.read()?;
                        let a = api::tanh(&cur)?;
                        let b = api::cos(&cur)?;
                        w.assign_add(&api::scalar(1.0f64))?;
                        let sum = api::add(&a, &b)?;
                        Ok(vec![w.read()?, sum])
                    })
                };
                for i in 0..50 {
                    let out = step.call_tensors(&[]).unwrap();
                    // The read after assign_add must see this step's write.
                    assert_eq!(out[0].scalar_f64().unwrap(), (i + 1) as f64);
                    assert!(out[1].scalar_f64().unwrap().is_finite());
                }
                assert_eq!(w.peek().scalar_f64().unwrap(), 50.0);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn concurrent_staged_training_on_disjoint_models() {
    tf_eager::init();
    use tf_eager::nn::layers::Layer;
    use tf_eager::nn::{mlp, optimizer, Activation, Initializer, Sgd};
    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let model =
                    Arc::new(mlp(4, &[8], 1, Activation::Tanh, &mut Initializer::seeded(t)));
                let opt = Arc::new(Sgd::new(0.05));
                let vars = model.variables();
                let step = {
                    let model = model.clone();
                    let opt = opt.clone();
                    let vars = vars.clone();
                    function("thread_step", move |args| {
                        let x = args[0].as_tensor().unwrap();
                        let y = args[1].as_tensor().unwrap();
                        let tape = GradientTape::new();
                        let pred = model.call(x, true)?;
                        let loss = tf_eager::nn::losses::mean_squared_error(&pred, y)?;
                        optimizer::minimize(opt.as_ref(), tape, &loss, &vars)?;
                        Ok(vec![loss])
                    })
                };
                let data = tf_eager::nn::data::SyntheticRegression::new(t, 4);
                let (x, y) = data.batch(0, 16).unwrap();
                let first = step.call_tensors(&[&x, &y]).unwrap()[0].scalar_f64().unwrap();
                let mut last = first;
                for _ in 0..15 {
                    last = step.call_tensors(&[&x, &y]).unwrap()[0].scalar_f64().unwrap();
                }
                assert!(last < first, "thread {t}: {first} -> {last}");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn exec_stats_snapshot_is_never_torn() {
    // Regression test for the torn-view bug: `exec_stats()` used to load
    // each counter independently, so a reader overlapping a writer could
    // observe a kernel bump without its node bump. The seqlock read pass
    // must uphold the cross-field invariant kernels_launched <=
    // nodes_executed (every kernel launch is preceded by its node's bump
    // on the same thread) even while writer threads hammer the cells.
    tf_eager::init();
    let f = function1("seqlock_stress_fn", |x| {
        let y = api::mul(x, x)?;
        api::reduce_sum(&y, &[], false)
    });
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writers: Vec<_> = (0..4)
        .map(|_| {
            let f = f.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                context::set_exec_mode(ExecMode::Parallel);
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let x = api::ones(DType::F64, [16]);
                    f.call1(&x).unwrap();
                }
            })
        })
        .collect();
    // Readers snapshot continuously while the writers run; every snapshot
    // must satisfy the invariant and stay monotone against the previous
    // read on the same thread.
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut prev_nodes = 0u64;
                let mut snaps = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let s = context::exec_stats();
                    assert!(
                        s.kernels_launched <= s.nodes_executed,
                        "torn snapshot: {} kernels > {} nodes",
                        s.kernels_launched,
                        s.nodes_executed
                    );
                    assert!(s.nodes_executed >= prev_nodes, "counters went backwards");
                    prev_nodes = s.nodes_executed;
                    snaps += 1;
                }
                snaps
            })
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(300));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in writers {
        h.join().unwrap();
    }
    for h in readers {
        assert!(h.join().unwrap() > 0, "reader never snapshotted");
    }
}

#[test]
fn nested_graph_parallel_and_intra_op_no_deadlock() {
    // The two-level stress case: the graph executor fans independent
    // matmul nodes out across the worker pool (inter-op), and each matmul
    // splits its own row blocks onto the *same* pool (intra-op). Workers
    // waiting on tiles help execute queued jobs instead of blocking, so
    // this must finish — from several client threads at once — without
    // deadlock, and bit-identical to the serial schedule.
    tf_eager::init();
    let f = function1("nested_intra_stress", |x| {
        // Four independent 96x96 matmul chains joined at the end: wide
        // enough for inter-op parallelism, each node big enough for the
        // splitter to go parallel.
        let mut branches = Vec::new();
        for _ in 0..4 {
            let y = api::matmul(x, x)?;
            let y = api::mul(&y, &api::scalar(1e-3f32))?;
            branches.push(api::matmul(&y, x)?);
        }
        let mut acc = branches[0].clone();
        for b in &branches[1..] {
            acc = api::add(&acc, b)?;
        }
        api::reduce_sum(&acc, &[], false)
    });
    let x = api::constant(vec![0.01f32; 96 * 96], [96, 96]).unwrap();
    let prev = context::set_exec_mode(ExecMode::SerialPlanned);
    let want = f.call1(&x).unwrap().scalar_f64().unwrap();
    context::set_exec_mode(ExecMode::Parallel);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let f = f.clone();
            let x = x.clone();
            std::thread::spawn(move || {
                let prev = context::set_exec_mode(ExecMode::Parallel);
                for _ in 0..10 {
                    let got = f.call1(&x).unwrap().scalar_f64().unwrap();
                    assert_eq!(got.to_bits(), want.to_bits());
                }
                context::set_exec_mode(prev);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    context::set_exec_mode(prev);
}
