//! Thread-safety: the context is thread-local, but registries (ops,
//! kernels, gradients, the function library, variables) are process-wide.
//! Concurrent eager math, tracing, staged calls and shared-variable
//! updates must all be sound.

use std::sync::Arc;
use tf_eager::prelude::*;

#[test]
fn concurrent_eager_math() {
    tf_eager::init();
    let handles: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let a = api::constant(vec![t as f32; 64], [64]).unwrap();
                let mut acc = a.clone();
                for _ in 0..200 {
                    acc = api::tanh(&api::add(&acc, &a).unwrap()).unwrap();
                }
                acc.to_f64_vec().unwrap()[0]
            })
        })
        .collect();
    for h in handles {
        assert!(h.join().unwrap().is_finite());
    }
}

#[test]
fn concurrent_tracing_and_calls() {
    tf_eager::init();
    // One shared Func called from many threads with distinct signatures:
    // the trace cache must stay consistent.
    let f = function1("concurrent_fn", |x| {
        let y = api::mul(x, x)?;
        api::reduce_sum(&y, &[], false)
    });
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let f = f.clone();
            std::thread::spawn(move || {
                let n = 1 + (t % 4);
                for _ in 0..50 {
                    let x = api::ones(DType::F64, [n]);
                    let y = f.call1(&x).unwrap();
                    assert_eq!(y.scalar_f64().unwrap(), n as f64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // At most one concrete function per distinct signature (4 sizes), even
    // under racy first-calls (duplicate traces are discarded, not cached).
    assert!(f.num_concrete() <= 4, "{} concretes", f.num_concrete());
}

#[test]
fn concurrent_tapes_are_thread_local() {
    tf_eager::init();
    // A tape on one thread must not record ops from other threads.
    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let x = api::scalar(t as f64 + 1.0);
                let tape = GradientTape::new();
                tape.watch(&x);
                let mut y = x.clone();
                for _ in 0..5 {
                    y = api::mul(&y, &x).unwrap();
                }
                // y = x^6, dy/dx = 6x^5
                let g = tape.gradient1(&y, &x).unwrap().scalar_f64().unwrap();
                let expect = 6.0 * (t as f64 + 1.0).powi(5);
                assert!((g - expect).abs() < 1e-9 * expect.max(1.0), "{g} vs {expect}");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn concurrent_variable_updates_are_atomic_per_op() {
    tf_eager::init();
    let v = Arc::new(Variable::new(TensorData::scalar(0.0f32)));
    let per_thread = 100;
    let threads = 8;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let v = v.clone();
            std::thread::spawn(move || {
                for _ in 0..per_thread {
                    v.assign_add(&api::scalar(1.0f32)).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // assign_add is read-modify-write at kernel granularity; because the
    // storage lock is held per set_value, increments can race and some may
    // be lost — like TF's non-locking assign_add. Assert sanity bounds and
    // document the semantics rather than pretend it's a fetch_add.
    let total = v.peek().scalar_f64().unwrap();
    assert!(total > 0.0 && total <= (per_thread * threads) as f64);
}

#[test]
fn concurrent_staged_training_on_disjoint_models() {
    tf_eager::init();
    use tf_eager::nn::layers::Layer;
    use tf_eager::nn::{mlp, optimizer, Activation, Initializer, Sgd};
    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let model =
                    Arc::new(mlp(4, &[8], 1, Activation::Tanh, &mut Initializer::seeded(t)));
                let opt = Arc::new(Sgd::new(0.05));
                let vars = model.variables();
                let step = {
                    let model = model.clone();
                    let opt = opt.clone();
                    let vars = vars.clone();
                    function("thread_step", move |args| {
                        let x = args[0].as_tensor().unwrap();
                        let y = args[1].as_tensor().unwrap();
                        let tape = GradientTape::new();
                        let pred = model.call(x, true)?;
                        let loss = tf_eager::nn::losses::mean_squared_error(&pred, y)?;
                        optimizer::minimize(opt.as_ref(), tape, &loss, &vars)?;
                        Ok(vec![loss])
                    })
                };
                let data = tf_eager::nn::data::SyntheticRegression::new(t, 4);
                let (x, y) = data.batch(0, 16).unwrap();
                let first = step.call_tensors(&[&x, &y]).unwrap()[0].scalar_f64().unwrap();
                let mut last = first;
                for _ in 0..15 {
                    last = step.call_tensors(&[&x, &y]).unwrap()[0].scalar_f64().unwrap();
                }
                assert!(last < first, "thread {t}: {first} -> {last}");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
