//! Differential tests for the compiled fused-elementwise tile executor
//! (`tfe_graph::program::CompiledProgram`): the tiled path must be
//! bit-identical to the per-instruction register interpreter for every
//! unary/binary op, at every length (odd tails, multi-tile sizes) and at
//! every intra-op thread count; non-f32 and mixed-shape operands must take
//! the generic fallback and still agree with direct eager evaluation; and
//! the per-node compile cache must hand back the same `Arc` for the same
//! encoded program.

use proptest::prelude::*;
use tfe_graph::program::{self, Instr, Program};
use tfe_parallel::set_intra_threads;
use tfe_tensor::elementwise::{binary, unary, BinaryOp, UnaryOp};
use tfe_tensor::{DType, Shape, TensorData};

/// Run `f` under a forced intra-op thread count, restoring it afterwards.
fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let prev = set_intra_threads(Some(threads));
    let r = f();
    set_intra_threads(prev);
    r
}

fn f32s(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 2048) as f32 - 1024.0) / 256.0
        })
        .collect()
}

fn tensor_f32(n: usize, seed: u64) -> TensorData {
    TensorData::from_vec(f32s(n, seed), Shape::from([n])).unwrap()
}

fn bits32(t: &TensorData) -> Vec<u32> {
    t.as_slice::<f32>().unwrap().iter().map(|x| x.to_bits()).collect()
}

/// Evaluate `text` on `inputs` through the compiled tile executor and
/// through the forced register interpreter; both must agree bitwise.
/// Returns the tiled result for further checks.
fn tiled_vs_interpreted(text: &str, inputs: &[&TensorData], ctx: &str) -> TensorData {
    let compiled = program::compiled(text).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    let tiled = compiled.eval(inputs).unwrap_or_else(|e| panic!("{ctx} tiled: {e}"));
    let prev = program::set_force_interpreted(true);
    let interp = compiled.eval(inputs);
    program::set_force_interpreted(prev);
    let interp = interp.unwrap_or_else(|e| panic!("{ctx} interpreted: {e}"));
    assert_eq!(bits32(&tiled), bits32(&interp), "{ctx}: tiled vs interpreted bits");
    tiled
}

/// Every unary op, one-op programs, lengths straddling the lane width and
/// the tile size: tiled == interpreter == direct eager kernel, bitwise.
/// (Domain-breaking inputs are part of the contract: `log`/`sqrt` of a
/// negative must produce identical NaN bits on both paths.)
#[test]
fn unary_ops_tiled_matches_interpreter_and_eager_bitwise() {
    for &op in UnaryOp::all() {
        let text = format!("in:0;u:{}:0|1", op.name());
        for n in [1usize, 7, 8, 9, 4095, 4096, 4097, 10_000] {
            let a = tensor_f32(n, 3 + n as u64);
            let ctx = format!("u:{} n={n}", op.name());
            let tiled = tiled_vs_interpreted(&text, &[&a], &ctx);
            let eager = unary(&a, op).unwrap();
            assert_eq!(bits32(&tiled), bits32(&eager), "{ctx}: tiled vs eager bits");
        }
    }
}

/// Every binary op, same contract.
#[test]
fn binary_ops_tiled_matches_interpreter_and_eager_bitwise() {
    for &op in BinaryOp::all() {
        let text = format!("in:0;in:1;b:{}:0:1|2", op.name());
        for n in [1usize, 9, 4097, 10_000] {
            let a = tensor_f32(n, 5 + n as u64);
            let b = tensor_f32(n, 11 + n as u64);
            let ctx = format!("b:{} n={n}", op.name());
            let tiled = tiled_vs_interpreted(&text, &[&a, &b], &ctx);
            let eager = binary(&a, &b, op).unwrap();
            assert_eq!(bits32(&tiled), bits32(&eager), "{ctx}: tiled vs eager bits");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random multi-op programs over 1-3 inputs: registers get recycled,
    /// the output may or may not be the last instruction, lengths include
    /// lane tails and multiple tiles. Tiled == interpreter bitwise.
    #[test]
    fn random_chains_tiled_matches_interpreter(
        num_inputs in 1usize..4,
        ops in prop::collection::vec((0usize..30, 0usize..64, 0usize..64), 1..12),
        n_ix in 0usize..7,
        out_back in 0usize..4,
        seed in 0u64..1000,
    ) {
        let n = [1usize, 3, 8, 100, 2048, 4099, 9001][n_ix];
        let unaries = UnaryOp::all();
        let binaries = BinaryOp::all();
        let mut instrs: Vec<Instr> = (0..num_inputs).map(Instr::Input).collect();
        for (sel, a, b) in ops {
            let a = a % instrs.len();
            let b = b % instrs.len();
            // ~2/3 unary, ~1/3 binary, both drawing sources from any
            // earlier register so lifetimes overlap and buffers recycle.
            if sel < 20 {
                instrs.push(Instr::Unary(unaries[sel % unaries.len()], a));
            } else {
                instrs.push(Instr::Binary(binaries[sel % binaries.len()], a, b));
            }
        }
        let output = instrs.len() - 1 - out_back.min(instrs.len() - 1);
        let p = Program { instrs, output };
        // Valid by construction: sources always reference earlier registers.
        prop_assert!(p.validate(num_inputs).is_ok(), "generator produced an invalid program");
        let text = p.encode();
        let inputs: Vec<TensorData> =
            (0..num_inputs).map(|k| tensor_f32(n, seed + k as u64)).collect();
        let refs: Vec<&TensorData> = inputs.iter().collect();
        let ctx = format!("chain {text} n={n}");
        let tiled = tiled_vs_interpreted(&text, &refs, &ctx);
        // The standalone interpreter entry point is the same reference.
        let direct = p.eval(&refs).unwrap();
        prop_assert_eq!(bits32(&tiled), bits32(&direct), "chain {} n={}", text, n);
    }
}

/// The tiled executor parallelizes over fixed tile boundaries, so the
/// result is bit-identical at every thread count — including lengths that
/// leave partial tiles and partial lanes.
#[test]
fn tiled_execution_is_thread_count_invariant() {
    let text = "in:0;in:1;b:mul:0:1;u:tanh:2;b:add:3:1;u:sigmoid:4;b:sub:5:0;\
                u:exp:6;b:minimum:7:1;u:sqrt:3;b:add:8:9|10";
    for n in [1usize, 9, 4097, 100_003] {
        let a = tensor_f32(n, 21);
        let b = tensor_f32(n, 22);
        let base = with_threads(1, || tiled_vs_interpreted(text, &[&a, &b], "threads=1"));
        for threads in [2usize, 3, 5, 8] {
            let got =
                with_threads(threads, || program::compiled(text).unwrap().eval(&[&a, &b]).unwrap());
            assert_eq!(
                bits32(&base),
                bits32(&got),
                "fused-tiled must be bit-identical at n={n} threads={threads}"
            );
        }
    }
}

/// Non-f32 dtypes and mixed shapes don't qualify for the tile executor:
/// `CompiledProgram::eval` must fall back to the generic per-instruction
/// path and still match direct eager evaluation (broadcast included).
#[test]
fn mixed_dtype_and_shape_take_generic_fallback() {
    let text = "in:0;in:1;b:add:0:1;u:tanh:2|3";
    let compiled = program::compiled(text).unwrap();

    // f64 operands: exact same arithmetic as the eager kernels.
    let a64 = TensorData::from_vec(
        (0..100).map(|i| i as f64 * 0.25 - 12.0).collect(),
        Shape::from([100]),
    )
    .unwrap();
    let b64 = TensorData::from_vec(
        (0..100).map(|i| 3.0 - i as f64 * 0.125).collect(),
        Shape::from([100]),
    )
    .unwrap();
    let got = compiled.eval(&[&a64, &b64]).unwrap();
    assert_eq!(got.dtype(), DType::F64);
    let want = unary(&binary(&a64, &b64, BinaryOp::Add).unwrap(), UnaryOp::Tanh).unwrap();
    assert!(want.all_close(&got, 0.0, 0.0), "f64 fallback must match eager exactly");

    // Mixed shapes: broadcast goes through the generic path.
    let col = TensorData::from_vec(f32s(6, 31), Shape::from([6, 1])).unwrap();
    let row = TensorData::from_vec(f32s(5, 32), Shape::from([1, 5])).unwrap();
    let got = compiled.eval(&[&col, &row]).unwrap();
    assert_eq!(got.shape().dims(), &[6, 5]);
    let want = unary(&binary(&col, &row, BinaryOp::Add).unwrap(), UnaryOp::Tanh).unwrap();
    assert_eq!(bits32(&want), bits32(&got), "broadcast fallback must match eager bitwise");
}

/// The compile cache is keyed on the encoded text: repeated lookups hand
/// back the same `Arc` (no re-parse, no re-plan), distinct programs get
/// distinct entries, and garbage never poisons the cache.
#[test]
fn compile_cache_deduplicates_by_text() {
    let a = program::compiled("in:0;u:relu:0;u:neg:1|2").unwrap();
    let b = program::compiled("in:0;u:relu:0;u:neg:1|2").unwrap();
    assert!(std::sync::Arc::ptr_eq(&a, &b), "same text must share one compiled program");
    let c = program::compiled("in:0;u:neg:0;u:relu:1|2").unwrap();
    assert!(!std::sync::Arc::ptr_eq(&a, &c), "different text must not share");
    assert!(program::compiled("in:0;u:nosuch:0|1").is_err());
    assert!(program::compiled("in:0;u:relu:0;u:neg:1|2").is_ok(), "errors must not poison");
}
