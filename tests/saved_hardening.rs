//! SavedFunction load/call hardening: `import_from_value` must survive
//! systematically mutated bundles (deleted fields, type swaps, negative
//! dims, truncated JSON) without panicking, and `LoadedFunction::call` must
//! reject malformed requests with typed errors instead of unwinding deep in
//! the executor.

use tf_eager::encode::Value;
use tf_eager::prelude::*;
use tf_eager::state::saved::{self, SavedError};
use tf_eager::{OpError, RuntimeError, TensorError};

/// A representative bundle: entry + nested callee, a by-value capture, and
/// a variable, so every importer code path sees mutations. Names are
/// uniqued per call so parallel tests don't race on the function library.
fn bundle() -> Value {
    static N: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let v = Variable::new(TensorData::scalar(2.0f32));
    let k = api::constant(vec![3.0f32, 4.0], [2]).unwrap();
    let inner = function1(&format!("fuzz_inner_{n}"), api::square);
    let f = {
        let v = v.clone();
        let k = k.clone();
        let inner = inner.clone();
        function1(&format!("fuzz_outer_{n}"), move |x| {
            let scaled = api::mul(x, &k)?;
            let squared = inner.call_tensors(&[&scaled])?.remove(0);
            api::mul(&squared, &v.read()?)
        })
    };
    let probe = api::constant(vec![1.0f32, 2.0], [2]).unwrap();
    let conc = f.concrete_for(&[Arg::from(&probe)]).unwrap();
    saved::export_to_value(&conc).unwrap()
}

/// Every (path, mutated_value) pair obtained by replacing or deleting one
/// node of the JSON tree.
fn mutations(v: &Value) -> Vec<(String, Value)> {
    let replacements = [Value::Null, Value::Int(-1), Value::str("bogus"), Value::Array(vec![])];
    let mut out = Vec::new();
    collect_paths(v, String::new(), &mut out);
    let mut result = Vec::new();
    for path in out {
        for r in &replacements {
            let mut m = v.clone();
            if set_at(&mut m, &path, Some(r.clone())) {
                result.push((format!("{path} := {r:?}"), m));
            }
        }
        let mut m = v.clone();
        if set_at(&mut m, &path, None) {
            result.push((format!("delete {path}"), m));
        }
    }
    result
}

fn collect_paths(v: &Value, prefix: String, out: &mut Vec<String>) {
    out.push(prefix.clone());
    match v {
        Value::Object(map) => {
            for (k, child) in map {
                let p = if prefix.is_empty() { format!("/{k}") } else { format!("{prefix}/{k}") };
                collect_paths(child, p, out);
            }
        }
        Value::Array(items) => {
            // Mutating the first element exercises per-element decode paths
            // without exploding the cross product.
            if let Some(first) = items.first() {
                collect_paths(first, format!("{prefix}/0"), out);
            }
        }
        _ => {}
    }
}

/// Replace (`Some`) or delete (`None`) the node at `path`. Returns false if
/// the path can't be resolved (e.g. deleting an array element is modeled as
/// replacement-only).
fn set_at(v: &mut Value, path: &str, replacement: Option<Value>) -> bool {
    if path.is_empty() {
        return match replacement {
            Some(r) => {
                *v = r;
                true
            }
            None => false,
        };
    }
    let (head, rest) = match path[1..].split_once('/') {
        Some((h, r)) => (h, format!("/{r}")),
        None => (&path[1..], String::new()),
    };
    match v {
        Value::Object(map) => {
            if rest.is_empty() && replacement.is_none() {
                return map.remove(head).is_some();
            }
            match map.get_mut(head) {
                Some(child) => set_at(child, &rest, replacement),
                None => false,
            }
        }
        Value::Array(items) => {
            let idx: usize = match head.parse() {
                Ok(i) => i,
                Err(_) => return false,
            };
            match items.get_mut(idx) {
                Some(child) if !(rest.is_empty() && replacement.is_none()) => {
                    set_at(child, &rest, replacement)
                }
                _ => false,
            }
        }
        _ => false,
    }
}

/// The importer must return `Ok` or a typed `SavedError` for every one-node
/// mutation of a valid bundle — the test fails by panicking if any mutation
/// unwinds instead.
#[test]
fn importer_survives_single_node_mutations() {
    let b = bundle();
    let muts = mutations(&b);
    assert!(muts.len() > 100, "expected a broad mutation set, got {}", muts.len());
    let mut rejected = 0usize;
    for (desc, m) in muts {
        match saved::import_from_value(&m) {
            Ok(loaded) => {
                // Survivable mutation: the loaded function must still be
                // callable (or cleanly refuse).
                let x = api::constant(vec![1.0f32, 2.0], [2]).unwrap();
                let _ = loaded.call(&[&x]);
            }
            Err(_) => rejected += 1,
        }
        let _ = desc;
    }
    assert!(rejected > 0, "mutations should trip the validators");
}

/// Truncating the serialized text at every prefix length must never panic:
/// either the parse fails or the import returns a typed error.
#[test]
fn importer_survives_truncation() {
    let text = bundle().to_json();
    let step = (text.len() / 200).max(1);
    for end in (0..text.len()).step_by(step) {
        let prefix = &text[..end];
        if let Ok(v) = Value::parse(prefix) {
            let _ = saved::import_from_value(&v);
        }
    }
}

/// Targeted malformed bundles hit specific typed variants.
#[test]
fn importer_typed_errors() {
    // Not a bundle at all.
    assert!(matches!(saved::import_from_value(&Value::Null), Err(SavedError::Format)));
    let b = bundle();
    // Wrong format tag.
    let mut m = b.clone();
    assert!(set_at(&mut m, "/format", Some(Value::str("tfe-saved-function-v999"))));
    assert!(matches!(saved::import_from_value(&m), Err(SavedError::Format)));
    // Missing field.
    let mut m = b.clone();
    assert!(set_at(&mut m, "/captures", None));
    assert!(matches!(saved::import_from_value(&m), Err(SavedError::Missing("captures"))));
    // Negative dims inside a serialized tensor (the by-value capture) are a
    // decode error, not a shape-overflow panic.
    let mut m = b.clone();
    assert!(set_at(&mut m, "/captures/0/shape", Some(Value::Array(vec![Value::Int(-2)]))));
    assert!(matches!(saved::import_from_value(&m), Err(SavedError::Decode(_))));
    // Huge dims must not overflow the element count.
    let mut m = b.clone();
    let huge = Value::Array(vec![Value::Int(4611686018427387904), Value::Int(8)]);
    assert!(set_at(&mut m, "/captures/0/shape", Some(huge)));
    assert!(saved::import_from_value(&m).is_err());
    // A bundle-relative variable id with no matching definition.
    let mut m = b.clone();
    assert!(set_at(&mut m, "/variables/0/id", Some(Value::Int(424242))));
    assert!(matches!(saved::import_from_value(&m), Err(SavedError::UnknownVariable(_))));
    // Dropping a capture trips the arity check against the entry signature.
    let mut m = b.clone();
    assert!(set_at(&mut m, "/captures", Some(Value::Array(vec![]))));
    assert!(matches!(saved::import_from_value(&m), Err(SavedError::CaptureArity { got: 0, .. })));
}

/// `LoadedFunction::call` validates arity, dtype, and shape up front with
/// typed errors.
#[test]
fn loaded_call_rejects_malformed_requests() {
    let loaded = saved::import_from_value(&bundle()).unwrap();
    assert_eq!(loaded.num_args(), 1);
    let good = api::constant(vec![1.0f32, 2.0], [2]).unwrap();
    assert!(loaded.call(&[&good]).is_ok());

    // Wrong arity.
    assert!(matches!(loaded.call(&[]), Err(RuntimeError::Op(OpError::Arity { got: 0, .. }))));
    assert!(matches!(
        loaded.call(&[&good, &good]),
        Err(RuntimeError::Op(OpError::Arity { got: 2, .. }))
    ));
    // Wrong dtype.
    let f64_arg = api::constant(vec![1.0f64, 2.0], [2]).unwrap();
    assert!(matches!(
        loaded.call(&[&f64_arg]),
        Err(RuntimeError::Tensor(TensorError::DTypeMismatch { .. }))
    ));
    // Wrong shape.
    let wide = api::constant(vec![1.0f32, 2.0, 3.0], [3]).unwrap();
    assert!(matches!(
        loaded.call(&[&wide]),
        Err(RuntimeError::Tensor(TensorError::ShapeMismatch { .. }))
    ));
}
