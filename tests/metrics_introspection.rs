//! The always-on metrics registry and the retrace diagnostician
//! (DESIGN.md §11): every binding-time change must produce the matching
//! human-readable cause, identical signatures must never report a retrace,
//! and the Prometheus export must stay well-formed and monotone.

use tf_eager::prelude::*;
use tf_eager::{api, TensorData};
use tf_eager::{metrics, RetraceCause};

/// A probe function that accepts any mix of tensor / static / variable
/// arguments, so one closure serves every table row.
fn probe(name: &str) -> Func {
    function(name, |args| {
        let mut outs = Vec::new();
        for a in args {
            if let Some(t) = a.as_tensor() {
                outs.push(api::relu(t)?);
            }
            if let Some(v) = a.as_variable() {
                outs.push(v.read()?);
            }
        }
        if outs.is_empty() {
            outs.push(api::scalar(1.0f64));
        }
        Ok(outs)
    })
}

#[test]
fn each_binding_time_change_produces_the_matching_cause() {
    tf_eager::init();
    let v1 = Variable::new(TensorData::scalar(1.0f64));
    let v2 = Variable::new(TensorData::scalar(2.0f64));
    let t = || Arg::from(&api::zeros(DType::F64, [2]));

    // One row per binding-time dimension of the cache key (§4.6): the
    // first call traces, the second must retrace for exactly the stated
    // reason, rendered exactly as stated.
    let table: Vec<(&str, Vec<Arg>, Vec<Arg>, String)> = vec![
        (
            "shape",
            vec![Arg::from(&api::zeros(DType::F64, [2, 3]))],
            vec![Arg::from(&api::zeros(DType::F64, [4, 3]))],
            "arg 0: shape [2,3] → [4,3]".to_string(),
        ),
        (
            "rank",
            vec![Arg::from(&api::zeros(DType::F64, [6]))],
            vec![Arg::from(&api::zeros(DType::F64, [2, 3]))],
            "arg 0: rank 1 → 2 (shape [6] → [2,3])".to_string(),
        ),
        (
            "dtype",
            vec![Arg::from(&api::zeros(DType::F32, [2]))],
            vec![Arg::from(&api::zeros(DType::F64, [2]))],
            "arg 0: dtype float32 → float64".to_string(),
        ),
        (
            "static_bool",
            vec![t(), Arg::from(true)],
            vec![t(), Arg::from(false)],
            "arg 1: static bool true → false".to_string(),
        ),
        (
            "static_int",
            vec![Arg::from(3i64)],
            vec![Arg::from(4i64)],
            "arg 0: static int 3 → 4".to_string(),
        ),
        (
            "static_str",
            vec![Arg::from("mean")],
            vec![Arg::from("sum")],
            "arg 0: static str \"mean\" → \"sum\"".to_string(),
        ),
        (
            "variable_identity",
            vec![Arg::from(&v1)],
            vec![Arg::from(&v2)],
            format!("arg 0: variable identity id {} → id {}", v1.id(), v2.id()),
        ),
        ("kind", vec![Arg::from(7i64)], vec![t()], "arg 0: int 7 → tensor float64[2]".to_string()),
        ("arg_count", vec![t()], vec![t(), t()], "argument count 1 → 2".to_string()),
    ];

    for (name, before, after, expected) in table {
        let f = probe(&format!("cause_{name}"));
        f.call(&before).unwrap_or_else(|e| panic!("{name}: first call failed: {e}"));
        let s = f.stats();
        assert_eq!((s.misses, s.retraces, s.hits), (1, 0, 0), "{name}: after first call");
        assert!(f.retraces().is_empty(), "{name}: initial trace is not a retrace");

        f.call(&after).unwrap_or_else(|e| panic!("{name}: second call failed: {e}"));
        let s = f.stats();
        assert_eq!((s.misses, s.retraces), (2, 1), "{name}: after signature change");
        assert_eq!(s.concrete_functions, 2, "{name}");

        let events = f.retraces();
        assert_eq!(events.len(), 1, "{name}");
        let rendered: Vec<String> = events[0].causes.iter().map(ToString::to_string).collect();
        assert_eq!(rendered, vec![expected.clone()], "{name}");
        assert!(
            f.retrace_report().contains(&expected),
            "{name}: report missing cause:\n{}",
            f.retrace_report()
        );
    }
}

#[test]
fn identical_signatures_never_report_a_retrace() {
    tf_eager::init();
    let f = probe("no_retrace");
    let args = vec![Arg::from(&api::ones(DType::F64, [3, 3])), Arg::from(true)];
    for _ in 0..5 {
        // Fresh tensors each round: same signature, different values.
        let args2 = vec![Arg::from(&api::zeros(DType::F64, [3, 3])), Arg::from(true)];
        f.call(&args).unwrap();
        f.call(&args2).unwrap();
    }
    let s = f.stats();
    assert_eq!(s.retraces, 0, "same-signature calls retraced");
    assert_eq!(s.misses, 1);
    assert_eq!(s.hits, 9);
    assert_eq!(s.concrete_functions, 1);
    assert!(f.retraces().is_empty());
    assert!(f.retrace_report().contains("no retraces recorded"));
    assert!((s.hit_rate() - 0.9).abs() < 1e-12);
}

#[test]
fn mutating_a_variable_does_not_retrace_but_swapping_it_does() {
    tf_eager::init();
    let a = Variable::new(TensorData::scalar(1.0f64));
    let b = Variable::new(TensorData::scalar(10.0f64));
    let f = probe("var_identity");
    assert_eq!(f.call(&[Arg::from(&a)]).unwrap()[0].scalar_f64().unwrap(), 1.0);
    // Mutation: same identity, new value — cache hit, value visible.
    a.assign(&api::scalar(5.0f64)).unwrap();
    assert_eq!(f.call(&[Arg::from(&a)]).unwrap()[0].scalar_f64().unwrap(), 5.0);
    assert_eq!(f.stats().retraces, 0);
    // Swap: different variable object — retrace with an identity cause.
    assert_eq!(f.call(&[Arg::from(&b)]).unwrap()[0].scalar_f64().unwrap(), 10.0);
    assert_eq!(f.stats().retraces, 1);
    assert!(matches!(f.retraces()[0].causes[0], RetraceCause::VariableIdentity { .. }));
}

#[test]
fn closest_cached_key_wins_the_diff() {
    tf_eager::init();
    // Cache f64[2,3] and f32[9]; then call with f64[2,4]. The closest key
    // is f64[2,3] (one shape cause); the diagnostician must not blame
    // f32[9], which would yield two causes (dtype and rank).
    let f = probe("closest");
    f.call(&[Arg::from(&api::zeros(DType::F64, [2, 3]))]).unwrap();
    f.call(&[Arg::from(&api::zeros(DType::F32, [9]))]).unwrap();
    f.call(&[Arg::from(&api::zeros(DType::F64, [2, 4]))]).unwrap();
    let events = f.retraces();
    let last = events.last().unwrap();
    assert_eq!(last.causes.len(), 1, "picked a non-closest key: {last}");
    assert_eq!(last.causes[0].to_string(), "arg 0: shape [2,3] → [2,4]");
}

#[test]
fn input_signature_funcs_keep_their_own_metric_series() {
    tf_eager::init();
    let f = function1("sig_series", |x| api::reduce_sum(x, &[1], false))
        .with_input_signature(vec![TensorSpec::new(DType::F32, vec![None, Some(3)])]);
    // Dynamic batch sizes share one concrete function: no retraces ever.
    f.call1(&api::ones(DType::F32, [2, 3])).unwrap();
    f.call1(&api::ones(DType::F32, [7, 3])).unwrap();
    f.call1(&api::ones(DType::F32, [11, 3])).unwrap();
    let s = f.stats();
    assert_eq!(s.misses, 1);
    assert_eq!(s.hits, 2);
    assert_eq!(s.retraces, 0);
    assert_eq!(s.concrete_functions, 1);
}

#[test]
fn trace_cache_metrics_flow_into_the_registry() {
    tf_eager::init();
    let before = metrics::snapshot();
    let f = probe("registry_flow");
    f.call(&[Arg::from(&api::zeros(DType::F64, [2]))]).unwrap();
    f.call(&[Arg::from(&api::zeros(DType::F64, [2]))]).unwrap();
    f.call(&[Arg::from(&api::zeros(DType::F64, [3]))]).unwrap();
    let after = metrics::snapshot();
    let delta = |name: &str| {
        after.counter_value(name).unwrap_or(0) - before.counter_value(name).unwrap_or(0)
    };
    assert!(delta("tfe_trace_cache_hits_total") >= 1);
    assert!(delta("tfe_trace_cache_misses_total") >= 2);
    assert!(delta("tfe_trace_cache_retraces_total") >= 1);
    // The per-func series carries this Func's exact numbers (its label is
    // unique thanks to the anonymous-name counter).
    let label = f.name().to_string();
    assert_eq!(after.counter_with("tfe_func_cache_hits_total", &label), Some(1));
    assert_eq!(after.counter_with("tfe_func_cache_misses_total", &label), Some(2));
    assert_eq!(after.counter_with("tfe_func_retraces_total", &label), Some(1));
}

#[test]
fn eager_dispatch_and_kernel_metrics_are_always_on() {
    tf_eager::init();
    let before = metrics::snapshot();
    let a = api::constant(vec![1.0f32; 256], [16, 16]).unwrap();
    let b = api::matmul(&a, &a).unwrap();
    let c = api::relu(&b).unwrap();
    let _ = api::reduce_sum(&c, &[], false).unwrap();
    let after = metrics::snapshot();
    let ops_before = before.counter_value("tfe_eager_ops_dispatched_total").unwrap_or(0);
    let ops_after = after.counter_value("tfe_eager_ops_dispatched_total").unwrap();
    assert!(ops_after >= ops_before + 3, "{ops_before} -> {ops_after}");
    let h = after.histogram_value("tfe_kernel_time_ns").expect("kernel histogram registered");
    assert!(h.count > 0);
    assert!(h.sum > 0);
    // Buckets are cumulative-consistent: total count equals bucket sum.
    assert_eq!(h.count, h.counts.iter().sum::<u64>());
}

#[test]
fn prometheus_export_is_well_formed_and_monotone() {
    tf_eager::init();
    let _ = api::relu(&api::ones(DType::F32, [8])).unwrap();
    // Trace something so the cache families are registered too.
    let f = probe("prom_probe");
    f.call(&[Arg::from(&api::ones(DType::F32, [4]))]).unwrap();
    let s1 = metrics::snapshot();
    let text = s1.to_prometheus_text();
    // Every exposed family carries HELP and TYPE headers. (Only families
    // something has actually probed are registered, so check ones the
    // eager dispatch above guarantees.)
    for fam in ["tfe_eager_ops_dispatched_total", "tfe_trace_cache_misses_total"] {
        assert!(text.contains(&format!("# HELP {fam} ")), "missing HELP for {fam}");
        assert!(text.contains(&format!("# TYPE {fam} counter")), "missing TYPE for {fam}");
    }
    // Histograms expose cumulative buckets with the +Inf terminator.
    assert!(text.contains("tfe_kernel_time_ns_bucket{le=\"+Inf\"}"));
    assert!(text.contains("tfe_kernel_time_ns_sum"));
    assert!(text.contains("tfe_kernel_time_ns_count"));
    // A second scrape after more work never goes backwards.
    let _ = api::relu(&api::ones(DType::F32, [8])).unwrap();
    let s2 = metrics::snapshot();
    for fam in ["tfe_eager_ops_dispatched_total", "tfe_trace_cache_misses_total"] {
        let a = s1.counter_value(fam).unwrap_or(0);
        let b = s2.counter_value(fam).unwrap_or(0);
        assert!(b >= a, "{fam} went backwards: {a} -> {b}");
    }
}

#[test]
fn traced_graphs_export_graphviz_dot() {
    tf_eager::init();
    let f = function1("dot_export", |x| {
        let y = api::mul(x, x)?;
        api::reduce_sum(&y, &[], false)
    });
    let c = f.concrete_for(&[Arg::from(&api::zeros(DType::F64, [4]))]).unwrap();
    let dot = c.raw.to_dot();
    assert!(dot.starts_with("digraph"), "not a dot document:\n{dot}");
    assert!(dot.contains("mul"), "missing op node:\n{dot}");
    assert!(dot.contains("placeholder"), "missing placeholder node:\n{dot}");
    assert!(dot.contains("->"), "missing edges:\n{dot}");
    assert!(dot.trim_end().ends_with('}'), "unterminated dot document");
}

#[test]
fn live_tensor_gauges_track_allocation_lifetime() {
    tf_eager::init();
    let live_bytes = || metrics::snapshot().gauge_value("tfe_live_tensor_bytes").unwrap_or(0);
    // The gauges are process-wide and other tests in this binary run
    // concurrently, so allocate far more (8 MiB) than their churn and
    // assert with a generous margin rather than exact deltas.
    const BIG: i64 = 8 * 1024 * 1024;
    const MARGIN: i64 = BIG / 2;
    let b0 = live_bytes();
    let big = api::zeros(DType::F64, [(BIG / 8) as usize]);
    let b1 = live_bytes();
    assert!(b1 >= b0 + BIG - MARGIN, "live bytes did not rise: {b0} -> {b1}");
    drop(big);
    let b2 = live_bytes();
    assert!(b2 <= b1 - BIG + MARGIN, "live bytes did not fall on drop: {b1} -> {b2}");
    // The peak gauge high-water mark includes the big allocation.
    let peak = metrics::snapshot().gauge_value("tfe_live_tensor_bytes_peak").unwrap_or(0);
    assert!(peak >= b1, "peak {peak} below observed live {b1}");
}
