//! End-to-end training integration tests: eager and staged training are
//! numerically identical step for step, training actually learns, and
//! optimizer/iterator state survives checkpoints mid-run.

use std::sync::Arc;
use tf_eager::nn::data::SyntheticRegression;
use tf_eager::nn::layers::{Layer, Sequential};
use tf_eager::nn::losses::mean_squared_error;
use tf_eager::nn::{mlp, optimizer, Activation, Initializer, Momentum, Optimizer, Sgd};
use tf_eager::prelude::*;
use tf_eager::state::TrackableGroup;
use tf_eager::RuntimeError;

fn fresh_model(seed: u64) -> Arc<Sequential> {
    Arc::new(mlp(4, &[16, 16], 1, Activation::Tanh, &mut Initializer::seeded(seed)))
}

fn eager_step(
    model: &Sequential,
    opt: &dyn Optimizer,
    vars: &[Variable],
    x: &Tensor,
    y: &Tensor,
) -> Result<f64, RuntimeError> {
    let tape = GradientTape::new();
    let pred = model.call(x, true)?;
    let loss = mean_squared_error(&pred, y)?;
    let out = loss.scalar_f64()?;
    optimizer::minimize(opt, tape, &loss, vars)?;
    Ok(out)
}

/// The headline claim behind Figure 3's code sharing: the *same* model
/// code trained eagerly and staged produces the same loss trajectory.
#[test]
fn eager_and_staged_training_trajectories_match() {
    tf_eager::init();
    let data = SyntheticRegression::new(1, 4);

    // Two identical models (same init seed, separate variables).
    let m_eager = fresh_model(5);
    let m_staged = fresh_model(5);
    let o_eager = Sgd::new(0.05);
    let o_staged = Arc::new(Sgd::new(0.05));
    let v_eager = m_eager.variables();
    let v_staged = m_staged.variables();

    let staged_step = {
        let model = m_staged.clone();
        let opt = o_staged.clone();
        let vars = v_staged.clone();
        function("trajectory_step", move |args| {
            let x = args[0].as_tensor().expect("x");
            let y = args[1].as_tensor().expect("y");
            let tape = GradientTape::new();
            let pred = model.call(x, true)?;
            let loss = mean_squared_error(&pred, y)?;
            optimizer::minimize(opt.as_ref(), tape, &loss, &vars)?;
            Ok(vec![loss])
        })
    };

    for step in 0..25 {
        let (x, y) = data.batch(step, 32).unwrap();
        let le = eager_step(m_eager.as_ref(), &o_eager, &v_eager, &x, &y).unwrap();
        let ls = staged_step.call_tensors(&[&x, &y]).unwrap()[0].scalar_f64().unwrap();
        assert!((le - ls).abs() < 1e-6, "step {step}: eager loss {le} != staged loss {ls}");
    }
    // Weights themselves agree at the end.
    for (ve, vs) in v_eager.iter().zip(&v_staged) {
        assert!(
            ve.peek().all_close(&vs.peek(), 1e-5, 1e-6),
            "weights diverged between eager and staged training"
        );
    }
    assert_eq!(staged_step.num_concrete(), 1);
}

#[test]
fn momentum_training_learns_staged() {
    tf_eager::init();
    let data = SyntheticRegression::new(3, 4);
    let model = fresh_model(9);
    let opt = Arc::new(Momentum::new(0.02, 0.9));
    let vars = model.variables();
    let step = {
        let model = model.clone();
        let opt = opt.clone();
        let vars = vars.clone();
        function("momentum_step", move |args| {
            let x = args[0].as_tensor().expect("x");
            let y = args[1].as_tensor().expect("y");
            let tape = GradientTape::new();
            let pred = model.call(x, true)?;
            let loss = mean_squared_error(&pred, y)?;
            optimizer::minimize(opt.as_ref(), tape, &loss, &vars)?;
            Ok(vec![loss])
        })
    };
    let (x, y) = data.batch(0, 64).unwrap();
    let first = step.call_tensors(&[&x, &y]).unwrap()[0].scalar_f64().unwrap();
    let mut last = first;
    for _ in 0..40 {
        last = step.call_tensors(&[&x, &y]).unwrap()[0].scalar_f64().unwrap();
    }
    assert!(last < first * 0.5, "momentum training stalled: {first} -> {last}");
}

/// Checkpoint in the middle of training, keep training, restore, retrain:
/// the two continuations must be identical (optimizer slots included).
#[test]
fn mid_training_checkpoint_resumes_exactly() {
    tf_eager::init();
    let data = SyntheticRegression::new(7, 4);
    let model = fresh_model(11);
    let opt = Arc::new(Momentum::new(0.05, 0.9));
    let vars = model.variables();

    // A few steps to populate optimizer slots.
    for step in 0..5 {
        let (x, y) = data.batch(step, 32).unwrap();
        eager_step(model.as_ref(), opt.as_ref(), &vars, &x, &y).unwrap();
    }
    let root = TrackableGroup::new()
        .with_node("model", model.trackable())
        .with_node("optimizer", opt.trackable());
    let snapshot = tf_eager::state::checkpoint::save_to_value(&root);

    // Continuation A.
    let mut losses_a = Vec::new();
    for step in 5..12 {
        let (x, y) = data.batch(step, 32).unwrap();
        losses_a.push(eager_step(model.as_ref(), opt.as_ref(), &vars, &x, &y).unwrap());
    }
    // Rewind and run continuation B.
    let status = tf_eager::state::checkpoint::restore_from_value(&root, &snapshot).unwrap();
    assert!(status.is_complete(), "{status:?}");
    let mut losses_b = Vec::new();
    for step in 5..12 {
        let (x, y) = data.batch(step, 32).unwrap();
        losses_b.push(eager_step(model.as_ref(), opt.as_ref(), &vars, &x, &y).unwrap());
    }
    assert_eq!(losses_a, losses_b, "restore did not rewind optimizer state exactly");
}

/// Trace once, train across many different batch sizes via an input
/// signature with a dynamic batch dimension.
#[test]
fn dynamic_batch_training_single_trace() {
    tf_eager::init();
    let model = fresh_model(13);
    let opt = Arc::new(Sgd::new(0.05));
    let vars = model.variables();
    let step = {
        let model = model.clone();
        let opt = opt.clone();
        let vars = vars.clone();
        function("dyn_batch_step", move |args| {
            let x = args[0].as_tensor().expect("x");
            let y = args[1].as_tensor().expect("y");
            let tape = GradientTape::new();
            let pred = model.call(x, true)?;
            let loss = mean_squared_error(&pred, y)?;
            optimizer::minimize(opt.as_ref(), tape, &loss, &vars)?;
            Ok(vec![loss])
        })
    }
    .with_input_signature(vec![
        TensorSpec::new(DType::F32, vec![None, Some(4)]),
        TensorSpec::new(DType::F32, vec![None, Some(1)]),
    ]);
    let data = SyntheticRegression::new(2, 4);
    for (i, batch) in [8usize, 32, 17, 64, 1].into_iter().enumerate() {
        let (x, y) = data.batch(i as u64, batch).unwrap();
        let loss = step.call_tensors(&[&x, &y]).unwrap()[0].scalar_f64().unwrap();
        assert!(loss.is_finite());
    }
    assert_eq!(step.num_concrete(), 1, "input signature must yield one trace");
}

/// Higher-order optimization: gradient-norm penalty needs a tape inside a
/// tape, end to end through real layers.
#[test]
fn gradient_penalty_double_backward() {
    tf_eager::init();
    let model = fresh_model(17);
    let data = SyntheticRegression::new(4, 4);
    let (x, y) = data.batch(0, 16).unwrap();

    let outer = GradientTape::new();
    let inner = GradientTape::new();
    inner.watch(&x);
    let pred = model.call(&x, true).unwrap();
    let loss = mean_squared_error(&pred, &y).unwrap();
    let input_grad = inner.gradient1(&loss, &x).unwrap();
    // Penalty = mean of squared input gradient — differentiable wrt weights.
    let penalty = api::reduce_mean(&api::square(&input_grad).unwrap(), &[], false).unwrap();
    let vars = model.variables();
    let refs: Vec<&Variable> = vars.iter().collect();
    let grads = outer.gradient_vars(&penalty, &refs).unwrap();
    let got = grads.iter().filter(|g| g.is_some()).count();
    assert!(got >= vars.len() - 1, "only {got}/{} penalty grads", vars.len());
    for g in grads.into_iter().flatten() {
        assert!(g.to_f64_vec().unwrap().iter().all(|v| v.is_finite()));
    }
}
