//! Distribution differential: for a sampled corpus of random graph
//! functions, executing on a 1-worker cluster — over the in-process
//! transport *and* over real TCP — must match local execution **bitwise**.
//! This pins the whole stack: JSON tensor serialization round-trips floats
//! exactly, frames survive the socket, and workers run the same executor
//! as the coordinator.
//!
//! The suite runs under whatever `TFE_ASYNC` is ambient (CI runs it both
//! ways) and additionally checks one explicit `sync_scope`/`async_scope`
//! pair per transport.

mod common;

use common::{fuzz_cases, generate, make_args};
use std::sync::Arc;
use tf_eager::dist::{Cluster, ClusterSpec, RemoteArg, TransportKind};
use tfe_tensor::TensorData;

fn bits(t: &TensorData) -> Vec<u64> {
    t.to_f64_vec().iter().map(|v| v.to_bits()).collect()
}

fn run_local(name: &str, args: &[Arc<TensorData>]) -> Vec<Vec<u64>> {
    let f = tfe_runtime::context::library().get(name).expect("case in library");
    let device = tfe_runtime::context::device_manager().host_cpu();
    let out = tfe_runtime::executor::run_function(
        &f,
        args,
        &device,
        tfe_runtime::ExecMode::SerialPlanned,
    )
    .expect("local execution");
    out.iter().map(|t| bits(t)).collect()
}

fn run_remote(cluster: &Cluster, name: &str, args: &[Arc<TensorData>]) -> Vec<Vec<u64>> {
    let dev = "/job:diff/task:0/device:CPU:0";
    let remote_args: Vec<RemoteArg> =
        args.iter().map(|a| RemoteArg::Local(tf_eager::Tensor::from_data((**a).clone()))).collect();
    let out = cluster.call_function(dev, name, &remote_args).expect("remote execution");
    out.iter().map(|r| bits(&r.fetch().expect("fetch").value().expect("value"))).collect()
}

/// 1-worker TCP == 1-worker in-process == local, bitwise, over the corpus.
#[test]
fn cluster_matches_local_bitwise() {
    tf_eager::init();
    let spec = ClusterSpec::new().with_job("diff", 1).unwrap();
    let in_process = Cluster::start(&spec);
    let tcp = Cluster::start_tcp(&spec).expect("tcp cluster");

    let cases = fuzz_cases(12);
    for seed in 0..cases {
        let (f, shapes) = generate(seed);
        let name = f.name.clone();
        tfe_runtime::context::library().insert(f);
        let args = make_args(seed, &shapes);

        let local = run_local(&name, &args);
        let via_channel = run_remote(&in_process, &name, &args);
        let via_tcp = run_remote(&tcp, &name, &args);

        assert_eq!(local, via_channel, "seed {seed}: in-process != local");
        assert_eq!(local, via_tcp, "seed {seed}: tcp != local");
    }
    in_process.shutdown();
    tcp.shutdown();
}

/// The differential holds regardless of the coordinator's dispatch mode:
/// shipping args and fetching results from inside an `async_scope` yields
/// the same bits as from a forced-sync scope.
#[test]
fn cluster_parity_under_both_dispatch_modes() {
    tf_eager::init();
    let spec = ClusterSpec::new().with_job("diff", 1).unwrap();
    let (f, shapes) = generate(9001);
    let name = f.name.clone();
    tfe_runtime::context::library().insert(f);
    let args = make_args(9001, &shapes);
    let local = tf_eager::sync_scope(|| run_local(&name, &args));

    for kind in [TransportKind::InProcess, TransportKind::Tcp] {
        let cluster =
            Cluster::start_with(&spec, kind, tf_eager::dist::RpcOptions::default()).unwrap();
        let in_sync = tf_eager::sync_scope(|| run_remote(&cluster, &name, &args));
        let in_async = tf_eager::async_scope(|| run_remote(&cluster, &name, &args))
            .expect("async scope drains clean");
        assert_eq!(local, in_sync, "{kind:?} sync");
        assert_eq!(local, in_async, "{kind:?} async");
        cluster.shutdown();
    }
}
