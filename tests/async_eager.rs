//! Asynchronous eager execution (§4.1): per-device dispatch streams,
//! pending tensor handles, and deferred error surfacing.
//!
//! Covers the full deferred-error contract — a kernel failure on a stream
//! is captured in stream order and surfaces, exactly once, at the *next
//! sync point*: a `value()` read of a failed handle, an explicit
//! `tf_eager::sync()`, an `async_scope` exit, a fast-failed enqueue on the
//! poisoned stream, or a checkpoint save. Also: variable read/write
//! ordering on the stream, gradients computed under async dispatch, staged
//! `Func` calls joining the caller's stream, and (the staged-boundary
//! satellite) an eager op failing inside a traced host function surfacing
//! its originating op name in serial, parallel, and async modes.
//!
//! The dispatch streams are per-device process globals, so tests that
//! poison a stream serialize on a file-wide mutex and drain every deferred
//! error before releasing it.

use std::sync::{Mutex, MutexGuard};

use tf_eager::prelude::*;
use tf_eager::state::checkpoint;
use tf_eager::state::TrackableGroup;
use tf_eager::{ExecMode, HostFunc, RuntimeError, TensorData};

/// Serializes the tests in this file: the host CPU's dispatch stream is a
/// process-wide singleton, so a poisoned-stream test must not interleave
/// with a test that syncs.
static STREAM_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    let g = STREAM_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    // A previously *panicked* test may have left unconsumed poison on the
    // process-global streams; start from a clean slate.
    tf_eager::init();
    drain_all_errors();
    g
}

/// Consume every deferred error left on any stream.
fn drain_all_errors() {
    while tf_eager::sync().is_err() {}
}

/// A bounded elementwise chain: x ← tanh(x + x·x), n times.
fn chain(x0: &Tensor, n: usize) -> Result<Tensor, RuntimeError> {
    let mut x = x0.clone();
    for _ in 0..n {
        x = api::tanh(&api::add(&x, &api::mul(&x, &x)?)?)?;
    }
    Ok(x)
}

fn seed_matrix() -> Tensor {
    let x = api::range(DType::F64, -2.0, 0.001, 4096).unwrap();
    api::reshape(&x, &[64, 64]).unwrap()
}

/// An eager `gather` whose constant index is out of range for a 4-element
/// input: validation passes (shapes are fine), the kernel fails — the same
/// fault-injection op the graph-executor differential uses.
fn bad_gather(x: &Tensor, idx: i64) -> Result<Tensor, RuntimeError> {
    let indices = api::constant(vec![idx], [1])?;
    api::gather(x, &indices, 0)
}

fn four_elems() -> Tensor {
    api::constant(vec![0.1f64, 0.2, 0.3, 0.4], [4]).unwrap()
}

/// A kernel that takes a few milliseconds, used to hold the stream busy so
/// ops enqueued behind it are deterministically still queued.
fn slow_op() -> Result<Tensor, RuntimeError> {
    let a = api::ones(DType::F64, [192, 192]);
    let m = api::matmul(&a, &a)?;
    api::reduce_sum(&m, &[], false)
}

#[test]
fn async_scope_matches_sync_bitwise_and_uses_the_stream() {
    let _g = lock();
    tf_eager::init();
    let x0 = seed_matrix();
    // Force a true synchronous baseline even when TFE_ASYNC=1 is ambient.
    let want = tf_eager::sync_scope(|| chain(&x0, 200).unwrap().value().unwrap());

    let before =
        tf_eager::metrics::snapshot().counter_value("tfe_async_ops_enqueued_total").unwrap_or(0);
    let got = tf_eager::async_scope(|| chain(&x0, 200))
        .expect("no deferred errors")
        .expect("chain dispatch")
        .value()
        .unwrap();
    let after =
        tf_eager::metrics::snapshot().counter_value("tfe_async_ops_enqueued_total").unwrap_or(0);

    assert!(want.all_close(&got, 0.0, 0.0), "async result must be bitwise identical");
    assert!(
        after - before >= 600,
        "the 600 chained ops must dispatch via the stream (enqueued delta {})",
        after - before
    );
}

#[test]
fn pending_handles_carry_metadata_before_the_kernel_runs() {
    let _g = lock();
    tf_eager::init();
    let a = api::ones(DType::F64, [128, 128]);
    let mut pending_seen = false;
    tf_eager::async_scope(|| {
        let mut m = a.clone();
        for _ in 0..64 {
            m = api::tanh(&api::matmul(&m, &a).unwrap()).unwrap();
            // Metadata is known at enqueue time, without forcing a sync.
            assert_eq!(m.dtype(), DType::F64);
            assert_eq!(m.shape().unwrap().dims(), &[128, 128]);
            pending_seen |= m.is_pending();
        }
    })
    .unwrap();
    assert!(
        pending_seen,
        "64 chained matmuls must outpace enqueue: some handle must be observed pending"
    );
}

#[test]
fn deferred_error_surfaces_at_value_read_with_op_name() {
    let _g = lock();
    tf_eager::init();
    let x = four_elems();
    let scope = tf_eager::async_scope(|| {
        let bad = bad_gather(&x, 13).expect("enqueue must succeed; the kernel fails later");
        let err = bad.value().expect_err("reading a failed handle must error");
        assert!(
            matches!(&err, RuntimeError::Deferred { op, .. } if op == "gather"),
            "want Deferred{{op: gather}}, got {err:?}"
        );
        assert!(err.to_string().contains("gather index 13 out of range"), "{err}");
    });
    // The read observed the error, so the scope exit is clean.
    scope.expect("error was already surfaced at the value read");
    drain_all_errors();
}

#[test]
fn deferred_error_surfaces_at_scope_exit_when_never_read() {
    let _g = lock();
    tf_eager::init();
    let x = four_elems();
    let err = tf_eager::async_scope(|| {
        let _dropped = bad_gather(&x, 11).expect("enqueue succeeds");
        // Handle dropped without a read: the scope exit must still see it.
    })
    .expect_err("scope exit is a sync point");
    assert!(
        matches!(&err, RuntimeError::Deferred { op, .. } if op == "gather"),
        "want Deferred{{op: gather}}, got {err:?}"
    );
    assert!(err.to_string().contains("gather index 11 out of range"), "{err}");
    drain_all_errors();
}

#[test]
fn deferred_error_surfaces_at_explicit_sync() {
    let _g = lock();
    tf_eager::init();
    let x = four_elems();
    tf_eager::async_scope(|| {
        let _dropped = bad_gather(&x, 12).expect("enqueue succeeds");
        let err = tf_eager::sync().expect_err("sync must surface the deferred error");
        assert!(err.to_string().contains("gather index 12 out of range"), "{err}");
        // Consumed exactly once: the stream is clean again.
        tf_eager::sync().expect("second sync is clean");
        let ok = chain(&four_elems(), 3).unwrap().value().unwrap();
        assert_eq!(ok.shape().dims(), &[4]);
    })
    .expect("all errors consumed inside the scope");
}

#[test]
fn poisoned_stream_fails_the_next_enqueue_fast_then_recovers() {
    let _g = lock();
    tf_eager::init();
    let x = four_elems();
    tf_eager::async_scope(|| {
        let bad = bad_gather(&x, 10).expect("enqueue succeeds");
        // Wait for the kernel to fail (resolving the handle) without
        // consuming the poison — is_pending is not a sync point.
        while bad.is_pending() {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let err = api::add(&x, &x).expect_err("a poisoned stream fails enqueues fast");
        assert!(err.to_string().contains("gather index 10 out of range"), "{err}");
        // The fast-fail consumed the poison: the stream works again.
        let ok = api::add(&x, &x).expect("stream recovered");
        let want = api::constant(vec![0.2f64, 0.4, 0.6, 0.8], [4]).unwrap();
        assert!(ok.value().unwrap().all_close(&want.value().unwrap(), 0.0, 0.0));
    })
    .expect("poison was consumed by the fast-failed enqueue");
}

#[test]
fn ops_queued_behind_a_failure_are_failed_with_the_originating_op() {
    let _g = lock();
    tf_eager::init();
    let x = four_elems();
    tf_eager::async_scope(|| {
        // Head op holds the stream busy so everything below is enqueued
        // before the fault resolves.
        let _slow = slow_op().unwrap();
        let bad = bad_gather(&x, 13).expect("enqueue succeeds");
        let dep = api::add(&bad, &bad).expect("enqueued before the fault fires");
        let dep2 = api::mul(&dep, &x).expect("enqueued before the fault fires");
        for t in [&dep, &dep2] {
            let err = t.value().expect_err("downstream of the fault must fail");
            assert!(
                matches!(&err, RuntimeError::Deferred { op, .. } if op == "gather"),
                "skipped ops must report the *originating* op, got {err:?}"
            );
        }
    })
    .expect("errors observed via the dependent reads");
    drain_all_errors();
}

#[test]
fn first_error_wins_in_stream_order() {
    let _g = lock();
    tf_eager::init();
    let x = four_elems();
    let err = tf_eager::async_scope(|| {
        let _slow = slow_op().unwrap();
        let _first = bad_gather(&x, 20).expect("enqueue succeeds");
        let _second = bad_gather(&x, 21).expect("enqueued before the first fault fires");
    })
    .expect_err("scope exit surfaces the deferred error");
    assert!(
        err.to_string().contains("gather index 20 out of range"),
        "stream order decides which error wins, got: {err}"
    );
    drain_all_errors();
}

/// Dropping every handle of a failed op must not lose the error — the
/// poison stays on the stream until a sync point observes it. This is the
/// teardown guarantee: nothing in between ever silently swallows it.
#[test]
fn dropped_failed_handles_still_surface_at_the_next_sync() {
    let _g = lock();
    tf_eager::init();
    let x = four_elems();
    tf_eager::async_scope(|| {
        {
            let _slow = slow_op().unwrap();
            let _dropped = bad_gather(&x, 15).expect("enqueue succeeds");
            // Both handles die here without ever being read.
        }
        let err = tf_eager::sync().expect_err("the error must survive handle drops");
        assert!(err.to_string().contains("gather index 15 out of range"), "{err}");
    })
    .expect("consumed inside the scope");
}

#[test]
fn variable_reads_and_writes_keep_stream_order() {
    let _g = lock();
    tf_eager::init();
    let v = Variable::new(TensorData::scalar(0.0f64));
    let one = api::scalar(1.0f64);
    tf_eager::async_scope(|| {
        for _ in 0..50 {
            v.assign_add(&one).unwrap();
        }
        let mid = v.read().unwrap();
        for _ in 0..50 {
            v.assign_add(&one).unwrap();
        }
        // The read was enqueued between the two assign bursts: it must see
        // exactly the first 50, no matter when the value is forced.
        assert_eq!(mid.value().unwrap().scalar_f64().unwrap(), 50.0);
    })
    .unwrap();
    // peek() quiesces the streams: all 100 assigns have landed.
    assert_eq!(v.peek().scalar_f64().unwrap(), 100.0);
}

#[test]
fn checkpoint_save_is_a_sync_point_and_fails_on_a_poisoned_stream() {
    let _g = lock();
    tf_eager::init();
    let v = Variable::new(TensorData::scalar(1.0f64));
    let root = TrackableGroup::new().with_variable("v", &v);
    let one = api::scalar(1.0f64);

    // Healthy: the snapshot reflects every in-flight assign.
    tf_eager::async_scope(|| {
        for _ in 0..20 {
            v.assign_add(&one).unwrap();
        }
        let snap = checkpoint::save_to_value(&root);
        let dir = std::env::temp_dir().join("tfe_async_ckpt_test.json");
        checkpoint::save(&root, &dir).expect("healthy save");
        let _ = std::fs::remove_file(&dir);
        // Restore is a sync point too, and must round-trip the value.
        for _ in 0..5 {
            v.assign_add(&one).unwrap();
        }
        checkpoint::restore_from_value(&root, &snap).expect("restore");
        assert_eq!(v.peek().scalar_f64().unwrap(), 21.0);
    })
    .unwrap();

    // Poisoned: the save must fail with the deferred error, not write
    // state produced before the failure.
    let x = four_elems();
    tf_eager::async_scope(|| {
        let _dropped = bad_gather(&x, 17).expect("enqueue succeeds");
        let path = std::env::temp_dir().join("tfe_async_ckpt_poisoned.json");
        let err = checkpoint::save(&root, &path).expect_err("save over a poisoned stream");
        assert!(err.to_string().contains("gather index 17 out of range"), "{err}");
        assert!(!path.exists(), "a failed save must not write the file");
    })
    .expect("the save consumed the deferred error");
    drain_all_errors();
}

#[test]
fn gradients_match_sync_bitwise_under_async_dispatch() {
    let _g = lock();
    tf_eager::init();
    let x = seed_matrix();

    fn grads_of(x: &Tensor) -> Vec<TensorData> {
        let tape = GradientTape::new();
        tape.watch(x);
        let y = chain(x, 12).unwrap();
        let loss = api::reduce_mean(&y, &[], false).unwrap();
        let g = tape.gradient(&loss, &[x]).unwrap();
        g.into_iter().map(|t| (*t.expect("connected").value().unwrap()).clone()).collect()
    }

    let sync_grads = tf_eager::sync_scope(|| grads_of(&x));
    let async_grads = tf_eager::async_scope(|| grads_of(&x)).expect("no deferred errors");
    for (s, a) in sync_grads.iter().zip(&async_grads) {
        assert!(s.all_close(a, 0.0, 0.0), "backward pass must be bitwise identical under async");
    }
}

#[test]
fn staged_calls_join_the_callers_stream() {
    let _g = lock();
    tf_eager::init();
    let square_shift = tf_eager::function("async_staged_fn", |args: &[Arg]| {
        let x = args[0].as_tensor().expect("tensor arg");
        let y = api::mul(x, x)?;
        Ok(vec![api::add(&y, &api::scalar(0.5f64))?])
    });
    let x = seed_matrix();
    let want = tf_eager::sync_scope(|| {
        square_shift.call_tensors(&[&x]).unwrap().remove(0).value().unwrap()
    });

    let before =
        tf_eager::metrics::snapshot().counter_value("tfe_async_ops_enqueued_total").unwrap_or(0);
    let got = tf_eager::async_scope(|| {
        let out = square_shift.call_tensors(&[&x]).unwrap().remove(0);
        // The call returns pending handles with the traced signature.
        assert_eq!(out.shape().unwrap().dims(), &[64, 64]);
        out.value().unwrap()
    })
    .expect("no deferred errors");
    let after =
        tf_eager::metrics::snapshot().counter_value("tfe_async_ops_enqueued_total").unwrap_or(0);

    assert!(want.all_close(&got, 0.0, 0.0), "staged call must match under async");
    assert!(after > before, "the staged call must be enqueued on the stream");
}

#[test]
fn staged_call_failure_defers_to_the_next_sync_point() {
    let _g = lock();
    tf_eager::init();
    let faulty = tf_eager::function("async_faulty_fn", |args: &[Arg]| {
        let x = args[0].as_tensor().expect("tensor arg");
        let idx = api::constant(vec![23i64], [1])?;
        Ok(vec![api::gather(x, &idx, 0)?])
    });
    let x = four_elems();
    // Sync mode: the call fails inline (sync_scope pins the dispatch mode
    // so this holds even under an ambient TFE_ASYNC=1).
    let sync_err = tf_eager::sync_scope(|| faulty.call_tensors(&[&x])).expect_err("inline failure");
    assert!(sync_err.to_string().contains("gather index 23 out of range"), "{sync_err}");

    // Async mode: the call enqueues fine; the error surfaces at scope exit
    // naming both the call and the originating kernel failure.
    let err = tf_eager::async_scope(|| {
        let _dropped = faulty.call_tensors(&[&x]).expect("enqueue succeeds");
    })
    .expect_err("scope exit surfaces the deferred call error");
    let msg = err.to_string();
    assert!(
        matches!(&err, RuntimeError::Deferred { op, .. } if op.starts_with("call:")),
        "want Deferred{{op: call:…}}, got {err:?}"
    );
    assert!(msg.contains("gather index 23 out of range"), "{msg}");
    drain_all_errors();
}

/// Satellite: an eager op failing inside a *traced host function* must
/// surface its originating op name through `Func` execution in serial,
/// parallel, and async modes.
#[test]
fn host_func_failure_inside_staged_call_names_the_op_in_all_modes() {
    let _g = lock();
    tf_eager::init();
    let hf = HostFunc::new(
        |xs| {
            // Eager fault inside the host closure: gather index 19 on a
            // 4-element tensor.
            let idx = api::constant(vec![19i64], [1])?;
            api::gather(&xs[0], &idx, 0)?;
            unreachable!("gather must fail")
        },
        vec![(DType::F64, tfe_ops::SymShape::known(&tf_eager::Shape::from([1])))],
    );
    let staged = {
        let hf = hf.clone();
        tf_eager::function("async_hostfunc_fault", move |args: &[Arg]| {
            let x = args[0].as_tensor().expect("tensor arg");
            let t = api::tanh(x)?;
            Ok(vec![hf.call(&[&t])?.remove(0)])
        })
    };
    let x = four_elems();

    for mode in [ExecMode::SerialPlanned, ExecMode::Parallel] {
        let prev = tf_eager::context::set_exec_mode(mode);
        let err =
            tf_eager::sync_scope(|| staged.call_tensors(&[&x])).expect_err("traced host fault");
        assert!(
            err.to_string().contains("gather index 19 out of range"),
            "{mode:?}: originating op lost: {err}"
        );
        let async_err = tf_eager::async_scope(|| {
            let _dropped = staged.call_tensors(&[&x]).expect("enqueue succeeds");
        })
        .expect_err("async: deferred at scope exit");
        assert!(
            async_err.to_string().contains("gather index 19 out of range"),
            "{mode:?} async: originating op lost: {async_err}"
        );
        tf_eager::context::set_exec_mode(prev);
    }
    drain_all_errors();
}
