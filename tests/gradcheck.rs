//! Property-based gradient checking: analytic gradients of random op
//! compositions must match central finite differences, eagerly and through
//! staged calls. This is the strongest evidence the §4.2 machinery is
//! implemented correctly across the whole op surface.

use proptest::prelude::*;
use tf_eager::prelude::*;
use tf_eager::RuntimeError;

/// Smooth ops only (finite differences hate kinks like relu/abs at 0 —
/// those have targeted unit tests instead).
const SMOOTH_UNARY: &[&str] =
    &["tanh", "sigmoid", "softplus", "sin", "cos", "exp", "erf", "square"];
const SMOOTH_BINARY: &[&str] = &["add", "sub", "mul"];

#[derive(Debug, Clone)]
enum Node {
    X,
    Unary(&'static str, Box<Node>),
    Binary(&'static str, Box<Node>, Box<Node>),
    MeanLast(Box<Node>),
    MatmulW(Box<Node>),
}

fn arb_node() -> impl Strategy<Value = Node> {
    let leaf = Just(Node::X);
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (0..SMOOTH_UNARY.len(), inner.clone())
                .prop_map(|(i, n)| Node::Unary(SMOOTH_UNARY[i], Box::new(n))),
            (0..SMOOTH_BINARY.len(), inner.clone(), inner.clone())
                .prop_map(|(i, a, b)| Node::Binary(SMOOTH_BINARY[i], Box::new(a), Box::new(b))),
            inner.clone().prop_map(|n| Node::MeanLast(Box::new(n))),
            inner.prop_map(|n| Node::MatmulW(Box::new(n))),
        ]
    })
}

fn eval(node: &Node, x: &Tensor, w: &Tensor) -> Result<Tensor, RuntimeError> {
    match node {
        Node::X => Ok(x.clone()),
        Node::Unary(op, n) => {
            let v = eval(n, x, w)?;
            tfe_runtime::context::execute(op, &[v], tfe_ops::Attrs::new()).map(|mut o| o.remove(0))
        }
        Node::Binary(op, a, b) => {
            let a = eval(a, x, w)?;
            let b = eval(b, x, w)?;
            tfe_runtime::context::execute(op, &[a, b], tfe_ops::Attrs::new())
                .map(|mut o| o.remove(0))
        }
        Node::MeanLast(n) => {
            let v = eval(n, x, w)?;
            api::reduce_mean(&v, &[-1], true)
        }
        Node::MatmulW(n) => {
            // Project back to (2, 3) via a fixed weight so shapes stay put.
            let v = eval(n, x, w)?;
            api::matmul(&v, w)
        }
    }
}

fn loss(node: &Node, x: &Tensor, w: &Tensor) -> Result<f64, RuntimeError> {
    let y = eval(node, x, w)?;
    api::reduce_sum(&y, &[], false)?.scalar_f64()
}

fn tensors(xs: &[f64]) -> (Tensor, Tensor) {
    let x = Tensor::from_data(TensorData::from_vec(xs.to_vec(), Shape::from([2, 3])).unwrap());
    // A fixed, well-conditioned square-ish projection (3 -> 3).
    let w = Tensor::from_data(
        TensorData::from_vec(
            vec![0.5, -0.2, 0.1, 0.3, 0.4, -0.1, -0.3, 0.2, 0.6],
            Shape::from([3, 3]),
        )
        .unwrap(),
    );
    (x, w)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn analytic_matches_finite_difference(
        node in arb_node(),
        xs in prop::collection::vec(-0.9f64..0.9, 6..=6),
    ) {
        tf_eager::init();
        let (x, w) = tensors(&xs);
        let Ok(base) = loss(&node, &x, &w) else { return Ok(()) };
        if !base.is_finite() {
            return Ok(());
        }

        let tape = GradientTape::new();
        tape.watch(&x);
        let y = eval(&node, &x, &w).unwrap();
        let l = api::reduce_sum(&y, &[], false).unwrap();
        let g = tape.gradient1(&l, &x).unwrap().to_f64_vec().unwrap();

        let eps = 1e-6;
        for i in 0..xs.len() {
            let mut plus = xs.clone();
            plus[i] += eps;
            let mut minus = xs.clone();
            minus[i] -= eps;
            let (xp, _) = tensors(&plus);
            let (xm, _) = tensors(&minus);
            let fd = (loss(&node, &xp, &w).unwrap() - loss(&node, &xm, &w).unwrap()) / (2.0 * eps);
            let scale = 1.0 + fd.abs().max(g[i].abs());
            prop_assert!(
                (fd - g[i]).abs() / scale < 1e-4,
                "elem {i}: fd={fd} analytic={} node={:?}",
                g[i],
                node
            );
        }
    }

    #[test]
    fn reduce_prod_gradient_matches_fd_with_zeros(
        xs in prop::collection::vec(-2.0f64..2.0, 6..=6),
        zero_count in 0usize..=2,
    ) {
        // The product is linear in each element, so central differences are
        // exact — including at zeros. Plant 0, 1, or 2 exact zeros.
        tf_eager::init();
        let mut xs = xs;
        for i in 0..zero_count {
            xs[i * 2] = 0.0;
        }
        let grad_of = |vals: &[f64]| -> Vec<f64> {
            let x = Tensor::from_data(
                TensorData::from_vec(vals.to_vec(), Shape::from([6])).unwrap(),
            );
            let tape = GradientTape::new();
            tape.watch(&x);
            let y = api::reduce_prod(&x, &[], false).unwrap();
            tape.gradient1(&y, &x).unwrap().to_f64_vec().unwrap()
        };
        let prod_of = |vals: &[f64]| -> f64 { vals.iter().product() };
        let g = grad_of(&xs);
        let eps = 1e-3;
        for i in 0..xs.len() {
            let mut plus = xs.clone();
            plus[i] += eps;
            let mut minus = xs.clone();
            minus[i] -= eps;
            let fd = (prod_of(&plus) - prod_of(&minus)) / (2.0 * eps);
            let scale = 1.0 + fd.abs().max(g[i].abs());
            prop_assert!(
                (fd - g[i]).abs() / scale < 1e-6,
                "elem {i}: fd={fd} analytic={} xs={xs:?} (zeros={zero_count})",
                g[i]
            );
        }
    }

    #[test]
    fn staged_gradient_matches_finite_difference(
        node in arb_node(),
        xs in prop::collection::vec(-0.9f64..0.9, 6..=6),
    ) {
        tf_eager::init();
        let (x, w) = tensors(&xs);
        let Ok(base) = loss(&node, &x, &w) else { return Ok(()) };
        if !base.is_finite() {
            return Ok(());
        }
        let node2 = node.clone();
        let w2 = w.clone();
        let staged = function("gradcheck_staged", move |args: &[Arg]| {
            let x = args[0].as_tensor().expect("x");
            let y = eval(&node2, x, &w2)?;
            Ok(vec![api::reduce_sum(&y, &[], false)?])
        });
        let tape = GradientTape::new();
        tape.watch(&x);
        let l = staged.call(&[Arg::from(&x)]).unwrap().remove(0);
        let g = tape.gradient1(&l, &x).unwrap().to_f64_vec().unwrap();
        let eps = 1e-6;
        for i in 0..xs.len() {
            let mut plus = xs.clone();
            plus[i] += eps;
            let mut minus = xs.clone();
            minus[i] -= eps;
            let (xp, _) = tensors(&plus);
            let (xm, _) = tensors(&minus);
            let fd = (loss(&node, &xp, &w).unwrap() - loss(&node, &xm, &w).unwrap()) / (2.0 * eps);
            let scale = 1.0 + fd.abs().max(g[i].abs());
            prop_assert!(
                (fd - g[i]).abs() / scale < 1e-4,
                "staged elem {i}: fd={fd} analytic={} node={:?}",
                g[i],
                node
            );
        }
    }
}

/// Closed-form zero cases for the reduce_prod gradient, eager and staged.
/// The masked gradient must produce: with no zeros the usual `prod/x_i`;
/// with one zero the zero element gets the product of the non-zeros and all
/// others get 0; with two or more zeros everything is 0.
#[test]
fn reduce_prod_gradient_zero_cases_closed_form() {
    tf_eager::init();
    let grad_of = |vals: &[f64], axes: &[i64], shape: &[usize]| -> Vec<f64> {
        let x = Tensor::from_data(
            TensorData::from_vec(vals.to_vec(), Shape::from(shape.to_vec())).unwrap(),
        );
        let tape = GradientTape::new();
        tape.watch(&x);
        let y = api::reduce_prod(&x, axes, false).unwrap();
        let l = api::reduce_sum(&y, &[], false).unwrap();
        tape.gradient1(&l, &x).unwrap().to_f64_vec().unwrap()
    };

    // No zeros: classic prod/x_i.
    assert_eq!(grad_of(&[2.0, 3.0, 4.0], &[], &[3]), vec![12.0, 8.0, 6.0]);
    // One zero: that element gets the product of the others; the rest 0.
    assert_eq!(grad_of(&[2.0, 3.0, 0.0, 5.0], &[], &[4]), vec![0.0, 0.0, 30.0, 0.0]);
    // Two zeros: everything 0.
    assert_eq!(grad_of(&[0.0, 3.0, 0.0, 5.0], &[], &[4]), vec![0.0; 4]);
    // Per-axis reduction: each row is its own group.
    assert_eq!(
        grad_of(&[1.0, 0.0, 3.0, 2.0, 4.0, 5.0], &[1], &[2, 3]),
        vec![0.0, 3.0, 0.0, 20.0, 10.0, 8.0]
    );

    // Staged: the same gradient must come out of a traced function.
    let staged = function("prod_grad_staged", |args: &[Arg]| {
        let x = args[0].as_tensor().expect("x");
        Ok(vec![api::reduce_prod(x, &[], false)?])
    });
    let x = Tensor::from_data(
        TensorData::from_vec(vec![2.0, 3.0, 0.0, 5.0], Shape::from([4])).unwrap(),
    );
    let tape = GradientTape::new();
    tape.watch(&x);
    let y = staged.call(&[Arg::from(&x)]).unwrap().remove(0);
    let g = tape.gradient1(&y, &x).unwrap().to_f64_vec().unwrap();
    assert_eq!(g, vec![0.0, 0.0, 30.0, 0.0]);
}
