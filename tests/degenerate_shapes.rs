//! Degenerate batching shapes the serving batcher hits on quiet traffic:
//! batch of 1, zero-row members, single-part split — through the concat /
//! split / reduce kernels and their gradients. Regression suite for the
//! panics fixed alongside the serving layer (zero-element reduce outputs,
//! negative `split` counts).

use tf_eager::prelude::*;
use tf_eager::GradientTape;

#[test]
fn concat_single_part() {
    let a = api::constant(vec![1.0f32, 2.0], [1, 2]).unwrap();
    let r = api::concat(&[&a], 0).unwrap();
    assert_eq!(r.to_f64_vec().unwrap(), vec![1.0, 2.0]);
}

#[test]
fn split_single_part() {
    let a = api::constant(vec![1.0f32, 2.0], [1, 2]).unwrap();
    let r = api::split(&a, 1, 0).unwrap();
    assert_eq!(r.len(), 1);
    assert_eq!(r[0].to_f64_vec().unwrap(), vec![1.0, 2.0]);
}

/// Zero-row tensors must flow through the whole MLP-style op chain —
/// concat, split, matmul, broadcast add, relu, softmax, reductions.
/// `reduce` used to panic on zero-element outputs (accumulator sized
/// `max(out_n, 1)` desynced from the output length).
#[test]
fn zero_row_tensor_ops() {
    let z = api::zeros(DType::F32, [0, 2]);
    let a = api::constant(vec![1.0f32, 2.0], [1, 2]).unwrap();
    let r = api::concat(&[&z, &a], 0).unwrap();
    assert_eq!(r.shape().unwrap().dims(), &[1, 2]);
    let parts = api::split(&z, 1, 0).unwrap();
    assert_eq!(parts[0].shape().unwrap().dims(), &[0, 2]);
    let w = api::constant(vec![1.0f32, 0.0, 0.0, 1.0], [2, 2]).unwrap();
    let m = api::matmul(&z, &w).unwrap();
    let b = api::constant(vec![1.0f32, 2.0], [2]).unwrap();
    let s = api::add(&m, &b).unwrap();
    let sm = api::softmax(&api::relu(&s).unwrap()).unwrap();
    assert_eq!(sm.shape().unwrap().dims(), &[0, 2]);
    // Reduce over the row axis: zero-element output, must not panic.
    let red = api::reduce_sum(&sm, &[1], false).unwrap();
    assert_eq!(red.shape().unwrap().dims(), &[0]);
    assert_eq!(red.to_f64_vec().unwrap(), Vec::<f64>::new());
    // keep_dims variant.
    let red_k = api::reduce_sum(&sm, &[1], true).unwrap();
    assert_eq!(red_k.shape().unwrap().dims(), &[0, 1]);
    // Mean/prod over the same empty output shape.
    assert_eq!(api::reduce_mean(&sm, &[1], false).unwrap().shape().unwrap().dims(), &[0]);
    // Reducing the zero-extent axis itself still yields identities.
    let col = api::reduce_sum(&sm, &[0], false).unwrap();
    assert_eq!(col.to_f64_vec().unwrap(), vec![0.0, 0.0]);
    // Max/min over an empty extent stays a typed error, not a panic.
    assert!(api::reduce_max(&sm, &[0], false).is_err());
}

#[test]
fn concat_grad_single_and_zero() {
    let a = api::constant(vec![1.0f32, 2.0], [1, 2]).unwrap();
    let z = api::zeros(DType::F32, [0, 2]);
    let tape = GradientTape::new();
    tape.watch(&a);
    tape.watch(&z);
    let c = api::concat(&[&z, &a], 0).unwrap();
    let y = api::reduce_sum(&c, &[0, 1], false).unwrap();
    let g = tape.gradient(&y, &[&a, &z]).unwrap();
    assert_eq!(g[0].as_ref().unwrap().shape().unwrap().dims(), &[1, 2]);
    assert_eq!(g[1].as_ref().unwrap().shape().unwrap().dims(), &[0, 2]);
}

#[test]
fn split_grad_single_part() {
    let a = api::constant(vec![1.0f32, 2.0], [1, 2]).unwrap();
    let tape = GradientTape::new();
    tape.watch(&a);
    let parts = api::split(&a, 1, 0).unwrap();
    let y = api::reduce_sum(&parts[0], &[0, 1], false).unwrap();
    let g = tape.gradient1(&y, &a).unwrap();
    assert_eq!(g.to_f64_vec().unwrap(), vec![1.0, 1.0]);
}

#[test]
fn split_grad_partial_use() {
    let a = api::constant(vec![1.0f32, 2.0, 3.0, 4.0], [2, 2]).unwrap();
    let tape = GradientTape::new();
    tape.watch(&a);
    let parts = api::split(&a, 2, 0).unwrap();
    let y = api::reduce_sum(&parts[0], &[0, 1], false).unwrap();
    let g = tape.gradient1(&y, &a).unwrap();
    assert_eq!(g.to_f64_vec().unwrap(), vec![1.0, 1.0, 0.0, 0.0]);
}

/// A negative `num` attribute used to wrap to a huge usize and abort on a
/// capacity overflow when the axis extent was 0; now a typed error on both
/// the OpDef (shape inference) and kernel paths.
#[test]
fn split_rejects_non_positive_num() {
    let z = api::zeros(DType::F32, [0, 2]);
    for num in [-3i64, 0] {
        let r = tf_eager::context::execute(
            "split",
            std::slice::from_ref(&z),
            tf_eager::Attrs::new().with("num", num).with("axis", 0i64),
        );
        assert!(r.is_err(), "split num={num} must be a typed error, not a panic");
    }
    // The typed-API path (usize) rejects 0 as well.
    assert!(api::split(&z, 0, 0).is_err());
}
