//! Coverage of the public op surface: every `api::*` wrapper is exercised
//! eagerly AND inside a trace, confirming the two paths share one
//! catalog/kernels/inference (§1's central implementation claim).

use tf_eager::prelude::*;
use tf_eager::RuntimeError;

/// Run `build` eagerly and staged; assert identical outputs.
fn both_modes(
    name: &str,
    build: impl Fn(&[Tensor]) -> Result<Vec<Tensor>, RuntimeError> + Send + Sync + Clone + 'static,
    inputs: Vec<Tensor>,
) {
    tf_eager::init();
    let eager = build(&inputs).unwrap();
    let staged_fn = function(name, move |args: &[Arg]| {
        let tensors: Vec<Tensor> = args.iter().filter_map(|a| a.as_tensor().cloned()).collect();
        build(&tensors)
    });
    let args: Vec<Arg> = inputs.iter().map(Arg::from).collect();
    let staged = staged_fn.call(&args).unwrap();
    assert_eq!(eager.len(), staged.len());
    for (i, (e, s)) in eager.iter().zip(&staged).enumerate() {
        let (e, s) = (e.value().unwrap(), s.value().unwrap());
        assert!(e.all_close(&s, 1e-6, 1e-9), "{name} output {i}: {e:?} vs {s:?}");
    }
}

fn t(v: Vec<f32>, s: &[usize]) -> Tensor {
    Tensor::from_data(TensorData::from_vec(v, Shape::new(s.to_vec())).unwrap())
}

#[test]
fn elementwise_surface() {
    both_modes(
        "surface_ew",
        |xs| {
            let a = &xs[0];
            let b = &xs[1];
            Ok(vec![
                api::pow(a, b)?,
                api::squared_difference(a, b)?,
                api::floor_div(a, b)?,
                api::modulo(a, b)?,
                api::log1p(a)?,
                api::rsqrt(a)?,
                api::reciprocal(a)?,
                api::erf(a)?,
                api::sign(a)?,
                api::floor(a)?,
                api::ceil(a)?,
                api::round(a)?,
                api::abs(&api::neg(a)?)?,
            ])
        },
        vec![t(vec![1.5, 2.5, 0.5], &[3]), t(vec![2.0, 0.5, 3.0], &[3])],
    );
}

#[test]
fn comparison_and_logic_surface() {
    both_modes(
        "surface_cmp",
        |xs| {
            let a = &xs[0];
            let b = &xs[1];
            let lt = api::less(a, b)?;
            let le = api::less_equal(a, b)?;
            let ne = api::not_equal(a, b)?;
            let ge = api::greater_equal(a, b)?;
            Ok(vec![
                api::logical_or(&lt, &ne)?,
                api::logical_and(&le, &ge)?,
                api::logical_not(&lt)?,
                api::select(&lt, a, b)?,
                api::cast(&lt, DType::F32)?,
            ])
        },
        vec![t(vec![1.0, 5.0, 3.0], &[3]), t(vec![2.0, 5.0, 1.0], &[3])],
    );
}

#[test]
fn structural_surface() {
    both_modes(
        "surface_struct",
        |xs| {
            let a = &xs[0]; // (2, 3)
            let tiled = api::tile(a, &[2, 1])?; // (4, 3)
            let broad = api::broadcast_to(&api::reshape(a, &[2, 3, 1])?, &[2, 3, 2])?;
            let stacked = api::stack(&[a, a], 0)?; // (2, 2, 3)
            let unstacked = api::unstack(a, 1)?; // 3 x (2,)
            let padded = api::pad(a, &[(1, 0), (0, 2)], -1.0)?;
            let sliced = api::slice(&padded, &[1, 0], &[2, 3])?;
            let split = api::split(a, 3, 1)?;
            let cat = api::concat(&[&split[2], &split[0]], 1)?;
            Ok(vec![
                tiled,
                broad,
                stacked,
                unstacked[1].clone(),
                sliced,
                cat,
                api::expand_dims(a, 0)?,
                api::squeeze(&api::reshape(a, &[1, 2, 1, 3])?, &[])?,
                api::transpose(a, &[1, 0])?,
                api::shape_of(a)?,
            ])
        },
        vec![t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])],
    );
}

#[test]
fn gather_one_hot_surface() {
    tf_eager::init();
    let params = t(vec![10.0, 20.0, 30.0, 40.0], &[4]);
    let idx = Tensor::from_data(TensorData::from_vec(vec![3i64, 0, 3], Shape::from([3])).unwrap());
    let build = move |xs: &[Tensor]| -> Result<Vec<Tensor>, RuntimeError> {
        let g = api::gather(&xs[0], &xs[1], 0)?;
        let oh = api::one_hot(&xs[1], 4, DType::F32)?;
        let am = api::argmax(&oh, -1)?;
        let amin = api::argmin(&oh, -1)?;
        let cs = api::cumsum(&g, 0)?;
        Ok(vec![g, oh, api::cast(&am, DType::F32)?, api::cast(&amin, DType::F32)?, cs])
    };
    both_modes("surface_gather", build, vec![params, idx]);
}

#[test]
fn reduction_surface() {
    both_modes(
        "surface_reduce",
        |xs| {
            let a = &xs[0];
            let b = api::greater(a, &api::scalar(2.0f32))?;
            Ok(vec![
                api::reduce_prod(a, &[0], false)?,
                api::reduce_min(a, &[1], true)?,
                api::reduce_max(a, &[], false)?,
                api::cast(&api::reduce_any(&b, &[0], false)?, DType::F32)?,
                api::cast(&api::reduce_all(&b, &[1], false)?, DType::F32)?,
                api::log_softmax(a)?,
            ])
        },
        vec![t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])],
    );
}

#[test]
fn nn_surface() {
    both_modes(
        "surface_nn",
        |xs| {
            let img = &xs[0];
            let filter = &xs[1];
            let c = api::conv2d(img, filter, (1, 1), "SAME")?;
            let mp = api::max_pool(&c, (2, 2), (2, 2), "VALID")?;
            let ap = api::avg_pool(&c, (2, 2), (2, 2), "VALID")?;
            Ok(vec![c, mp, ap])
        },
        vec![
            t((0..32).map(|i| i as f32 * 0.1).collect(), &[1, 4, 4, 2]),
            t((0..8).map(|i| i as f32 * 0.2 - 0.5).collect(), &[2, 2, 2, 1]),
        ],
    );
}

#[test]
fn batch_matmul_surface() {
    both_modes(
        "surface_bmm",
        |xs| Ok(vec![api::batch_matmul(&xs[0], &xs[1])?]),
        vec![
            t((0..12).map(|i| i as f32).collect(), &[2, 2, 3]),
            t((0..6).map(|i| i as f32 * 0.5).collect(), &[1, 3, 2]),
        ],
    );
}

#[test]
fn constructor_surface() {
    both_modes(
        "surface_ctors",
        |_| {
            Ok(vec![
                api::eye(DType::F32, 3)?,
                api::range(DType::F32, 1.0, 2.0, 5)?,
                api::zeros(DType::F32, [2, 2]),
                api::ones(DType::F32, [2, 2]),
            ])
        },
        vec![t(vec![0.0], &[1])],
    );
}

#[test]
fn xent_surface() {
    tf_eager::init();
    let logits = t(vec![2.0, -1.0, 0.5, 0.0, 1.0, -0.5], &[2, 3]);
    let labels = Tensor::from_data(TensorData::from_vec(vec![0i64, 1], Shape::from([2])).unwrap());
    both_modes(
        "surface_xent",
        |xs| Ok(vec![api::sparse_softmax_xent(&xs[0], &xs[1])?, api::softmax(&xs[0])?]),
        vec![logits, labels],
    );
}

#[test]
fn operators_on_tensors() {
    tf_eager::init();
    let a = t(vec![1.0, 2.0], &[2]);
    let b = t(vec![4.0, 8.0], &[2]);
    assert_eq!((&a + &b).to_f64_vec().unwrap(), vec![5.0, 10.0]);
    assert_eq!((&b - &a).to_f64_vec().unwrap(), vec![3.0, 6.0]);
    assert_eq!((&a * &b).to_f64_vec().unwrap(), vec![4.0, 16.0]);
    assert_eq!((&b / &a).to_f64_vec().unwrap(), vec![4.0, 4.0]);
    assert_eq!((-&a).to_f64_vec().unwrap(), vec![-1.0, -2.0]);
    // Owned-value operators too.
    let c = a.clone() + b.clone();
    assert_eq!(c.to_f64_vec().unwrap(), vec![5.0, 10.0]);
}

#[test]
#[should_panic(expected = "tensor add")]
fn operator_panics_on_type_error() {
    tf_eager::init();
    let a = t(vec![1.0], &[1]);
    let b = Tensor::from_data(TensorData::from_vec(vec![1i32], Shape::from([1])).unwrap());
    let _ = &a + &b;
}
