//! Parity tests for the intra-op parallel kernel layer: every parallel,
//! cache-blocked kernel must agree with its naive serial reference, and
//! must produce identical bits at every intra-op thread count.
//!
//! Determinism contract (see DESIGN.md "Two-level parallelism"):
//!
//! * **Bitwise** vs the serial reference at any thread count: matmul /
//!   batch matmul (the packed micro-kernel resumes its accumulators from
//!   the output tile, so per-element accumulation is the plain ascending
//!   fold), elementwise + broadcast ops (the 8-wide lane fast path applies
//!   the identical per-element function), prefix-axis float reductions,
//!   and `conv2d_backprop_input` (batches are disjoint). `max`/`min`
//!   reductions stay bitwise on every axis pattern — reassociating max is
//!   value-exact on NaN-free input.
//! * **Bitwise vs the documented lane order** (DESIGN.md §14, reproduced
//!   by `lane_fold_ref` below) at any thread count: suffix-axis and full
//!   `sum`/`mean`/`prod` reductions fold each row/chunk through 8 fixed
//!   accumulator lanes — deterministic and thread-invariant, but
//!   reassociated vs the serial odometer, so they carry a small documented
//!   tolerance against the pure left fold (asserted below).
//! * **Thread-invariant but chunk-grouped**: full float reductions over
//!   more than one grain of elements, and `conv2d_backprop_filter`
//!   (fixed-chunk tree over batches).
//! * `conv2d` forward accumulates in f64 in the same (ky, kx, ci) order
//!   as the reference, with exact `+0.0` padding terms; compared here by
//!   value (a `-0.0` vs `+0.0` sign difference is tolerated).

use proptest::prelude::*;
use tfe_parallel::set_intra_threads;
use tfe_tensor::elementwise::{binary, BinaryOp};
use tfe_tensor::gemm::gemm_into;
use tfe_tensor::matmul::{batch_matmul, matmul, matmul_reference};
use tfe_tensor::reduce::{reduce, ReduceOp};
use tfe_tensor::softmax::{log_softmax, softmax};
use tfe_tensor::{conv, Shape, TensorData};

/// Run `f` under a forced intra-op thread count, restoring the previous
/// setting afterwards. Kernels are thread-count invariant by design, so
/// concurrently running tests that also flip the override cannot change
/// any result — this only steers which splitting path executes.
fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let prev = set_intra_threads(Some(threads));
    let r = f();
    set_intra_threads(prev);
    r
}

fn f32s(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 2048) as f32 - 1024.0) / 256.0
        })
        .collect()
}

fn bits32(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

// ---------------------------------------------------------------------------
// Matmul: all four transpose combos, exact bits vs the naive reference.
// ---------------------------------------------------------------------------

#[test]
fn matmul_all_transpose_combos_bitwise() {
    // Shapes straddling the MR/NR/KC/MC block boundaries, plus odd primes.
    for &(m, k, n) in
        &[(1usize, 1usize, 1usize), (3, 5, 7), (4, 8, 8), (5, 9, 17), (33, 257, 19), (64, 300, 65)]
    {
        let av = f32s(m * k, 1);
        let bv = f32s(k * n, 2);
        for (ta, tb) in [(false, false), (true, false), (false, true), (true, true)] {
            let a_dims = if ta { [k, m] } else { [m, k] };
            let b_dims = if tb { [n, k] } else { [k, n] };
            let a = TensorData::from_vec(av.clone(), Shape::from(a_dims)).unwrap();
            let b = TensorData::from_vec(bv.clone(), Shape::from(b_dims)).unwrap();
            let mut want = vec![0.0f32; m * n];
            matmul_reference(&av, &bv, m, k, n, ta, tb, &mut want);
            for threads in [1usize, 3, 8] {
                let got = with_threads(threads, || matmul(&a, &b, ta, tb).unwrap());
                assert_eq!(
                    bits32(got.as_slice::<f32>().unwrap()),
                    bits32(&want),
                    "matmul {m}x{k}x{n} ta={ta} tb={tb} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn batch_matmul_bitwise_vs_reference() {
    let (bsz, m, k, n) = (6usize, 9usize, 17usize, 11usize);
    let av = f32s(bsz * m * k, 3);
    let bv = f32s(bsz * k * n, 4);
    let a = TensorData::from_vec(av.clone(), Shape::from([bsz, m, k])).unwrap();
    let b = TensorData::from_vec(bv.clone(), Shape::from([bsz, k, n])).unwrap();
    let mut want = vec![0.0f32; bsz * m * n];
    for i in 0..bsz {
        matmul_reference(
            &av[i * m * k..(i + 1) * m * k],
            &bv[i * k * n..(i + 1) * k * n],
            m,
            k,
            n,
            false,
            false,
            &mut want[i * m * n..(i + 1) * m * n],
        );
    }
    for threads in [1usize, 4] {
        let got = with_threads(threads, || batch_matmul(&a, &b, false, false).unwrap());
        assert_eq!(bits32(got.as_slice::<f32>().unwrap()), bits32(&want), "threads={threads}");
    }
}

#[test]
fn gemm_accumulates_across_kc_blocks_bitwise() {
    // k > KC (256) exercises accumulator resume across KC slices; the
    // result must still be the plain ascending fold.
    let (m, k, n) = (7usize, 521usize, 13usize);
    let av = f32s(m * k, 5);
    let bv = f32s(k * n, 6);
    let mut want = vec![0.0f32; m * n];
    matmul_reference(&av, &bv, m, k, n, false, false, &mut want);
    let mut got = vec![0.0f32; m * n];
    gemm_into(m, k, n, &av, false, &bv, false, &mut got, true);
    assert_eq!(bits32(&got), bits32(&want));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_parity_random_shapes(
        m in 1usize..24, k in 1usize..40, n in 1usize..24,
        ta in any::<bool>(), tb in any::<bool>(), seed in 0u64..1000,
    ) {
        let av = f32s(m * k, seed);
        let bv = f32s(k * n, seed + 1);
        let a_dims = if ta { [k, m] } else { [m, k] };
        let b_dims = if tb { [n, k] } else { [k, n] };
        let a = TensorData::from_vec(av.clone(), Shape::from(a_dims)).unwrap();
        let b = TensorData::from_vec(bv.clone(), Shape::from(b_dims)).unwrap();
        let mut want = vec![0.0f32; m * n];
        matmul_reference(&av, &bv, m, k, n, ta, tb, &mut want);
        let got = with_threads(5, || matmul(&a, &b, ta, tb).unwrap());
        prop_assert_eq!(bits32(got.as_slice::<f32>().unwrap()), bits32(&want));
    }
}

// ---------------------------------------------------------------------------
// Elementwise: grain boundaries and broadcasts, exact bits.
// ---------------------------------------------------------------------------

#[test]
fn elementwise_add_grain_boundaries_bitwise() {
    // GRAIN_ELEMWISE is 4096: straddle it (serial path below, split above).
    for n in [1usize, 4095, 4096, 4097, 8193] {
        let av = f32s(n, 7);
        let bv = f32s(n, 8);
        let a = TensorData::from_vec(av.clone(), Shape::from([n])).unwrap();
        let b = TensorData::from_vec(bv.clone(), Shape::from([n])).unwrap();
        let want: Vec<f32> = av.iter().zip(&bv).map(|(x, y)| x + y).collect();
        for threads in [1usize, 2, 8] {
            let got = with_threads(threads, || binary(&a, &b, BinaryOp::Add).unwrap());
            assert_eq!(
                bits32(got.as_slice::<f32>().unwrap()),
                bits32(&want),
                "n={n} threads={threads}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn broadcast_binary_parity(
        rows in 1usize..80, cols in 1usize..80,
        a_bcast in any::<bool>(), b_bcast in any::<bool>(), seed in 0u64..1000,
    ) {
        // (rows|1, cols) op (rows|1, cols) — broadcast along axis 0. When
        // both sides have a size-1 axis the broadcast output keeps it.
        let ar = if a_bcast { 1 } else { rows };
        let br = if b_bcast { 1 } else { rows };
        let out_rows = ar.max(br);
        let av = f32s(ar * cols, seed);
        let bv = f32s(br * cols, seed + 1);
        let a = TensorData::from_vec(av.clone(), Shape::from([ar, cols])).unwrap();
        let b = TensorData::from_vec(bv.clone(), Shape::from([br, cols])).unwrap();
        let mut want = vec![0.0f32; out_rows * cols];
        for r in 0..out_rows {
            for c in 0..cols {
                let x = av[(if a_bcast { 0 } else { r }) * cols + c];
                let y = bv[(if b_bcast { 0 } else { r }) * cols + c];
                want[r * cols + c] = x * y;
            }
        }
        let got = with_threads(6, || binary(&a, &b, BinaryOp::Mul).unwrap());
        prop_assert_eq!(bits32(got.as_slice::<f32>().unwrap()), bits32(&want));
    }
}

// ---------------------------------------------------------------------------
// Reductions: suffix/prefix axes bitwise vs the linear fold; full
// reductions thread-invariant (and bitwise below one grain).
// ---------------------------------------------------------------------------

/// The pre-parallel serial semantics: accumulate every element in linear
/// input order into its f64 output slot.
fn reduce_reference_f32(v: &[f32], dims: &[usize], axes: &[usize], op: ReduceOp) -> Vec<f32> {
    let rank = dims.len();
    let mut out_dims: Vec<usize> = dims.to_vec();
    for &a in axes {
        out_dims[a] = 1;
    }
    let out_n: usize = out_dims.iter().product();
    let init = match op {
        ReduceOp::Sum | ReduceOp::Mean => 0.0f64,
        ReduceOp::Prod => 1.0,
        ReduceOp::Max => f64::NEG_INFINITY,
        ReduceOp::Min => f64::INFINITY,
    };
    let mut acc = vec![init; out_n.max(1)];
    let mut out_strides = vec![0usize; rank];
    let mut s = 1;
    for i in (0..rank).rev() {
        out_strides[i] = if out_dims[i] == 1 { 0 } else { s };
        s *= out_dims[i];
    }
    for (lin, &x) in v.iter().enumerate() {
        let mut rem = lin;
        let mut oi = 0;
        for i in (0..rank).rev() {
            let c = rem % dims[i];
            rem /= dims[i];
            if !axes.contains(&i) {
                oi += c * out_strides[i];
            }
        }
        let x = f64::from(x);
        match op {
            ReduceOp::Sum | ReduceOp::Mean => acc[oi] += x,
            ReduceOp::Prod => acc[oi] *= x,
            ReduceOp::Max => acc[oi] = acc[oi].max(x),
            ReduceOp::Min => acc[oi] = acc[oi].min(x),
        }
    }
    let count: usize = axes.iter().map(|&a| dims[a]).product();
    acc.iter()
        .map(|&x| if op == ReduceOp::Mean { (x / count.max(1) as f64) as f32 } else { x as f32 })
        .collect()
}

/// The documented lane-fold combine order (DESIGN.md §14): 8 accumulators
/// seeded with the identity take elements j, j+8, j+16, … of the
/// lane-aligned prefix, the lanes combine left to right, then the tail
/// folds in ascending order. This is an independent transcription of the
/// contract — it must match `tfe_tensor::lanes::lane_fold_f64` bit for bit.
fn lane_fold_ref(row: &[f32], init: f64, f: impl Fn(f64, f64) -> f64) -> f64 {
    const LANES: usize = 8;
    let m = row.len() - row.len() % LANES;
    let mut lanes = [init; LANES];
    for (i, &x) in row[..m].iter().enumerate() {
        lanes[i % LANES] = f(lanes[i % LANES], f64::from(x));
    }
    let mut acc = lanes[0];
    for &l in &lanes[1..] {
        acc = f(acc, l);
    }
    for &x in &row[m..] {
        acc = f(acc, f64::from(x));
    }
    acc
}

/// Reference for the lane-restructured fast paths: suffix-axis reductions
/// lane-fold each contiguous row; full reductions split into fixed
/// GRAIN_REDUCE(8192) chunks, lane-fold each chunk, and combine the chunk
/// partials in ascending order. Only valid for suffix or all-axes patterns.
fn reduce_lane_reference_f32(v: &[f32], dims: &[usize], axes: &[usize], op: ReduceOp) -> Vec<f32> {
    let (init, f): (f64, fn(f64, f64) -> f64) = match op {
        ReduceOp::Sum | ReduceOp::Mean => (0.0, |a, b| a + b),
        ReduceOp::Prod => (1.0, |a, b| a * b),
        ReduceOp::Max => (f64::NEG_INFINITY, f64::max),
        ReduceOp::Min => (f64::INFINITY, f64::min),
    };
    let acc: Vec<f64> = if axes.len() == dims.len() {
        const GRAIN_REDUCE: usize = 8192;
        let total = v.chunks(GRAIN_REDUCE).map(|c| lane_fold_ref(c, init, f)).fold(init, f);
        vec![total]
    } else {
        let row: usize = axes.iter().map(|&a| dims[a]).product();
        v.chunks(row.max(1)).map(|r| lane_fold_ref(r, init, f)).collect()
    };
    let count: usize = axes.iter().map(|&a| dims[a]).product();
    acc.iter()
        .map(|&x| if op == ReduceOp::Mean { (x / count.max(1) as f64) as f32 } else { x as f32 })
        .collect()
}

/// Sum/mean/prod over a suffix (or full) axis pattern run the 8-lane fold,
/// which reassociates vs the serial odometer; everything else is bitwise
/// against the serial reference.
fn reduce_want_f32(v: &[f32], dims: &[usize], axes: &[usize], op: ReduceOp) -> Vec<f32> {
    let suffix = axes.first().map(|&a| a + axes.len() == dims.len()).unwrap_or(false);
    let lane_mode = suffix && matches!(op, ReduceOp::Sum | ReduceOp::Mean | ReduceOp::Prod);
    if lane_mode {
        reduce_lane_reference_f32(v, dims, axes, op)
    } else {
        reduce_reference_f32(v, dims, axes, op)
    }
}

#[test]
fn reduce_suffix_and_prefix_axes_bitwise() {
    let dims = [12usize, 33, 130];
    let v = f32s(dims.iter().product(), 9);
    let a = TensorData::from_vec(v.clone(), Shape::from(dims)).unwrap();
    for op in [ReduceOp::Sum, ReduceOp::Mean, ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod] {
        for axes in [vec![2i64], vec![1, 2], vec![0], vec![0, 1]] {
            let uaxes: Vec<usize> = axes.iter().map(|&x| x as usize).collect();
            let want = reduce_want_f32(&v, &dims, &uaxes, op);
            for threads in [1usize, 7] {
                let got = with_threads(threads, || reduce(&a, &axes, false, op).unwrap());
                assert_eq!(
                    bits32(got.as_slice::<f32>().unwrap()),
                    bits32(&want),
                    "op={op:?} axes={axes:?} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn reduce_lane_fold_within_documented_bound_of_serial_fold() {
    // The tolerance-mode kernels (suffix/full sum, mean, prod) reassociate
    // across 8 lanes; DESIGN.md §14 bounds the drift vs the serial fold at
    // ~n*eps_f64 relative before the f32 round-off. 1e-9*n is generous.
    let dims = [12usize, 33, 130];
    let v = f32s(dims.iter().product(), 9);
    let a = TensorData::from_vec(v.clone(), Shape::from(dims)).unwrap();
    for op in [ReduceOp::Sum, ReduceOp::Mean, ReduceOp::Prod] {
        // Keep Prod on the short axis: a 4290-element product of |x|~2
        // overflows f64 mid-fold, where reassociation is meaningless.
        let axes: &[usize] = if op == ReduceOp::Prod { &[2] } else { &[1, 2] };
        let iaxes: Vec<i64> = axes.iter().map(|&x| x as i64).collect();
        let serial = reduce_reference_f32(&v, &dims, axes, op);
        let got = with_threads(4, || reduce(&a, &iaxes, false, op).unwrap());
        let bound = 1e-9 * axes.iter().map(|&x| dims[x]).product::<usize>() as f64;
        for (g, w) in got.as_slice::<f32>().unwrap().iter().zip(&serial) {
            // Long products overflow f32 to ±inf/NaN identically on both
            // sides; the relative bound only applies to finite outputs.
            if g.to_bits() == w.to_bits() {
                continue;
            }
            let rel = f64::from((g - w).abs()) / f64::from(w.abs()).max(1.0);
            assert!(rel <= bound, "op={op:?} got={g} want={w} rel={rel}");
        }
    }
}

#[test]
fn reduce_all_axes_below_one_grain_bitwise() {
    // GRAIN_REDUCE is 8192: a full reduction under it is one chunk, i.e.
    // exactly one lane fold in the documented order.
    let v = f32s(8000, 10);
    let a = TensorData::from_vec(v.clone(), Shape::from([8000])).unwrap();
    let want = reduce_lane_reference_f32(&v, &[8000], &[0], ReduceOp::Sum);
    let got = with_threads(8, || reduce(&a, &[], false, ReduceOp::Sum).unwrap());
    assert_eq!(bits32(got.as_slice::<f32>().unwrap()), bits32(&want));
}

#[test]
fn reduce_full_sum_thread_invariant_and_close_to_fold() {
    // Above one grain the chunked tree differs from the pure left fold
    // only by a grouping tolerance — but is bit-identical across thread
    // counts (fixed chunking).
    let n = 100_000usize;
    let v = f32s(n, 11);
    let a = TensorData::from_vec(v.clone(), Shape::from([n])).unwrap();
    let t1 = with_threads(1, || reduce(&a, &[], false, ReduceOp::Sum).unwrap());
    let t8 = with_threads(8, || reduce(&a, &[], false, ReduceOp::Sum).unwrap());
    assert_eq!(
        bits32(t1.as_slice::<f32>().unwrap()),
        bits32(t8.as_slice::<f32>().unwrap()),
        "fixed chunking must make full reductions thread-invariant"
    );
    let want = reduce_reference_f32(&v, &[n], &[0], ReduceOp::Sum);
    let got = t8.as_slice::<f32>().unwrap()[0] as f64;
    assert!(
        (got - f64::from(want[0])).abs() <= 1e-6 * f64::from(want[0].abs()).max(1.0),
        "chunked sum {got} vs fold {}",
        want[0]
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reduce_parity_random(
        d0 in 1usize..10, d1 in 1usize..14, d2 in 1usize..20,
        which in 0usize..4, op_ix in 0usize..5, seed in 0u64..1000,
    ) {
        let ops = [ReduceOp::Sum, ReduceOp::Mean, ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod];
        let op = ops[op_ix];
        let dims = [d0, d1, d2];
        let axes: Vec<i64> = match which {
            0 => vec![2],
            1 => vec![1, 2],
            2 => vec![0],
            _ => vec![0, 1, 2],
        };
        let v = f32s(dims.iter().product(), seed);
        let a = TensorData::from_vec(v.clone(), Shape::from(dims)).unwrap();
        let uaxes: Vec<usize> = axes.iter().map(|&x| x as usize).collect();
        // All these stay under one grain, so the expected bits are either
        // the serial fold or a single documented lane fold per row.
        let want = reduce_want_f32(&v, &dims, &uaxes, op);
        let got = with_threads(3, || reduce(&a, &axes, false, op).unwrap());
        prop_assert_eq!(bits32(got.as_slice::<f32>().unwrap()), bits32(&want));
    }
}

// ---------------------------------------------------------------------------
// Softmax: rows split across the pool, identical bits per row.
// ---------------------------------------------------------------------------

#[test]
fn softmax_thread_invariant_bitwise() {
    // GRAIN_ROWS is 8: 37 rows forces several row chunks.
    let (rows, classes) = (37usize, 19usize);
    let v = f32s(rows * classes, 12);
    let a = TensorData::from_vec(v, Shape::from([rows, classes])).unwrap();
    for f in [softmax, log_softmax] {
        let t1 = with_threads(1, || f(&a).unwrap());
        let t8 = with_threads(8, || f(&a).unwrap());
        assert_eq!(bits32(t1.as_slice::<f32>().unwrap()), bits32(t8.as_slice::<f32>().unwrap()));
    }
}

// ---------------------------------------------------------------------------
// Conv2d: forward vs direct-loop reference; backprops thread-invariant.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn conv2d_forward_parity_random_geometry(
        n in 1usize..3, h in 1usize..8, w in 1usize..8,
        kh in 1usize..4, kw in 1usize..4, c_in in 1usize..4, c_out in 1usize..4,
        stride in 1usize..3, same in any::<bool>(), seed in 0u64..1000,
    ) {
        let padding = if same { conv::Padding::Same } else { conv::Padding::Valid };
        let x = TensorData::from_vec(f32s(n * h * w * c_in, seed), Shape::from([n, h, w, c_in])).unwrap();
        let f = TensorData::from_vec(f32s(kh * kw * c_in * c_out, seed + 1), Shape::from([kh, kw, c_in, c_out])).unwrap();
        let Ok(g) = conv::conv2d_geometry(x.shape(), f.shape(), (stride, stride), padding) else {
            // Valid padding can make the output empty; nothing to compare.
            return Ok(());
        };
        let want = conv::conv2d_reference(
            x.as_slice::<f32>().unwrap(), f.as_slice::<f32>().unwrap(), &g);
        let got = with_threads(4, || conv::conv2d(&x, &f, (stride, stride), padding).unwrap());
        let got = got.as_slice::<f32>().unwrap();
        prop_assert_eq!(got.len(), want.len());
        for (i, (&gv, &wv)) in got.iter().zip(&want).enumerate() {
            // Value equality: the im2col path's +0.0 padding terms can
            // flip a -0.0 to +0.0, which `==` treats as equal.
            prop_assert!(gv == wv as f32, "element {i}: got {gv} want {wv}");
        }
    }
}

#[test]
fn conv2d_backprops_thread_invariant() {
    let x_shape = Shape::from([3usize, 9, 9, 4]);
    let f = TensorData::from_vec(f32s(3 * 3 * 4 * 6, 13), Shape::from([3, 3, 4, 6])).unwrap();
    let x = TensorData::from_vec(f32s(3 * 9 * 9 * 4, 14), x_shape.clone()).unwrap();
    let fwd = conv::conv2d(&x, &f, (1, 1), conv::Padding::Same).unwrap();
    let go = TensorData::from_vec(f32s(fwd.num_elements(), 15), fwd.shape().clone()).unwrap();
    let gi1 = with_threads(1, || {
        conv::conv2d_backprop_input(&x_shape, &f, &go, (1, 1), conv::Padding::Same).unwrap()
    });
    let gi8 = with_threads(8, || {
        conv::conv2d_backprop_input(&x_shape, &f, &go, (1, 1), conv::Padding::Same).unwrap()
    });
    assert_eq!(bits32(gi1.as_slice::<f32>().unwrap()), bits32(gi8.as_slice::<f32>().unwrap()));
    let gf1 = with_threads(1, || {
        conv::conv2d_backprop_filter(&x, f.shape(), &go, (1, 1), conv::Padding::Same).unwrap()
    });
    let gf8 = with_threads(8, || {
        conv::conv2d_backprop_filter(&x, f.shape(), &go, (1, 1), conv::Padding::Same).unwrap()
    });
    assert_eq!(bits32(gf1.as_slice::<f32>().unwrap()), bits32(gf8.as_slice::<f32>().unwrap()));
}

// ---------------------------------------------------------------------------
// Kernel sharing: eager and staged execution hit the same kernels, so a
// staged matmul must match the eager (and reference) bits too.
// ---------------------------------------------------------------------------

#[test]
fn staged_matmul_matches_eager_bitwise() {
    tf_eager::init();
    use tf_eager::prelude::*;
    let (m, k, n) = (23usize, 31usize, 17usize);
    let av = f32s(m * k, 16);
    let bv = f32s(k * n, 17);
    let a = api::constant(av.clone(), [m, k]).unwrap();
    let b = api::constant(bv.clone(), [k, n]).unwrap();
    let mut want = vec![0.0f32; m * n];
    matmul_reference(&av, &bv, m, k, n, false, false, &mut want);
    let eager = api::matmul(&a, &b).unwrap();
    let bc = b.clone();
    let f = function1("kernel_parity_mm", move |x| api::matmul(x, &bc));
    let staged = f.call1(&a).unwrap();
    let ev: Vec<f32> = eager.to_f64_vec().unwrap().iter().map(|&x| x as f32).collect();
    let sv: Vec<f32> = staged.to_f64_vec().unwrap().iter().map(|&x| x as f32).collect();
    assert_eq!(bits32(&ev), bits32(&want));
    assert_eq!(bits32(&sv), bits32(&want));
}
