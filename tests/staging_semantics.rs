//! Deeper staging semantics: tensor-dependent control flow *inside*
//! traces, the §4.2 backward-work invariance claim, device ops in graphs,
//! executor modes, and trace-time error behavior.

use std::sync::Arc;
use tf_eager::prelude::*;
use tf_eager::RuntimeError;
use tfe_runtime::context;

/// `cond` used inside a traced function becomes a `cond` *node* whose
/// branch is chosen at execution time — unlike a host `if`, which §4.1
/// warns is baked in at trace time.
#[test]
fn cond_inside_trace_stays_dynamic() {
    tf_eager::init();
    let then_f = function1("ct_then", |x| api::mul(x, &api::scalar(10.0f64)));
    let else_f = function1("ct_else", api::neg);
    let outer = {
        let then_f = then_f.clone();
        let else_f = else_f.clone();
        function("ct_outer", move |args| {
            let x = args[0].as_tensor().expect("x");
            let pred = api::greater(x, &api::scalar(0.0f64))?;
            tf_eager::cond(&pred, &then_f, &else_f, &[x])
        })
    };
    // One trace serves both branch outcomes.
    assert_eq!(outer.call_tensors(&[&api::scalar(3.0f64)]).unwrap()[0].scalar_f64().unwrap(), 30.0);
    assert_eq!(outer.call_tensors(&[&api::scalar(-3.0f64)]).unwrap()[0].scalar_f64().unwrap(), 3.0);
    assert_eq!(outer.num_concrete(), 1, "host if would have required two traces");
    // The cond survived as a node in the graph.
    let conc = outer.concrete_for(&[Arg::from(&api::scalar(0.0f64))]).unwrap();
    assert!(conc.raw.nodes.iter().any(|n| n.op == "cond"));
}

/// Likewise `while_loop` inside a trace: the trip count depends on the
/// runtime value, not on the traced one.
#[test]
fn while_inside_trace_stays_dynamic() {
    tf_eager::init();
    let cond_f = function("wt_cond", |args| {
        let i = args[0].as_tensor().expect("i");
        let limit = args[1].as_tensor().expect("limit");
        Ok(vec![api::less(i, limit)?])
    });
    let body_f = function("wt_body", |args| {
        let i = args[0].as_tensor().expect("i");
        let limit = args[1].as_tensor().expect("limit");
        Ok(vec![api::add(i, &api::scalar(1.0f64))?, limit.clone()])
    });
    let outer = {
        let cond_f = cond_f.clone();
        let body_f = body_f.clone();
        function("wt_outer", move |args| {
            let limit = args[0].as_tensor().expect("limit");
            let zero = api::scalar(0.0f64);
            let out = tf_eager::while_loop(&cond_f, &body_f, &[&zero, limit])?;
            Ok(vec![out[0].clone()])
        })
    };
    assert_eq!(outer.call_tensors(&[&api::scalar(4.0f64)]).unwrap()[0].scalar_f64().unwrap(), 4.0);
    assert_eq!(outer.call_tensors(&[&api::scalar(9.0f64)]).unwrap()[0].scalar_f64().unwrap(), 9.0);
    assert_eq!(outer.num_concrete(), 1);
}

/// §4.2: "there is no meaningful change in the amount of computation ...
/// needed in the backward pass by staging or unstaging a particular
/// function". We verify the staged backward executes a comparable number
/// of primitive nodes to the eager backward's op count (same graph modulo
/// the optimizer passes), NOT a recomputed forward.
#[test]
fn staged_backward_work_matches_eager() {
    tf_eager::init();
    let program = |x: &Tensor| -> Result<Tensor, RuntimeError> {
        let mut h = x.clone();
        for _ in 0..6 {
            h = api::tanh(&api::mul(&h, &h)?)?;
        }
        api::reduce_sum(&h, &[], false)
    };

    // Eager: count ops recorded for forward, then count backward ops via a
    // second tape observing the gradient computation.
    let x = api::constant(vec![0.3f64, -0.2, 0.7], [3]).unwrap();
    let outer = GradientTape::persistent();
    outer.watch(&x);
    let inner = GradientTape::new();
    inner.watch(&x);
    let y = program(&x).unwrap();
    let fwd_ops = inner.num_recorded();
    let before = outer.num_recorded();
    let _g = inner.gradient1(&y, &x).unwrap();
    let bwd_ops = outer.num_recorded() - before;
    assert!(fwd_ops >= 13, "forward should be ~13 ops, got {fwd_ops}");
    assert!(bwd_ops > fwd_ops, "backward does more work than forward");

    // Staged: the backward graph function's node count must be within a
    // small factor of the eager backward op count (no forward
    // recomputation, which would double it).
    let f = function1("work_invariance", move |x| program(x));
    let conc = f.concrete_for(&[Arg::from(&x)]).unwrap();
    let bundle = conc.forward_bundle().unwrap();
    let bwd = context::library().get(&bundle.bwd_name).unwrap();
    let staged_bwd_nodes = bwd.executable_node_count();
    assert!(
        staged_bwd_nodes as f64 <= 1.5 * bwd_ops as f64 + 10.0,
        "staged backward ({staged_bwd_nodes} nodes) should not exceed eager backward ({bwd_ops} ops)"
    );
    // And the forward variant adds no compute nodes, only outputs.
    let fwd = context::library().get(&bundle.fwd_name).unwrap();
    assert_eq!(
        fwd.executable_node_count(),
        conc.raw.executable_node_count(),
        "forward-with-intermediates must not recompute anything"
    );
}

/// Device copies recorded inside traces execute as `copy` nodes.
#[test]
fn copy_nodes_in_graphs() {
    tf_eager::init();
    tf_eager::register_sim_device(
        "/gpu:1",
        tf_eager::device::profiles::gtx1080(),
        tf_eager::device::KernelMode::Simulated,
    )
    .ok();
    let f = function1("copies", |x| {
        let on_gpu = api::copy_to(x, "/gpu:1")?;
        let back = api::copy_to(&api::square(&on_gpu)?, "/cpu:0")?;
        api::add(&back, &api::scalar(1.0f32))
    });
    let out = f.call1(&api::scalar(3.0f32)).unwrap();
    assert_eq!(out.scalar_f64().unwrap(), 10.0);
    let conc = f.concrete_for(&[Arg::from(&api::scalar(0.0f32))]).unwrap();
    assert_eq!(conc.raw.nodes.iter().filter(|n| n.op == "copy").count(), 2);
}

/// `print` is stateful: it survives pruning even though nothing consumes
/// it, and passes values through unchanged.
#[test]
fn print_is_kept_by_pruning() {
    tf_eager::init();
    let f = function1("printer", |x| {
        let _side_effect = api::print(x, "traced value: ")?;
        api::neg(x)
    });
    let out = f.call1(&api::scalar(5.0f64)).unwrap();
    assert_eq!(out.scalar_f64().unwrap(), -5.0);
    let conc = f.concrete_for(&[Arg::from(&api::scalar(0.0f64))]).unwrap();
    assert!(
        conc.function.nodes.iter().any(|n| n.op == "print"),
        "stateful print must survive optimization"
    );
}

/// Parallel executor mode produces the same results as serial for a
/// staged stateless function.
#[test]
fn parallel_exec_mode_for_calls() {
    tf_eager::init();
    let f = function1("par_mode", |x| {
        let mut branches = Vec::new();
        for i in 0..6 {
            let c = api::scalar(i as f64);
            branches.push(api::tanh(&api::add(x, &c)?)?);
        }
        let mut acc = branches[0].clone();
        for b in &branches[1..] {
            acc = api::add(&acc, b)?;
        }
        Ok(acc)
    });
    let x = api::constant(vec![0.1f64, 0.2], [2]).unwrap();
    let serial = f.call1(&x).unwrap().to_f64_vec().unwrap();
    let prev = context::set_exec_mode(tf_eager::ExecMode::Parallel);
    let parallel = f.call1(&x).unwrap().to_f64_vec().unwrap();
    context::set_exec_mode(prev);
    assert_eq!(serial, parallel);
}

/// Trace-time errors surface immediately with the same classification an
/// eager run would produce (§4.1: validation happens while tracing).
#[test]
fn trace_time_errors_match_eager_errors() {
    tf_eager::init();
    let bad = function("bad_shapes", |args| {
        let x = args[0].as_tensor().expect("x");
        // (2,3) @ (2,3) is invalid.
        Ok(vec![api::matmul(x, x)?])
    });
    let x = api::zeros(DType::F32, [2, 3]);
    let staged_err = bad.call(&[Arg::from(&x)]).unwrap_err().to_string();
    let eager_err = api::matmul(&x, &x).unwrap_err().to_string();
    assert_eq!(staged_err, eager_err, "same validation either way");
}

/// Dead variable ids fail staged execution, matching §4.3's contract:
/// "staged computations reference variables by unique identifiers, which
/// are no longer usable if the Python variable objects they reference do
/// not exist". (A `Func` whose closure clones the variable keeps it alive
/// — that is the by-reference capture working as intended — so this test
/// builds the graph directly, as a deserialized trace would.)
#[test]
fn dead_variable_in_graph_fails() {
    tf_eager::init();
    use tf_eager::graph::GraphBuilder;
    use tfe_ops::Attrs;
    let dead_id = {
        let v = Variable::new(TensorData::scalar(2.0f32));
        v.id() // v drops here; the id dangles
    };
    let mut b = GraphBuilder::new("dead_var_graph");
    let out = b
        .add_node(
            "read_variable",
            vec![],
            Attrs::new()
                .with("var_id", dead_id as i64)
                .with("dtype", DType::F32)
                .with("shape", Vec::<i64>::new()),
        )
        .unwrap()[0];
    let g = b.finish(vec![out], 0);
    let device = context::device_manager().host_cpu();
    let err =
        tfe_runtime::executor::run_function(&g, &[], &device, tf_eager::ExecMode::SerialPlanned)
            .unwrap_err();
    assert!(matches!(err, RuntimeError::VariableDead(_)), "expected VariableDead, got {err}");

    // Conversely: a live clone inside a Func's closure keeps the variable
    // usable even after the original handle drops.
    let f = {
        let v = Variable::new(TensorData::scalar(7.0f32));
        let cv = v.clone();
        let f = function("keeps_var_alive", move |_| Ok(vec![cv.read()?]));
        f.call(&[]).unwrap();
        drop(v);
        f
    };
    assert_eq!(f.call(&[]).unwrap()[0].scalar_f64().unwrap(), 7.0);
}

/// Eager dispatch on a cost-only device yields shape-correct placeholder
/// values and never runs kernels.
#[test]
fn cost_only_devices_produce_placeholders() {
    tf_eager::init();
    tf_eager::register_sim_device(
        "/gpu:2",
        tf_eager::device::profiles::gtx1080(),
        tf_eager::device::KernelMode::CostOnly,
    )
    .ok();
    let a = api::constant(vec![5.0f32, 5.0], [2]).unwrap();
    let out = context::with_device("/gpu:2", || api::add(&a, &a)).unwrap().unwrap();
    assert_eq!(out.shape().unwrap().dims(), &[2]);
    // Values are zeros (kernel skipped), device is the simulated GPU.
    assert_eq!(out.to_f64_vec().unwrap(), vec![0.0, 0.0]);
    assert_eq!(out.device().unwrap().to_string(), "/job:localhost/task:0/device:GPU:2");
}

/// Stacked device scopes restore correctly, and placement follows the
/// innermost scope (§4.4).
#[test]
fn nested_device_scopes() {
    tf_eager::init();
    tf_eager::register_sim_device(
        "/gpu:4",
        tf_eager::device::profiles::gtx1080(),
        tf_eager::device::KernelMode::Simulated,
    )
    .ok();
    let x = api::scalar(1.0f32);
    let (inner_dev, outer_dev) = context::with_device("/gpu:4", || {
        let inner =
            context::with_device("/cpu:0", || api::add(&x, &x).unwrap().device().unwrap()).unwrap();
        let outer = api::add(&x, &x).unwrap().device().unwrap();
        (inner, outer)
    })
    .unwrap();
    assert_eq!(inner_dev, tf_eager::device::DeviceName::local_cpu());
    assert_eq!(outer_dev.device_type, tf_eager::device::DeviceType::Gpu);
    // Scope fully popped.
    assert_eq!(
        api::add(&x, &x).unwrap().device().unwrap(),
        tf_eager::device::DeviceName::local_cpu()
    );
}

/// An `Arc`'d model shared by two staged functions does not retrace when
/// called through either (trace caches are per-Func).
#[test]
fn shared_state_across_funcs() {
    tf_eager::init();
    let v = Arc::new(Variable::new(TensorData::scalar(1.0f32)));
    let bump = {
        let v = v.clone();
        function("shared_bump", move |_| {
            v.assign_add(&api::scalar(1.0f32))?;
            Ok(vec![v.read()?])
        })
    };
    let read = {
        let v = v.clone();
        function("shared_read", move |_| Ok(vec![v.read()?]))
    };
    assert_eq!(bump.call(&[]).unwrap()[0].scalar_f64().unwrap(), 2.0);
    assert_eq!(read.call(&[]).unwrap()[0].scalar_f64().unwrap(), 2.0);
    assert_eq!(bump.call(&[]).unwrap()[0].scalar_f64().unwrap(), 3.0);
    assert_eq!(read.call(&[]).unwrap()[0].scalar_f64().unwrap(), 3.0);
}

/// Creating variables inside `init_scope` lifts the creation *out* of the
/// trace — the state-creation contract sees no in-trace creation, so the
/// function traces only once (this is exactly what `init_scope` is for:
/// "we use this scope to implement function's state-creation contract").
#[test]
fn init_scope_lifts_state_creation() {
    tf_eager::init();
    use parking_lot::Mutex;
    let slot: Arc<Mutex<Option<Variable>>> = Arc::new(Mutex::new(None));
    let trace_count = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let f = {
        let slot = slot.clone();
        let trace_count = trace_count.clone();
        function("init_scope_state", move |_| {
            trace_count.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            tf_eager::init_scope(|| {
                let mut guard = slot.lock();
                if guard.is_none() {
                    *guard = Some(Variable::new(TensorData::scalar(9.0f32)));
                }
            });
            slot.lock().as_ref().unwrap().read().map(|t| vec![t])
        })
    };
    assert_eq!(f.call(&[]).unwrap()[0].scalar_f64().unwrap(), 9.0);
    // One trace, not two: the creation was invisible to the contract.
    assert_eq!(trace_count.load(std::sync::atomic::Ordering::SeqCst), 1);
}

/// Out-of-range gather indices are a typed runtime error — never a panic —
/// and the classification and message are identical eagerly, staged
/// serially, and staged in parallel. Indices are data, so the staged error
/// surfaces at execution time (tracing only sees shapes).
#[test]
fn gather_out_of_range_is_typed_and_mode_invariant() {
    tf_eager::init();
    let params = api::constant(vec![1.0f64, 2.0, 3.0], [3]).unwrap();
    let idx = Tensor::from_data(TensorData::from_vec(vec![0i64, 7], Shape::from([2])).unwrap());

    let eager_err = api::gather(&params, &idx, 0).unwrap_err();
    assert!(
        matches!(eager_err, RuntimeError::Tensor(tfe_tensor::TensorError::InvalidArgument(_))),
        "want typed InvalidArgument, got {eager_err:?}"
    );
    assert!(eager_err.to_string().contains("out of range"), "{eager_err}");

    let f = function("gather_oob", |args| {
        let p = args[0].as_tensor().expect("params");
        let i = args[1].as_tensor().expect("indices");
        Ok(vec![api::gather(p, i, 0)?])
    });
    let staged_err = f.call(&[Arg::from(&params), Arg::from(&idx)]).unwrap_err();
    let prev = context::set_exec_mode(tf_eager::ExecMode::Parallel);
    let parallel_err = f.call(&[Arg::from(&params), Arg::from(&idx)]).unwrap_err();
    context::set_exec_mode(prev);
    assert_eq!(staged_err.to_string(), eager_err.to_string());
    assert_eq!(parallel_err.to_string(), eager_err.to_string());

    // In-range calls still work in both modes after the failures.
    let ok_idx = Tensor::from_data(TensorData::from_vec(vec![2i64, 0], Shape::from([2])).unwrap());
    let out = f.call(&[Arg::from(&params), Arg::from(&ok_idx)]).unwrap().remove(0);
    assert_eq!(out.to_f64_vec().unwrap(), vec![3.0, 1.0]);
}

/// The gather *gradient* is only implemented for axis 0; asking for another
/// axis is a typed Unsupported error, eager and staged alike.
#[test]
fn gather_gradient_unsupported_axis_is_typed() {
    tf_eager::init();
    let params = api::constant(vec![1.0f64, 2.0, 3.0, 4.0], [2, 2]).unwrap();
    let idx = Tensor::from_data(TensorData::from_vec(vec![1i64, 0], Shape::from([2])).unwrap());

    let tape = GradientTape::new();
    tape.watch(&params);
    let y = api::gather(&params, &idx, 1).unwrap();
    let s = api::reduce_sum(&y, &[], false).unwrap();
    let err = tape.gradient1(&s, &params).unwrap_err();
    assert!(matches!(err, RuntimeError::Unsupported(_)), "want Unsupported, got {err:?}");
    assert!(err.to_string().contains("axis 0"), "{err}");
}

/// A negative gather axis is normalized against the params rank before the
/// gradient dispatches, so axis=-1 on rank-1 params takes the supported
/// axis-0 scatter path instead of erroring.
#[test]
fn gather_gradient_negative_axis_normalizes() {
    tf_eager::init();
    let params = api::constant(vec![1.0f64, 2.0, 3.0], [3]).unwrap();
    let idx = Tensor::from_data(TensorData::from_vec(vec![2i64, 0, 2], Shape::from([3])).unwrap());

    let tape = GradientTape::new();
    tape.watch(&params);
    let y = api::gather(&params, &idx, -1).unwrap();
    let s = api::reduce_sum(&y, &[], false).unwrap();
    let g = tape.gradient1(&s, &params).unwrap();
    // Rows 2, 0, 2 were taken: grads accumulate [1, 0, 2].
    assert_eq!(g.to_f64_vec().unwrap(), vec![1.0, 0.0, 2.0]);
}
