//! Every listing and inline example from the paper, reproduced as a test.
//!
//! - §4.1 `select` example and the `add_noise` staging caveat
//! - Listing 1: nested tapes / higher-order derivatives
//! - Listing 2: variables are watched automatically
//! - Listing 4/5: device copies and device-scoped execution
//! - Listing 6: static-argument specialization (two graph functions)
//! - Listing 7: `function` mutates closed-over variables by reference
//! - Listing 8 / Figure 2: nested graph functions via `call` operations
//! - §4.6 state-creation contract (double trace, late creation errors)

use tf_eager::prelude::*;
use tf_eager::{device, Arg};

fn ensure_gpu() {
    tf_eager::register_sim_device(
        "/gpu:0",
        device::profiles::gtx1080(),
        device::KernelMode::Simulated,
    )
    .ok();
}

#[test]
fn section_4_1_select_example() {
    // def select(vector): return tf.matmul([[1.0, 0.0]], vector)
    // print(select([[2.0], [-2.0]])) -> [[2.]]
    let select = |vector: &Tensor| -> Result<Tensor, tf_eager::RuntimeError> {
        let a = api::constant(vec![1.0f32, 0.0], [1, 2])?;
        api::matmul(&a, vector)
    };
    let x = api::constant(vec![2.0f32, -2.0], [2, 1]).unwrap();
    let y = select(&x).unwrap();
    assert_eq!(y.shape().unwrap().dims(), &[1, 1]);
    assert_eq!(y.scalar_f64().unwrap(), 2.0);

    // Decorated with @function, invoking it is syntactically identical.
    let staged = function1("select", select);
    let y = staged.call1(&x).unwrap();
    assert_eq!(y.scalar_f64().unwrap(), 2.0);
}

#[test]
fn listing_1_nested_tapes() {
    let x = api::scalar(3.0f32);
    let t1 = GradientTape::new();
    let t2 = GradientTape::new();
    t1.watch(&x);
    t2.watch(&x);
    let y = api::mul(&x, &x).unwrap();
    let dy_dx = t2.gradient1(&y, &x).unwrap();
    let d2y_dx2 = t1.gradient1(&dy_dx, &x).unwrap();
    assert_eq!(dy_dx.scalar_f64().unwrap(), 6.0);
    assert_eq!(d2y_dx2.scalar_f64().unwrap(), 2.0);
}

#[test]
fn listing_2_variables_watched_automatically() {
    let x = Variable::new(TensorData::scalar(3.0f32));
    let t1 = GradientTape::new();
    let t2 = GradientTape::new();
    let xv = x.read().unwrap();
    let y = api::mul(&xv, &xv).unwrap();
    let dy_dx = t2.gradient_vars(&y, &[&x]).unwrap()[0].clone().unwrap();
    let d2y_dx2 = t1.gradient_vars(&dy_dx, &[&x]).unwrap()[0].clone().unwrap();
    assert_eq!(dy_dx.scalar_f64().unwrap(), 6.0);
    assert_eq!(d2y_dx2.scalar_f64().unwrap(), 2.0);
}

#[test]
fn listing_4_tensor_copies_between_devices() {
    ensure_gpu();
    let a = api::scalar(1.0f32); // stored on CPU
    assert_eq!(a.device().unwrap(), device::DeviceName::local_cpu());
    let b = a.gpu().unwrap(); // stored on GPU
    assert_eq!(b.device().unwrap().device_type, device::DeviceType::Gpu);
    assert_eq!(b.scalar_f64().unwrap(), 1.0);
    let c = b.cpu().unwrap();
    assert_eq!(c.device().unwrap(), device::DeviceName::local_cpu());
}

#[test]
fn listing_5_device_scope_with_cpu_inputs() {
    ensure_gpu();
    let a = api::scalar(1.0f32);
    let b = api::scalar(2.0f32);
    let c = tf_eager::context::with_device("/gpu:0", || api::add(&a, &b)).unwrap().unwrap();
    // The runtime transparently copied the CPU inputs.
    assert_eq!(c.scalar_f64().unwrap(), 3.0);
    assert_eq!(c.device().unwrap().device_type, device::DeviceType::Gpu);
}

#[test]
fn listing_6_static_argument_specialization() {
    let lossy_matmul = tf_eager::function("lossy_matmul", |args| {
        let w = args[0].as_tensor().expect("W");
        let x = args[1].as_tensor().expect("x");
        let training = args[2].as_bool().expect("training");
        let outputs = api::matmul(w, x)?;
        if training {
            Ok(vec![api::dropout(&outputs, 0.8)?])
        } else {
            Ok(vec![outputs])
        }
    });
    tf_eager::context::set_random_seed(0);
    let w = api::ones(DType::F32, [3, 5]);
    let x = api::ones(DType::F32, [5, 1]);
    let lossy = lossy_matmul.call(&[Arg::from(&w), Arg::from(&x), Arg::from(true)]).unwrap();
    let exact = lossy_matmul.call(&[Arg::from(&w), Arg::from(&x), Arg::from(false)]).unwrap();
    // "This code transparently makes two graph functions."
    assert_eq!(lossy_matmul.num_concrete(), 2);
    assert_eq!(exact[0].to_f64_vec().unwrap(), vec![5.0; 3]);
    assert_eq!(lossy[0].shape().unwrap().dims(), &[3, 1]);
}

#[test]
fn listing_7_function_mutates_variables() {
    let v = Variable::new(TensorData::scalar(0.0f32));
    let mutate = {
        let v = v.clone();
        tf_eager::function("mutate", move |_| {
            v.assign_add(&api::scalar(1.0f32))?;
            Ok(vec![v.read()?])
        })
    };
    mutate.call(&[]).unwrap();
    assert_eq!(v.read().unwrap().scalar_f64().unwrap(), 1.0);
    v.assign_add(&api::scalar(1.0f32)).unwrap();
    assert_eq!(v.read().unwrap().scalar_f64().unwrap(), 2.0);
    mutate.call(&[]).unwrap();
    assert_eq!(v.read().unwrap().scalar_f64().unwrap(), 3.0);
}

#[test]
fn listing_8_figure_2_function_composition() {
    let inner = function1("inner", api::relu);
    let outer = {
        let inner = inner.clone();
        tf_eager::function("outer", move |args| {
            let a = args[0].as_tensor().expect("a");
            let b = args[1].as_tensor().expect("b");
            inner.call_tensors(&[&api::matmul(a, b)?])
        })
    };
    // outer(eye(3), diag([-1, 1, 2]))
    let eye = api::eye(DType::F32, 3).unwrap();
    let diag =
        api::constant(vec![-1.0f32, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0], [3, 3]).unwrap();
    let out = outer.call_tensors(&[&eye, &diag]).unwrap();
    assert_eq!(out[0].to_f64_vec().unwrap(), vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
    // Figure 2a: outer's graph contains a call op executing inner's graph.
    let conc = outer
        .concrete_for(&[
            Arg::from(&api::zeros(DType::F32, [3, 3])),
            Arg::from(&api::zeros(DType::F32, [3, 3])),
        ])
        .unwrap();
    let call_node = conc.raw.nodes.iter().find(|n| n.op == "call").expect("call node");
    let callee = call_node.attrs.str("function").unwrap();
    // Figure 2b: the callee's graph exists in the library and is a relu.
    let inner_graph = tf_eager::context::library().get(callee).expect("inner graph");
    assert!(inner_graph.nodes.iter().any(|n| n.op == "relu"));
}

#[test]
fn section_4_1_add_noise_semantics() {
    use rand::{Rng, SeedableRng};
    // Host randomness: inserted into the graph as a constant.
    let host = {
        let rng = parking_lot::Mutex::new(rand::rngs::StdRng::seed_from_u64(7));
        tf_eager::function("add_noise_host", move |_| {
            let eye = api::eye(DType::F64, 5)?;
            let noise = api::scalar(rng.lock().gen::<f64>());
            Ok(vec![api::add(&eye, &noise)?])
        })
    };
    let a = host.call(&[]).unwrap()[0].to_f64_vec().unwrap();
    let b = host.call(&[]).unwrap()[0].to_f64_vec().unwrap();
    assert_eq!(a, b, "host randomness must be baked into the trace");

    // Op randomness: stays random across invocations of the graph function.
    let op = tf_eager::function("add_noise_op", |_| {
        let eye = api::eye(DType::F64, 5)?;
        let noise = api::random_normal(DType::F64, Shape::from([5, 5]), 0.0, 1.0)?;
        Ok(vec![api::add(&eye, &noise)?])
    });
    let a = op.call(&[]).unwrap()[0].to_f64_vec().unwrap();
    let b = op.call(&[]).unwrap()[0].to_f64_vec().unwrap();
    assert_ne!(a, b, "tf.random_normal must remain an operation");
}

#[test]
fn section_4_6_state_creation_contract() {
    use parking_lot::Mutex;
    use std::sync::Arc;
    // Good citizen: creates variables only on the first call.
    let slot: Arc<Mutex<Option<Variable>>> = Arc::new(Mutex::new(None));
    let good = {
        let slot = slot.clone();
        tf_eager::function("state_once", move |_| {
            let mut guard = slot.lock();
            if guard.is_none() {
                *guard = Some(Variable::new(TensorData::scalar(2.0f32)));
            }
            guard.as_ref().unwrap().read().map(|t| vec![t])
        })
    };
    assert_eq!(good.call(&[]).unwrap()[0].scalar_f64().unwrap(), 2.0);
    assert_eq!(good.call(&[]).unwrap()[0].scalar_f64().unwrap(), 2.0);

    // Violator: creates a variable on every trace.
    let hoard: Arc<Mutex<Vec<Variable>>> = Arc::new(Mutex::new(Vec::new()));
    let bad = {
        let hoard = hoard.clone();
        tf_eager::function("state_always", move |_| {
            let v = Variable::new(TensorData::scalar(0.0f32));
            let out = v.read()?;
            hoard.lock().push(v);
            Ok(vec![out])
        })
    };
    let err = bad.call(&[]).unwrap_err();
    assert!(err.to_string().contains("second trace"), "{err}");
}

#[test]
fn section_4_7_py_func_in_graph() {
    // Wrap a data-dependent recursive host function in a host_func and
    // stage the surrounding computation (§4.7's motivating scenario).
    let recursive = tf_eager::HostFunc::new(
        |xs| {
            fn collatz_steps(mut n: i64) -> i64 {
                let mut steps = 0;
                while n > 1 {
                    n = if n % 2 == 0 { n / 2 } else { 3 * n + 1 };
                    steps += 1;
                }
                steps
            }
            let n = xs[0].value()?.to_i64_vec()[0];
            Ok(vec![Tensor::from_data(TensorData::scalar(collatz_steps(n)))])
        },
        vec![(DType::I64, tfe_ops::SymShape::scalar())],
    );
    let staged = {
        let recursive = recursive.clone();
        tf_eager::function("uses_py_func", move |args| {
            let x = args[0].as_tensor().expect("x");
            let doubled = api::mul(x, &api::constant(vec![2i64], [1])?)?;
            let steps = recursive.call(&[&doubled])?.remove(0);
            Ok(vec![steps])
        })
    };
    let x = api::constant(vec![3i64], [1]).unwrap();
    // collatz(6) = 8 steps
    assert_eq!(staged.call_tensors(&[&x]).unwrap()[0].scalar_f64().unwrap(), 8.0);
}
