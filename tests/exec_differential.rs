//! Differential testing of the executor: for every randomly generated
//! graph, SerialPlanned, Parallel, and the optimized (pruned/CSE'd/folded/
//! fused) graph must agree on every output. The generator is seeded, so
//! every failure is reproducible from its case number.
//!
//! Covers elementwise chains, matmul, reductions, multi-output `split`,
//! nested `call`, data-dependent `cond`, and (separately) stateful
//! variable read/write graphs, which the parallel scheduler must execute
//! in program order via sequencing edges — bit-identical to serial.

mod common;

use common::{eager_interpret, fuzz_cases, generate, generate_stateful, known, make_args};
use std::sync::Arc;
use tf_eager::graph::passes::{self, OptimizeOptions};
use tf_eager::graph::{GraphBuilder, GraphFunction};
use tf_eager::ExecMode;
use tfe_ops::Attrs;
use tfe_runtime::executor;
use tfe_tensor::{DType, Shape, TensorData};

#[test]
fn serial_parallel_and_optimized_agree_on_random_graphs() {
    tf_eager::init();
    let device = tfe_runtime::context::device_manager().host_cpu();
    let evaluator = |node: &tf_eager::graph::Node,
                     ins: &[Arc<TensorData>]|
     -> Result<Vec<TensorData>, String> {
        tfe_runtime::kernels::run_kernel(&node.op, &node.attrs, ins).map_err(|e| e.to_string())
    };
    for seed in 0..fuzz_cases(120) {
        let (f, shapes) = generate(seed);
        let args = make_args(seed, &shapes);
        let serial = executor::run_function(&f, &args, &device, ExecMode::SerialPlanned)
            .unwrap_or_else(|e| panic!("case {seed} serial failed: {e}\n{}", f.dump()));
        let parallel = executor::run_function(&f, &args, &device, ExecMode::Parallel)
            .unwrap_or_else(|e| panic!("case {seed} parallel failed: {e}\n{}", f.dump()));
        // Same kernels, same operands: serial vs parallel is bit-identical.
        for (k, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert!(
                s.all_close(p, 0.0, 0.0),
                "case {seed} output {k}: serial {s:?} vs parallel {p:?}\n{}",
                f.dump()
            );
        }
        // The optimized graph may reassociate through fusion/folding:
        // allow 1e-6.
        let optimized = passes::optimize(&f, &OptimizeOptions::aggressive(), Some(&evaluator));
        for mode in [ExecMode::SerialPlanned, ExecMode::Parallel] {
            let opt_out =
                executor::run_function(&optimized, &args, &device, mode).unwrap_or_else(|e| {
                    panic!("case {seed} optimized {mode:?} failed: {e}\n{}", optimized.dump())
                });
            for (k, (s, o)) in serial.iter().zip(&opt_out).enumerate() {
                assert!(
                    s.all_close(o, 1e-6, 1e-6),
                    "case {seed} output {k} ({mode:?}): raw {s:?} vs optimized {o:?}\n{}\n{}",
                    f.dump(),
                    optimized.dump()
                );
            }
        }
    }
}

/// Eager dispatch differential: the same random graphs, interpreted as
/// chains of eager ops, must match the serial graph executor bitwise — in
/// synchronous dispatch *and* under `async_scope`, where every op becomes
/// a pending handle on the device's dispatch stream. With `TFE_ASYNC=1`
/// the "sync" interpretation dispatches asynchronously too, so a CI run
/// under that variable covers env-driven async as well.
#[test]
fn eager_sync_and_async_match_serial_on_random_graphs() {
    tf_eager::init();
    let device = tfe_runtime::context::device_manager().host_cpu();
    for seed in 0..fuzz_cases(120) {
        let (f, shapes) = generate(seed);
        let args = make_args(seed, &shapes);
        let serial = executor::run_function(&f, &args, &device, ExecMode::SerialPlanned)
            .unwrap_or_else(|e| panic!("case {seed} serial failed: {e}\n{}", f.dump()));
        let eager = eager_interpret(&f, &args)
            .unwrap_or_else(|e| panic!("case {seed} eager failed: {e}\n{}", f.dump()));
        let eager_async = tf_eager::async_scope(|| eager_interpret(&f, &args))
            .unwrap_or_else(|e| panic!("case {seed} async scope failed: {e}\n{}", f.dump()))
            .unwrap_or_else(|e| panic!("case {seed} async eager failed: {e}\n{}", f.dump()));
        for (k, ((s, e), a)) in serial.iter().zip(&eager).zip(&eager_async).enumerate() {
            assert!(
                s.all_close(e, 0.0, 0.0),
                "case {seed} output {k}: serial {s:?} vs eager {e:?}\n{}",
                f.dump()
            );
            assert!(
                s.all_close(a, 0.0, 0.0),
                "case {seed} output {k}: serial {s:?} vs async eager {a:?}\n{}",
                f.dump()
            );
        }
    }
}

/// Stateful graphs: random interleavings of variable reads, writes, and
/// stateless math. Parallel must match serial bit-for-bit on outputs *and*
/// on final variable state — sequencing edges, not luck.
#[test]
fn stateful_graphs_match_serial_bit_for_bit() {
    tf_eager::init();
    let device = tfe_runtime::context::device_manager().host_cpu();
    for seed in 0..fuzz_cases(40) {
        let vars: Vec<tf_eager::Variable> =
            (0..2).map(|k| tf_eager::Variable::new(TensorData::scalar(k as f64 + 1.0))).collect();
        let initial: Vec<Arc<TensorData>> = vars.iter().map(|v| v.peek()).collect();
        let var_ids: Vec<i64> = vars.iter().map(|v| v.id() as i64).collect();
        let f = generate_stateful(seed, &var_ids);
        assert!(f.is_stateful());

        let serial = executor::run_function(&f, &[], &device, ExecMode::SerialPlanned)
            .unwrap_or_else(|e| panic!("case {seed} serial failed: {e}\n{}", f.dump()));
        let serial_state: Vec<f64> = vars.iter().map(|v| v.peek().scalar_f64().unwrap()).collect();

        // Reset and replay in parallel.
        for (v, init) in vars.iter().zip(&initial) {
            v.restore((**init).clone()).unwrap();
        }
        let parallel = executor::run_function(&f, &[], &device, ExecMode::Parallel)
            .unwrap_or_else(|e| panic!("case {seed} parallel failed: {e}\n{}", f.dump()));
        let parallel_state: Vec<f64> =
            vars.iter().map(|v| v.peek().scalar_f64().unwrap()).collect();

        for (k, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert!(
                s.all_close(p, 0.0, 0.0),
                "case {seed} output {k}: serial {s:?} vs parallel {p:?}\n{}",
                f.dump()
            );
        }
        assert_eq!(serial_state, parallel_state, "case {seed} variable state\n{}", f.dump());
    }
}

/// Async eager dispatch over stateful programs: reads and writes enqueued
/// on the device stream execute in program order, so interpreting the same
/// random read/write interleavings eagerly inside an `async_scope` must
/// reproduce the serial graph executor bit-for-bit — outputs *and* final
/// variable state.
#[test]
fn async_eager_stateful_interleavings_match_serial() {
    tf_eager::init();
    let device = tfe_runtime::context::device_manager().host_cpu();
    for seed in 0..fuzz_cases(40) {
        let vars: Vec<tf_eager::Variable> =
            (0..2).map(|k| tf_eager::Variable::new(TensorData::scalar(k as f64 + 1.0))).collect();
        let initial: Vec<Arc<TensorData>> = vars.iter().map(|v| v.peek()).collect();
        let var_ids: Vec<i64> = vars.iter().map(|v| v.id() as i64).collect();
        let f = generate_stateful(seed, &var_ids);

        let serial = executor::run_function(&f, &[], &device, ExecMode::SerialPlanned)
            .unwrap_or_else(|e| panic!("case {seed} serial failed: {e}\n{}", f.dump()));
        let serial_state: Vec<f64> = vars.iter().map(|v| v.peek().scalar_f64().unwrap()).collect();

        // Reset and replay the same program as async eager ops.
        for (v, init) in vars.iter().zip(&initial) {
            v.restore((**init).clone()).unwrap();
        }
        let eager_async = tf_eager::async_scope(|| eager_interpret(&f, &[]))
            .unwrap_or_else(|e| panic!("case {seed} async scope failed: {e}\n{}", f.dump()))
            .unwrap_or_else(|e| panic!("case {seed} async eager failed: {e}\n{}", f.dump()));
        let async_state: Vec<f64> = vars.iter().map(|v| v.peek().scalar_f64().unwrap()).collect();

        for (k, (s, a)) in serial.iter().zip(&eager_async).enumerate() {
            assert!(
                s.all_close(a, 0.0, 0.0),
                "case {seed} output {k}: serial {s:?} vs async eager {a:?}\n{}",
                f.dump()
            );
        }
        assert_eq!(serial_state, async_state, "case {seed} variable state\n{}", f.dump());
    }
}

// ---------------------------------------------------------------------------
// Failure paths: fault injection via gather nodes whose constant indices are
// out of range — a typed runtime error that only fires at execution time, so
// the scheduler (not the builder) has to cope with it.
// ---------------------------------------------------------------------------

/// A wide graph of 8 independent branches joined by adds. Branches listed in
/// `fail_branches` dispatch `gather(x, [10 + i])` on a 4-element input — each
/// produces a distinct "index out of range" error message.
fn build_faulty(tag: &str, fail_branches: &[usize]) -> GraphFunction {
    let mut b = GraphBuilder::new(tag);
    let x = b.placeholder(DType::F64, known(&[4])).unwrap();
    let mut branches = Vec::new();
    for i in 0..8usize {
        let val = if fail_branches.contains(&i) {
            let idx = b
                .constant(Arc::new(
                    TensorData::from_vec(vec![(10 + i) as i64], Shape::from([1])).unwrap(),
                ))
                .unwrap();
            b.add_node("gather", vec![x, idx], Attrs::new().with("axis", 0i64)).unwrap()[0]
        } else {
            let mut t = x;
            for _ in 0..3 {
                t = b.add_node("tanh", vec![t], Attrs::new()).unwrap()[0];
            }
            t
        };
        let s =
            b.add_node("reduce_sum", vec![val], Attrs::new().with("axes", vec![0i64])).unwrap()[0];
        branches.push(s);
    }
    let mut acc = branches[0];
    for &t in &branches[1..] {
        acc = b.add_node("add", vec![acc, t], Attrs::new()).unwrap()[0];
    }
    b.finish(vec![acc], 0)
}

fn fault_args() -> Vec<Arc<TensorData>> {
    vec![Arc::new(TensorData::from_vec(vec![0.1f64, 0.2, 0.3, 0.4], Shape::from([4])).unwrap())]
}

/// A single faulty node produces the identical typed error serially and in
/// parallel, and the parallel run drains (returns at all) every time.
#[test]
fn faulty_graphs_error_identically_serial_and_parallel() {
    tf_eager::init();
    let device = tfe_runtime::context::device_manager().host_cpu();
    let f = build_faulty("fault_single", &[3]);
    let args = fault_args();
    let serial_err = executor::run_function(&f, &args, &device, ExecMode::SerialPlanned)
        .expect_err("serial must fail")
        .to_string();
    assert!(serial_err.contains("gather index 13 out of range"), "{serial_err}");
    for _ in 0..25 {
        let parallel_err = executor::run_function(&f, &args, &device, ExecMode::Parallel)
            .expect_err("parallel must fail")
            .to_string();
        assert_eq!(parallel_err, serial_err, "same typed error in both modes");
    }
}

/// With several racing faults the parallel run reports exactly one of them
/// (first error wins; later failures don't overwrite it), still drains, and
/// never reports a secondary artifact like a missing-slot internal error.
#[test]
fn first_error_wins_among_racing_faults() {
    tf_eager::init();
    let device = tfe_runtime::context::device_manager().host_cpu();
    let f = build_faulty("fault_multi", &[1, 5]);
    let args = fault_args();
    let expected =
        ["gather index 11 out of range".to_string(), "gather index 15 out of range".to_string()];
    for round in 0..30 {
        let err = executor::run_function(&f, &args, &device, ExecMode::Parallel)
            .expect_err("must fail")
            .to_string();
        assert!(
            expected.iter().any(|e| err.contains(e.as_str())),
            "round {round}: got a non-injected error: {err}"
        );
    }
}

/// Aborted runs must not poison the shared worker pool or leak value slots:
/// failing and healthy runs interleaved for many rounds keep producing
/// bit-identical healthy outputs in both modes.
#[test]
fn pool_survives_repeated_aborts() {
    tf_eager::init();
    let device = tfe_runtime::context::device_manager().host_cpu();
    let faulty = build_faulty("fault_interleaved", &[0, 7]);
    let healthy = build_faulty("fault_none", &[]);
    let args = fault_args();
    let want = executor::run_function(&healthy, &args, &device, ExecMode::SerialPlanned)
        .expect("healthy serial run");
    for _ in 0..20 {
        executor::run_function(&faulty, &args, &device, ExecMode::Parallel)
            .expect_err("faulty run must fail");
        let got = executor::run_function(&healthy, &args, &device, ExecMode::Parallel)
            .expect("healthy parallel run after an abort");
        for (s, p) in want.iter().zip(&got) {
            assert!(s.all_close(p, 0.0, 0.0), "healthy output drifted after aborts");
        }
    }
}
