//! Differential testing of the executor: for every randomly generated
//! graph, SerialPlanned, Parallel, and the optimized (pruned/CSE'd/folded/
//! fused) graph must agree on every output. The generator is seeded, so
//! every failure is reproducible from its case number.
//!
//! Covers elementwise chains, matmul, reductions, multi-output `split`,
//! nested `call`, data-dependent `cond`, and (separately) stateful
//! variable read/write graphs, which the parallel scheduler must execute
//! in program order via sequencing edges — bit-identical to serial.

use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tf_eager::graph::passes::{self, OptimizeOptions};
use tf_eager::graph::{GraphBuilder, GraphFunction, TensorRef};
use tf_eager::ExecMode;
use tfe_ops::{Attrs, SymShape};
use tfe_runtime::executor;
use tfe_tensor::{DType, Shape, TensorData};

const CASES: u64 = 120;

fn known(dims: &[usize]) -> SymShape {
    SymShape::known(&Shape::new(dims.to_vec()))
}

/// One value available to the generator: its graph reference plus its
/// concrete shape.
#[derive(Clone)]
struct Avail {
    tref: TensorRef,
    dims: Vec<usize>,
}

const UNARY: &[&str] = &["tanh", "sigmoid", "relu", "neg", "sin", "cos"];
const BINARY: &[&str] = &["add", "sub", "mul", "maximum", "minimum"];

/// Register a tiny callee for `dims` and return its name. The body
/// (`tanh(a) * 2 + 0.5`) keeps values bounded so towers of nested calls
/// stay well-conditioned.
fn register_inner(tag: &str, dims: &[usize]) -> (String, (String, String)) {
    let name = format!("diff_inner_{tag}");
    let mut b = GraphBuilder::new(&name);
    let a = b.placeholder(DType::F64, known(dims)).unwrap();
    let t = b.add_node("tanh", vec![a], Attrs::new()).unwrap()[0];
    let two = b.constant(Arc::new(TensorData::scalar(2.0f64))).unwrap();
    let m = b.add_node("mul", vec![t, two], Attrs::new()).unwrap()[0];
    let half = b.constant(Arc::new(TensorData::scalar(0.5f64))).unwrap();
    let s = b.add_node("add", vec![m, half], Attrs::new()).unwrap()[0];
    let f = b.finish(vec![s], 0);
    let sig = tfe_ops::catalog::encode_sig(&f.output_sigs());
    tfe_runtime::context::library().insert(f);
    (name, sig)
}

/// Register then/else branches for `dims` (relu vs neg) and return names
/// plus the shared output signature.
fn register_branches(tag: &str, dims: &[usize]) -> (String, String, (String, String)) {
    let mk = |name: &str, op: &str| {
        let mut b = GraphBuilder::new(name);
        let a = b.placeholder(DType::F64, known(dims)).unwrap();
        let r = b.add_node(op, vec![a], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![r], 0);
        let sig = tfe_ops::catalog::encode_sig(&f.output_sigs());
        tfe_runtime::context::library().insert(f);
        sig
    };
    let then_name = format!("diff_then_{tag}");
    let else_name = format!("diff_else_{tag}");
    let sig = mk(&then_name, "relu");
    mk(&else_name, "neg");
    (then_name, else_name, sig)
}

/// Generate one random graph: a handful of F64 placeholders, then a
/// seeded walk over op kinds, always returning the most recent value plus
/// one random survivor.
fn generate(seed: u64) -> (GraphFunction, Vec<Vec<usize>>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed * 7919 + 13);
    let mut b = GraphBuilder::new(&format!("diff_case_{seed}"));
    let input_shapes: Vec<Vec<usize>> = vec![vec![2, 3], vec![3, 2], vec![4], vec![]];
    let mut pool: Vec<Avail> = Vec::new();
    for dims in &input_shapes {
        let t = b.placeholder(DType::F64, known(dims)).unwrap();
        pool.push(Avail { tref: t, dims: dims.clone() });
    }
    let steps = rng.gen_range(4usize..14);
    for step in 0..steps {
        let kind = rng.gen_range(0u32..10);
        let pick = rng.gen_range(0usize..pool.len());
        let a = pool[pick].clone();
        match kind {
            // Elementwise unary (weighted: the bread and butter).
            0..=2 => {
                let op = UNARY[rng.gen_range(0usize..UNARY.len())];
                let t = b.add_node(op, vec![a.tref], Attrs::new()).unwrap()[0];
                pool.push(Avail { tref: t, dims: a.dims });
            }
            // Elementwise binary over same-shaped (or scalar) operands.
            3..=4 => {
                let mates: Vec<&Avail> =
                    pool.iter().filter(|c| c.dims == a.dims || c.dims.is_empty()).collect();
                let m = mates[rng.gen_range(0usize..mates.len())].clone();
                let op = BINARY[rng.gen_range(0usize..BINARY.len())];
                let t = b.add_node(op, vec![a.tref, m.tref], Attrs::new()).unwrap()[0];
                pool.push(Avail { tref: t, dims: a.dims });
            }
            // Matmul over compatible rank-2 pairs.
            5 => {
                let pairs: Vec<(Avail, Avail)> = pool
                    .iter()
                    .flat_map(|x| {
                        pool.iter()
                            .filter(|y| {
                                x.dims.len() == 2 && y.dims.len() == 2 && x.dims[1] == y.dims[0]
                            })
                            .map(|y| (x.clone(), y.clone()))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                if pairs.is_empty() {
                    continue;
                }
                let (x, y) = pairs[rng.gen_range(0usize..pairs.len())].clone();
                let t = b.add_node("matmul", vec![x.tref, y.tref], Attrs::new()).unwrap()[0];
                pool.push(Avail { tref: t, dims: vec![x.dims[0], y.dims[1]] });
            }
            // Reduce the last axis away.
            6 => {
                if a.dims.is_empty() {
                    continue;
                }
                let op = if rng.gen_bool(0.5) { "reduce_sum" } else { "reduce_mean" };
                let axis = (a.dims.len() - 1) as i64;
                let t =
                    b.add_node(op, vec![a.tref], Attrs::new().with("axes", vec![axis])).unwrap()[0];
                pool.push(Avail { tref: t, dims: a.dims[..a.dims.len() - 1].to_vec() });
            }
            // Split along an even leading axis; both halves join the pool.
            7 => {
                if a.dims.is_empty() || !a.dims[0].is_multiple_of(2) {
                    continue;
                }
                let parts = b
                    .add_node(
                        "split",
                        vec![a.tref],
                        Attrs::new().with("num", 2i64).with("axis", 0i64),
                    )
                    .unwrap();
                let mut half = a.dims.clone();
                half[0] /= 2;
                for p in parts {
                    pool.push(Avail { tref: p, dims: half.clone() });
                }
            }
            // Nested call.
            8 => {
                let (name, (d, s)) = register_inner(&format!("{seed}_{step}"), &a.dims);
                let t = b
                    .add_node(
                        "call",
                        vec![a.tref],
                        Attrs::new()
                            .with("function", name)
                            .with("out_dtypes", d)
                            .with("out_shapes", s),
                    )
                    .unwrap()[0];
                pool.push(Avail { tref: t, dims: a.dims });
            }
            // Data-dependent cond: predicate is a reduction of a live value.
            _ => {
                let scalars: Vec<&Avail> = pool.iter().filter(|c| c.dims.is_empty()).collect();
                let gate = scalars[rng.gen_range(0usize..scalars.len())].tref;
                let zero = b.constant(Arc::new(TensorData::scalar(0.0f64))).unwrap();
                let pred = b.add_node("greater", vec![gate, zero], Attrs::new()).unwrap()[0];
                let (then_name, else_name, (d, s)) =
                    register_branches(&format!("{seed}_{step}"), &a.dims);
                let t = b
                    .add_node(
                        "cond",
                        vec![pred, a.tref],
                        Attrs::new()
                            .with("then_fn", then_name)
                            .with("else_fn", else_name)
                            .with("out_dtypes", d)
                            .with("out_shapes", s),
                    )
                    .unwrap()[0];
                pool.push(Avail { tref: t, dims: a.dims });
            }
        }
    }
    let last = pool.last().unwrap().clone();
    let extra = pool[rng.gen_range(0usize..pool.len())].clone();
    let f = b.finish(vec![last.tref, extra.tref], 0);
    (f, input_shapes)
}

fn make_args(seed: u64, shapes: &[Vec<usize>]) -> Vec<Arc<TensorData>> {
    let mut rng = tfe_tensor::rng::TensorRng::seed_from_u64(seed ^ 0x5eed);
    shapes
        .iter()
        .map(|dims| Arc::new(rng.uniform(DType::F64, Shape::new(dims.clone()), -1.0, 1.0).unwrap()))
        .collect()
}

/// Interpret a generated graph as a chain of *eager* ops through the
/// central dispatcher, node by node in program order — the same kernels
/// over the same operands as the graph executors, but driven through
/// `context::execute` so the eager dispatch path (sync or async, per the
/// ambient mode) is what's under test.
fn eager_interpret(
    f: &GraphFunction,
    args: &[Arc<TensorData>],
) -> Result<Vec<Arc<TensorData>>, tf_eager::RuntimeError> {
    use std::collections::HashMap;
    let mut vals: HashMap<(usize, usize), tf_eager::Tensor> = HashMap::new();
    for (i, nid) in f.inputs.iter().enumerate() {
        vals.insert((nid.0, 0), tf_eager::Tensor::from_data((*args[i]).clone()));
    }
    for (id, node) in f.nodes.iter().enumerate() {
        match node.op.as_str() {
            "placeholder" => {}
            "const" => {
                let idx = node.attrs.int("value_index").expect("const index") as usize;
                vals.insert((id, 0), tf_eager::Tensor::from_data((*f.constants[idx]).clone()));
            }
            _ => {
                let ins: Vec<tf_eager::Tensor> =
                    node.inputs.iter().map(|r| vals[&(r.node.0, r.output)].clone()).collect();
                let outs = tfe_runtime::context::execute(&node.op, &ins, node.attrs.clone())?;
                for (k, t) in outs.into_iter().enumerate() {
                    vals.insert((id, k), t);
                }
            }
        }
    }
    f.outputs.iter().map(|r| vals[&(r.node.0, r.output)].value()).collect()
}

#[test]
fn serial_parallel_and_optimized_agree_on_random_graphs() {
    tf_eager::init();
    let device = tfe_runtime::context::device_manager().host_cpu();
    let evaluator = |node: &tf_eager::graph::Node,
                     ins: &[Arc<TensorData>]|
     -> Result<Vec<TensorData>, String> {
        tfe_runtime::kernels::run_kernel(&node.op, &node.attrs, ins).map_err(|e| e.to_string())
    };
    for seed in 0..CASES {
        let (f, shapes) = generate(seed);
        let args = make_args(seed, &shapes);
        let serial = executor::run_function(&f, &args, &device, ExecMode::SerialPlanned)
            .unwrap_or_else(|e| panic!("case {seed} serial failed: {e}\n{}", f.dump()));
        let parallel = executor::run_function(&f, &args, &device, ExecMode::Parallel)
            .unwrap_or_else(|e| panic!("case {seed} parallel failed: {e}\n{}", f.dump()));
        // Same kernels, same operands: serial vs parallel is bit-identical.
        for (k, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert!(
                s.all_close(p, 0.0, 0.0),
                "case {seed} output {k}: serial {s:?} vs parallel {p:?}\n{}",
                f.dump()
            );
        }
        // The optimized graph may reassociate through fusion/folding:
        // allow 1e-6.
        let optimized = passes::optimize(&f, &OptimizeOptions::aggressive(), Some(&evaluator));
        for mode in [ExecMode::SerialPlanned, ExecMode::Parallel] {
            let opt_out =
                executor::run_function(&optimized, &args, &device, mode).unwrap_or_else(|e| {
                    panic!("case {seed} optimized {mode:?} failed: {e}\n{}", optimized.dump())
                });
            for (k, (s, o)) in serial.iter().zip(&opt_out).enumerate() {
                assert!(
                    s.all_close(o, 1e-6, 1e-6),
                    "case {seed} output {k} ({mode:?}): raw {s:?} vs optimized {o:?}\n{}\n{}",
                    f.dump(),
                    optimized.dump()
                );
            }
        }
    }
}

/// Eager dispatch differential: the same random graphs, interpreted as
/// chains of eager ops, must match the serial graph executor bitwise — in
/// synchronous dispatch *and* under `async_scope`, where every op becomes
/// a pending handle on the device's dispatch stream. With `TFE_ASYNC=1`
/// the "sync" interpretation dispatches asynchronously too, so a CI run
/// under that variable covers env-driven async as well.
#[test]
fn eager_sync_and_async_match_serial_on_random_graphs() {
    tf_eager::init();
    let device = tfe_runtime::context::device_manager().host_cpu();
    for seed in 0..CASES {
        let (f, shapes) = generate(seed);
        let args = make_args(seed, &shapes);
        let serial = executor::run_function(&f, &args, &device, ExecMode::SerialPlanned)
            .unwrap_or_else(|e| panic!("case {seed} serial failed: {e}\n{}", f.dump()));
        let eager = eager_interpret(&f, &args)
            .unwrap_or_else(|e| panic!("case {seed} eager failed: {e}\n{}", f.dump()));
        let eager_async = tf_eager::async_scope(|| eager_interpret(&f, &args))
            .unwrap_or_else(|e| panic!("case {seed} async scope failed: {e}\n{}", f.dump()))
            .unwrap_or_else(|e| panic!("case {seed} async eager failed: {e}\n{}", f.dump()));
        for (k, ((s, e), a)) in serial.iter().zip(&eager).zip(&eager_async).enumerate() {
            assert!(
                s.all_close(e, 0.0, 0.0),
                "case {seed} output {k}: serial {s:?} vs eager {e:?}\n{}",
                f.dump()
            );
            assert!(
                s.all_close(a, 0.0, 0.0),
                "case {seed} output {k}: serial {s:?} vs async eager {a:?}\n{}",
                f.dump()
            );
        }
    }
}

/// The stateful-graph generator shared by the graph-mode and async-eager
/// differentials: random interleavings of variable reads, writes, and
/// stateless math over `vars`, always ending on fresh reads so the final
/// state is observable.
fn generate_stateful(seed: u64, var_ids: &[i64]) -> GraphFunction {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed * 104729 + 7);
    let mut b = GraphBuilder::new(&format!("diff_stateful_{seed}"));
    let read_attrs = |vid: i64| {
        Attrs::new().with("var_id", vid).with("dtype", DType::F64).with("shape", Vec::<i64>::new())
    };
    let mut latest: Vec<TensorRef> = Vec::new();
    for _ in 0..rng.gen_range(6usize..16) {
        let vid = var_ids[rng.gen_range(0usize..var_ids.len())];
        match rng.gen_range(0u32..4) {
            0 | 1 => {
                let r = b.add_node("read_variable", vec![], read_attrs(vid)).unwrap()[0];
                latest.push(r);
            }
            2 if !latest.is_empty() => {
                let src = latest[rng.gen_range(0usize..latest.len())];
                let t = b.add_node("tanh", vec![src], Attrs::new()).unwrap()[0];
                b.add_node("assign_add", vec![t], Attrs::new().with("var_id", vid)).unwrap();
            }
            _ if !latest.is_empty() => {
                let x = latest[rng.gen_range(0usize..latest.len())];
                let y = latest[rng.gen_range(0usize..latest.len())];
                let s = b.add_node("add", vec![x, y], Attrs::new()).unwrap()[0];
                latest.push(s);
            }
            _ => {
                let r = b.add_node("read_variable", vec![], read_attrs(vid)).unwrap()[0];
                latest.push(r);
            }
        }
    }
    let finals: Vec<TensorRef> = var_ids
        .iter()
        .map(|&vid| b.add_node("read_variable", vec![], read_attrs(vid)).unwrap()[0])
        .collect();
    b.finish(finals, 0)
}

/// Stateful graphs: random interleavings of variable reads, writes, and
/// stateless math. Parallel must match serial bit-for-bit on outputs *and*
/// on final variable state — sequencing edges, not luck.
#[test]
fn stateful_graphs_match_serial_bit_for_bit() {
    tf_eager::init();
    let device = tfe_runtime::context::device_manager().host_cpu();
    for seed in 0..40u64 {
        let vars: Vec<tf_eager::Variable> =
            (0..2).map(|k| tf_eager::Variable::new(TensorData::scalar(k as f64 + 1.0))).collect();
        let initial: Vec<Arc<TensorData>> = vars.iter().map(|v| v.peek()).collect();
        let var_ids: Vec<i64> = vars.iter().map(|v| v.id() as i64).collect();
        let f = generate_stateful(seed, &var_ids);
        assert!(f.is_stateful());

        let serial = executor::run_function(&f, &[], &device, ExecMode::SerialPlanned)
            .unwrap_or_else(|e| panic!("case {seed} serial failed: {e}\n{}", f.dump()));
        let serial_state: Vec<f64> = vars.iter().map(|v| v.peek().scalar_f64().unwrap()).collect();

        // Reset and replay in parallel.
        for (v, init) in vars.iter().zip(&initial) {
            v.restore((**init).clone()).unwrap();
        }
        let parallel = executor::run_function(&f, &[], &device, ExecMode::Parallel)
            .unwrap_or_else(|e| panic!("case {seed} parallel failed: {e}\n{}", f.dump()));
        let parallel_state: Vec<f64> =
            vars.iter().map(|v| v.peek().scalar_f64().unwrap()).collect();

        for (k, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert!(
                s.all_close(p, 0.0, 0.0),
                "case {seed} output {k}: serial {s:?} vs parallel {p:?}\n{}",
                f.dump()
            );
        }
        assert_eq!(serial_state, parallel_state, "case {seed} variable state\n{}", f.dump());
    }
}

/// Async eager dispatch over stateful programs: reads and writes enqueued
/// on the device stream execute in program order, so interpreting the same
/// random read/write interleavings eagerly inside an `async_scope` must
/// reproduce the serial graph executor bit-for-bit — outputs *and* final
/// variable state.
#[test]
fn async_eager_stateful_interleavings_match_serial() {
    tf_eager::init();
    let device = tfe_runtime::context::device_manager().host_cpu();
    for seed in 0..40u64 {
        let vars: Vec<tf_eager::Variable> =
            (0..2).map(|k| tf_eager::Variable::new(TensorData::scalar(k as f64 + 1.0))).collect();
        let initial: Vec<Arc<TensorData>> = vars.iter().map(|v| v.peek()).collect();
        let var_ids: Vec<i64> = vars.iter().map(|v| v.id() as i64).collect();
        let f = generate_stateful(seed, &var_ids);

        let serial = executor::run_function(&f, &[], &device, ExecMode::SerialPlanned)
            .unwrap_or_else(|e| panic!("case {seed} serial failed: {e}\n{}", f.dump()));
        let serial_state: Vec<f64> = vars.iter().map(|v| v.peek().scalar_f64().unwrap()).collect();

        // Reset and replay the same program as async eager ops.
        for (v, init) in vars.iter().zip(&initial) {
            v.restore((**init).clone()).unwrap();
        }
        let eager_async = tf_eager::async_scope(|| eager_interpret(&f, &[]))
            .unwrap_or_else(|e| panic!("case {seed} async scope failed: {e}\n{}", f.dump()))
            .unwrap_or_else(|e| panic!("case {seed} async eager failed: {e}\n{}", f.dump()));
        let async_state: Vec<f64> = vars.iter().map(|v| v.peek().scalar_f64().unwrap()).collect();

        for (k, (s, a)) in serial.iter().zip(&eager_async).enumerate() {
            assert!(
                s.all_close(a, 0.0, 0.0),
                "case {seed} output {k}: serial {s:?} vs async eager {a:?}\n{}",
                f.dump()
            );
        }
        assert_eq!(serial_state, async_state, "case {seed} variable state\n{}", f.dump());
    }
}

// ---------------------------------------------------------------------------
// Failure paths: fault injection via gather nodes whose constant indices are
// out of range — a typed runtime error that only fires at execution time, so
// the scheduler (not the builder) has to cope with it.
// ---------------------------------------------------------------------------

/// A wide graph of 8 independent branches joined by adds. Branches listed in
/// `fail_branches` dispatch `gather(x, [10 + i])` on a 4-element input — each
/// produces a distinct "index out of range" error message.
fn build_faulty(tag: &str, fail_branches: &[usize]) -> GraphFunction {
    let mut b = GraphBuilder::new(tag);
    let x = b.placeholder(DType::F64, known(&[4])).unwrap();
    let mut branches = Vec::new();
    for i in 0..8usize {
        let val = if fail_branches.contains(&i) {
            let idx = b
                .constant(Arc::new(
                    TensorData::from_vec(vec![(10 + i) as i64], Shape::from([1])).unwrap(),
                ))
                .unwrap();
            b.add_node("gather", vec![x, idx], Attrs::new().with("axis", 0i64)).unwrap()[0]
        } else {
            let mut t = x;
            for _ in 0..3 {
                t = b.add_node("tanh", vec![t], Attrs::new()).unwrap()[0];
            }
            t
        };
        let s =
            b.add_node("reduce_sum", vec![val], Attrs::new().with("axes", vec![0i64])).unwrap()[0];
        branches.push(s);
    }
    let mut acc = branches[0];
    for &t in &branches[1..] {
        acc = b.add_node("add", vec![acc, t], Attrs::new()).unwrap()[0];
    }
    b.finish(vec![acc], 0)
}

fn fault_args() -> Vec<Arc<TensorData>> {
    vec![Arc::new(TensorData::from_vec(vec![0.1f64, 0.2, 0.3, 0.4], Shape::from([4])).unwrap())]
}

/// A single faulty node produces the identical typed error serially and in
/// parallel, and the parallel run drains (returns at all) every time.
#[test]
fn faulty_graphs_error_identically_serial_and_parallel() {
    tf_eager::init();
    let device = tfe_runtime::context::device_manager().host_cpu();
    let f = build_faulty("fault_single", &[3]);
    let args = fault_args();
    let serial_err = executor::run_function(&f, &args, &device, ExecMode::SerialPlanned)
        .expect_err("serial must fail")
        .to_string();
    assert!(serial_err.contains("gather index 13 out of range"), "{serial_err}");
    for _ in 0..25 {
        let parallel_err = executor::run_function(&f, &args, &device, ExecMode::Parallel)
            .expect_err("parallel must fail")
            .to_string();
        assert_eq!(parallel_err, serial_err, "same typed error in both modes");
    }
}

/// With several racing faults the parallel run reports exactly one of them
/// (first error wins; later failures don't overwrite it), still drains, and
/// never reports a secondary artifact like a missing-slot internal error.
#[test]
fn first_error_wins_among_racing_faults() {
    tf_eager::init();
    let device = tfe_runtime::context::device_manager().host_cpu();
    let f = build_faulty("fault_multi", &[1, 5]);
    let args = fault_args();
    let expected =
        ["gather index 11 out of range".to_string(), "gather index 15 out of range".to_string()];
    for round in 0..30 {
        let err = executor::run_function(&f, &args, &device, ExecMode::Parallel)
            .expect_err("must fail")
            .to_string();
        assert!(
            expected.iter().any(|e| err.contains(e.as_str())),
            "round {round}: got a non-injected error: {err}"
        );
    }
}

/// Aborted runs must not poison the shared worker pool or leak value slots:
/// failing and healthy runs interleaved for many rounds keep producing
/// bit-identical healthy outputs in both modes.
#[test]
fn pool_survives_repeated_aborts() {
    tf_eager::init();
    let device = tfe_runtime::context::device_manager().host_cpu();
    let faulty = build_faulty("fault_interleaved", &[0, 7]);
    let healthy = build_faulty("fault_none", &[]);
    let args = fault_args();
    let want = executor::run_function(&healthy, &args, &device, ExecMode::SerialPlanned)
        .expect("healthy serial run");
    for _ in 0..20 {
        executor::run_function(&faulty, &args, &device, ExecMode::Parallel)
            .expect_err("faulty run must fail");
        let got = executor::run_function(&healthy, &args, &device, ExecMode::Parallel)
            .expect("healthy parallel run after an abort");
        for (s, p) in want.iter().zip(&got) {
            assert!(s.all_close(p, 0.0, 0.0), "healthy output drifted after aborts");
        }
    }
}
