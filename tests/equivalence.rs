//! The core correctness property of the multi-stage model: for programs
//! whose op set does not depend on host state, **staging must not change
//! results** (§4.1: "as long as the set of operations in the trace does
//! not depend on Python state we can generate a correct trace").
//!
//! Random program generator → run eagerly → run staged (optimized graphs,
//! trace-cache hit the second time) → compare bitwise-ish; also compare
//! gradients, and fused-vs-unfused execution.

use proptest::prelude::*;
use tf_eager::prelude::*;
use tf_eager::RuntimeError;

/// A tiny random-program AST over well-conditioned float ops.
#[derive(Debug, Clone)]
enum Expr {
    Input(usize),
    Unary(&'static str, Box<Expr>),
    Binary(&'static str, Box<Expr>, Box<Expr>),
    Reduce(Box<Expr>, bool),
    Reshape(Box<Expr>),
}

const UNARY: &[&str] = &["tanh", "sigmoid", "softplus", "sin", "cos", "relu", "neg", "erf"];
const BINARY: &[&str] = &["add", "sub", "mul", "maximum", "minimum"];

fn arb_expr(inputs: usize) -> impl Strategy<Value = Expr> {
    let leaf = (0..inputs).prop_map(Expr::Input);
    leaf.prop_recursive(4, 24, 3, move |inner| {
        prop_oneof![
            (0..UNARY.len(), inner.clone()).prop_map(|(i, e)| Expr::Unary(UNARY[i], Box::new(e))),
            (0..BINARY.len(), inner.clone(), inner.clone()).prop_map(|(i, a, b)| Expr::Binary(
                BINARY[i],
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), any::<bool>()).prop_map(|(e, k)| Expr::Reduce(Box::new(e), k)),
            inner.prop_map(|e| Expr::Reshape(Box::new(e))),
        ]
    })
}

fn eval(expr: &Expr, inputs: &[Tensor]) -> Result<Tensor, RuntimeError> {
    match expr {
        Expr::Input(i) => Ok(inputs[*i % inputs.len()].clone()),
        Expr::Unary(op, e) => {
            let x = eval(e, inputs)?;
            tfe_runtime::context::execute(op, &[x], tfe_ops::Attrs::new()).map(|mut v| v.remove(0))
        }
        Expr::Binary(op, a, b) => {
            let a = eval(a, inputs)?;
            let b = eval(b, inputs)?;
            tfe_runtime::context::execute(op, &[a, b], tfe_ops::Attrs::new())
                .map(|mut v| v.remove(0))
        }
        Expr::Reduce(e, keep) => {
            let x = eval(e, inputs)?;
            // Reduce the last axis if there is one; broadcasting keeps the
            // program well-formed either way.
            if x.rank() > 0 {
                api::reduce_mean(&x, &[-1], *keep)
            } else {
                Ok(x)
            }
        }
        Expr::Reshape(e) => {
            let x = eval(e, inputs)?;
            let n = x.shape()?.num_elements() as i64;
            let r = api::reshape(&x, &[n])?;
            api::reshape(&r, &x.shape()?.dims().iter().map(|&d| d as i64).collect::<Vec<_>>())
        }
    }
}

fn input_tensors(seed: u64) -> Vec<Tensor> {
    let mut rng = tfe_tensor::rng::TensorRng::seed_from_u64(seed);
    vec![
        Tensor::from_data(rng.uniform(DType::F64, Shape::from([2, 3]), -1.0, 1.0).unwrap()),
        Tensor::from_data(rng.uniform(DType::F64, Shape::from([3]), -1.0, 1.0).unwrap()),
        Tensor::from_data(rng.uniform(DType::F64, Shape::scalar(), -1.0, 1.0).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn staging_preserves_results(expr in arb_expr(3), seed in 0u64..500) {
        tf_eager::init();
        let inputs = input_tensors(seed);
        let Ok(eager) = eval(&expr, &inputs) else { return Ok(()) };

        let expr2 = expr.clone();
        let staged_fn = function("prop_equiv", move |args: &[Arg]| {
            let tensors: Vec<Tensor> =
                args.iter().filter_map(|a| a.as_tensor().cloned()).collect();
            Ok(vec![eval(&expr2, &tensors)?])
        });
        let args: Vec<Arg> = inputs.iter().map(Arg::from).collect();
        let staged = staged_fn.call(&args).unwrap().remove(0);
        let e = eager.value().unwrap();
        let s = staged.value().unwrap();
        prop_assert!(
            e.all_close(&s, 1e-12, 1e-12),
            "eager {:?} vs staged {:?} for {:?}",
            e, s, expr
        );
        // Cache hit must agree too.
        let again = staged_fn.call(&args).unwrap().remove(0);
        prop_assert!(s.all_close(&again.value().unwrap(), 0.0, 0.0));
        prop_assert_eq!(staged_fn.num_concrete(), 1);
    }

    #[test]
    fn staging_preserves_gradients(expr in arb_expr(2), seed in 0u64..500) {
        tf_eager::init();
        let inputs = input_tensors(seed);
        // Scalar loss = mean of the program output.
        let loss_of = |xs: &[Tensor]| -> Result<Tensor, RuntimeError> {
            let y = eval(&expr, xs)?;
            api::reduce_mean(&y, &[], false)
        };
        let Ok(_) = loss_of(&inputs) else { return Ok(()) };

        // Eager gradient.
        let tape = GradientTape::new();
        for t in &inputs {
            tape.watch(t);
        }
        let loss = loss_of(&inputs).unwrap();
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let eager_grads = tape.gradient(&loss, &refs).unwrap();

        // Gradient through a staged call.
        let expr2 = expr.clone();
        let staged_fn = function("prop_grad", move |args: &[Arg]| {
            let tensors: Vec<Tensor> =
                args.iter().filter_map(|a| a.as_tensor().cloned()).collect();
            let y = eval(&expr2, &tensors)?;
            Ok(vec![api::reduce_mean(&y, &[], false)?])
        });
        let tape = GradientTape::new();
        for t in &inputs {
            tape.watch(t);
        }
        let args: Vec<Arg> = inputs.iter().map(Arg::from).collect();
        let loss = staged_fn.call(&args).unwrap().remove(0);
        let staged_grads = tape.gradient(&loss, &refs).unwrap();

        for (i, (e, s)) in eager_grads.iter().zip(&staged_grads).enumerate() {
            match (e, s) {
                (Some(e), Some(s)) => {
                    let (e, s) = (e.value().unwrap(), s.value().unwrap());
                    prop_assert!(
                        e.all_close(&s, 1e-9, 1e-9),
                        "grad {i}: eager {:?} vs staged {:?} for {:?}",
                        e, s, expr
                    );
                }
                // Staged zeros-for-unconnected vs eager None both mean "no
                // dependence"; verify the staged one is all zero then.
                (None, Some(s)) => {
                    let s = s.value().unwrap();
                    prop_assert!(
                        s.to_f64_vec().iter().all(|&v| v == 0.0),
                        "staged grad {i} should be zero for {:?}", expr
                    );
                }
                (Some(e), None) => {
                    let e = e.value().unwrap();
                    prop_assert!(e.to_f64_vec().iter().all(|&v| v == 0.0));
                }
                (None, None) => {}
            }
        }
    }

    #[test]
    fn fusion_preserves_results(expr in arb_expr(3), seed in 0u64..500) {
        // Build the raw trace, run it unoptimized and with the aggressive
        // (fusing) pipeline through the executor; results must agree.
        tf_eager::init();
        let inputs = input_tensors(seed);
        let Ok(_) = eval(&expr, &inputs) else { return Ok(()) };
        let expr2 = expr.clone();
        let f = function("prop_fuse", move |args: &[Arg]| {
            let tensors: Vec<Tensor> =
                args.iter().filter_map(|a| a.as_tensor().cloned()).collect();
            Ok(vec![eval(&expr2, &tensors)?])
        });
        let args: Vec<Arg> = inputs.iter().map(Arg::from).collect();
        let conc = f.concrete_for(&args).unwrap();
        let evaluator = |node: &tf_eager::graph::Node,
                         ins: &[std::sync::Arc<TensorData>]|
         -> Result<Vec<TensorData>, String> {
            tfe_runtime::kernels::run_kernel(&node.op, &node.attrs, ins)
                .map_err(|e| e.to_string())
        };
        let fused = tf_eager::graph::passes::optimize(
            &conc.raw,
            &tf_eager::graph::passes::OptimizeOptions::aggressive(),
            Some(&evaluator),
        );
        let device = tfe_runtime::context::device_manager().host_cpu();
        let arg_data: Vec<std::sync::Arc<TensorData>> =
            inputs.iter().map(|t| t.value().unwrap()).collect();
        let raw_out = tfe_runtime::executor::run_function(
            &conc.raw,
            &arg_data,
            &device,
            tf_eager::ExecMode::SerialPlanned,
        )
        .unwrap();
        let fused_out = tfe_runtime::executor::run_function(
            &fused,
            &arg_data,
            &device,
            tf_eager::ExecMode::SerialPlanned,
        )
        .unwrap();
        prop_assert!(
            raw_out[0].all_close(&fused_out[0], 1e-12, 1e-12),
            "fusion changed the result for {:?}", expr
        );
        // And the parallel executor agrees with the serial one.
        let par_out = tfe_runtime::executor::run_function(
            &conc.raw,
            &arg_data,
            &device,
            tf_eager::ExecMode::Parallel,
        )
        .unwrap();
        prop_assert!(raw_out[0].all_close(&par_out[0], 0.0, 0.0));
    }
}
