//! Shared corpus machinery for the differential suites
//! (`exec_differential.rs`, `pass_pipeline.rs`): seeded random-graph
//! generators, the eager reference interpreter, corpora biased toward the
//! optimizer's rewrite patterns, and a graph-level shrinker that persists
//! failing graphs as Graphviz artifacts.
//!
//! Every generator is seeded, so any failure reproduces from its case
//! number; `TFE_FUZZ_CASES` scales corpus sizes without editing tests.
#![allow(dead_code)] // each test binary links a different subset

use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tf_eager::graph::{GraphBuilder, GraphFunction, Node, NodeId, TensorRef};
use tfe_ops::{Attrs, SymShape};
use tfe_tensor::{DType, Shape, TensorData};

/// Corpus size: `TFE_FUZZ_CASES` when set (one knob for CI smoke runs vs.
/// overnight soaks), otherwise the suite's default.
pub fn fuzz_cases(default: u64) -> u64 {
    std::env::var("TFE_FUZZ_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

pub fn known(dims: &[usize]) -> SymShape {
    SymShape::known(&Shape::new(dims.to_vec()))
}

/// One value available to the generator: its graph reference plus its
/// concrete shape.
#[derive(Clone)]
pub struct Avail {
    pub tref: TensorRef,
    pub dims: Vec<usize>,
}

pub const UNARY: &[&str] = &["tanh", "sigmoid", "relu", "neg", "sin", "cos"];
pub const BINARY: &[&str] = &["add", "sub", "mul", "maximum", "minimum"];

/// Register a tiny callee for `dims` and return its name. The body
/// (`tanh(a) * 2 + 0.5`) keeps values bounded so towers of nested calls
/// stay well-conditioned.
pub fn register_inner(tag: &str, dims: &[usize]) -> (String, (String, String)) {
    let name = format!("diff_inner_{tag}");
    let mut b = GraphBuilder::new(&name);
    let a = b.placeholder(DType::F64, known(dims)).unwrap();
    let t = b.add_node("tanh", vec![a], Attrs::new()).unwrap()[0];
    let two = b.constant(Arc::new(TensorData::scalar(2.0f64))).unwrap();
    let m = b.add_node("mul", vec![t, two], Attrs::new()).unwrap()[0];
    let half = b.constant(Arc::new(TensorData::scalar(0.5f64))).unwrap();
    let s = b.add_node("add", vec![m, half], Attrs::new()).unwrap()[0];
    let f = b.finish(vec![s], 0);
    let sig = tfe_ops::catalog::encode_sig(&f.output_sigs());
    tfe_runtime::context::library().insert(f);
    (name, sig)
}

/// Register then/else branches for `dims` (relu vs neg) and return names
/// plus the shared output signature.
pub fn register_branches(tag: &str, dims: &[usize]) -> (String, String, (String, String)) {
    let mk = |name: &str, op: &str| {
        let mut b = GraphBuilder::new(name);
        let a = b.placeholder(DType::F64, known(dims)).unwrap();
        let r = b.add_node(op, vec![a], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![r], 0);
        let sig = tfe_ops::catalog::encode_sig(&f.output_sigs());
        tfe_runtime::context::library().insert(f);
        sig
    };
    let then_name = format!("diff_then_{tag}");
    let else_name = format!("diff_else_{tag}");
    let sig = mk(&then_name, "relu");
    mk(&else_name, "neg");
    (then_name, else_name, sig)
}

/// Generate one random graph: a handful of F64 placeholders, then a
/// seeded walk over op kinds, always returning the most recent value plus
/// one random survivor.
pub fn generate(seed: u64) -> (GraphFunction, Vec<Vec<usize>>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed * 7919 + 13);
    let mut b = GraphBuilder::new(&format!("diff_case_{seed}"));
    let input_shapes: Vec<Vec<usize>> = vec![vec![2, 3], vec![3, 2], vec![4], vec![]];
    let mut pool: Vec<Avail> = Vec::new();
    for dims in &input_shapes {
        let t = b.placeholder(DType::F64, known(dims)).unwrap();
        pool.push(Avail { tref: t, dims: dims.clone() });
    }
    let steps = rng.gen_range(4usize..14);
    for step in 0..steps {
        let kind = rng.gen_range(0u32..10);
        let pick = rng.gen_range(0usize..pool.len());
        let a = pool[pick].clone();
        match kind {
            // Elementwise unary (weighted: the bread and butter).
            0..=2 => {
                let op = UNARY[rng.gen_range(0usize..UNARY.len())];
                let t = b.add_node(op, vec![a.tref], Attrs::new()).unwrap()[0];
                pool.push(Avail { tref: t, dims: a.dims });
            }
            // Elementwise binary over same-shaped (or scalar) operands.
            3..=4 => {
                let mates: Vec<&Avail> =
                    pool.iter().filter(|c| c.dims == a.dims || c.dims.is_empty()).collect();
                let m = mates[rng.gen_range(0usize..mates.len())].clone();
                let op = BINARY[rng.gen_range(0usize..BINARY.len())];
                let t = b.add_node(op, vec![a.tref, m.tref], Attrs::new()).unwrap()[0];
                pool.push(Avail { tref: t, dims: a.dims });
            }
            // Matmul over compatible rank-2 pairs.
            5 => {
                let pairs: Vec<(Avail, Avail)> = pool
                    .iter()
                    .flat_map(|x| {
                        pool.iter()
                            .filter(|y| {
                                x.dims.len() == 2 && y.dims.len() == 2 && x.dims[1] == y.dims[0]
                            })
                            .map(|y| (x.clone(), y.clone()))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                if pairs.is_empty() {
                    continue;
                }
                let (x, y) = pairs[rng.gen_range(0usize..pairs.len())].clone();
                let t = b.add_node("matmul", vec![x.tref, y.tref], Attrs::new()).unwrap()[0];
                pool.push(Avail { tref: t, dims: vec![x.dims[0], y.dims[1]] });
            }
            // Reduce the last axis away.
            6 => {
                if a.dims.is_empty() {
                    continue;
                }
                let op = if rng.gen_bool(0.5) { "reduce_sum" } else { "reduce_mean" };
                let axis = (a.dims.len() - 1) as i64;
                let t =
                    b.add_node(op, vec![a.tref], Attrs::new().with("axes", vec![axis])).unwrap()[0];
                pool.push(Avail { tref: t, dims: a.dims[..a.dims.len() - 1].to_vec() });
            }
            // Split along an even leading axis; both halves join the pool.
            7 => {
                if a.dims.is_empty() || !a.dims[0].is_multiple_of(2) {
                    continue;
                }
                let parts = b
                    .add_node(
                        "split",
                        vec![a.tref],
                        Attrs::new().with("num", 2i64).with("axis", 0i64),
                    )
                    .unwrap();
                let mut half = a.dims.clone();
                half[0] /= 2;
                for p in parts {
                    pool.push(Avail { tref: p, dims: half.clone() });
                }
            }
            // Nested call.
            8 => {
                let (name, (d, s)) = register_inner(&format!("{seed}_{step}"), &a.dims);
                let t = b
                    .add_node(
                        "call",
                        vec![a.tref],
                        Attrs::new()
                            .with("function", name)
                            .with("out_dtypes", d)
                            .with("out_shapes", s),
                    )
                    .unwrap()[0];
                pool.push(Avail { tref: t, dims: a.dims });
            }
            // Data-dependent cond: predicate is a reduction of a live value.
            _ => {
                let scalars: Vec<&Avail> = pool.iter().filter(|c| c.dims.is_empty()).collect();
                let gate = scalars[rng.gen_range(0usize..scalars.len())].tref;
                let zero = b.constant(Arc::new(TensorData::scalar(0.0f64))).unwrap();
                let pred = b.add_node("greater", vec![gate, zero], Attrs::new()).unwrap()[0];
                let (then_name, else_name, (d, s)) =
                    register_branches(&format!("{seed}_{step}"), &a.dims);
                let t = b
                    .add_node(
                        "cond",
                        vec![pred, a.tref],
                        Attrs::new()
                            .with("then_fn", then_name)
                            .with("else_fn", else_name)
                            .with("out_dtypes", d)
                            .with("out_shapes", s),
                    )
                    .unwrap()[0];
                pool.push(Avail { tref: t, dims: a.dims });
            }
        }
    }
    let last = pool.last().unwrap().clone();
    let extra = pool[rng.gen_range(0usize..pool.len())].clone();
    let f = b.finish(vec![last.tref, extra.tref], 0);
    (f, input_shapes)
}

pub fn make_args(seed: u64, shapes: &[Vec<usize>]) -> Vec<Arc<TensorData>> {
    let mut rng = tfe_tensor::rng::TensorRng::seed_from_u64(seed ^ 0x5eed);
    shapes
        .iter()
        .map(|dims| Arc::new(rng.uniform(DType::F64, Shape::new(dims.clone()), -1.0, 1.0).unwrap()))
        .collect()
}

/// Interpret a generated graph as a chain of *eager* ops through the
/// central dispatcher, node by node in program order — the same kernels
/// over the same operands as the graph executors, but driven through
/// `context::execute` so the eager dispatch path (sync or async, per the
/// ambient mode) is what's under test.
pub fn eager_interpret(
    f: &GraphFunction,
    args: &[Arc<TensorData>],
) -> Result<Vec<Arc<TensorData>>, tf_eager::RuntimeError> {
    use std::collections::HashMap;
    let mut vals: HashMap<(usize, usize), tf_eager::Tensor> = HashMap::new();
    for (i, nid) in f.inputs.iter().enumerate() {
        vals.insert((nid.0, 0), tf_eager::Tensor::from_data((*args[i]).clone()));
    }
    for (id, node) in f.nodes.iter().enumerate() {
        match node.op.as_str() {
            "placeholder" => {}
            "const" => {
                let idx = node.attrs.int("value_index").expect("const index") as usize;
                vals.insert((id, 0), tf_eager::Tensor::from_data((*f.constants[idx]).clone()));
            }
            _ => {
                let ins: Vec<tf_eager::Tensor> =
                    node.inputs.iter().map(|r| vals[&(r.node.0, r.output)].clone()).collect();
                let outs = tfe_runtime::context::execute(&node.op, &ins, node.attrs.clone())?;
                for (k, t) in outs.into_iter().enumerate() {
                    vals.insert((id, k), t);
                }
            }
        }
    }
    f.outputs.iter().map(|r| vals[&(r.node.0, r.output)].value()).collect()
}

/// The stateful-graph generator shared by the graph-mode and async-eager
/// differentials: random interleavings of variable reads, writes, and
/// stateless math over `vars`, always ending on fresh reads so the final
/// state is observable.
pub fn generate_stateful(seed: u64, var_ids: &[i64]) -> GraphFunction {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed * 104729 + 7);
    let mut b = GraphBuilder::new(&format!("diff_stateful_{seed}"));
    let read_attrs = |vid: i64| {
        Attrs::new().with("var_id", vid).with("dtype", DType::F64).with("shape", Vec::<i64>::new())
    };
    let mut latest: Vec<TensorRef> = Vec::new();
    for _ in 0..rng.gen_range(6usize..16) {
        let vid = var_ids[rng.gen_range(0usize..var_ids.len())];
        match rng.gen_range(0u32..4) {
            0 | 1 => {
                let r = b.add_node("read_variable", vec![], read_attrs(vid)).unwrap()[0];
                latest.push(r);
            }
            2 if !latest.is_empty() => {
                let src = latest[rng.gen_range(0usize..latest.len())];
                let t = b.add_node("tanh", vec![src], Attrs::new()).unwrap()[0];
                b.add_node("assign_add", vec![t], Attrs::new().with("var_id", vid)).unwrap();
            }
            _ if !latest.is_empty() => {
                let x = latest[rng.gen_range(0usize..latest.len())];
                let y = latest[rng.gen_range(0usize..latest.len())];
                let s = b.add_node("add", vec![x, y], Attrs::new()).unwrap()[0];
                latest.push(s);
            }
            _ => {
                let r = b.add_node("read_variable", vec![], read_attrs(vid)).unwrap()[0];
                latest.push(r);
            }
        }
    }
    let finals: Vec<TensorRef> = var_ids
        .iter()
        .map(|&vid| b.add_node("read_variable", vec![], read_attrs(vid)).unwrap()[0])
        .collect();
    b.finish(finals, 0)
}

// ---------------------------------------------------------------------------
// Corpora biased toward the optimizer's rewrite patterns. The plain
// `generate` corpus rarely produces `x*1` or back-to-back stores, so the
// pass-level differential also fuzzes graphs built to trip each rewrite —
// and asserts the rewrite counters actually fired across the corpus.
// ---------------------------------------------------------------------------

/// A random graph dense in algebraic-identity shapes: `x*1`, `x+0`,
/// `x-0`, `x/1` (with the constant on either legal side), `identity`
/// chains, double transposes, transposes feeding matmul, and
/// `shape_of`/`rank_of`/`size_of` over statically-known shapes — all
/// interleaved with ordinary math so rewrites have live neighborhoods.
pub fn generate_algebraic(seed: u64) -> (GraphFunction, Vec<Vec<usize>>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed * 6151 + 3);
    let mut b = GraphBuilder::new(&format!("alg_case_{seed}"));
    let input_shapes: Vec<Vec<usize>> = vec![vec![2, 3], vec![3, 3], vec![]];
    let mut pool: Vec<Avail> = Vec::new();
    for dims in &input_shapes {
        let t = b.placeholder(DType::F64, known(dims)).unwrap();
        pool.push(Avail { tref: t, dims: dims.clone() });
    }
    let mut meta: Vec<TensorRef> = Vec::new();
    for _ in 0..rng.gen_range(6usize..18) {
        let kind = rng.gen_range(0u32..10);
        let a = pool[rng.gen_range(0usize..pool.len())].clone();
        match kind {
            // Identity-element binary: the constant sits on whichever side
            // the op allows, so both candidate orders get exercised.
            0..=3 => {
                let (op, ident, either) = match rng.gen_range(0u32..4) {
                    0 => ("mul", 1.0f64, true),
                    1 => ("add", 0.0, true),
                    2 => ("sub", 0.0, false),
                    _ => ("div", 1.0, false),
                };
                let c = b.constant(Arc::new(TensorData::scalar(ident))).unwrap();
                let ins =
                    if either && rng.gen_bool(0.5) { vec![c, a.tref] } else { vec![a.tref, c] };
                let t = b.add_node(op, ins, Attrs::new()).unwrap()[0];
                pool.push(Avail { tref: t, dims: a.dims });
            }
            4 => {
                let t = b.add_node("identity", vec![a.tref], Attrs::new()).unwrap()[0];
                pool.push(Avail { tref: t, dims: a.dims });
            }
            // Double transpose: cancels to nothing under iteration.
            5..=6 => {
                if a.dims.len() != 2 {
                    continue;
                }
                let perm = Attrs::new().with("perm", vec![1i64, 0]);
                let inner = b.add_node("transpose", vec![a.tref], perm.clone()).unwrap()[0];
                let outer = b.add_node("transpose", vec![inner], perm).unwrap()[0];
                pool.push(Avail { tref: outer, dims: a.dims });
            }
            // Transpose feeding matmul: absorbed as `transpose_a`.
            7 => {
                if a.dims.len() != 2 {
                    continue;
                }
                let mates: Vec<&Avail> =
                    pool.iter().filter(|c| c.dims.len() == 2 && c.dims[0] == a.dims[0]).collect();
                if mates.is_empty() {
                    continue;
                }
                let m = mates[rng.gen_range(0usize..mates.len())].clone();
                let tr = b
                    .add_node("transpose", vec![a.tref], Attrs::new().with("perm", vec![1i64, 0]))
                    .unwrap()[0];
                let t = b.add_node("matmul", vec![tr, m.tref], Attrs::new()).unwrap()[0];
                pool.push(Avail { tref: t, dims: vec![a.dims[1], m.dims[1]] });
            }
            // Static metadata: folds to a constant in the pipeline.
            8 => {
                let op = ["shape_of", "rank_of", "size_of"][rng.gen_range(0usize..3)];
                let t = b.add_node(op, vec![a.tref], Attrs::new()).unwrap()[0];
                meta.push(t);
            }
            // Ordinary math keeps the rewrites embedded in live graphs.
            _ => {
                let op = UNARY[rng.gen_range(0usize..UNARY.len())];
                let t = b.add_node(op, vec![a.tref], Attrs::new()).unwrap()[0];
                pool.push(Avail { tref: t, dims: a.dims });
            }
        }
    }
    let last = pool.last().unwrap().clone();
    let extra = pool[rng.gen_range(0usize..pool.len())].clone();
    let mut outs = vec![last.tref, extra.tref];
    outs.extend(meta.into_iter().take(2));
    let f = b.finish(outs, 0);
    (f, input_shapes)
}

/// A stateful program biased toward dead stores: bursts of back-to-back
/// plain `assign`s to the same variable (all but the last are dead),
/// mixed with reads, read-modify-writes, and stateless math that must
/// pin the stores they observe. Ends on fresh reads of every variable so
/// final state stays observable.
pub fn generate_dead_store(seed: u64, var_ids: &[i64]) -> GraphFunction {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed * 31337 + 11);
    let mut b = GraphBuilder::new(&format!("dse_case_{seed}"));
    let read_attrs = |vid: i64| {
        Attrs::new().with("var_id", vid).with("dtype", DType::F64).with("shape", Vec::<i64>::new())
    };
    let mut latest: Vec<TensorRef> =
        vec![b.add_node("read_variable", vec![], read_attrs(var_ids[0])).unwrap()[0]];
    // A guaranteed clobbered store, so the corpus trips the pass on every
    // graph, not just in aggregate.
    for _ in 0..2 {
        let t = b.add_node("tanh", vec![latest[0]], Attrs::new()).unwrap()[0];
        b.add_node("assign", vec![t], Attrs::new().with("var_id", var_ids[0])).unwrap();
    }
    for _ in 0..rng.gen_range(8usize..20) {
        let vid = var_ids[rng.gen_range(0usize..var_ids.len())];
        match rng.gen_range(0u32..6) {
            // Burst of plain assigns: only the last one can live.
            0..=2 => {
                for _ in 0..rng.gen_range(2usize..4) {
                    let src = latest[rng.gen_range(0usize..latest.len())];
                    let v = b.add_node("tanh", vec![src], Attrs::new()).unwrap()[0];
                    b.add_node("assign", vec![v], Attrs::new().with("var_id", vid)).unwrap();
                }
            }
            3 => {
                let r = b.add_node("read_variable", vec![], read_attrs(vid)).unwrap()[0];
                latest.push(r);
            }
            // Read-modify-write: reads the variable, so it pins the store
            // before it even when a later assign clobbers the result.
            4 => {
                let src = latest[rng.gen_range(0usize..latest.len())];
                let t = b.add_node("sin", vec![src], Attrs::new()).unwrap()[0];
                b.add_node("assign_add", vec![t], Attrs::new().with("var_id", vid)).unwrap();
            }
            _ => {
                let x = latest[rng.gen_range(0usize..latest.len())];
                let y = latest[rng.gen_range(0usize..latest.len())];
                let s = b.add_node("add", vec![x, y], Attrs::new()).unwrap()[0];
                latest.push(s);
            }
        }
    }
    let finals: Vec<TensorRef> = var_ids
        .iter()
        .map(|&vid| b.add_node("read_variable", vec![], read_attrs(vid)).unwrap()[0])
        .collect();
    b.finish(finals, 0)
}

// ---------------------------------------------------------------------------
// Failure artifacts: the vendored proptest shim has no shrinking, so the
// differential suites shrink failing graphs themselves — prefix-truncate
// the (topologically ordered) node list and drop outputs while the
// property still fails — and persist the minimized graph as Graphviz dot
// so the panic message names a file, not a wall of text.
// ---------------------------------------------------------------------------

/// Shrink a failing graph: first try narrowing to a single output, then
/// find the shortest node-list prefix on which `still_fails` holds.
/// `still_fails` must be self-contained (reset any variable state it
/// touches); it is re-run once per candidate.
pub fn shrink_failing_graph(
    f: &GraphFunction,
    still_fails: &dyn Fn(&GraphFunction) -> bool,
) -> GraphFunction {
    let mut best = f.clone();
    if best.outputs.len() > 1 {
        for &out in best.outputs.clone().iter() {
            let mut cand = best.clone();
            cand.outputs = vec![out];
            if still_fails(&cand) {
                best = cand;
                break;
            }
        }
    }
    // Placeholders must survive (args bind to them positionally), so the
    // scan starts just past the last one.
    let min_keep = best.inputs.iter().map(|id| id.0 + 1).max().unwrap_or(0);
    for n in min_keep..best.nodes.len() {
        if let Some(cand) = prefix_graph(&best, n) {
            if still_fails(&cand) {
                best = cand;
                break;
            }
        }
    }
    best
}

/// The first `n` nodes of `f` as a standalone graph, returning the last
/// value-producing node. Sound because node inputs and control edges only
/// ever point backwards.
fn prefix_graph(f: &GraphFunction, n: usize) -> Option<GraphFunction> {
    let nodes: Vec<Node> = f.nodes[..n].to_vec();
    let idx =
        (0..n).rev().find(|&i| !nodes[i].outputs.is_empty() && nodes[i].op != "placeholder")?;
    let mut g = f.clone();
    g.nodes = nodes;
    g.outputs = vec![TensorRef::first(NodeId(idx))];
    Some(g)
}

/// Persist `f` as Graphviz dot in the temp dir and return the path — the
/// artifact a differential panic points at.
pub fn dot_artifact(f: &GraphFunction) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("tfe_fail_{}_{}.dot", std::process::id(), f.name));
    std::fs::write(&path, f.to_dot()).expect("write dot artifact");
    path
}
