//! Differential serving gate (DESIGN.md §15): concurrent requests routed
//! through the adaptive micro-batcher must be *bitwise identical* to the
//! same requests executed one-by-one against the bare servable — across
//! batch sizes, dispatch modes, degenerate member shapes, and version
//! swaps — and a poisoned batch must fail every member with the typed
//! error, never hang.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use tf_eager::prelude::*;
use tf_eager::serve::{BatchPolicy, Dispatch, ModelRegistry, ServeError};
use tf_eager::state::saved;
use tf_eager::RuntimeError;

/// A small MLP (matmul + bias + relu + softmax) traced with a dynamic
/// leading dimension so one trace serves every batch size.
fn mlp(name: &str, scale: f32) -> Func {
    function1(name, move |x| {
        let w = api::constant(
            vec![
                0.7f32 * scale,
                -0.3,
                0.5,
                0.9 * scale,
                -0.2,
                0.8,
                0.1,
                -0.6,
                0.4,
                0.3,
                -0.5 * scale,
                0.2,
                -0.9,
                0.6,
                0.25,
                -0.75,
            ],
            [4, 4],
        )?;
        let b = api::constant(vec![0.05f32, -0.1, 0.2, 0.0], [4])?;
        api::softmax(&api::relu(&api::add(&api::matmul(x, &w)?, &b)?)?)
    })
    .with_input_signature(vec![TensorSpec::new(DType::F32, vec![None, Some(4)])])
}

fn example(i: usize, rows: usize) -> Tensor {
    let vals: Vec<f32> =
        (0..rows * 4).map(|j| ((i * 7 + j * 3) % 13) as f32 * 0.37 - 1.5).collect();
    api::constant(vals, [rows, 4]).unwrap()
}

fn policy(max_batch: usize, dispatch: Dispatch) -> BatchPolicy {
    BatchPolicy { max_batch, budget: Duration::from_millis(50), ewma_alpha: 0.25, dispatch }
}

/// N concurrent single-example requests through the batcher vs. N
/// sequential unbatched calls: outputs must match exactly.
fn differential(tag: &str, n: usize, max_batch: usize, dispatch: Dispatch) {
    let name = format!("serve_diff_{tag}");
    let f = mlp(&name, 1.0);
    let inputs: Vec<Tensor> = (0..n).map(|i| example(i, 1)).collect();
    let expected: Vec<Vec<f64>> =
        inputs.iter().map(|x| f.call_tensors(&[x]).unwrap()[0].to_f64_vec().unwrap()).collect();

    let registry = Arc::new(ModelRegistry::new());
    registry.register_with(&name, 1, f, policy(max_batch, dispatch)).unwrap();
    let barrier = Arc::new(Barrier::new(n));
    let handles: Vec<_> = inputs
        .into_iter()
        .enumerate()
        .map(|(i, x)| {
            let registry = Arc::clone(&registry);
            let barrier = Arc::clone(&barrier);
            let name = name.clone();
            std::thread::spawn(move || {
                barrier.wait();
                (i, registry.infer(&name, &[&x]).map(|outs| outs[0].to_f64_vec().unwrap()))
            })
        })
        .collect();
    for h in handles {
        let (i, got) = h.join().unwrap();
        assert_eq!(got.unwrap(), expected[i], "member {i} diverged ({tag})");
    }
}

#[test]
fn differential_sync_across_batch_sizes() {
    differential("sync_1x8", 1, 8, Dispatch::Sync);
    differential("sync_4x2", 4, 2, Dispatch::Sync);
    differential("sync_8x8", 8, 8, Dispatch::Sync);
    differential("sync_16x5", 16, 5, Dispatch::Sync);
}

#[test]
fn differential_async_across_batch_sizes() {
    differential("async_4x4", 4, 4, Dispatch::Async);
    differential("async_8x3", 8, 3, Dispatch::Async);
    differential("async_16x16", 16, 16, Dispatch::Async);
}

#[test]
fn differential_inherit_mode() {
    // Runs under whatever TFE_ASYNC the suite was launched with; CI runs
    // both settings.
    differential("inherit_8x4", 8, 4, Dispatch::Inherit);
}

/// Mixed row counts per request — including a zero-row member — exercise
/// the slice fan-out path.
#[test]
fn differential_mixed_and_zero_row_members() {
    let name = "serve_diff_mixed";
    let f = mlp(name, 0.8);
    let rows = [0usize, 1, 3, 1, 2, 0];
    let inputs: Vec<Tensor> = rows.iter().enumerate().map(|(i, &r)| example(i, r)).collect();
    let expected: Vec<Vec<f64>> =
        inputs.iter().map(|x| f.call_tensors(&[x]).unwrap()[0].to_f64_vec().unwrap()).collect();
    let registry = Arc::new(ModelRegistry::new());
    registry.register_with(name, 1, f, policy(16, Dispatch::Sync)).unwrap();
    let barrier = Arc::new(Barrier::new(rows.len()));
    let handles: Vec<_> = inputs
        .into_iter()
        .enumerate()
        .map(|(i, x)| {
            let registry = Arc::clone(&registry);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                (i, registry.infer("serve_diff_mixed", &[&x]).map(|o| o[0].to_f64_vec().unwrap()))
            })
        })
        .collect();
    for h in handles {
        let (i, got) = h.join().unwrap();
        assert_eq!(got.unwrap(), expected[i], "member {i} diverged");
    }
}

/// A served SavedFunction bundle produces the same bits as the Func it was
/// exported from.
#[test]
fn loaded_bundle_matches_staged() {
    let name = "serve_loaded";
    let f = mlp(name, 1.1);
    let probe = example(0, 1);
    let conc = f.concrete_for(&[Arg::from(&probe)]).unwrap();
    let bundle = saved::export_to_value(&conc).unwrap();
    let loaded = saved::import_from_value(&bundle).unwrap();

    let inputs: Vec<Tensor> = (0..6).map(|i| example(i, 1)).collect();
    let expected: Vec<Vec<f64>> =
        inputs.iter().map(|x| f.call_tensors(&[x]).unwrap()[0].to_f64_vec().unwrap()).collect();
    let registry = Arc::new(ModelRegistry::new());
    registry.register_with(name, 1, loaded, policy(8, Dispatch::Sync)).unwrap();
    let barrier = Arc::new(Barrier::new(inputs.len()));
    let handles: Vec<_> = inputs
        .into_iter()
        .enumerate()
        .map(|(i, x)| {
            let registry = Arc::clone(&registry);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                (i, registry.infer("serve_loaded", &[&x]).map(|o| o[0].to_f64_vec().unwrap()))
            })
        })
        .collect();
    for h in handles {
        let (i, got) = h.join().unwrap();
        assert_eq!(got.unwrap(), expected[i], "bundle member {i} diverged");
    }
}

/// A mid-batch fault (out-of-range gather index in one member) fails every
/// member of the batch with the typed error: `op` names the staged entry
/// the batch died in, `source` carries the kernel-level cause (`gather`).
/// Staged `call` ops execute synchronously even under async dispatch (the
/// stream defers primitive ops only), so both modes report the same shape.
fn fault_fan_out(dispatch: Dispatch, tag: &str) {
    let name = format!("serve_fault_{tag}");
    let f = {
        let n = name.clone();
        function1(&n.clone(), move |idx| {
            let table = api::constant(vec![10.0f32, 20.0, 30.0, 40.0], [4])?;
            api::gather(&table, idx, 0)
        })
        .with_input_signature(vec![TensorSpec::new(DType::I64, vec![None])])
    };
    let registry = Arc::new(ModelRegistry::new());
    registry
        .register_with(
            &name,
            1,
            f,
            BatchPolicy {
                max_batch: 4,
                budget: Duration::from_millis(500),
                ewma_alpha: 0.25,
                dispatch,
            },
        )
        .unwrap();
    let barrier = Arc::new(Barrier::new(4));
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let registry = Arc::clone(&registry);
            let barrier = Arc::clone(&barrier);
            let name = name.clone();
            std::thread::spawn(move || {
                // Member 2 carries a poisoned index.
                let v: i64 = if i == 2 { 99 } else { i };
                let x = api::constant(vec![v], [1]).unwrap();
                barrier.wait();
                registry.infer(&name, &[&x])
            })
        })
        .collect();
    let started = Instant::now();
    for h in handles {
        let r = h.join().unwrap();
        match r {
            Err(ServeError::Batch { op, source }) => {
                assert!(op.contains(&name), "batch error should name the staged entry, got `{op}`");
                assert!(
                    source.to_string().contains("gather"),
                    "source should carry the faulting kernel, got `{source}`"
                );
            }
            other => panic!("expected ServeError::Batch for every member, got {other:?}"),
        }
    }
    // "Never a hang": the whole fan-out resolves promptly.
    assert!(started.elapsed() < Duration::from_secs(10));
}

#[test]
fn poisoned_batch_fails_every_member_sync() {
    fault_fan_out(Dispatch::Sync, "sync");
}

#[test]
fn poisoned_batch_fails_every_member_async() {
    fault_fan_out(Dispatch::Async, "async");
}

/// Concurrent requests with mismatched arity against a `Staged` servable
/// (which declares no arity the front door could check) must not poison
/// the batcher: matching requests succeed bitwise, wrong-arity ones fail
/// with a typed error, and nothing hangs. The worker closes
/// arity-homogeneous batches, so a stray 1-arg request can never drive
/// the 2-arg fan-in out of bounds (which used to panic the worker and
/// strand every parked caller).
#[test]
fn mixed_arity_requests_fail_typed_never_hang() {
    let name = "serve_arity";
    let f = function(name, |args| {
        let a = args
            .first()
            .and_then(Arg::as_tensor)
            .ok_or_else(|| RuntimeError::Internal("missing arg 0".to_string()))?;
        let b = args
            .get(1)
            .and_then(Arg::as_tensor)
            .ok_or_else(|| RuntimeError::Internal("missing arg 1".to_string()))?;
        Ok(vec![api::add(a, b)?])
    });
    let expected: Vec<Vec<f64>> = (0..8)
        .map(|i| {
            let (a, b) = (example(i, 1), example(i + 100, 1));
            f.call_tensors(&[&a, &b]).unwrap()[0].to_f64_vec().unwrap()
        })
        .collect();

    let registry = Arc::new(ModelRegistry::new());
    registry.register_with(name, 1, f, policy(8, Dispatch::Sync)).unwrap();
    let barrier = Arc::new(Barrier::new(12));
    let good: Vec<_> = (0..8)
        .map(|i| {
            let registry = Arc::clone(&registry);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let (a, b) = (example(i, 1), example(i + 100, 1));
                barrier.wait();
                registry.infer("serve_arity", &[&a, &b]).map(|o| o[0].to_f64_vec().unwrap())
            })
        })
        .collect();
    let bad: Vec<_> = (0..4)
        .map(|i| {
            let registry = Arc::clone(&registry);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                // One input where the servable traces two.
                let a = example(i, 1);
                barrier.wait();
                registry.infer("serve_arity", &[&a])
            })
        })
        .collect();
    let started = Instant::now();
    for (i, h) in good.into_iter().enumerate() {
        assert_eq!(h.join().unwrap().unwrap(), expected[i], "well-formed member {i} diverged");
    }
    for h in bad {
        match h.join().unwrap() {
            Err(ServeError::Batch { .. } | ServeError::Panic { .. }) => {}
            other => panic!("wrong-arity request must fail typed, got {other:?}"),
        }
    }
    assert!(started.elapsed() < Duration::from_secs(10), "mixed-arity fan-out hung");
}

/// A servable whose traced closure panics must fail every member with the
/// typed `ServeError::Panic` — the worker catches the unwind instead of
/// dying with callers parked on a dead queue — and the model keeps
/// answering (with errors) afterwards.
#[test]
fn panicking_servable_fails_members_typed_never_hangs() {
    let f = function1("serve_panics", |_x| panic!("deliberate serving-test panic"));
    let registry = Arc::new(ModelRegistry::new());
    registry.register_with("panics", 1, f, policy(4, Dispatch::Sync)).unwrap();
    let barrier = Arc::new(Barrier::new(4));
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let registry = Arc::clone(&registry);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let x = example(i, 1);
                barrier.wait();
                registry.infer("panics", &[&x])
            })
        })
        .collect();
    let started = Instant::now();
    for h in handles {
        match h.join().unwrap() {
            Err(ServeError::Panic { model, message }) => {
                assert_eq!(model, "panics");
                assert!(
                    message.contains("deliberate serving-test panic"),
                    "panic payload should survive, got `{message}`"
                );
            }
            other => panic!("expected ServeError::Panic for every member, got {other:?}"),
        }
    }
    assert!(started.elapsed() < Duration::from_secs(10), "panicked batch left callers parked");
    // The worker survived the unwind: later requests still resolve.
    let x = example(9, 1);
    assert!(matches!(registry.infer("panics", &[&x]), Err(ServeError::Panic { .. })));
}

/// Version registry semantics: `latest` swings atomically to the newest
/// version, pinned versions stay servable, rollback re-points the alias,
/// unregister shuts everything down.
#[test]
fn version_swap_and_rollback() {
    let registry = ModelRegistry::new();
    let x = example(3, 1);
    let f1 = mlp("serve_ver_a", 1.0);
    let f2 = mlp("serve_ver_b", 2.0);
    let y1 = f1.call_tensors(&[&x]).unwrap()[0].to_f64_vec().unwrap();
    let y2 = f2.call_tensors(&[&x]).unwrap()[0].to_f64_vec().unwrap();
    assert_ne!(y1, y2, "the two versions must be distinguishable");

    registry.register_with("m", 1, f1, policy(4, Dispatch::Sync)).unwrap();
    assert_eq!(registry.latest("m"), Some(1));
    assert_eq!(registry.infer("m", &[&x]).unwrap()[0].to_f64_vec().unwrap(), y1);

    registry.register_with("m", 2, f2, policy(4, Dispatch::Sync)).unwrap();
    assert_eq!(registry.latest("m"), Some(2));
    assert_eq!(registry.versions("m"), vec![1, 2]);
    assert_eq!(registry.infer("m", &[&x]).unwrap()[0].to_f64_vec().unwrap(), y2);
    // Pinned old version still serves.
    assert_eq!(registry.infer_version("m", 1, &[&x]).unwrap()[0].to_f64_vec().unwrap(), y1);

    // Duplicate version rejected.
    let f_dup = mlp("serve_ver_c", 3.0);
    assert!(matches!(registry.register("m", 2, f_dup), Err(ServeError::DuplicateVersion { .. })));

    // Rollback.
    registry.set_latest("m", 1).unwrap();
    assert_eq!(registry.infer("m", &[&x]).unwrap()[0].to_f64_vec().unwrap(), y1);
    assert!(matches!(
        registry.set_latest("m", 9),
        Err(ServeError::UnknownVersion { version: 9, .. })
    ));

    assert!(registry.unregister("m"));
    assert!(!registry.unregister("m"));
    assert!(matches!(registry.infer("m", &[&x]), Err(ServeError::UnknownModel(_))));
}

/// Malformed requests are rejected at the front door with `BadRequest`.
#[test]
fn front_door_validation() {
    let registry = ModelRegistry::new();
    registry.register_with("v", 1, mlp("serve_val", 1.0), policy(4, Dispatch::Sync)).unwrap();
    // Scalar input: no batch dimension.
    let s = api::scalar(1.0f32);
    assert!(matches!(registry.infer("v", &[&s]), Err(ServeError::BadRequest(_))));
    // No inputs.
    assert!(matches!(registry.infer("v", &[]), Err(ServeError::BadRequest(_))));
    // Unknown model.
    let x = example(0, 1);
    assert!(matches!(registry.infer("nope", &[&x]), Err(ServeError::UnknownModel(_))));
}

/// A lone request must not wait for `max_batch`: the latency budget closes
/// the batch.
#[test]
fn budget_closes_partial_batch() {
    let registry = ModelRegistry::new();
    registry
        .register_with(
            "lone",
            1,
            mlp("serve_lone", 1.0),
            BatchPolicy {
                max_batch: 1024,
                budget: Duration::from_millis(10),
                ewma_alpha: 0.25,
                dispatch: Dispatch::Sync,
            },
        )
        .unwrap();
    let x = example(1, 1);
    let started = Instant::now();
    registry.infer("lone", &[&x]).unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "single request stalled waiting for a full batch"
    );
}

/// The serving layer is the first multi-shape stress consumer of the trace
/// cache: a `Staged` servable without an input signature retraces per batch
/// shape, and the bounded retrace log must not grow past its cap
/// (`TFE_RETRACE_LOG_CAP`, default 64).
#[test]
fn staged_stress_keeps_retrace_log_bounded() {
    let f = function1("serve_stress", api::relu);
    let registry = ModelRegistry::new();
    registry
        .register_with(
            "stress",
            1,
            f.clone(),
            BatchPolicy {
                max_batch: usize::MAX,
                budget: Duration::from_millis(1),
                ewma_alpha: 0.25,
                dispatch: Dispatch::Sync,
            },
        )
        .unwrap();
    // 70 distinct row counts -> 70 distinct traced shapes (no signature).
    for rows in 1..=70usize {
        let x = api::constant(vec![0.5f32; rows * 2], [rows, 2]).unwrap();
        let y = registry.infer("stress", &[&x]).unwrap();
        assert_eq!(y[0].shape().unwrap().dims(), &[rows, 2]);
    }
    let retained = f.retraces().len();
    let dropped = f.dropped_retraces();
    assert!(retained <= 64, "retrace log exceeded its cap: {retained}");
    assert!(dropped > 0, "expected evictions after 69 retraces, dropped={dropped}");
    assert_eq!(retained as u64 + dropped, 69, "ordinal accounting drifted");
    let report = f.retrace_report();
    assert!(report.contains("older retraces dropped"), "report must surface the drop count");
}

// ---------------------------------------------------------------------------
// Queue-depth gauge balance
// ---------------------------------------------------------------------------

/// Read the `tfe_serve_queue_depth` gauge series for one `model@vN` label
/// (the registry keys every serve metric by that label; the snapshot has
/// no labeled-gauge accessor, so search the family's samples).
fn queue_depth(label: &str) -> i64 {
    tf_eager::metrics::snapshot()
        .family("tfe_serve_queue_depth")
        .and_then(|fam| {
            fam.samples.iter().find(|s| s.label.as_ref().is_some_and(|(_, v)| v == label)).map(
                |s| match &s.value {
                    tf_eager::metrics::SampleValue::Gauge(v) => *v,
                    other => panic!("queue depth must be a gauge, got {other:?}"),
                },
            )
        })
        .unwrap_or_else(|| panic!("no tfe_serve_queue_depth series for {label}"))
}

/// The queue-depth gauge must return to zero on *every* exit path, not
/// just the happy one: a panicking servable (batch fan-out after
/// `catch_unwind`), a wrong-arity member rejected with a typed error, a
/// request that blows its latency budget, and a shutdown that drains
/// still-queued requests. A stuck non-zero reading here means an exit
/// path dropped its accounting and dashboards would report phantom
/// backlog forever.
#[test]
fn queue_depth_gauge_returns_to_zero_on_every_exit_path() {
    // 1. Panicked batch: every member fails typed, queue must drain.
    let f = function1("gauge_panics_src", |_x: &Tensor| -> Result<Tensor, RuntimeError> {
        panic!("deliberate gauge-test panic")
    });
    let registry = ModelRegistry::new();
    registry.register_with("gauge_panics", 1, f, policy(4, Dispatch::Sync)).unwrap();
    for i in 0..4 {
        let x = example(i, 1);
        assert!(matches!(registry.infer("gauge_panics", &[&x]), Err(ServeError::Panic { .. })));
    }
    assert_eq!(queue_depth("gauge_panics@v1"), 0, "panic fan-out leaked queue depth");
    registry.unregister("gauge_panics");

    // 2. Arity reject: a 1-arg request against a 2-arg staged servable
    // ships as its own batch and fails typed inside the worker.
    let two = function("gauge_arity_src", |args| {
        let a = args
            .first()
            .and_then(Arg::as_tensor)
            .ok_or_else(|| RuntimeError::Internal("missing arg 0".to_string()))?;
        let b = args
            .get(1)
            .and_then(Arg::as_tensor)
            .ok_or_else(|| RuntimeError::Internal("missing arg 1".to_string()))?;
        Ok(vec![api::add(a, b)?])
    });
    registry.register_with("gauge_arity", 1, two, policy(4, Dispatch::Sync)).unwrap();
    let a = example(0, 1);
    assert!(registry.infer("gauge_arity", &[&a]).is_err(), "wrong arity must fail");
    let b = example(1, 1);
    registry.infer("gauge_arity", &[&a, &b]).expect("matching arity still serves");
    assert_eq!(queue_depth("gauge_arity@v1"), 0, "arity reject leaked queue depth");
    registry.unregister("gauge_arity");

    // 3. Budget breach: a zero budget makes every request a breach; the
    // request still succeeds and the gauge still drains.
    let f = mlp("gauge_budget_src", 1.0);
    registry
        .register_with(
            "gauge_budget",
            1,
            f,
            BatchPolicy {
                max_batch: 4,
                budget: Duration::from_nanos(1),
                ewma_alpha: 0.25,
                dispatch: Dispatch::Sync,
            },
        )
        .unwrap();
    let x = example(2, 1);
    registry.infer("gauge_budget", &[&x]).expect("breached request still answers");
    let snap = tf_eager::metrics::snapshot();
    let breaches = snap.counter_with("tfe_serve_budget_breaches_total", "gauge_budget@v1");
    assert!(breaches.unwrap_or(0) > 0, "zero budget must register a breach");
    assert_eq!(queue_depth("gauge_budget@v1"), 0, "budget breach leaked queue depth");
    registry.unregister("gauge_budget");

    // 4. Shutdown drain: a slow servable (fresh shape per request ->
    // retrace -> the traced closure's sleep runs every call) keeps
    // requests queued while unregister fires; drained members observe
    // `Shutdown`, later arrivals are rejected at the front door, and the
    // gauge is pinned back to zero either way.
    let slow = function1("gauge_slow_src", |x: &Tensor| {
        std::thread::sleep(Duration::from_millis(15));
        api::relu(x)
    });
    let registry = Arc::new(ModelRegistry::new());
    registry.register_with("gauge_slow", 1, slow, policy(1, Dispatch::Sync)).unwrap();
    let barrier = Arc::new(Barrier::new(7));
    let clients: Vec<_> = (0..6)
        .map(|i| {
            let registry = Arc::clone(&registry);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                // Distinct row count per request: forces a retrace (and
                // its sleep) for each, so the queue stays occupied.
                let x = example(i, i + 1);
                registry.infer("gauge_slow", &[&x])
            })
        })
        .collect();
    barrier.wait();
    std::thread::sleep(Duration::from_millis(20));
    assert!(registry.unregister("gauge_slow"), "model must be registered");
    let mut shutdown_errors = 0;
    for c in clients {
        match c.join().unwrap() {
            Ok(out) => assert_eq!(out.len(), 1),
            Err(ServeError::Shutdown { model }) => {
                assert_eq!(model, "gauge_slow");
                shutdown_errors += 1;
            }
            Err(other) => panic!("expected success or Shutdown, got {other:?}"),
        }
    }
    assert!(shutdown_errors > 0, "shutdown raced past every request; tighten the timing");
    assert_eq!(queue_depth("gauge_slow@v1"), 0, "shutdown drain leaked queue depth");
}
