//! Distribution integration tests (§4.5): data-parallel gradient
//! computation with a single coordinator, remote graph-function dispatch
//! over both transports, typed failure semantics under worker death, and
//! bitwise collective parity against local reference emulations.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tf_eager::dist::{
    ps_all_reduce_mean, ps_reference_mean, ring_all_reduce_mean, ring_reference_mean, Cluster,
    ClusterSpec, DistError, RemoteArg, RemoteTensor, RpcOptions, TransportKind,
};
use tf_eager::nn::layers::Layer;
use tf_eager::nn::{mlp, Activation, Initializer};
use tf_eager::prelude::*;
use tfe_ops::Attrs;

fn both_transports() -> [TransportKind; 2] {
    [TransportKind::InProcess, TransportKind::Tcp]
}

fn start(spec: &ClusterSpec, kind: TransportKind) -> Cluster {
    Cluster::start_with(spec, kind, RpcOptions::default()).expect("cluster starts")
}

fn bits(t: &Tensor) -> Vec<u64> {
    t.to_f64_vec().unwrap().iter().map(|v| v.to_bits()).collect()
}

/// Ship a local tensor to a worker and leave it resident there.
fn place(cluster: &Cluster, dev: &str, t: &Tensor) -> RemoteTensor {
    cluster
        .execute(dev, "identity", &[RemoteArg::from(t)], Attrs::new())
        .unwrap()
        .into_iter()
        .next()
        .unwrap()
}

/// Single-coordinator data parallelism: shard a batch over workers, each
/// worker computes per-shard predictions through one shared graph
/// function, the coordinator reduces. Runs identically over both
/// transports.
#[test]
fn data_parallel_inference_matches_local() {
    tf_eager::init();
    let model = Arc::new(mlp(4, &[8], 2, Activation::Tanh, &mut Initializer::seeded(3)));
    let infer = {
        let model = model.clone();
        function1("dist_infer", move |x| model.call(x, false))
    };
    // Trace once; workers resolve the graph function by name (§5: the
    // coordinator holds call operations, not N subgraph copies).
    let probe = api::zeros(DType::F32, [4, 4]);
    let conc = infer.concrete_for(&[Arg::from(&probe)]).unwrap();

    let mut rng = tfe_tensor::rng::TensorRng::seed_from_u64(9);
    let full = Tensor::from_data(rng.uniform(DType::F32, Shape::from([12, 4]), -1.0, 1.0).unwrap());
    let local = model.call(&full, false).unwrap().to_f64_vec().unwrap();

    for kind in both_transports() {
        let cluster = start(&ClusterSpec::new().with_job("worker", 3).unwrap(), kind);
        // Shard rows across the three workers.
        let mut remote_rows = Vec::new();
        for t in 0..3 {
            let shard = api::slice(&full, &[t * 4, 0], &[4, -1]).unwrap();
            let dev = format!("/job:worker/task:{t}/device:CPU:0");
            let out = cluster
                .call_function(&dev, &conc.function.name, &[RemoteArg::from(&shard)])
                .unwrap();
            remote_rows.push(out.into_iter().next().unwrap());
        }
        let mut distributed = Vec::new();
        for r in &remote_rows {
            distributed.extend(r.fetch().unwrap().to_f64_vec().unwrap());
        }
        assert_eq!(local.len(), distributed.len());
        // The worker runs the same kernels on bitwise-identical inputs
        // (floats survive the wire exactly), so parity is exact.
        for (l, d) in local.iter().zip(&distributed) {
            assert_eq!(l.to_bits(), d.to_bits(), "local {l} vs distributed {d} ({kind:?})");
        }
        cluster.shutdown();
    }
}

/// Gradient averaging across workers: each worker computes a partial
/// mean-squared loss via a staged loss function; the coordinator averages
/// the per-shard losses, matching the full-batch loss.
#[test]
fn sharded_loss_averages_to_full_batch() {
    tf_eager::init();
    let loss_fn = function("dist_loss", |args| {
        let pred = args[0].as_tensor().expect("pred");
        let target = args[1].as_tensor().expect("target");
        Ok(vec![api::reduce_mean(&api::squared_difference(pred, target)?, &[], false)?])
    });
    let p = api::constant((0..8).map(|i| i as f32).collect::<Vec<_>>(), [8, 1]).unwrap();
    let t = api::ones(DType::F32, [8, 1]);
    let conc = loss_fn
        .concrete_for(&[
            Arg::from(&api::zeros(DType::F32, [4, 1])),
            Arg::from(&api::zeros(DType::F32, [4, 1])),
        ])
        .unwrap();

    let full = loss_fn.call_tensors(&[&p, &t]).unwrap()[0].scalar_f64().unwrap();

    let cluster = Cluster::start(&ClusterSpec::new().with_job("worker", 2).unwrap());
    let mut partials = Vec::new();
    for task in 0..2 {
        let ps = api::slice(&p, &[task * 4, 0], &[4, -1]).unwrap();
        let ts = api::slice(&t, &[task * 4, 0], &[4, -1]).unwrap();
        let dev = format!("/job:worker/task:{task}/device:CPU:0");
        let out = cluster
            .call_function(&dev, &conc.function.name, &[RemoteArg::from(&ps), RemoteArg::from(&ts)])
            .unwrap();
        partials.push(out[0].fetch().unwrap().scalar_f64().unwrap());
    }
    let averaged = partials.iter().sum::<f64>() / partials.len() as f64;
    assert!((full - averaged).abs() < 1e-6, "full-batch {full} vs averaged shards {averaged}");
    cluster.shutdown();
}

/// Remote tensors are freed when the last handle drops, and reusing a
/// dangling id fails loudly.
#[test]
fn remote_tensor_lifecycle() {
    tf_eager::init();
    let cluster = Cluster::start(&ClusterSpec::new().with_job("w", 1).unwrap());
    let dev = "/job:w/task:0/device:CPU:0";
    let a = api::scalar(2.0f32);
    let r = cluster.execute(dev, "square", &[RemoteArg::from(&a)], Attrs::new()).unwrap();
    let handle = r.into_iter().next().unwrap();
    let id = handle.id;
    let clone = handle.clone();
    drop(handle);
    // Still alive through the clone.
    assert_eq!(clone.fetch().unwrap().scalar_f64().unwrap(), 4.0);
    drop(clone);
    // A forged handle to the dropped id must fail on the worker.
    let forged = cluster.execute(dev, "identity", &[RemoteArg::from(&a)], Attrs::new()).unwrap();
    assert!(forged[0].id != id || forged[0].fetch().is_ok());
    cluster.shutdown();
}

/// Multiple jobs in one cluster, mirroring the paper's naming examples
/// (`/job:training/task:2/...`).
#[test]
fn multi_job_clusters() {
    tf_eager::init();
    for kind in both_transports() {
        let spec = ClusterSpec::new().with_job("training", 2).unwrap().with_job("ps", 1).unwrap();
        let cluster = start(&spec, kind);
        assert_eq!(cluster.list_devices().len(), 3);
        let x = api::scalar(1.5f64);
        for dev in ["/job:training/task:1/device:CPU:0", "/job:ps/task:0/device:CPU:0"] {
            let out = cluster.execute(dev, "square", &[RemoteArg::from(&x)], Attrs::new()).unwrap();
            assert_eq!(out[0].fetch().unwrap().scalar_f64().unwrap(), 2.25);
            assert_eq!(out[0].device.to_string(), dev);
        }
        cluster.shutdown();
    }
}

/// Workers share the process-wide variable registry (standing in for
/// resource handles living on the worker): a staged function that reads
/// and updates a variable runs remotely and mutates the shared state.
#[test]
fn remote_stateful_graph_function() {
    tf_eager::init();
    let v = Variable::new(TensorData::scalar(100.0f32));
    let bump = {
        let v = v.clone();
        function("remote_bump", move |args| {
            let x = args[0].as_tensor().expect("x");
            v.assign_add(x)?;
            Ok(vec![v.read()?])
        })
    };
    let conc = bump.concrete_for(&[Arg::from(&api::scalar(0.0f32))]).unwrap();
    let cluster = Cluster::start(&ClusterSpec::new().with_job("w", 1).unwrap());
    let out = cluster
        .call_function(
            "/job:w/task:0/device:CPU:0",
            &conc.function.name,
            &[RemoteArg::from(&api::scalar(5.0f32))],
        )
        .unwrap();
    assert_eq!(out[0].fetch().unwrap().scalar_f64().unwrap(), 105.0);
    // The mutation is visible to the coordinator.
    assert_eq!(v.peek().scalar_f64().unwrap(), 105.0);
    cluster.shutdown();
}

/// Killing a worker mid-cluster surfaces a typed `DistError` on every RPC
/// path within the configured deadline — never a hang, never a panic.
#[test]
fn killed_worker_surfaces_typed_error_within_deadline() {
    tf_eager::init();
    for kind in both_transports() {
        let opts = RpcOptions::with_deadline(Duration::from_millis(800));
        let deadline = opts.deadline;
        let spec = ClusterSpec::new().with_job("w", 2).unwrap();
        let cluster = Cluster::start_with(&spec, kind, opts).expect("cluster starts");
        let d0 = "/job:w/task:0/device:CPU:0";
        let d1 = "/job:w/task:1/device:CPU:0";
        let x = api::scalar(3.0f32);
        let resident = place(&cluster, d0, &x);

        cluster.kill_worker(d0).unwrap();

        // Every RPC path: execute, call_function, fetch, ping.
        let started = Instant::now();
        let results: Vec<Result<(), DistError>> = vec![
            cluster.execute(d0, "square", &[RemoteArg::from(&x)], Attrs::new()).map(|_| ()),
            cluster.call_function(d0, "no_fn_needed", &[]).map(|_| ()),
            resident.fetch().map(|_| ()),
            cluster.ping(d0),
        ];
        let elapsed = started.elapsed();
        for r in results {
            match r {
                Err(DistError::Timeout { .. }) | Err(DistError::ConnectionLost { .. }) => {}
                other => panic!("expected typed transport error ({kind:?}), got {other:?}"),
            }
        }
        // 4 RPCs, each bounded by its own deadline (+ generous slack for a
        // loaded CI box).
        assert!(
            elapsed < deadline * 4 + Duration::from_secs(2),
            "errors took {elapsed:?} ({kind:?})"
        );

        // The surviving worker keeps serving.
        let out = cluster.execute(d1, "square", &[RemoteArg::from(&x)], Attrs::new()).unwrap();
        assert_eq!(out[0].fetch().unwrap().scalar_f64().unwrap(), 9.0);
        drop(resident);
        cluster.shutdown();
    }
}

/// Parameter-server all-reduce matches its local reference emulation
/// bitwise on both transports.
#[test]
fn ps_collective_matches_reference_bitwise() {
    tf_eager::init();
    let mut rng = tfe_tensor::rng::TensorRng::seed_from_u64(17);
    let grads: Vec<Tensor> = (0..3)
        .map(|_| {
            Tensor::from_data(rng.uniform(DType::F32, Shape::from([5, 3]), -2.0, 2.0).unwrap())
        })
        .collect();
    let reference =
        ps_reference_mean(&grads.iter().map(|g| g.value().unwrap()).collect::<Vec<_>>()).unwrap();
    let ref_bits = bits(&Tensor::from_data(reference));

    for kind in both_transports() {
        let spec = ClusterSpec::new().with_job("train", 3).unwrap().with_job("ps", 1).unwrap();
        let cluster = start(&spec, kind);
        let shards: Vec<RemoteTensor> = grads
            .iter()
            .enumerate()
            .map(|(t, g)| place(&cluster, &format!("/job:train/task:{t}/device:CPU:0"), g))
            .collect();
        let mean = ps_all_reduce_mean(&cluster, "/job:ps/task:0/device:CPU:0", &shards).unwrap();
        assert_eq!(mean.device.to_string(), "/job:ps/task:0/device:CPU:0");
        assert_eq!(bits(&mean.fetch().unwrap()), ref_bits, "{kind:?}");
        cluster.shutdown();
    }
}

/// Ring all-reduce matches its local reference emulation bitwise on both
/// transports, including uneven chunking and the scalar fallback; all
/// workers end up with identical results.
#[test]
fn ring_collective_matches_reference_bitwise() {
    tf_eager::init();
    let mut rng = tfe_tensor::rng::TensorRng::seed_from_u64(23);
    // rows=7 over 3 workers: uneven chunks (3,2,2). Also a scalar case.
    for dims in [vec![7usize, 2], vec![]] {
        let grads: Vec<Tensor> = (0..3)
            .map(|_| {
                Tensor::from_data(
                    rng.uniform(DType::F64, Shape::from(dims.clone()), -1.0, 1.0).unwrap(),
                )
            })
            .collect();
        let reference =
            ring_reference_mean(&grads.iter().map(|g| g.value().unwrap()).collect::<Vec<_>>())
                .unwrap();
        let ref_bits = bits(&Tensor::from_data(reference));

        for kind in both_transports() {
            let spec = ClusterSpec::new().with_job("train", 3).unwrap();
            let cluster = start(&spec, kind);
            let shards: Vec<RemoteTensor> = grads
                .iter()
                .enumerate()
                .map(|(t, g)| place(&cluster, &format!("/job:train/task:{t}/device:CPU:0"), g))
                .collect();
            let reduced = ring_all_reduce_mean(&cluster, &shards).unwrap();
            assert_eq!(reduced.len(), 3);
            for r in &reduced {
                assert_eq!(bits(&r.fetch().unwrap()), ref_bits, "{kind:?} dims {dims:?}");
            }
            cluster.shutdown();
        }
    }
}

/// Spec and resolution failures are typed, not stringly panics.
#[test]
fn cluster_spec_typed_errors() {
    tf_eager::init();
    assert!(matches!(
        ClusterSpec::new().with_job("w", 1).unwrap().with_job("w", 2),
        Err(DistError::DuplicateJob(_))
    ));
    assert!(matches!(ClusterSpec::new().with_job("w", 0), Err(DistError::EmptyJob(_))));

    let cluster = Cluster::start(&ClusterSpec::new().with_job("w", 2).unwrap());
    // Unknown job.
    assert!(matches!(
        cluster.ping("/job:nope/task:0/device:CPU:0"),
        Err(DistError::NoSuchWorker(_))
    ));
    // Task out of range.
    assert!(matches!(cluster.ping("/job:w/task:2/device:CPU:0"), Err(DistError::NoSuchWorker(_))));
    // Workers only contribute CPU:0.
    assert!(matches!(cluster.ping("/job:w/task:0/device:GPU:0"), Err(DistError::BadDevice(_))));
    assert!(matches!(cluster.ping("/job:w/task:0/device:CPU:1"), Err(DistError::BadDevice(_))));
    // Garbage device strings.
    assert!(matches!(cluster.ping("not-a-device"), Err(DistError::BadDevice(_))));
    cluster.shutdown();
}
