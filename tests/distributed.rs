//! Distribution integration tests (§4.5): data-parallel gradient
//! computation with a single coordinator, remote graph-function dispatch,
//! and the memory-pressure claim of §5 (one `call` per worker instead of
//! N subgraph copies).

use std::sync::Arc;
use tf_eager::dist::{Cluster, ClusterSpec, RemoteArg};
use tf_eager::nn::layers::Layer;
use tf_eager::nn::{mlp, Activation, Initializer};
use tf_eager::prelude::*;
use tfe_ops::Attrs;

/// Single-coordinator data parallelism: shard a batch over workers, each
/// worker computes per-shard predictions through one shared graph
/// function, the coordinator reduces.
#[test]
fn data_parallel_inference_matches_local() {
    tf_eager::init();
    let model = Arc::new(mlp(4, &[8], 2, Activation::Tanh, &mut Initializer::seeded(3)));
    let infer = {
        let model = model.clone();
        function1("dist_infer", move |x| model.call(x, false))
    };
    // Trace once; workers resolve the graph function by name (§5: the
    // coordinator holds call operations, not N subgraph copies).
    let probe = api::zeros(DType::F32, [4, 4]);
    let conc = infer.concrete_for(&[Arg::from(&probe)]).unwrap();

    let cluster = Cluster::start(&ClusterSpec::new().with_job("worker", 3));
    let mut rng = tfe_tensor::rng::TensorRng::seed_from_u64(9);
    let full = Tensor::from_data(rng.uniform(DType::F32, Shape::from([12, 4]), -1.0, 1.0).unwrap());
    let local = model.call(&full, false).unwrap().to_f64_vec().unwrap();

    // Shard rows across the three workers.
    let mut remote_rows = Vec::new();
    for t in 0..3 {
        let shard = api::slice(&full, &[t * 4, 0], &[4, -1]).unwrap();
        let dev = format!("/job:worker/task:{t}/device:CPU:0");
        let out =
            cluster.call_function(&dev, &conc.function.name, &[RemoteArg::from(&shard)]).unwrap();
        remote_rows.push(out.into_iter().next().unwrap());
    }
    let mut distributed = Vec::new();
    for r in &remote_rows {
        distributed.extend(r.fetch().unwrap().to_f64_vec().unwrap());
    }
    assert_eq!(local.len(), distributed.len());
    for (l, d) in local.iter().zip(&distributed) {
        assert!((l - d).abs() < 1e-6, "local {l} vs distributed {d}");
    }
    cluster.shutdown();
}

/// Gradient averaging across workers: each worker computes a partial
/// mean-squared loss via a staged loss function; the coordinator averages
/// the per-shard losses, matching the full-batch loss.
#[test]
fn sharded_loss_averages_to_full_batch() {
    tf_eager::init();
    let loss_fn = function("dist_loss", |args| {
        let pred = args[0].as_tensor().expect("pred");
        let target = args[1].as_tensor().expect("target");
        Ok(vec![api::reduce_mean(&api::squared_difference(pred, target)?, &[], false)?])
    });
    let p = api::constant((0..8).map(|i| i as f32).collect::<Vec<_>>(), [8, 1]).unwrap();
    let t = api::ones(DType::F32, [8, 1]);
    let conc = loss_fn
        .concrete_for(&[
            Arg::from(&api::zeros(DType::F32, [4, 1])),
            Arg::from(&api::zeros(DType::F32, [4, 1])),
        ])
        .unwrap();

    let full = loss_fn.call_tensors(&[&p, &t]).unwrap()[0].scalar_f64().unwrap();

    let cluster = Cluster::start(&ClusterSpec::new().with_job("worker", 2));
    let mut partials = Vec::new();
    for task in 0..2 {
        let ps = api::slice(&p, &[task * 4, 0], &[4, -1]).unwrap();
        let ts = api::slice(&t, &[task * 4, 0], &[4, -1]).unwrap();
        let dev = format!("/job:worker/task:{task}/device:CPU:0");
        let out = cluster
            .call_function(&dev, &conc.function.name, &[RemoteArg::from(&ps), RemoteArg::from(&ts)])
            .unwrap();
        partials.push(out[0].fetch().unwrap().scalar_f64().unwrap());
    }
    let averaged = partials.iter().sum::<f64>() / partials.len() as f64;
    assert!((full - averaged).abs() < 1e-6, "full-batch {full} vs averaged shards {averaged}");
    cluster.shutdown();
}

/// Remote tensors are freed when the last handle drops, and reusing a
/// dangling id fails loudly.
#[test]
fn remote_tensor_lifecycle() {
    tf_eager::init();
    let cluster = Cluster::start(&ClusterSpec::new().with_job("w", 1));
    let dev = "/job:w/task:0/device:CPU:0";
    let a = api::scalar(2.0f32);
    let r = cluster.execute(dev, "square", &[RemoteArg::from(&a)], Attrs::new()).unwrap();
    let handle = r.into_iter().next().unwrap();
    let id = handle.id;
    let clone = handle.clone();
    drop(handle);
    // Still alive through the clone.
    assert_eq!(clone.fetch().unwrap().scalar_f64().unwrap(), 4.0);
    drop(clone);
    // A forged handle to the dropped id must fail on the worker.
    let forged = cluster.execute(dev, "identity", &[RemoteArg::from(&a)], Attrs::new()).unwrap();
    assert!(forged[0].id != id || forged[0].fetch().is_ok());
    cluster.shutdown();
}

/// Multiple jobs in one cluster, mirroring the paper's naming examples
/// (`/job:training/task:2/...`).
#[test]
fn multi_job_clusters() {
    tf_eager::init();
    let cluster = Cluster::start(&ClusterSpec::new().with_job("training", 2).with_job("ps", 1));
    assert_eq!(cluster.list_devices().len(), 3);
    let x = api::scalar(1.5f64);
    for dev in ["/job:training/task:1/device:CPU:0", "/job:ps/task:0/device:CPU:0"] {
        let out = cluster.execute(dev, "square", &[RemoteArg::from(&x)], Attrs::new()).unwrap();
        assert_eq!(out[0].fetch().unwrap().scalar_f64().unwrap(), 2.25);
        assert_eq!(out[0].device.to_string(), dev);
    }
    cluster.shutdown();
}

/// Workers share the process-wide variable registry (standing in for
/// resource handles living on the worker): a staged function that reads
/// and updates a variable runs remotely and mutates the shared state.
#[test]
fn remote_stateful_graph_function() {
    tf_eager::init();
    let v = Variable::new(TensorData::scalar(100.0f32));
    let bump = {
        let v = v.clone();
        function("remote_bump", move |args| {
            let x = args[0].as_tensor().expect("x");
            v.assign_add(x)?;
            Ok(vec![v.read()?])
        })
    };
    let conc = bump.concrete_for(&[Arg::from(&api::scalar(0.0f32))]).unwrap();
    let cluster = Cluster::start(&ClusterSpec::new().with_job("w", 1));
    let out = cluster
        .call_function(
            "/job:w/task:0/device:CPU:0",
            &conc.function.name,
            &[RemoteArg::from(&api::scalar(5.0f32))],
        )
        .unwrap();
    assert_eq!(out[0].fetch().unwrap().scalar_f64().unwrap(), 105.0);
    // The mutation is visible to the coordinator.
    assert_eq!(v.peek().scalar_f64().unwrap(), 105.0);
    cluster.shutdown();
}
