//! Offline stand-in for the `rand` crate (0.8-style API subset).
//!
//! Deterministic, seedable, non-cryptographic. `StdRng` here is
//! xoshiro256** seeded via SplitMix64 — equal seeds yield equal streams,
//! which is the only property the workspace relies on (it never assumes
//! rand's exact stream values).

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling over a range type, mirroring `rand`'s blanket ranges.
pub trait SampleRange<T> {
    /// Draw one sample from `rng` within this range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Object-safe core: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Values drawable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        // 53 mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn draw(rng: &mut dyn RngCore) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i32 {
    fn draw(rng: &mut dyn RngCore) -> i32 {
        (rng.next_u64() >> 32) as i32
    }
}

impl Standard for usize {
    fn draw(rng: &mut dyn RngCore) -> usize {
        rng.next_u64() as usize
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = <$t as Standard>::draw(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let unit = <$t as Standard>::draw(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

float_range!(f32, f64);

/// The user-facing sampling trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draw from the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::draw(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the shim's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s == [0, 0, 0, 0] {
                s = [1, 2, 3, 4];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A default-seeded thread-independent generator (`rand::thread_rng`
/// stand-in — deterministic here, which the workspace never relies on).
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.subsec_nanos()).unwrap_or(0);
    rngs::StdRng::seed_from_u64(0xC0FF_EE00 ^ u64::from(nanos))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            let w: f32 = r.gen();
            assert!((0.0..1.0).contains(&w));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..7);
            assert!((-5..7).contains(&v));
            let u = r.gen_range(2usize..=2);
            assert_eq!(u, 2);
            let f = r.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
