//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the API this workspace uses: the `Strategy`
//! trait with `prop_map` / `prop_recursive` / `boxed`, `Just`, `any`,
//! range and tuple strategies, charset-regex string strategies,
//! `prop::collection::{vec, btree_map}`, `prop_oneof!`, the `proptest!`
//! test macro, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Generation is deterministic per test case (seeded from the case
//! index), so failures are reproducible run-to-run. There is no
//! shrinking: a failing case reports its index and panics with the
//! assertion message.

use std::sync::Arc;

pub mod test_runner {
    //! Config, per-case RNG, and the test-case error type.

    /// How many random cases a `proptest!` test runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Why a single case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed with this message.
        Fail(String),
        /// The case was rejected (unused by this shim's macros, kept for
        /// API compatibility).
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected case.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Result of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic per-case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` — same case, same values.
        pub fn for_case(case: u64) -> TestRng {
            TestRng { state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5851_F42D_4C95_7F2D }
        }

        /// Next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "below(0)");
            (self.next_u64() % bound as u64) as usize
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one random value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    /// Recursive strategy: `self` generates leaves, `f` wraps an inner
    /// strategy into one more level, up to `depth` levels. The `_size`
    /// and `_branch` hints are accepted for API compatibility but
    /// ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut cur = self.clone().boxed();
        for _ in 0..depth {
            let leaf = self.clone().boxed();
            // Two-thirds odds of descending keeps generated trees deep
            // enough to be interesting without the ignored size hint.
            cur = Union::weighted(vec![(1, leaf), (2, f(cur).boxed())]).boxed();
        }
        cur
    }

    /// Type-erase into a cloneable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Cloneable type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Strategy mapping generated values through a function.
#[derive(Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone(), total: self.total }
    }
}

impl<T> Union<T> {
    /// Uniform choice among `arms`.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Choice weighted by each arm's `u32` weight.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum::<u32>().max(1);
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as usize) as u32;
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        self.arms.last().unwrap().1.generate(rng)
    }
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-balanced, magnitude-varied — no NaN/inf, which is
        // what the workspace tests expect from any::<f64>().
        let mag = 10f64.powf(rng.unit_f64() * 12.0 - 6.0);
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * mag * rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy for `any::<T>()`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for a type: `any::<bool>()`, `any::<i64>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                start + (rng.unit_f64() as $t) * (end - start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// `&'static str` regex-lite strategies: `[charset]{m,n}` with literal
/// chars and `a-z` ranges inside the class, or `\PC{m,n}` for printable
/// characters. Suffixes `{m}`, `+`, `*`, or none are also accepted.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (charset, min, max) = parse_charset_pattern(self);
        let len = if max > min { min + rng.below(max - min + 1) } else { min };
        (0..len).map(|_| charset[rng.below(charset.len())]).collect()
    }
}

fn parse_charset_pattern(pat: &str) -> (Vec<char>, usize, usize) {
    let chars: Vec<char> = pat.chars().collect();
    let mut i;
    let mut set = Vec::new();
    if chars.first() == Some(&'[') {
        i = 1;
        while i < chars.len() && chars[i] != ']' {
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                assert!(lo <= hi, "bad charset range in {pat:?}");
                for c in lo..=hi {
                    set.push(char::from_u32(c).unwrap());
                }
                i += 3;
            } else {
                set.push(chars[i]);
                i += 1;
            }
        }
        assert!(i < chars.len(), "unterminated charset in {pat:?}");
        i += 1; // skip ']'
    } else if pat.starts_with("\\PC") {
        // `\PC` = "not a control character": printable ASCII plus a few
        // multibyte characters to exercise non-ASCII paths.
        set = (0x20u32..0x7F).map(|c| char::from_u32(c).unwrap()).collect();
        set.extend(['\u{e9}', '\u{3b1}', '\u{221a}', '\u{65e5}', '\u{1f600}']);
        i = 3;
    } else {
        panic!("unsupported pattern {pat:?}: this shim handles [charset] and \\PC forms only");
    }

    let rest: String = chars[i..].iter().collect();
    let (min, max) = if rest.is_empty() {
        (1, 1)
    } else if rest == "+" {
        (1, 8)
    } else if rest == "*" {
        (0, 8)
    } else if rest.starts_with('{') && rest.ends_with('}') {
        let body = &rest[1..rest.len() - 1];
        if let Some((lo, hi)) = body.split_once(',') {
            (
                lo.trim().parse().unwrap_or_else(|_| panic!("bad repeat in {pat:?}")),
                hi.trim().parse().unwrap_or_else(|_| panic!("bad repeat in {pat:?}")),
            )
        } else {
            let n = body.trim().parse().unwrap_or_else(|_| panic!("bad repeat in {pat:?}"));
            (n, n)
        }
    } else {
        panic!("unsupported repetition {rest:?} in pattern {pat:?}");
    };
    assert!(min <= max, "bad repetition bounds in {pat:?}");
    assert!(!set.is_empty(), "empty charset in {pat:?}");
    (set, min, max)
}

pub mod collection {
    //! `vec` and `btree_map` collection strategies.

    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;

    /// Inclusive size bounds for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.max > self.min {
                self.min + rng.below(self.max - self.min + 1)
            } else {
                self.min
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random in-range length.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A vector of values from `elem` with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut map = BTreeMap::new();
            // Duplicate keys shrink the map; retry a bounded number of
            // times so small key spaces still hit the minimum size.
            let mut attempts = 0;
            while map.len() < target && attempts < target * 10 + 20 {
                map.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            map
        }
    }

    /// A map with keys from `key`, values from `value`, and size in
    /// `size` (best-effort under key collisions).
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }
}

pub mod prop {
    //! The `prop::` namespace (`prop::collection::vec`, …).
    pub use crate::collection;
}

pub mod prelude {
    //! The usual glob import surface.
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{any, prop, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a proptest case; on failure the case returns an error
/// (reported with the case number) instead of unwinding mid-generator.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Inequality assertion inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Define `#[test]` functions over generated inputs:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0..10usize, ys in prop::collection::vec(any::<bool>(), 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            $(let $arg = $strat;)+
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(u64::from(__case));
                $(let $arg = $crate::Strategy::generate(&$arg, &mut __rng);)+
                let __result: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __result {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err(e) => {
                        panic!("proptest case {} of {} failed: {}", __case, __config.cases, e);
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
        }
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        let leaf = (-100i64..100).prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 16, 3, |inner| {
            prop::collection::vec(inner, 1..4).prop_map(Tree::Node)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn trees_bounded(t in arb_tree()) {
            prop_assert!(depth(&t) <= 4, "depth {} too large", depth(&t));
        }

        #[test]
        fn ranges_and_tuples(x in 0usize..10, pair in (0i64..5, 5i64..10)) {
            let (a, b) = pair;
            prop_assert!(x < 10);
            prop_assert!(a < b);
        }

        #[test]
        fn strings_match_charset(s in "[a-c]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn maps_have_sizes(m in prop::collection::btree_map("[a-z]{1,6}", 0i64..10, 1..4)) {
            prop_assert!(!m.is_empty() && m.len() < 4);
        }
    }

    #[test]
    fn determinism_per_case() {
        let strat = arb_tree();
        let mut r1 = crate::test_runner::TestRng::for_case(7);
        let mut r2 = crate::test_runner::TestRng::for_case(7);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }

    #[test]
    fn oneof_covers_arms() {
        let strat = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for case in 0..100 {
            let mut rng = crate::test_runner::TestRng::for_case(case);
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_case() {
        // No `#[test]` on the inner fn: as a function-local item the
        // attribute would be inert anyway (unnameable test item).
        proptest! {
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
