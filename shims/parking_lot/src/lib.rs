//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The container this workspace builds in has no access to crates.io, so
//! the real `parking_lot` cannot be fetched. This shim exposes the subset
//! of its API the workspace uses — `Mutex`, `RwLock`, `Condvar` and their
//! guards, with non-poisoning semantics (a poisoned std lock is recovered
//! by taking the inner value, matching parking_lot's behavior of not
//! propagating panics through lock acquisition).

use std::sync;
use std::time::Duration;

/// Non-poisoning mutex with `parking_lot`'s `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock with `parking_lot`'s signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Condition variable compatible with [`Mutex`] guards.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified; `guard` is re-acquired on wake.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Temporarily move the guard out to satisfy std's owned-guard API.
        replace_guard(guard, |g| self.0.wait(g).unwrap_or_else(sync::PoisonError::into_inner));
    }

    /// Block until notified or `timeout` elapses. Returns whether it timed
    /// out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, r) =
                self.0.wait_timeout(g, timeout).unwrap_or_else(sync::PoisonError::into_inner);
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

fn replace_guard<'a, T: ?Sized>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // Safety-free shuffle: std's condvar consumes the guard by value, while
    // parking_lot's takes `&mut`. We emulate by replacing through a raw
    // move: take the guard out via ptr::read and write the new one back.
    // The closure always returns a valid guard for the same mutex, so the
    // slot is never left dangling.
    unsafe {
        let guard = std::ptr::read(slot);
        let new_guard = f(guard);
        std::ptr::write(slot, new_guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        t.join().unwrap();
        assert!(*done);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
