//! Offline stand-in for the `crossbeam` crate, backed by std primitives.
//!
//! Provides the subset the workspace uses: `crossbeam::channel`
//! (multi-producer channels whose `Receiver` is cloneable) and
//! `crossbeam::thread::scope` (scoped threads whose panics surface as an
//! `Err` instead of unwinding through the scope).

/// MPMC-ish channels backed by `std::sync::mpsc` with a shared receiver.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Sending half; cloneable.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Error returned when the receiving side is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned when the sending side is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Non-blocking receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// All senders dropped and buffer drained.
        Disconnected,
    }

    /// Bounded-wait receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No value arrived within the timeout.
        Timeout,
        /// All senders dropped and buffer drained.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "receive timed out"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    impl<T> Sender<T> {
        /// Send a value; fails if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half; cloneable (clones share the same queue).
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(self.0.clone())
        }
    }

    impl<T> Receiver<T> {
        /// Block for the next value; fails once all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.0.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv().map_err(|_| RecvError)
        }

        /// Block for the next value, giving up after `timeout`.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let guard = self.0.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let guard = self.0.lock().unwrap_or_else(|e| e.into_inner());
            guard.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Iterate until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Blocking iterator over received values.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}

/// Scoped threads with crossbeam's panic-capturing `scope` signature.
pub mod thread {
    /// Result type of [`scope`]: `Err` carries a panic payload.
    pub type ScopeResult<R> = Result<R, Box<dyn std::any::Any + Send + 'static>>;

    /// Handle passed to the scope closure; spawns borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope handle,
        /// mirroring crossbeam's `|scope|` argument (commonly ignored).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope allowing borrowing spawns; child panics are
    /// captured and returned as `Err` after all threads join.
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let wrapper = Scope { inner: s };
                f(&wrapper)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_round_trip() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        drop((tx, tx2));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn cloned_receiver_shares_queue() {
        let (tx, rx) = super::channel::unbounded();
        let rx2 = rx.clone();
        tx.send(7).unwrap();
        assert_eq!(rx2.recv().unwrap(), 7);
        assert!(matches!(rx.try_recv(), Err(super::channel::TryRecvError::Empty)));
    }

    #[test]
    fn scope_joins_and_borrows() {
        let data = [1, 2, 3];
        let sum = super::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn scope_captures_panics() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
