//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the API the workspace benches use —
//! `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher::{iter,
//! iter_with_setup}`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple warmup + timed-samples
//! measurement loop that prints mean/median per benchmark. No plots, no
//! statistics beyond that; the point is that `cargo bench` runs and
//! reports comparable wall-clock numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Measurement settings plus the entry point for registering benches.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(900),
        }
    }
}

impl Criterion {
    /// Number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// How long to run the routine before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Total time budget split across the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self, &id.0, &mut f);
        self
    }
}

/// Identifier combining a function name and an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier, as criterion prints it.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// A named collection of benchmarks sharing the parent settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Override the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Benchmark a routine under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(self.criterion, &label, &mut f);
        self
    }

    /// Benchmark a routine that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(self.criterion, &label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Close the group (printing is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` does the timing.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Time `routine`, running it enough times per sample for a stable
    /// reading.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().checked_div(warm_iters as u32).unwrap_or_default();

        // Split the measurement budget into samples of N iterations each.
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let iters = if per_iter.is_zero() {
            1000
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        self.iters_per_sample = iters;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }

    /// Time `routine` on fresh input from `setup`; only `routine` is
    /// timed.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm up once to estimate the cost.
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let per_iter = t0.elapsed();

        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let iters = if per_iter.is_zero() {
            1000
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000) as u64
        };
        self.iters_per_sample = iters;
        for _ in 0..self.sample_size {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                total += t.elapsed();
            }
            self.samples.push(total);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(c: &Criterion, label: &str, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_size: c.sample_size,
        warm_up_time: c.warm_up_time,
        measurement_time: c.measurement_time,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let iters = bencher.iters_per_sample.max(1);
    let mut per_iter: Vec<f64> =
        bencher.samples.iter().map(|d| d.as_secs_f64() * 1e9 / iters as f64).collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{label:<48} time: [median {} mean {}]  ({} samples x {} iters)",
        fmt_ns(median),
        fmt_ns(mean),
        per_iter.len(),
        iters
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Define a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_spin(c: &mut Criterion) {
        let mut g = c.benchmark_group("spin");
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        bench_spin(&mut c);
        c.bench_function("standalone", |b| {
            b.iter_with_setup(|| vec![1u64; 64], |v| v.iter().sum::<u64>())
        });
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(6));
        targets = bench_spin
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
