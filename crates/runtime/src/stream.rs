//! Per-device asynchronous dispatch streams (§4.1, §6 "Imperative
//! performance").
//!
//! In async eager mode the dispatcher does not run kernels on the calling
//! thread: it validates and shape-infers the op synchronously, returns
//! handles whose payloads are *pending* [`PendingValue`] slots, and appends
//! the kernel invocation to the [`DeviceStream`] of the resolved device. A
//! stream executes its ops strictly in enqueue order on a dedicated
//! dispatch thread (one per device, spawned lazily, parked when idle);
//! kernels launched from the stream still fan their tiles out over the
//! shared `tfe-parallel` worker pool, so intra-op parallelism is unchanged.
//! Running the stream on its own thread rather than as a pool job keeps
//! the work-helping waiters deadlock-free: a pool waiter may steal bounded
//! tiles and graph nodes, but never an unbounded stream drainer.
//!
//! Ordering means sync mode and async mode execute the same kernels over
//! the same operands in the same program order, so results are bitwise
//! identical; the only thing that moves is *which thread* runs the kernel
//! and *when* the caller learns about failures.
//!
//! ## Deferred errors
//!
//! A kernel failure on the stream is captured in stream order: the first
//! failure poisons the stream ([`RuntimeError::Deferred`] with the
//! originating op name), every op already queued behind it is failed with
//! a clone of the same error without running, and the poison is surfaced —
//! exactly once — at the next sync point: a read of a failed handle, an
//! explicit `context::sync`, an `async_scope` exit, or the next enqueue
//! (which fails fast and clears the poison so the stream is usable again).
//! This mirrors the first-error-wins semantics of the parallel graph
//! executor.

use crate::error::{Result, RuntimeError};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use tfe_device::DeviceName;
use tfe_tensor::{AsyncSlot, DType, Shape, TensorData};

/// A slot error: the stream sequence number of the op whose failure
/// poisoned the stream, plus the deferred error itself. The sequence lets
/// a reader that observes the error clear exactly that poison.
type SlotError = (u64, RuntimeError);

/// The payload of a pending eager tensor: metadata known at enqueue time
/// plus the write-once value slot resolved by the dispatch stream.
pub(crate) struct PendingValue {
    /// Element dtype, inferred synchronously at enqueue.
    pub(crate) dtype: DType,
    /// Concrete shape, inferred synchronously at enqueue.
    pub(crate) shape: Shape,
    /// Request context of the enqueuing thread, captured at enqueue time
    /// so a pending handle stays attributable to its request (visible in
    /// `Debug` output and post-mortem dumps).
    trace: Option<tfe_profile::TraceContext>,
    slot: AsyncSlot<Arc<TensorData>, SlotError>,
    stream: Arc<DeviceStream>,
}

impl PendingValue {
    /// The resolved value if the producing op already completed. `None`
    /// while in flight; a resolved failure reports (and clears) the
    /// stream's poison like `wait_value`.
    pub(crate) fn try_value(&self) -> Option<Result<Arc<TensorData>>> {
        self.slot.try_get().map(|r| self.surface(r))
    }

    /// Block until the producing op completes; a failure observed here is
    /// a sync point, so the matching stream poison is cleared.
    pub(crate) fn wait_value(&self) -> Result<Arc<TensorData>> {
        let r = self.slot.wait();
        self.surface(r)
    }

    /// Whether the producing op is still in flight.
    pub(crate) fn is_pending(&self) -> bool {
        !self.slot.is_resolved()
    }

    fn surface(&self, r: Result<Arc<TensorData>, SlotError>) -> Result<Arc<TensorData>> {
        r.map_err(|(origin, err)| {
            self.stream.observe(origin);
            err
        })
    }
}

impl std::fmt::Debug for PendingValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.slot.try_get() {
            None => match self.trace {
                Some(t) => {
                    write!(f, "<pending {}{} trace={}>", self.dtype, self.shape, t.trace_id)
                }
                None => write!(f, "<pending {}{}>", self.dtype, self.shape),
            },
            Some(Ok(d)) => write!(f, "{d:?}"),
            Some(Err((_, e))) => write!(f, "<failed: {e}>"),
        }
    }
}

/// An input captured at enqueue time: either an already-materialized value
/// or a pending handle the job resolves when it runs. Pending inputs from
/// the *same* stream are always resolved by then (FIFO order); inputs from
/// another device's stream are waited on, which is cycle-free because
/// dependencies always point at earlier-issued ops.
pub(crate) enum AsyncArg {
    Ready(Arc<TensorData>),
    Pending(Arc<PendingValue>),
}

impl AsyncArg {
    /// Materialize the value inside a stream job. Errors propagate as-is:
    /// an upstream `Deferred` stays attributed to its originating op.
    pub(crate) fn resolve(&self) -> Result<Arc<TensorData>> {
        match self {
            AsyncArg::Ready(d) => Ok(d.clone()),
            // Not a user-facing sync point: surfacing (and poison
            // clearing) happens on the consuming op's own stream.
            AsyncArg::Pending(pv) => pv.slot.wait().map_err(|(_, e)| e),
        }
    }
}

/// The kernel invocation a stream op defers.
type StreamJob = Box<dyn FnOnce() -> Result<Vec<Arc<TensorData>>> + Send>;

struct StreamOp {
    seq: u64,
    op: String,
    job: StreamJob,
    outputs: Vec<Arc<PendingValue>>,
    /// Trace group of the enqueuing thread; the dispatch thread adopts it
    /// while the op runs so kernels and downstream pool jobs stay
    /// attributed to the originating request(s).
    group: Option<tfe_profile::TraceGroup>,
}

struct Poison {
    /// Sequence number of the op whose failure set the poison.
    seq: u64,
    error: RuntimeError,
}

struct StreamShared {
    queue: VecDeque<StreamOp>,
    /// Monotone count of enqueued ops.
    issued: u64,
    /// Monotone count of finished ops (run, skipped, or stolen).
    completed: u64,
    /// First unobserved deferred error, in stream order.
    poisoned: Option<Poison>,
    /// Whether the dispatch thread has been spawned.
    running: bool,
}

/// One ordered asynchronous dispatch stream per device.
pub(crate) struct DeviceStream {
    device: DeviceName,
    shared: Mutex<StreamShared>,
    /// Signals both directions: enqueue → dispatch thread (new work) and
    /// dispatch thread → waiters (op completed / stream drained).
    cv: Condvar,
}

fn queue_depth_gauge() -> &'static tfe_metrics::Gauge {
    tfe_metrics::static_gauge!(
        "tfe_async_queue_depth",
        "Ops currently enqueued on async dispatch streams and not yet completed"
    )
}

impl DeviceStream {
    fn new(device: DeviceName) -> DeviceStream {
        DeviceStream {
            device,
            shared: Mutex::new(StreamShared {
                queue: VecDeque::new(),
                issued: 0,
                completed: 0,
                poisoned: None,
                running: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Create a pending output handle bound to this stream.
    pub(crate) fn pending_value(self: &Arc<Self>, dtype: DType, shape: Shape) -> Arc<PendingValue> {
        Arc::new(PendingValue {
            dtype,
            shape,
            trace: tfe_profile::current_context(),
            slot: AsyncSlot::new(),
            stream: self.clone(),
        })
    }

    /// Append an op to the stream. Fails fast — without enqueueing — when
    /// the stream is poisoned, surfacing (and clearing) the deferred error.
    pub(crate) fn enqueue(
        self: &Arc<Self>,
        op: &str,
        outputs: Vec<Arc<PendingValue>>,
        job: StreamJob,
    ) -> Result<()> {
        {
            let mut s = self.shared.lock();
            if s.poisoned.is_some() {
                drop(s);
                // The fast-fail is itself a sync point: the error is
                // consumed here and the stream is clean afterwards.
                return Err(self
                    .clear_poison(None)
                    .expect("poison observed under lock cannot vanish before clear"));
            }
            s.issued += 1;
            let seq = s.issued;
            s.queue.push_back(StreamOp {
                seq,
                op: op.to_string(),
                job,
                outputs,
                group: tfe_profile::current_group(),
            });
            if !s.running {
                s.running = true;
                let stream = self.clone();
                static STREAM_NO: std::sync::atomic::AtomicUsize =
                    std::sync::atomic::AtomicUsize::new(0);
                let n = STREAM_NO.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                std::thread::Builder::new()
                    .name(format!("tfe-stream-{n}"))
                    .spawn(move || dispatch_loop(stream))
                    .expect("spawn async dispatch stream thread");
            }
        }
        tfe_metrics::static_counter!(
            "tfe_async_ops_enqueued_total",
            "Operations enqueued on async dispatch streams"
        )
        .inc();
        let depth = queue_depth_gauge().add_and_get(1);
        tfe_metrics::static_gauge!(
            "tfe_async_queue_depth_peak",
            "High-water mark of tfe_async_queue_depth"
        )
        .set_max(depth);
        self.cv.notify_all();
        Ok(())
    }

    /// Block until every enqueued op has completed. Does *not* consume the
    /// stream's deferred error — used by value peeks that must not swallow
    /// failures destined for the next real sync point.
    pub(crate) fn drain(&self) {
        let mut s = self.shared.lock();
        while s.completed < s.issued {
            self.cv.wait(&mut s);
        }
    }

    /// Take the deferred error, if any, failing everything still queued
    /// behind it. The stream is clean (and usable) afterwards.
    pub(crate) fn take_error(&self) -> Option<RuntimeError> {
        self.clear_poison(None)
    }

    /// A reader surfaced the error of the op at `origin`; clear the poison
    /// it set, if still set. A *different* (newer) poison stays.
    fn observe(&self, origin: u64) {
        self.clear_poison(Some(origin));
    }

    /// Whether any enqueued op has not completed yet.
    pub(crate) fn has_inflight(&self) -> bool {
        let s = self.shared.lock();
        s.completed < s.issued
    }

    fn clear_poison(&self, origin: Option<u64>) -> Option<RuntimeError> {
        let (poison, stolen) = {
            let mut s = self.shared.lock();
            match &s.poisoned {
                Some(p) if origin.is_none() || origin == Some(p.seq) => {}
                _ => return None,
            }
            let poison = s.poisoned.take().expect("checked above");
            // Everything still queued could only observe this same error;
            // fail it now so the cleared stream restarts from an empty
            // queue instead of running ops against failed inputs.
            let stolen: Vec<StreamOp> = s.queue.drain(..).collect();
            s.completed += stolen.len() as u64;
            (poison, stolen)
        };
        if !stolen.is_empty() {
            queue_depth_gauge().sub(stolen.len() as i64);
        }
        for op in &stolen {
            for pv in &op.outputs {
                pv.slot.fail((poison.seq, poison.error.clone()));
            }
        }
        self.cv.notify_all();
        Some(poison.error)
    }

    /// The device this stream serializes.
    pub(crate) fn device(&self) -> &DeviceName {
        &self.device
    }
}

/// Wrap a synchronous failure as a deferred error naming `op`; an error
/// that is already deferred (a failed upstream input) passes through so it
/// keeps naming the op whose kernel originally failed.
fn deferred(op: &str, e: RuntimeError) -> RuntimeError {
    match e {
        RuntimeError::Deferred { .. } => e,
        other => RuntimeError::Deferred { op: op.to_string(), source: Box::new(other) },
    }
}

fn dispatch_loop(stream: Arc<DeviceStream>) {
    // Nested eager execution on this thread (host closures inside staged
    // calls, gradient math, …) must run synchronously: re-enqueueing onto
    // the very stream this thread drains would deadlock behind the op
    // currently executing.
    crate::context::disable_async_on_thread();
    loop {
        let (op, skip) = {
            let mut s = stream.shared.lock();
            loop {
                if let Some(op) = s.queue.pop_front() {
                    // Capture the skip decision under the same lock as the
                    // pop so a racing poison-clear cannot split them.
                    let skip = s.poisoned.as_ref().map(|p| (p.seq, p.error.clone()));
                    break (op, skip);
                }
                stream.cv.wait(&mut s);
            }
        };
        // Adopt the enqueuing request's context for the whole op — the
        // kernel span, any pool jobs it spawns, and the poison marker all
        // land on the originating trace.
        let _trace = tfe_profile::adopt(op.group.as_ref(), "stream");
        let result: Result<Vec<Arc<TensorData>>, SlotError> = match skip {
            // Poisoned: fail without running, attributed to the original op.
            Some((origin, err)) => Err((origin, err)),
            None => {
                let mut span = tfe_profile::span("async_op", || op.op.clone());
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (op.job)()));
                match run {
                    Ok(Ok(vals)) => {
                        if let Some(sp) = span.as_mut() {
                            let bytes: u64 = vals
                                .iter()
                                .map(|d| (d.num_elements() * d.dtype().size_bytes()) as u64)
                                .sum();
                            sp.set_bytes(bytes);
                        }
                        Ok(vals)
                    }
                    Ok(Err(e)) => Err((op.seq, deferred(&op.op, e))),
                    Err(_) => Err((
                        op.seq,
                        deferred(
                            &op.op,
                            RuntimeError::Internal(format!(
                                "async op `{}` panicked on stream {}",
                                op.op,
                                stream.device()
                            )),
                        ),
                    )),
                }
            }
        };
        match result {
            Ok(vals) => {
                debug_assert_eq!(vals.len(), op.outputs.len(), "op `{}` output arity", op.op);
                for (pv, v) in op.outputs.iter().zip(vals) {
                    pv.slot.fulfill(v);
                }
            }
            Err((origin, err)) => {
                let newly_poisoned = {
                    let mut s = stream.shared.lock();
                    // First error wins; a skip propagating the existing
                    // poison never overwrites it (same origin anyway).
                    if s.poisoned.is_none() {
                        s.poisoned = Some(Poison { seq: origin, error: err.clone() });
                        tfe_metrics::static_counter!(
                            "tfe_async_deferred_errors_total",
                            "Kernel failures captured on async dispatch streams"
                        )
                        .inc();
                        tfe_profile::instant("stream", || format!("poison:{}:{err}", op.op));
                        true
                    } else {
                        false
                    }
                };
                if newly_poisoned {
                    // Post-mortem: the deferred error will only surface at
                    // some later sync point, so capture the causal history
                    // now, while it is still in the flight rings.
                    let trace_id =
                        op.group.as_ref().map(|g| g.primary().trace_id).unwrap_or_default();
                    tfe_profile::flight_dump("deferred_error", &op.op, trace_id);
                }
                for pv in &op.outputs {
                    pv.slot.fail((origin, err.clone()));
                }
            }
        }
        {
            let mut s = stream.shared.lock();
            s.completed += 1;
        }
        queue_depth_gauge().sub(1);
        stream.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Stream registry
// ---------------------------------------------------------------------------

fn registry() -> &'static RwLock<HashMap<String, Arc<DeviceStream>>> {
    static R: std::sync::OnceLock<RwLock<HashMap<String, Arc<DeviceStream>>>> =
        std::sync::OnceLock::new();
    R.get_or_init(|| RwLock::new(HashMap::new()))
}

/// The dispatch stream of `device`, created on first use.
pub(crate) fn for_device(device: &DeviceName) -> Arc<DeviceStream> {
    let key = device.to_string();
    if let Some(s) = registry().read().get(&key) {
        return s.clone();
    }
    let mut w = registry().write();
    w.entry(key).or_insert_with(|| Arc::new(DeviceStream::new(device.clone()))).clone()
}

/// Every stream created so far (sync points walk all of them).
pub(crate) fn all() -> Vec<Arc<DeviceStream>> {
    registry().read().values().cloned().collect()
}
