//! The shared worker pool, re-exported from `tfe-parallel`.
//!
//! The pool started life here as the inter-op scheduler's private worker
//! set; it moved down into its own crate so the tensor kernels (which sit
//! below the runtime in the crate graph) can run intra-op tiles on the very
//! same threads. Scheduler code keeps using `crate::pool::*` unchanged.

pub use tfe_parallel::pool::global;
