//! CPU kernels for the standard op catalog.
//!
//! One kernel per primitive op, shared by the eager dispatcher and the
//! graph executor (§1: imperative and staged execution "share a single set
//! of primitive operations, kernels"). Simulated devices run these same
//! kernels (or skip them in cost-only mode).

use crate::error::{Result, RuntimeError};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use tfe_ops::{Attrs, OpError};
use tfe_tensor::conv::{self, Padding};
use tfe_tensor::elementwise::{self, BinaryOp, CmpOp, LogicalOp, UnaryOp};
use tfe_tensor::pool::{self, PoolKind};
use tfe_tensor::{matmul, reduce, shape_ops, softmax, Shape, TensorData, TensorError};

/// A kernel: attributes + concrete inputs → concrete outputs.
pub type Kernel = fn(&Attrs, &[Arc<TensorData>]) -> Result<Vec<TensorData>>;

fn kernels() -> &'static RwLock<HashMap<&'static str, Kernel>> {
    static K: std::sync::OnceLock<RwLock<HashMap<&'static str, Kernel>>> =
        std::sync::OnceLock::new();
    K.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Run the kernel for `op`.
///
/// # Errors
/// No kernel registered, or kernel failure.
pub fn run_kernel(op: &str, attrs: &Attrs, inputs: &[Arc<TensorData>]) -> Result<Vec<TensorData>> {
    ensure_kernels();
    let k = *kernels()
        .read()
        .get(op)
        .ok_or_else(|| RuntimeError::Internal(format!("no kernel registered for op `{op}`")))?;
    let mut sp = tfe_profile::span("kernel", || op.to_string());
    let out = k(attrs, inputs)?;
    if let Some(sp) = sp.as_mut() {
        sp.set_bytes(out.iter().map(|t| (t.num_elements() * t.dtype().size_bytes()) as u64).sum());
    }
    Ok(out)
}

/// Whether a kernel exists for `op`.
pub fn has_kernel(op: &str) -> bool {
    ensure_kernels();
    kernels().read().contains_key(op)
}

fn one(t: TensorData) -> Result<Vec<TensorData>> {
    Ok(vec![t])
}

fn in0(inputs: &[Arc<TensorData>]) -> Result<&TensorData> {
    inputs
        .first()
        .map(|t| t.as_ref())
        .ok_or_else(|| RuntimeError::Internal("missing input 0".to_string()))
}

fn in_n(inputs: &[Arc<TensorData>], i: usize) -> Result<&TensorData> {
    inputs
        .get(i)
        .map(|t| t.as_ref())
        .ok_or_else(|| RuntimeError::Internal(format!("missing input {i}")))
}

fn attrs_err(e: tfe_ops::AttrError) -> RuntimeError {
    RuntimeError::Op(OpError::Attr(e))
}

fn strides_of(attrs: &Attrs) -> Result<(usize, usize)> {
    let s = attrs.int_list_or("strides", &[1, 1]).map_err(attrs_err)?;
    if s.len() != 2 || s.iter().any(|&x| x <= 0) {
        return Err(RuntimeError::Internal("strides must be two positive ints".to_string()));
    }
    Ok((s[0] as usize, s[1] as usize))
}

fn padding_of(attrs: &Attrs) -> Result<Padding> {
    Padding::from_name(attrs.str("padding").unwrap_or("SAME"))
        .ok_or_else(|| RuntimeError::Internal("bad padding attr".to_string()))
}

fn ksize_of(attrs: &Attrs) -> Result<(usize, usize)> {
    let s = attrs.int_list("ksize").map_err(attrs_err)?;
    if s.len() != 2 || s.iter().any(|&x| x <= 0) {
        return Err(RuntimeError::Internal("ksize must be two positive ints".to_string()));
    }
    Ok((s[0] as usize, s[1] as usize))
}

macro_rules! kernel {
    ($map:expr, $name:expr, $f:expr) => {
        $map.insert($name, $f as Kernel);
    };
}

/// Reduce `x` to the shape of `reference` by summing broadcast dimensions —
/// the adjoint of broadcasting.
pub fn sum_to_shape(x: &TensorData, target: &Shape) -> Result<TensorData> {
    if x.shape() == target {
        return Ok(x.clone());
    }
    let xr = x.shape().rank();
    let tr = target.rank();
    if tr > xr {
        return Err(RuntimeError::Internal(format!(
            "sum_to_shape: target rank {tr} exceeds value rank {xr}"
        )));
    }
    // Sum away the extra leading axes.
    let lead: Vec<i64> = (0..(xr - tr) as i64).collect();
    let mut cur = if lead.is_empty() {
        x.clone()
    } else {
        reduce::reduce(x, &lead, false, reduce::ReduceOp::Sum)?
    };
    // Sum (keeping dims) axes where the target is 1 but the value is not.
    for i in 0..tr {
        if target.dim(i) == 1 && cur.shape().dim(i) != 1 {
            cur = reduce::reduce(&cur, &[i as i64], true, reduce::ReduceOp::Sum)?;
        }
    }
    if cur.shape() != target {
        return Err(RuntimeError::Internal(format!(
            "sum_to_shape: cannot reduce {} to {}",
            x.shape(),
            target
        )));
    }
    Ok(cur)
}

/// Shared zero tensors for cost-only simulated execution.
///
/// Cost-only devices produce shape-correct zero placeholders; allocating a
/// fresh multi-hundred-megabyte buffer per op causes severe mmap churn, so
/// identical (dtype, shape) zeros share one immutable allocation.
pub fn zero_value(dtype: tfe_tensor::DType, shape: Shape) -> Arc<TensorData> {
    type ZeroCache = parking_lot::Mutex<HashMap<(tfe_tensor::DType, Vec<usize>), Arc<TensorData>>>;
    static CACHE: std::sync::OnceLock<ZeroCache> = std::sync::OnceLock::new();
    let cache = CACHE.get_or_init(|| parking_lot::Mutex::new(HashMap::new()));
    cache
        .lock()
        .entry((dtype, shape.dims().to_vec()))
        .or_insert_with(|| Arc::new(TensorData::zeros(dtype, shape)))
        .clone()
}

/// Register all kernels exactly once.
pub fn ensure_kernels() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let mut map = kernels().write();
        register_elementwise(&mut map);
        register_structural(&mut map);
        register_linalg(&mut map);
        register_reduction(&mut map);
        register_nn(&mut map);
        register_random(&mut map);
        register_state(&mut map);
    });
}

fn register_elementwise(map: &mut HashMap<&'static str, Kernel>) {
    kernel!(map, "add", |_, i| one(elementwise::binary(in0(i)?, in_n(i, 1)?, BinaryOp::Add)?));
    kernel!(map, "sub", |_, i| one(elementwise::binary(in0(i)?, in_n(i, 1)?, BinaryOp::Sub)?));
    kernel!(map, "mul", |_, i| one(elementwise::binary(in0(i)?, in_n(i, 1)?, BinaryOp::Mul)?));
    kernel!(map, "div", |_, i| one(elementwise::binary(in0(i)?, in_n(i, 1)?, BinaryOp::Div)?));
    kernel!(map, "floor_div", |_, i| one(elementwise::binary(
        in0(i)?,
        in_n(i, 1)?,
        BinaryOp::FloorDiv
    )?));
    kernel!(map, "mod", |_, i| one(elementwise::binary(in0(i)?, in_n(i, 1)?, BinaryOp::Mod)?));
    kernel!(map, "pow", |_, i| one(elementwise::binary(in0(i)?, in_n(i, 1)?, BinaryOp::Pow)?));
    kernel!(map, "maximum", |_, i| one(elementwise::binary(
        in0(i)?,
        in_n(i, 1)?,
        BinaryOp::Maximum
    )?));
    kernel!(map, "minimum", |_, i| one(elementwise::binary(
        in0(i)?,
        in_n(i, 1)?,
        BinaryOp::Minimum
    )?));
    kernel!(map, "squared_difference", |_, i| one(elementwise::binary(
        in0(i)?,
        in_n(i, 1)?,
        BinaryOp::SquaredDifference
    )?));
    // Unary family (names match UnaryOp::name()); function pointers cannot
    // close over the op, so each is spelled out.
    kernel!(map, "neg", |_, i| one(elementwise::unary(in0(i)?, UnaryOp::Neg)?));
    kernel!(map, "abs", |_, i| one(elementwise::unary(in0(i)?, UnaryOp::Abs)?));
    kernel!(map, "sign", |_, i| one(elementwise::unary(in0(i)?, UnaryOp::Sign)?));
    kernel!(map, "exp", |_, i| one(elementwise::unary(in0(i)?, UnaryOp::Exp)?));
    kernel!(map, "log", |_, i| one(elementwise::unary(in0(i)?, UnaryOp::Log)?));
    kernel!(map, "log1p", |_, i| one(elementwise::unary(in0(i)?, UnaryOp::Log1p)?));
    kernel!(map, "sqrt", |_, i| one(elementwise::unary(in0(i)?, UnaryOp::Sqrt)?));
    kernel!(map, "rsqrt", |_, i| one(elementwise::unary(in0(i)?, UnaryOp::Rsqrt)?));
    kernel!(map, "square", |_, i| one(elementwise::unary(in0(i)?, UnaryOp::Square)?));
    kernel!(map, "reciprocal", |_, i| one(elementwise::unary(in0(i)?, UnaryOp::Reciprocal)?));
    kernel!(map, "relu", |_, i| one(elementwise::unary(in0(i)?, UnaryOp::Relu)?));
    kernel!(map, "sigmoid", |_, i| one(elementwise::unary(in0(i)?, UnaryOp::Sigmoid)?));
    kernel!(map, "tanh", |_, i| one(elementwise::unary(in0(i)?, UnaryOp::Tanh)?));
    kernel!(map, "softplus", |_, i| one(elementwise::unary(in0(i)?, UnaryOp::Softplus)?));
    kernel!(map, "floor", |_, i| one(elementwise::unary(in0(i)?, UnaryOp::Floor)?));
    kernel!(map, "ceil", |_, i| one(elementwise::unary(in0(i)?, UnaryOp::Ceil)?));
    kernel!(map, "round", |_, i| one(elementwise::unary(in0(i)?, UnaryOp::Round)?));
    kernel!(map, "sin", |_, i| one(elementwise::unary(in0(i)?, UnaryOp::Sin)?));
    kernel!(map, "cos", |_, i| one(elementwise::unary(in0(i)?, UnaryOp::Cos)?));
    kernel!(map, "erf", |_, i| one(elementwise::unary(in0(i)?, UnaryOp::Erf)?));

    kernel!(map, "equal", |_, i| one(elementwise::compare(in0(i)?, in_n(i, 1)?, CmpOp::Eq)?));
    kernel!(map, "not_equal", |_, i| one(elementwise::compare(in0(i)?, in_n(i, 1)?, CmpOp::Ne)?));
    kernel!(map, "less", |_, i| one(elementwise::compare(in0(i)?, in_n(i, 1)?, CmpOp::Lt)?));
    kernel!(map, "less_equal", |_, i| one(elementwise::compare(in0(i)?, in_n(i, 1)?, CmpOp::Le)?));
    kernel!(map, "greater", |_, i| one(elementwise::compare(in0(i)?, in_n(i, 1)?, CmpOp::Gt)?));
    kernel!(map, "greater_equal", |_, i| one(elementwise::compare(
        in0(i)?,
        in_n(i, 1)?,
        CmpOp::Ge
    )?));
    kernel!(map, "logical_and", |_, i| one(elementwise::logical(
        in0(i)?,
        in_n(i, 1)?,
        LogicalOp::And
    )?));
    kernel!(map, "logical_or", |_, i| one(elementwise::logical(
        in0(i)?,
        in_n(i, 1)?,
        LogicalOp::Or
    )?));
    kernel!(map, "logical_xor", |_, i| one(elementwise::logical(
        in0(i)?,
        in_n(i, 1)?,
        LogicalOp::Xor
    )?));
    kernel!(map, "logical_not", |_, i| one(elementwise::logical_not(in0(i)?)?));
    kernel!(map, "select", |_, i| one(elementwise::select(in0(i)?, in_n(i, 1)?, in_n(i, 2)?)?));
    kernel!(map, "cast", |a, i| one(in0(i)?.cast(a.dtype("dtype").map_err(attrs_err)?)));
    kernel!(map, "fused_elementwise", |a, i| {
        let text = a.str("program").map_err(attrs_err)?;
        // Cache hit on the compiled form (warmed at fusion time) — the
        // program text is only parsed the first time it is ever seen.
        let program = tfe_graph::program::compiled(text).map_err(RuntimeError::Internal)?;
        let refs: Vec<&TensorData> = i.iter().map(|t| t.as_ref()).collect();
        one(program.eval(&refs)?)
    });
}

fn register_structural(map: &mut HashMap<&'static str, Kernel>) {
    kernel!(map, "identity", |_, i| one(in0(i)?.clone()));
    kernel!(map, "zeros_like", |_, i| {
        let x = in0(i)?;
        one(TensorData::zeros(x.dtype(), x.shape().clone()))
    });
    kernel!(map, "ones_like", |_, i| {
        let x = in0(i)?;
        one(TensorData::ones(x.dtype(), x.shape().clone()))
    });
    kernel!(map, "fill", |a, _| {
        let dt = a.dtype("dtype").map_err(attrs_err)?;
        let dims: Vec<usize> =
            a.int_list("shape").map_err(attrs_err)?.iter().map(|&d| d as usize).collect();
        let v = a.float_or("value", 0.0).map_err(attrs_err)?;
        one(TensorData::fill_f64(dt, dims, v))
    });
    kernel!(map, "eye", |a, _| {
        let dt = a.dtype("dtype").map_err(attrs_err)?;
        let n = a.int("n").map_err(attrs_err)? as usize;
        one(TensorData::eye(dt, n))
    });
    kernel!(map, "range", |a, _| {
        let dt = a.dtype("dtype").map_err(attrs_err)?;
        let start = a.float_or("start", 0.0).map_err(attrs_err)?;
        let step = a.float_or("step", 1.0).map_err(attrs_err)?;
        let count = a.int("count").map_err(attrs_err)? as usize;
        one(TensorData::range_f64(dt, start, step, count))
    });
    kernel!(map, "shape_of", |_, i| {
        let dims: Vec<i64> = in0(i)?.shape().dims().iter().map(|&d| d as i64).collect();
        let n = dims.len();
        one(TensorData::from_vec(dims, Shape::from([n]))?)
    });
    kernel!(map, "rank_of", |_, i| { one(TensorData::scalar(in0(i)?.shape().rank() as i64)) });
    kernel!(map, "size_of", |_, i| { one(TensorData::scalar(in0(i)?.num_elements() as i64)) });
    kernel!(map, "reshape", |a, i| one(shape_ops::reshape(
        in0(i)?,
        a.int_list("shape").map_err(attrs_err)?
    )?));
    kernel!(map, "transpose", |a, i| {
        let perm: Vec<usize> =
            a.int_list("perm").map_err(attrs_err)?.iter().map(|&p| p as usize).collect();
        one(shape_ops::transpose(in0(i)?, &perm)?)
    });
    kernel!(map, "expand_dims", |a, i| one(shape_ops::expand_dims(
        in0(i)?,
        a.int("axis").map_err(attrs_err)?
    )?));
    kernel!(map, "squeeze", |a, i| one(shape_ops::squeeze(
        in0(i)?,
        a.int_list_or("axes", &[]).map_err(attrs_err)?
    )?));
    kernel!(map, "concat", |a, i| {
        let refs: Vec<&TensorData> = i.iter().map(|t| t.as_ref()).collect();
        one(shape_ops::concat(&refs, a.int("axis").map_err(attrs_err)?)?)
    });
    kernel!(map, "split", |a, i| {
        let num = a.int("num").map_err(attrs_err)?;
        if num < 1 {
            return Err(
                TensorError::InvalidArgument(format!("split num must be >= 1, got {num}")).into()
            );
        }
        Ok(shape_ops::split(in0(i)?, num as usize, a.int("axis").map_err(attrs_err)?)?)
    });
    kernel!(map, "slice", |a, i| one(shape_ops::slice(
        in0(i)?,
        a.int_list("begin").map_err(attrs_err)?,
        a.int_list("size").map_err(attrs_err)?
    )?));
    kernel!(map, "slice_grad", |a, i| {
        let input = in0(i)?;
        let grad = in_n(i, 1)?;
        one(shape_ops::pad_to(grad, a.int_list("begin").map_err(attrs_err)?, input.shape())?)
    });
    kernel!(map, "pad", |a, i| {
        let flat = a.int_list("paddings").map_err(attrs_err)?;
        let pairs: Vec<(usize, usize)> =
            flat.chunks(2).map(|c| (c[0] as usize, c[1] as usize)).collect();
        let v = a.float_or("value", 0.0).map_err(attrs_err)?;
        one(shape_ops::pad(in0(i)?, &pairs, v)?)
    });
    kernel!(map, "gather", |a, i| one(shape_ops::gather(
        in0(i)?,
        in_n(i, 1)?,
        a.int_or("axis", 0).map_err(attrs_err)?
    )?));
    kernel!(map, "gather_grad", |a, i| {
        let axis = a.int_or("axis", 0).map_err(attrs_err)?;
        if axis != 0 {
            return Err(RuntimeError::Unsupported(
                "gather gradient is implemented for axis 0 only".to_string(),
            ));
        }
        let params = in0(i)?;
        let indices = in_n(i, 1)?;
        let grad = in_n(i, 2)?;
        // Flatten indices and the matching leading dims of grad.
        let n_idx = indices.num_elements();
        let flat_idx = indices.with_shape([n_idx])?;
        let inner: usize = params.shape().dims()[1..].iter().product();
        let flat_grad = grad.with_shape(vec![n_idx, inner.max(1)])?;
        let scattered = shape_ops::scatter_add_rows(&flat_idx, &flat_grad, params.shape().dim(0))?;
        one(scattered.with_shape(params.shape().clone())?)
    });
    kernel!(map, "tile", |a, i| {
        let m: Vec<usize> =
            a.int_list("multiples").map_err(attrs_err)?.iter().map(|&x| x as usize).collect();
        one(shape_ops::tile(in0(i)?, &m)?)
    });
    kernel!(map, "broadcast_to", |a, i| {
        let dims: Vec<usize> =
            a.int_list("shape").map_err(attrs_err)?.iter().map(|&d| d as usize).collect();
        one(shape_ops::broadcast_to(in0(i)?, &Shape::new(dims))?)
    });
    kernel!(map, "sum_to_like", |_, i| {
        let target = in_n(i, 1)?.shape().clone();
        one(sum_to_shape(in0(i)?, &target)?)
    });
    kernel!(map, "reverse", |a, i| one(shape_ops::reverse(
        in0(i)?,
        a.int_or("axis", 0).map_err(attrs_err)?
    )?));
    kernel!(map, "one_hot", |a, i| one(shape_ops::one_hot(
        in0(i)?,
        a.int("depth").map_err(attrs_err)? as usize,
        a.dtype("dtype").map_err(attrs_err)?
    )?));
    kernel!(map, "print", |a, i| {
        let x = in0(i)?;
        let tag = a.str("message").unwrap_or("");
        eprintln!("[tfe print] {tag}{:?}", x);
        one(x.clone())
    });
}

fn register_linalg(map: &mut HashMap<&'static str, Kernel>) {
    kernel!(map, "matmul", |a, i| one(matmul::matmul(
        in0(i)?,
        in_n(i, 1)?,
        a.bool_or("transpose_a", false).map_err(attrs_err)?,
        a.bool_or("transpose_b", false).map_err(attrs_err)?
    )?));
    kernel!(map, "batch_matmul", |a, i| one(matmul::batch_matmul(
        in0(i)?,
        in_n(i, 1)?,
        a.bool_or("transpose_a", false).map_err(attrs_err)?,
        a.bool_or("transpose_b", false).map_err(attrs_err)?
    )?));
}

fn register_reduction(map: &mut HashMap<&'static str, Kernel>) {
    fn reduce_kernel(
        a: &Attrs,
        i: &[Arc<TensorData>],
        op: reduce::ReduceOp,
    ) -> Result<Vec<TensorData>> {
        let axes = a.int_list_or("axes", &[]).map_err(attrs_err)?;
        let keep = a.bool_or("keep_dims", false).map_err(attrs_err)?;
        one(reduce::reduce(in0(i)?, axes, keep, op)?)
    }
    kernel!(map, "reduce_sum", |a, i| reduce_kernel(a, i, reduce::ReduceOp::Sum));
    kernel!(map, "reduce_mean", |a, i| reduce_kernel(a, i, reduce::ReduceOp::Mean));
    kernel!(map, "reduce_max", |a, i| reduce_kernel(a, i, reduce::ReduceOp::Max));
    kernel!(map, "reduce_min", |a, i| reduce_kernel(a, i, reduce::ReduceOp::Min));
    kernel!(map, "reduce_prod", |a, i| reduce_kernel(a, i, reduce::ReduceOp::Prod));
    kernel!(map, "reduce_any", |a, i| {
        let axes = a.int_list_or("axes", &[]).map_err(attrs_err)?;
        let keep = a.bool_or("keep_dims", false).map_err(attrs_err)?;
        one(reduce::reduce_bool(in0(i)?, axes, keep, false)?)
    });
    kernel!(map, "reduce_all", |a, i| {
        let axes = a.int_list_or("axes", &[]).map_err(attrs_err)?;
        let keep = a.bool_or("keep_dims", false).map_err(attrs_err)?;
        one(reduce::reduce_bool(in0(i)?, axes, keep, true)?)
    });
    kernel!(map, "argmax", |a, i| one(reduce::argminmax(
        in0(i)?,
        a.int_or("axis", 0).map_err(attrs_err)?,
        true
    )?));
    kernel!(map, "argmin", |a, i| one(reduce::argminmax(
        in0(i)?,
        a.int_or("axis", 0).map_err(attrs_err)?,
        false
    )?));
    kernel!(map, "cumsum", |a, i| one(reduce::cumsum(
        in0(i)?,
        a.int_or("axis", 0).map_err(attrs_err)?
    )?));
}

fn register_nn(map: &mut HashMap<&'static str, Kernel>) {
    kernel!(map, "conv2d", |a, i| one(conv::conv2d(
        in0(i)?,
        in_n(i, 1)?,
        strides_of(a)?,
        padding_of(a)?
    )?));
    kernel!(map, "conv2d_backprop_input", |a, i| {
        let input = in0(i)?;
        one(conv::conv2d_backprop_input(
            input.shape(),
            in_n(i, 1)?,
            in_n(i, 2)?,
            strides_of(a)?,
            padding_of(a)?,
        )?)
    });
    kernel!(map, "conv2d_backprop_filter", |a, i| {
        let filter = in_n(i, 1)?;
        one(conv::conv2d_backprop_filter(
            in0(i)?,
            filter.shape(),
            in_n(i, 2)?,
            strides_of(a)?,
            padding_of(a)?,
        )?)
    });
    kernel!(map, "max_pool", |a, i| one(pool::pool2d(
        in0(i)?,
        ksize_of(a)?,
        strides_of(a)?,
        padding_of(a)?,
        PoolKind::Max
    )?));
    kernel!(map, "avg_pool", |a, i| one(pool::pool2d(
        in0(i)?,
        ksize_of(a)?,
        strides_of(a)?,
        padding_of(a)?,
        PoolKind::Avg
    )?));
    kernel!(map, "max_pool_grad", |a, i| one(pool::pool2d_grad(
        in0(i)?,
        in_n(i, 1)?,
        ksize_of(a)?,
        strides_of(a)?,
        padding_of(a)?,
        PoolKind::Max
    )?));
    kernel!(map, "avg_pool_grad", |a, i| one(pool::pool2d_grad(
        in0(i)?,
        in_n(i, 1)?,
        ksize_of(a)?,
        strides_of(a)?,
        padding_of(a)?,
        PoolKind::Avg
    )?));
    kernel!(map, "softmax", |_, i| one(softmax::softmax(in0(i)?)?));
    kernel!(map, "log_softmax", |_, i| one(softmax::log_softmax(in0(i)?)?));
    kernel!(map, "sparse_softmax_xent", |_, i| one(softmax::sparse_softmax_xent(
        in0(i)?,
        in_n(i, 1)?
    )?));
    kernel!(map, "softmax_xent_grad", |_, i| one(softmax::softmax_xent_grad(
        in0(i)?,
        in_n(i, 1)?,
        in_n(i, 2)?
    )?));
}

fn register_random(map: &mut HashMap<&'static str, Kernel>) {
    fn shape_attr(a: &Attrs) -> Result<Vec<usize>> {
        Ok(a.int_list("shape").map_err(attrs_err)?.iter().map(|&d| d as usize).collect())
    }
    kernel!(map, "random_normal", |a, _| {
        let dt = a.dtype("dtype").map_err(attrs_err)?;
        let shape = shape_attr(a)?;
        let mean = a.float_or("mean", 0.0).map_err(attrs_err)?;
        let stddev = a.float_or("stddev", 1.0).map_err(attrs_err)?;
        one(crate::context::with_rng(|rng| rng.normal(dt, shape, mean, stddev))?)
    });
    kernel!(map, "truncated_normal", |a, _| {
        let dt = a.dtype("dtype").map_err(attrs_err)?;
        let shape = shape_attr(a)?;
        let mean = a.float_or("mean", 0.0).map_err(attrs_err)?;
        let stddev = a.float_or("stddev", 1.0).map_err(attrs_err)?;
        one(crate::context::with_rng(|rng| rng.truncated_normal(dt, shape, mean, stddev))?)
    });
    kernel!(map, "random_uniform", |a, _| {
        let dt = a.dtype("dtype").map_err(attrs_err)?;
        let shape = shape_attr(a)?;
        let low = a.float_or("low", 0.0).map_err(attrs_err)?;
        let high = a.float_or("high", 1.0).map_err(attrs_err)?;
        one(crate::context::with_rng(|rng| rng.uniform(dt, shape, low, high))?)
    });
    kernel!(map, "dropout_mask", |a, i| {
        let x = in0(i)?;
        let keep = a.float("keep_prob").map_err(attrs_err)?;
        one(crate::context::with_rng(|rng| rng.dropout_mask(x.dtype(), x.shape().clone(), keep))?)
    });
}

fn register_state(map: &mut HashMap<&'static str, Kernel>) {
    kernel!(map, "read_variable", |a, _| {
        let id = a.int("var_id").map_err(attrs_err)? as u64;
        let storage = crate::variable::registry().resolve(id)?;
        one(storage.value().as_ref().clone())
    });
    kernel!(map, "assign", |a, i| {
        let id = a.int("var_id").map_err(attrs_err)? as u64;
        let storage = crate::variable::registry().resolve(id)?;
        storage.set_value(in0(i)?.clone())?;
        Ok(Vec::new())
    });
    kernel!(map, "assign_add", |a, i| {
        let id = a.int("var_id").map_err(attrs_err)? as u64;
        let storage = crate::variable::registry().resolve(id)?;
        let cur = storage.value();
        let next = elementwise::binary(&cur, in0(i)?, BinaryOp::Add)?;
        storage.set_value(next)?;
        Ok(Vec::new())
    });
    kernel!(map, "assign_sub", |a, i| {
        let id = a.int("var_id").map_err(attrs_err)? as u64;
        let storage = crate::variable::registry().resolve(id)?;
        let cur = storage.value();
        let next = elementwise::binary(&cur, in0(i)?, BinaryOp::Sub)?;
        storage.set_value(next)?;
        Ok(Vec::new())
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_tensor::DType;

    #[test]
    fn kernels_cover_catalog() {
        tfe_ops::ensure_standard_ops();
        ensure_kernels();
        // Dispatcher-level ops and graph-only markers are exempt.
        let exempt = ["call", "cond", "while_loop", "host_func", "copy", "placeholder", "const"];
        for name in tfe_ops::global().names() {
            if exempt.contains(&name.as_str()) {
                continue;
            }
            assert!(has_kernel(&name), "missing kernel for `{name}`");
        }
    }

    #[test]
    fn run_kernel_basic() {
        let a = Arc::new(TensorData::scalar(2.0f32));
        let b = Arc::new(TensorData::scalar(3.0f32));
        let out = run_kernel("mul", &Attrs::new(), &[a, b]).unwrap();
        assert_eq!(out[0].scalar_f64().unwrap(), 6.0);
        assert!(run_kernel("nope", &Attrs::new(), &[]).is_err());
    }

    #[test]
    fn sum_to_shape_reduces_broadcasts() {
        let x = TensorData::ones(DType::F32, [2, 3]);
        let t = sum_to_shape(&x, &Shape::from([3])).unwrap();
        assert_eq!(t.to_f64_vec(), vec![2.0, 2.0, 2.0]);
        let t = sum_to_shape(&x, &Shape::from([2, 1])).unwrap();
        assert_eq!(t.to_f64_vec(), vec![3.0, 3.0]);
        let t = sum_to_shape(&x, &Shape::scalar()).unwrap();
        assert_eq!(t.scalar_f64().unwrap(), 6.0);
        // identity
        let t = sum_to_shape(&x, &Shape::from([2, 3])).unwrap();
        assert_eq!(t, x);
    }

    #[test]
    fn slice_grad_kernel_is_pad_adjoint() {
        let input = Arc::new(TensorData::zeros(DType::F32, [4]));
        let grad = Arc::new(TensorData::ones(DType::F32, [2]));
        let attrs = Attrs::new().with("begin", vec![1i64]);
        let out = run_kernel("slice_grad", &attrs, &[input, grad]).unwrap();
        assert_eq!(out[0].to_f64_vec(), vec![0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn gather_grad_kernel_scatters() {
        let params = Arc::new(TensorData::zeros(DType::F32, [3, 2]));
        let idx = Arc::new(TensorData::from_vec(vec![2i64, 0, 2], Shape::from([3])).unwrap());
        let grad = Arc::new(
            TensorData::from_vec(vec![1.0f32, 1.0, 2.0, 2.0, 4.0, 4.0], Shape::from([3, 2]))
                .unwrap(),
        );
        let out = run_kernel("gather_grad", &Attrs::new(), &[params, idx, grad]).unwrap();
        assert_eq!(out[0].to_f64_vec(), vec![2.0, 2.0, 0.0, 0.0, 5.0, 5.0]);
    }
}
