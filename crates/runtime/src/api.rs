//! User-visible operation wrappers — the `tf.*` surface of the paper's
//! listings. Every function here works identically in imperative and staged
//! mode because it funnels through [`crate::context::execute`].

use crate::context::execute;
use crate::error::{Result, RuntimeError};
use crate::tensor::Tensor;
use tfe_ops::Attrs;
use tfe_tensor::{DType, Scalar, Shape, TensorData};

fn one(mut v: Vec<Tensor>) -> Tensor {
    v.remove(0)
}

fn run1(op: &str, inputs: &[&Tensor], attrs: Attrs) -> Result<Tensor> {
    let owned: Vec<Tensor> = inputs.iter().map(|t| (*t).clone()).collect();
    Ok(one(execute(op, &owned, attrs)?))
}

// ---------------------------------------------------------------------------
// Constructors
// ---------------------------------------------------------------------------

/// `tf.constant`: build a tensor from data. In a graph-building context the
/// value is embedded as a `const` node (which is exactly how the paper's
/// `add_noise` example bakes host randomness into a trace).
pub fn constant_data(value: TensorData) -> Tensor {
    if crate::context::is_tracing() {
        match crate::context::trace_constant(value) {
            Ok(t) => t,
            Err(e) => panic!("failed to record constant during tracing: {e}"),
        }
    } else {
        Tensor::from_data(value)
    }
}

/// A scalar constant.
pub fn scalar<T: Scalar>(v: T) -> Tensor {
    constant_data(TensorData::scalar(v))
}

/// A constant from a flat vector and shape.
///
/// # Errors
/// Element-count mismatch.
pub fn constant<T: Scalar>(data: Vec<T>, shape: impl Into<Shape>) -> Result<Tensor> {
    Ok(constant_data(TensorData::from_vec(data, shape)?))
}

/// A zero-filled tensor.
pub fn zeros(dtype: DType, shape: impl Into<Shape>) -> Tensor {
    constant_data(TensorData::zeros(dtype, shape))
}

/// A one-filled tensor.
pub fn ones(dtype: DType, shape: impl Into<Shape>) -> Tensor {
    constant_data(TensorData::ones(dtype, shape))
}

/// The n×n identity matrix (`tf.eye`).
///
/// # Errors
/// Execution failures.
pub fn eye(dtype: DType, n: usize) -> Result<Tensor> {
    run1("eye", &[], Attrs::new().with("dtype", dtype).with("n", n as i64))
}

/// `[start, start + step, ...)` with `count` elements (`tf.range`).
///
/// # Errors
/// Execution failures.
pub fn range(dtype: DType, start: f64, step: f64, count: usize) -> Result<Tensor> {
    run1(
        "range",
        &[],
        Attrs::new()
            .with("dtype", dtype)
            .with("start", start)
            .with("step", step)
            .with("count", count as i64),
    )
}

/// Stateful standard-normal sampling (`tf.random_normal`); correctly stays
/// an operation under tracing, unlike host-side RNG (§4.1).
///
/// # Errors
/// Execution failures.
pub fn random_normal(
    dtype: DType,
    shape: impl Into<Shape>,
    mean: f64,
    stddev: f64,
) -> Result<Tensor> {
    let dims: Vec<i64> = shape.into().dims().iter().map(|&d| d as i64).collect();
    run1(
        "random_normal",
        &[],
        Attrs::new()
            .with("dtype", dtype)
            .with("shape", dims)
            .with("mean", mean)
            .with("stddev", stddev),
    )
}

/// Stateful uniform sampling on `[low, high)`.
///
/// # Errors
/// Execution failures.
pub fn random_uniform(
    dtype: DType,
    shape: impl Into<Shape>,
    low: f64,
    high: f64,
) -> Result<Tensor> {
    let dims: Vec<i64> = shape.into().dims().iter().map(|&d| d as i64).collect();
    run1(
        "random_uniform",
        &[],
        Attrs::new().with("dtype", dtype).with("shape", dims).with("low", low).with("high", high),
    )
}

/// Truncated-normal sampling (the classic initializer distribution).
///
/// # Errors
/// Execution failures.
pub fn truncated_normal(dtype: DType, shape: impl Into<Shape>, stddev: f64) -> Result<Tensor> {
    let dims: Vec<i64> = shape.into().dims().iter().map(|&d| d as i64).collect();
    run1(
        "truncated_normal",
        &[],
        Attrs::new()
            .with("dtype", dtype)
            .with("shape", dims)
            .with("mean", 0.0)
            .with("stddev", stddev),
    )
}

// ---------------------------------------------------------------------------
// Elementwise math
// ---------------------------------------------------------------------------

macro_rules! binary_fn {
    ($(#[$doc:meta])* $name:ident, $op:expr) => {
        $(#[$doc])*
        /// # Errors
        /// Dtype/broadcast mismatches.
        pub fn $name(a: &Tensor, b: &Tensor) -> Result<Tensor> {
            run1($op, &[a, b], Attrs::new())
        }
    };
}

macro_rules! unary_fn {
    ($(#[$doc:meta])* $name:ident, $op:expr) => {
        $(#[$doc])*
        /// # Errors
        /// Unsupported dtype.
        pub fn $name(a: &Tensor) -> Result<Tensor> {
            run1($op, &[a], Attrs::new())
        }
    };
}

binary_fn!(
    #[doc = "Elementwise `a + b` with broadcasting."]
    add,
    "add"
);
binary_fn!(
    #[doc = "Elementwise `a - b` with broadcasting."]
    sub,
    "sub"
);
binary_fn!(
    #[doc = "Elementwise `a * b` with broadcasting."]
    mul,
    "mul"
);
binary_fn!(
    #[doc = "Elementwise `a / b` with broadcasting."]
    div,
    "div"
);
binary_fn!(
    #[doc = "Elementwise floored division."]
    floor_div,
    "floor_div"
);
binary_fn!(
    #[doc = "Elementwise modulo (Python sign convention)."]
    modulo,
    "mod"
);
binary_fn!(
    #[doc = "Elementwise `a ^ b`."]
    pow,
    "pow"
);
binary_fn!(
    #[doc = "Elementwise maximum."]
    maximum,
    "maximum"
);
binary_fn!(
    #[doc = "Elementwise minimum."]
    minimum,
    "minimum"
);
binary_fn!(
    #[doc = "Elementwise `(a - b)^2`."]
    squared_difference,
    "squared_difference"
);
binary_fn!(
    #[doc = "Elementwise equality, producing bools."]
    equal,
    "equal"
);
binary_fn!(
    #[doc = "Elementwise inequality."]
    not_equal,
    "not_equal"
);
binary_fn!(
    #[doc = "Elementwise `a < b`."]
    less,
    "less"
);
binary_fn!(
    #[doc = "Elementwise `a <= b`."]
    less_equal,
    "less_equal"
);
binary_fn!(
    #[doc = "Elementwise `a > b`."]
    greater,
    "greater"
);
binary_fn!(
    #[doc = "Elementwise `a >= b`."]
    greater_equal,
    "greater_equal"
);
binary_fn!(
    #[doc = "Boolean AND."]
    logical_and,
    "logical_and"
);
binary_fn!(
    #[doc = "Boolean OR."]
    logical_or,
    "logical_or"
);

unary_fn!(
    #[doc = "Elementwise negation."]
    neg,
    "neg"
);
unary_fn!(
    #[doc = "Elementwise absolute value."]
    abs,
    "abs"
);
unary_fn!(
    #[doc = "Elementwise sign."]
    sign,
    "sign"
);
unary_fn!(
    #[doc = "Elementwise `e^x`."]
    exp,
    "exp"
);
unary_fn!(
    #[doc = "Elementwise natural log."]
    log,
    "log"
);
unary_fn!(
    #[doc = "Elementwise `ln(1+x)`."]
    log1p,
    "log1p"
);
unary_fn!(
    #[doc = "Elementwise square root."]
    sqrt,
    "sqrt"
);
unary_fn!(
    #[doc = "Elementwise `1/sqrt(x)`."]
    rsqrt,
    "rsqrt"
);
unary_fn!(
    #[doc = "Elementwise square."]
    square,
    "square"
);
unary_fn!(
    #[doc = "Elementwise reciprocal."]
    reciprocal,
    "reciprocal"
);
unary_fn!(
    #[doc = "Rectified linear unit."]
    relu,
    "relu"
);
unary_fn!(
    #[doc = "Logistic sigmoid."]
    sigmoid,
    "sigmoid"
);
unary_fn!(
    #[doc = "Hyperbolic tangent."]
    tanh,
    "tanh"
);
unary_fn!(
    #[doc = "`ln(1+e^x)` (`tf.nn.softplus`, Listing 3)."]
    softplus,
    "softplus"
);
unary_fn!(
    #[doc = "Elementwise floor."]
    floor,
    "floor"
);
unary_fn!(
    #[doc = "Elementwise ceil."]
    ceil,
    "ceil"
);
unary_fn!(
    #[doc = "Elementwise round."]
    round,
    "round"
);
unary_fn!(
    #[doc = "Elementwise sine."]
    sin,
    "sin"
);
unary_fn!(
    #[doc = "Elementwise cosine."]
    cos,
    "cos"
);
unary_fn!(
    #[doc = "Gauss error function."]
    erf,
    "erf"
);
unary_fn!(
    #[doc = "Boolean NOT."]
    logical_not,
    "logical_not"
);

/// `where(cond, a, b)` with broadcasting.
///
/// # Errors
/// Dtype/shape mismatches.
pub fn select(cond: &Tensor, a: &Tensor, b: &Tensor) -> Result<Tensor> {
    run1("select", &[cond, a, b], Attrs::new())
}

/// Convert to another dtype.
///
/// # Errors
/// Execution failures.
pub fn cast(a: &Tensor, dtype: DType) -> Result<Tensor> {
    run1("cast", &[a], Attrs::new().with("dtype", dtype))
}

// ---------------------------------------------------------------------------
// Linear algebra
// ---------------------------------------------------------------------------

/// 2-D matrix multiplication (`tf.matmul`).
///
/// # Errors
/// Rank/shape mismatches.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    run1("matmul", &[a, b], Attrs::new())
}

/// Matmul with transpose flags.
///
/// # Errors
/// Rank/shape mismatches.
pub fn matmul_t(a: &Tensor, b: &Tensor, transpose_a: bool, transpose_b: bool) -> Result<Tensor> {
    run1(
        "matmul",
        &[a, b],
        Attrs::new().with("transpose_a", transpose_a).with("transpose_b", transpose_b),
    )
}

/// Batched matmul over the last two axes.
///
/// # Errors
/// Rank/shape mismatches.
pub fn batch_matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    run1("batch_matmul", &[a, b], Attrs::new())
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

macro_rules! reduce_fn {
    ($(#[$doc:meta])* $name:ident, $op:expr) => {
        $(#[$doc])*
        /// Empty `axes` reduces over all axes.
        ///
        /// # Errors
        /// Invalid axes or dtype.
        pub fn $name(a: &Tensor, axes: &[i64], keep_dims: bool) -> Result<Tensor> {
            run1(
                $op,
                &[a],
                Attrs::new().with("axes", axes.to_vec()).with("keep_dims", keep_dims),
            )
        }
    };
}

reduce_fn!(
    #[doc = "Sum over axes."]
    reduce_sum,
    "reduce_sum"
);
reduce_fn!(
    #[doc = "Mean over axes."]
    reduce_mean,
    "reduce_mean"
);
reduce_fn!(
    #[doc = "Maximum over axes."]
    reduce_max,
    "reduce_max"
);
reduce_fn!(
    #[doc = "Minimum over axes."]
    reduce_min,
    "reduce_min"
);
reduce_fn!(
    #[doc = "Product over axes."]
    reduce_prod,
    "reduce_prod"
);
reduce_fn!(
    #[doc = "Boolean any over axes."]
    reduce_any,
    "reduce_any"
);
reduce_fn!(
    #[doc = "Boolean all over axes."]
    reduce_all,
    "reduce_all"
);

/// Index of the maximum along `axis` (int64 output).
///
/// # Errors
/// Invalid axis.
pub fn argmax(a: &Tensor, axis: i64) -> Result<Tensor> {
    run1("argmax", &[a], Attrs::new().with("axis", axis))
}

/// Index of the minimum along `axis`.
///
/// # Errors
/// Invalid axis.
pub fn argmin(a: &Tensor, axis: i64) -> Result<Tensor> {
    run1("argmin", &[a], Attrs::new().with("axis", axis))
}

/// Cumulative sum along `axis`.
///
/// # Errors
/// Invalid axis.
pub fn cumsum(a: &Tensor, axis: i64) -> Result<Tensor> {
    run1("cumsum", &[a], Attrs::new().with("axis", axis))
}

// ---------------------------------------------------------------------------
// Shape manipulation
// ---------------------------------------------------------------------------

/// Reshape with one optional `-1` wildcard.
///
/// # Errors
/// Element-count mismatch.
pub fn reshape(a: &Tensor, dims: &[i64]) -> Result<Tensor> {
    run1("reshape", &[a], Attrs::new().with("shape", dims.to_vec()))
}

/// Permute axes.
///
/// # Errors
/// Bad permutation.
pub fn transpose(a: &Tensor, perm: &[i64]) -> Result<Tensor> {
    run1("transpose", &[a], Attrs::new().with("perm", perm.to_vec()))
}

/// Insert a size-1 axis.
///
/// # Errors
/// Axis out of range.
pub fn expand_dims(a: &Tensor, axis: i64) -> Result<Tensor> {
    run1("expand_dims", &[a], Attrs::new().with("axis", axis))
}

/// Remove size-1 axes (all of them when `axes` is empty).
///
/// # Errors
/// Named axis not of size 1.
pub fn squeeze(a: &Tensor, axes: &[i64]) -> Result<Tensor> {
    run1("squeeze", &[a], Attrs::new().with("axes", axes.to_vec()))
}

/// Concatenate along `axis`.
///
/// # Errors
/// Shape/dtype mismatches.
pub fn concat(parts: &[&Tensor], axis: i64) -> Result<Tensor> {
    let owned: Vec<Tensor> = parts.iter().map(|t| (*t).clone()).collect();
    Ok(one(execute("concat", &owned, Attrs::new().with("axis", axis))?))
}

/// Split into `num` equal parts along `axis`.
///
/// # Errors
/// `num` does not divide the axis.
pub fn split(a: &Tensor, num: usize, axis: i64) -> Result<Vec<Tensor>> {
    execute(
        "split",
        std::slice::from_ref(a),
        Attrs::new().with("num", num as i64).with("axis", axis),
    )
}

/// Contiguous slice; `-1` size means "to the end".
///
/// # Errors
/// Out-of-range begin/size.
pub fn slice(a: &Tensor, begin: &[i64], size: &[i64]) -> Result<Tensor> {
    run1("slice", &[a], Attrs::new().with("begin", begin.to_vec()).with("size", size.to_vec()))
}

/// Constant-pad with `(before, after)` per axis.
///
/// # Errors
/// Rank mismatch.
pub fn pad(a: &Tensor, paddings: &[(i64, i64)], value: f64) -> Result<Tensor> {
    let flat: Vec<i64> = paddings.iter().flat_map(|&(b, e)| [b, e]).collect();
    run1("pad", &[a], Attrs::new().with("paddings", flat).with("value", value))
}

/// Gather rows/elements by integer indices along `axis`.
///
/// # Errors
/// Bad indices.
pub fn gather(a: &Tensor, indices: &Tensor, axis: i64) -> Result<Tensor> {
    run1("gather", &[a, indices], Attrs::new().with("axis", axis))
}

/// Repeat each axis `multiples[i]` times.
///
/// # Errors
/// Rank mismatch.
pub fn tile(a: &Tensor, multiples: &[i64]) -> Result<Tensor> {
    run1("tile", &[a], Attrs::new().with("multiples", multiples.to_vec()))
}

/// Materialize a broadcast to `dims`.
///
/// # Errors
/// Incompatible shapes.
pub fn broadcast_to(a: &Tensor, dims: &[i64]) -> Result<Tensor> {
    run1("broadcast_to", &[a], Attrs::new().with("shape", dims.to_vec()))
}

/// One-hot encode integer indices.
///
/// # Errors
/// Non-integer indices.
pub fn one_hot(indices: &Tensor, depth: usize, dtype: DType) -> Result<Tensor> {
    run1("one_hot", &[indices], Attrs::new().with("depth", depth as i64).with("dtype", dtype))
}

/// Stack equal-shaped tensors along a new axis.
///
/// # Errors
/// Mismatched parts.
pub fn stack(parts: &[&Tensor], axis: i64) -> Result<Tensor> {
    let expanded: Vec<Tensor> =
        parts.iter().map(|t| expand_dims(t, axis)).collect::<Result<_>>()?;
    let refs: Vec<&Tensor> = expanded.iter().collect();
    concat(&refs, axis)
}

/// Unstack along `axis` into `dim(axis)` tensors.
///
/// # Errors
/// Unknown extent at trace time.
pub fn unstack(a: &Tensor, axis: i64) -> Result<Vec<Tensor>> {
    let shape = a.sym_shape();
    let ax = if axis < 0 { axis + shape.rank() as i64 } else { axis } as usize;
    let extent = shape.dims().get(ax).copied().flatten().ok_or_else(|| {
        RuntimeError::SymbolicValue("cannot unstack along an unknown dimension".to_string())
    })?;
    let parts = split(a, extent, axis)?;
    parts.iter().map(|p| squeeze(p, &[axis])).collect()
}

/// Reverse elements along `axis` (`tf.reverse` for one axis).
///
/// # Errors
/// Invalid axis.
pub fn reverse(a: &Tensor, axis: i64) -> Result<Tensor> {
    run1("reverse", &[a], Attrs::new().with("axis", axis))
}

/// The runtime shape as an int64 tensor (`tf.shape`).
///
/// # Errors
/// Execution failures.
pub fn shape_of(a: &Tensor) -> Result<Tensor> {
    run1("shape_of", &[a], Attrs::new())
}

/// The rank as an int64 scalar (`tf.rank`).
///
/// # Errors
/// Execution failures.
pub fn rank_of(a: &Tensor) -> Result<Tensor> {
    run1("rank_of", &[a], Attrs::new())
}

/// The element count as an int64 scalar (`tf.size`).
///
/// # Errors
/// Execution failures.
pub fn size_of(a: &Tensor) -> Result<Tensor> {
    run1("size_of", &[a], Attrs::new())
}

// ---------------------------------------------------------------------------
// Neural-network primitives
// ---------------------------------------------------------------------------

/// 2-D convolution, NHWC×HWIO.
///
/// # Errors
/// Geometry failures.
pub fn conv2d(
    input: &Tensor,
    filter: &Tensor,
    strides: (usize, usize),
    padding: &str,
) -> Result<Tensor> {
    run1(
        "conv2d",
        &[input, filter],
        Attrs::new()
            .with("strides", vec![strides.0 as i64, strides.1 as i64])
            .with("padding", padding),
    )
}

/// 2-D max pooling.
///
/// # Errors
/// Geometry failures.
pub fn max_pool(
    input: &Tensor,
    ksize: (usize, usize),
    strides: (usize, usize),
    padding: &str,
) -> Result<Tensor> {
    run1(
        "max_pool",
        &[input],
        Attrs::new()
            .with("ksize", vec![ksize.0 as i64, ksize.1 as i64])
            .with("strides", vec![strides.0 as i64, strides.1 as i64])
            .with("padding", padding),
    )
}

/// 2-D average pooling.
///
/// # Errors
/// Geometry failures.
pub fn avg_pool(
    input: &Tensor,
    ksize: (usize, usize),
    strides: (usize, usize),
    padding: &str,
) -> Result<Tensor> {
    run1(
        "avg_pool",
        &[input],
        Attrs::new()
            .with("ksize", vec![ksize.0 as i64, ksize.1 as i64])
            .with("strides", vec![strides.0 as i64, strides.1 as i64])
            .with("padding", padding),
    )
}

/// Softmax over the last axis.
///
/// # Errors
/// Non-float input.
pub fn softmax(a: &Tensor) -> Result<Tensor> {
    run1("softmax", &[a], Attrs::new())
}

/// Log-softmax over the last axis.
///
/// # Errors
/// Non-float input.
pub fn log_softmax(a: &Tensor) -> Result<Tensor> {
    run1("log_softmax", &[a], Attrs::new())
}

/// Per-example sparse softmax cross-entropy.
///
/// # Errors
/// Label/shape problems.
pub fn sparse_softmax_xent(logits: &Tensor, labels: &Tensor) -> Result<Tensor> {
    run1("sparse_softmax_xent", &[logits, labels], Attrs::new())
}

/// Dropout: scales kept activations by `1/keep_prob` (`tf.nn.dropout`).
///
/// # Errors
/// keep_prob outside (0, 1].
pub fn dropout(a: &Tensor, keep_prob: f64) -> Result<Tensor> {
    let mask = run1("dropout_mask", &[a], Attrs::new().with("keep_prob", keep_prob))?;
    mul(a, &mask)
}

// ---------------------------------------------------------------------------
// Device movement and debugging
// ---------------------------------------------------------------------------

/// Copy to the named device (works inside traces as a `copy` node).
///
/// # Errors
/// Unknown device.
pub fn copy_to(a: &Tensor, device: &str) -> Result<Tensor> {
    run1("copy", &[a], Attrs::new().with("device", device))
}

/// Debug-print a tensor as a side-effecting op, passing the value through.
///
/// # Errors
/// Execution failures.
pub fn print(a: &Tensor, message: &str) -> Result<Tensor> {
    run1("print", &[a], Attrs::new().with("message", message))
}

impl Tensor {
    /// Copy to `/gpu:0` (Listing 4's `a.gpu()`).
    ///
    /// # Errors
    /// No GPU registered.
    pub fn gpu(&self) -> Result<Tensor> {
        copy_to(self, "/gpu:0")
    }

    /// Copy to the host CPU.
    ///
    /// # Errors
    /// Execution failures.
    pub fn cpu(&self) -> Result<Tensor> {
        copy_to(self, "/cpu:0")
    }
}

// ---------------------------------------------------------------------------
// Operator overloads (panic on error, like any Rust arithmetic operator)
// ---------------------------------------------------------------------------

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $func:ident) => {
        impl std::ops::$trait for &Tensor {
            type Output = Tensor;
            /// # Panics
            /// Panics on dtype/broadcast mismatch; the module-level free
            /// function of the same name is the fallible version.
            fn $method(self, rhs: &Tensor) -> Tensor {
                $func(self, rhs).unwrap_or_else(|e| panic!("tensor {}: {e}", stringify!($method)))
            }
        }
        impl std::ops::$trait for Tensor {
            type Output = Tensor;
            fn $method(self, rhs: Tensor) -> Tensor {
                (&self).$method(&rhs)
            }
        }
    };
}

impl_binop!(Add, add, add);
impl_binop!(Sub, sub, sub);
impl_binop!(Mul, mul, mul);
impl_binop!(Div, div, div);

impl std::ops::Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        neg(self).unwrap_or_else(|e| panic!("tensor neg: {e}"))
    }
}

impl std::ops::Neg for Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        -&self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eager_add_and_operators() {
        let a = constant(vec![1.0f32, 2.0], [2]).unwrap();
        let b = constant(vec![10.0f32, 20.0], [2]).unwrap();
        assert_eq!(add(&a, &b).unwrap().to_f64_vec().unwrap(), vec![11.0, 22.0]);
        let c = &a * &b;
        assert_eq!(c.to_f64_vec().unwrap(), vec![10.0, 40.0]);
        let d = -&a;
        assert_eq!(d.to_f64_vec().unwrap(), vec![-1.0, -2.0]);
    }

    #[test]
    fn paper_select_example() {
        // §4.1's `select` example: matmul([[1, 0]], [[2], [-2]]) == [[2]].
        let a = constant(vec![1.0f32, 0.0], [1, 2]).unwrap();
        let x = constant(vec![2.0f32, -2.0], [2, 1]).unwrap();
        let y = matmul(&a, &x).unwrap();
        assert_eq!(y.shape().unwrap().dims(), &[1, 1]);
        assert_eq!(y.scalar_f64().unwrap(), 2.0);
    }

    #[test]
    fn reductions_and_shapes() {
        let a = constant(vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]).unwrap();
        assert_eq!(reduce_sum(&a, &[], false).unwrap().scalar_f64().unwrap(), 21.0);
        assert_eq!(
            reduce_mean(&a, &[0], false).unwrap().to_f64_vec().unwrap(),
            vec![2.5, 3.5, 4.5]
        );
        let r = reshape(&a, &[3, -1]).unwrap();
        assert_eq!(r.shape().unwrap().dims(), &[3, 2]);
        let t = transpose(&a, &[1, 0]).unwrap();
        assert_eq!(t.shape().unwrap().dims(), &[3, 2]);
        let s = shape_of(&a).unwrap();
        assert_eq!(s.to_f64_vec().unwrap(), vec![2.0, 3.0]);
    }

    #[test]
    fn comparisons_and_select() {
        let a = constant(vec![1.0f32, 5.0], [2]).unwrap();
        let b = scalar(3.0f32);
        let m = greater(&a, &b).unwrap();
        assert_eq!(m.dtype(), DType::Bool);
        let s = select(&m, &a, &b).unwrap();
        assert_eq!(s.to_f64_vec().unwrap(), vec![3.0, 5.0]);
    }

    #[test]
    fn seeded_random_reproducible() {
        crate::context::set_random_seed(1234);
        let a = random_normal(DType::F32, [8], 0.0, 1.0).unwrap();
        crate::context::set_random_seed(1234);
        let b = random_normal(DType::F32, [8], 0.0, 1.0).unwrap();
        assert_eq!(a.to_f64_vec().unwrap(), b.to_f64_vec().unwrap());
    }

    #[test]
    fn dropout_scales() {
        crate::context::set_random_seed(7);
        let a = ones(DType::F32, [1000]);
        let d = dropout(&a, 0.5).unwrap();
        let vals = d.to_f64_vec().unwrap();
        assert!(vals.iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn stack_and_unstack() {
        let a = constant(vec![1.0f32, 2.0], [2]).unwrap();
        let b = constant(vec![3.0f32, 4.0], [2]).unwrap();
        let s = stack(&[&a, &b], 0).unwrap();
        assert_eq!(s.shape().unwrap().dims(), &[2, 2]);
        let parts = unstack(&s, 0).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[1].to_f64_vec().unwrap(), vec![3.0, 4.0]);
    }

    #[test]
    fn print_passes_through() {
        let a = scalar(5.0f32);
        let b = print(&a, "test: ").unwrap();
        assert_eq!(b.scalar_f64().unwrap(), 5.0);
    }
}
