//! Variables: the program state of §4.3.
//!
//! Each variable is an object with its own unique storage, deleted when the
//! object is dropped. Staged computations reference variables by unique id
//! (the `var_id` attribute on `read_variable`/`assign*` nodes); those ids
//! stop resolving once the owning [`Variable`] is gone, exactly matching
//! the paper's semantics.

use crate::error::{Result, RuntimeError};
use crate::tensor::{fresh_id, Tensor};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Weak};
use tfe_device::DeviceName;
use tfe_ops::Attrs;
use tfe_tensor::{DType, Shape, TensorData};

/// Backing storage for one variable.
#[derive(Debug)]
pub struct VarStorage {
    /// Unique id; what staged computations reference.
    pub id: u64,
    /// Fixed dtype.
    pub dtype: DType,
    /// Fixed shape.
    pub shape: Shape,
    /// The device the variable lives on.
    pub device: DeviceName,
    value: RwLock<Arc<TensorData>>,
}

impl VarStorage {
    /// Current value (cheap Arc clone).
    pub fn value(&self) -> Arc<TensorData> {
        self.value.read().clone()
    }

    fn bytes(&self) -> i64 {
        (self.shape.num_elements() * self.dtype.size_bytes()) as i64
    }

    /// Replace the value.
    ///
    /// # Errors
    /// dtype/shape mismatch with the variable's declaration.
    pub fn set_value(&self, v: TensorData) -> Result<()> {
        if v.dtype() != self.dtype {
            return Err(RuntimeError::Tensor(tfe_tensor::TensorError::DTypeMismatch {
                expected: self.dtype.name().to_string(),
                got: v.dtype(),
            }));
        }
        if v.shape() != &self.shape {
            return Err(RuntimeError::Tensor(tfe_tensor::TensorError::ShapeMismatch {
                expected: format!("variable shape {}", self.shape),
                got: v.shape().clone(),
            }));
        }
        *self.value.write() = Arc::new(v);
        Ok(())
    }
}

impl Drop for VarStorage {
    fn drop(&mut self) {
        tfe_metrics::static_gauge!("tfe_live_variables", "Live variables").dec();
        tfe_metrics::static_gauge!(
            "tfe_live_variable_bytes",
            "Tensor bytes held by live variables"
        )
        .sub(self.bytes());
    }
}

/// The global id→storage table. Holds weak references, so dropping the last
/// [`Variable`] handle makes its id unusable.
#[derive(Default)]
pub struct VariableRegistry {
    map: RwLock<HashMap<u64, Weak<VarStorage>>>,
}

impl VariableRegistry {
    fn register(&self, storage: &Arc<VarStorage>) {
        self.map.write().insert(storage.id, Arc::downgrade(storage));
    }

    /// Resolve an id to live storage.
    ///
    /// # Errors
    /// [`RuntimeError::VariableDead`] when the owning object is gone.
    pub fn resolve(&self, id: u64) -> Result<Arc<VarStorage>> {
        self.map.read().get(&id).and_then(Weak::upgrade).ok_or(RuntimeError::VariableDead(id))
    }

    /// Drop dead entries (called opportunistically).
    pub fn sweep(&self) {
        self.map.write().retain(|_, w| w.strong_count() > 0);
    }

    /// Number of live variables.
    pub fn live_count(&self) -> usize {
        self.map.read().values().filter(|w| w.strong_count() > 0).count()
    }
}

/// The process-wide variable registry.
pub fn registry() -> &'static VariableRegistry {
    static REGISTRY: std::sync::OnceLock<VariableRegistry> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(VariableRegistry::default)
}

/// A mutable, tape-aware tensor variable (the `tf.Variable` analog).
///
/// Reading a variable goes through the `read_variable` operation, so all
/// active gradient tapes automatically watch it (§4.2, Listing 2), and
/// traced functions capture it *by reference* (§4.6, Listing 7).
///
/// Cloning a `Variable` clones the handle; both handles share storage.
#[derive(Clone)]
pub struct Variable {
    storage: Arc<VarStorage>,
}

impl Variable {
    /// Create a variable holding `initial`, placed on the current device.
    ///
    /// Notifies the active tracing context (if any) for the state-creation
    /// contract of §4.6.
    pub fn new(initial: TensorData) -> Variable {
        let device = crate::context::current_device_name();
        let storage = Arc::new(VarStorage {
            id: fresh_id(),
            dtype: initial.dtype(),
            shape: initial.shape().clone(),
            device,
            value: RwLock::new(Arc::new(initial)),
        });
        registry().register(&storage);
        tfe_metrics::static_counter!("tfe_variables_created_total", "Variables ever created").inc();
        tfe_metrics::static_gauge!("tfe_live_variables", "Live variables").inc();
        tfe_metrics::static_gauge!(
            "tfe_live_variable_bytes",
            "Tensor bytes held by live variables"
        )
        .add(storage.bytes());
        crate::context::notify_variable_created(storage.id);
        Variable { storage }
    }

    /// Convenience scalar-f32 variable.
    pub fn scalar(v: f32) -> Variable {
        Variable::new(TensorData::scalar(v))
    }

    /// The unique id staged computations use to reference this variable.
    pub fn id(&self) -> u64 {
        self.storage.id
    }

    /// Declared dtype.
    pub fn dtype(&self) -> DType {
        self.storage.dtype
    }

    /// Declared shape.
    pub fn shape(&self) -> &Shape {
        &self.storage.shape
    }

    /// Read the current value *as an operation* — recorded by tapes and
    /// traces. This is `read_value()` in the paper's listings.
    ///
    /// # Errors
    /// Execution failures.
    pub fn read(&self) -> Result<Tensor> {
        let dims: Vec<i64> = self.storage.shape.dims().iter().map(|&d| d as i64).collect();
        let attrs = Attrs::new()
            .with("var_id", self.storage.id as i64)
            .with("dtype", self.storage.dtype)
            .with("shape", dims);
        let mut out = crate::context::execute("read_variable", &[], attrs)?;
        Ok(out.remove(0))
    }

    /// Overwrite the value (an operation; works inside traces).
    ///
    /// # Errors
    /// dtype/shape mismatch or execution failure.
    pub fn assign(&self, value: &Tensor) -> Result<()> {
        self.assign_op("assign", value)
    }

    /// Add `value` in place.
    ///
    /// # Errors
    /// dtype/shape mismatch or execution failure.
    pub fn assign_add(&self, value: &Tensor) -> Result<()> {
        self.assign_op("assign_add", value)
    }

    /// Subtract `value` in place.
    ///
    /// # Errors
    /// dtype/shape mismatch or execution failure.
    pub fn assign_sub(&self, value: &Tensor) -> Result<()> {
        self.assign_op("assign_sub", value)
    }

    fn assign_op(&self, op: &str, value: &Tensor) -> Result<()> {
        let attrs = Attrs::new().with("var_id", self.storage.id as i64);
        crate::context::execute(op, std::slice::from_ref(value), attrs)?;
        Ok(())
    }

    /// Peek at the value without going through an operation (not recorded
    /// by tapes; used by optimizers' host-side logic and checkpointing).
    ///
    /// Quiesces the async dispatch streams first, so in-flight `assign`s
    /// are applied before the raw storage is read. Deferred errors are
    /// deliberately *not* consumed here — they stay queued for the caller's
    /// next real sync point.
    pub fn peek(&self) -> Arc<TensorData> {
        crate::context::drain_streams();
        self.storage.value()
    }

    /// Directly overwrite storage without an operation (checkpoint restore).
    ///
    /// Quiesces the async dispatch streams first so an in-flight `assign`
    /// enqueued before this call cannot land *after* the restore.
    ///
    /// # Errors
    /// dtype/shape mismatch.
    pub fn restore(&self, value: TensorData) -> Result<()> {
        crate::context::drain_streams();
        self.storage.set_value(value)
    }
}

impl fmt::Debug for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Variable(id={}, dtype={}, shape={}, value={:?})",
            self.storage.id,
            self.storage.dtype,
            self.storage.shape,
            self.storage.value()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_validation() {
        let v = Variable::new(TensorData::zeros(DType::F32, [2]));
        assert!(v.restore(TensorData::zeros(DType::F32, [2])).is_ok());
        assert!(v.restore(TensorData::zeros(DType::F64, [2])).is_err());
        assert!(v.restore(TensorData::zeros(DType::F32, [3])).is_err());
    }

    #[test]
    fn registry_weak_semantics() {
        let id;
        {
            let v = Variable::scalar(1.0);
            id = v.id();
            assert!(registry().resolve(id).is_ok());
            // A clone keeps it alive.
            let v2 = v.clone();
            drop(v);
            assert!(registry().resolve(id).is_ok());
            drop(v2);
        }
        assert!(matches!(registry().resolve(id), Err(RuntimeError::VariableDead(_))));
        registry().sweep();
    }

    #[test]
    fn peek_without_op() {
        let v = Variable::new(TensorData::scalar(3.0f64));
        assert_eq!(v.peek().scalar_f64().unwrap(), 3.0);
        assert_eq!(v.dtype(), DType::F64);
        assert_eq!(v.shape().rank(), 0);
    }
}
