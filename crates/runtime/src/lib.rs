//! # tfe-runtime
//!
//! The imperative runtime of the `tf-eager` workspace (§4.1 and §5 of the
//! TensorFlow Eager paper): eager tensors, the mode-agnostic [`Tensor`]
//! handle, the thread-local execution [`context`] (tracing frames, device
//! scopes, gradient-tape stack), one CPU [`kernels`] table shared by both
//! execution modes, the dataflow [`executor`] for graph functions (serial
//! with buffer reuse, or inter-op parallel), [`Variable`]s with unique
//! storage (§4.3), and the user-visible op wrappers in [`api`].
//!
//! ```
//! use tfe_runtime::api;
//! # fn main() -> Result<(), tfe_runtime::RuntimeError> {
//! let a = api::constant(vec![1.0f32, 0.0], [1, 2])?;
//! let x = api::constant(vec![2.0f32, -2.0], [2, 1])?;
//! let y = api::matmul(&a, &x)?; // executes immediately
//! assert_eq!(y.scalar_f64()?, 2.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod context;
mod error;
pub mod executor;
pub mod kernels;
mod pool;
mod stream;
mod tape;
mod tensor;
mod variable;

pub use context::{async_enabled, async_scope, sync, sync_scope, DeviceScope};
pub use error::{Result, RuntimeError};
pub use executor::ExecMode;
pub use tape::{Tape, TapeRecord};
pub use tensor::{fresh_id, EagerTensor, SymbolicTensor, Tensor};
pub use variable::{registry as variable_registry, VarStorage, Variable};
