//! The dataflow executor: runs [`GraphFunction`]s.
//!
//! Two modes mirror §4.1/§5:
//! - **SerialPlanned** (default): nodes execute in topological order using a
//!   liveness-based buffer-reuse plan — values are dropped the moment their
//!   last consumer has run ("buffer reuse").
//! - **Parallel**: dependency-counted inter-op parallelism on a persistent
//!   worker pool ("runs kernels in parallel when possible"). Every node
//!   carries an atomic count of unresolved predecessors (data producers
//!   plus sequencing edges); finishing a node decrements its consumers and
//!   pushes newly-ready ones onto the shared queue. Stateful graphs run in
//!   parallel too: the sequencing edges computed at trace time (see
//!   `tfe_graph::sequencing`) keep variable reads and writes in program
//!   order while stateless work proceeds concurrently. Buffers are
//!   refcounted per output and released by their last consumer, matching
//!   the serial plan's reuse behavior.

use crate::error::{Result, RuntimeError};
use crate::tensor::{EagerTensor, Tensor};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use tfe_device::{Device, KernelCost};
use tfe_graph::{GraphFunction, NodeId, TensorRef};
use tfe_ops::{AttrValue, InferCtx, SymShape};
use tfe_tensor::TensorData;

/// Executor scheduling mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Serial topological execution with buffer-reuse (default).
    #[default]
    SerialPlanned,
    /// Dependency-counted inter-op parallel execution on the shared worker
    /// pool. Handles stateful graphs via sequencing edges; nested
    /// `call`/`cond`/`while_loop` bodies inherit the pool.
    Parallel,
}

/// Execute `f` with `args` on `device`.
///
/// `args` must match the function's declared inputs *including captures*
/// (the `Func` wrapper in `tfe-core` appends capture values automatically).
///
/// In [`ExecMode::Parallel`] the graph is cloned once into a shared handle;
/// callers that already hold an `Arc<GraphFunction>` should prefer
/// [`run_function_arc`], which avoids the clone.
///
/// # Errors
/// Arity mismatches, kernel failures, missing callees, dead variables.
pub fn run_function(
    f: &GraphFunction,
    args: &[Arc<TensorData>],
    device: &Device,
    mode: ExecMode,
) -> Result<Vec<Arc<TensorData>>> {
    crate::context::ensure_init();
    validate_args(f, args)?;
    match mode {
        ExecMode::SerialPlanned => run_serial(f, args, device),
        ExecMode::Parallel => run_parallel(&Arc::new(f.clone()), args, device),
    }
}

/// [`run_function`] for callers that already hold a shared graph handle
/// (the function library hands these out); the parallel scheduler shares
/// the `Arc` with its workers instead of cloning the graph.
///
/// # Errors
/// Same as [`run_function`].
pub fn run_function_arc(
    f: &Arc<GraphFunction>,
    args: &[Arc<TensorData>],
    device: &Device,
    mode: ExecMode,
) -> Result<Vec<Arc<TensorData>>> {
    crate::context::ensure_init();
    validate_args(f, args)?;
    match mode {
        ExecMode::SerialPlanned => run_serial(f, args, device),
        ExecMode::Parallel => run_parallel(f, args, device),
    }
}

fn validate_args(f: &GraphFunction, args: &[Arc<TensorData>]) -> Result<()> {
    if args.len() != f.inputs.len() {
        return Err(RuntimeError::Internal(format!(
            "function `{}` expects {} inputs ({} args + {} captures), got {}",
            f.name,
            f.inputs.len(),
            f.inputs.len() - f.num_captures,
            f.num_captures,
            args.len()
        )));
    }
    for (i, (&node_id, arg)) in f.inputs.iter().zip(args).enumerate() {
        let (dtype, shape) = f.node(node_id).output_sig(0);
        if arg.dtype() != dtype || !shape.matches(arg.shape()) {
            return Err(RuntimeError::Internal(format!(
                "argument {i} of `{}` expects {dtype}{shape}, got {}{}",
                f.name,
                arg.dtype(),
                arg.shape()
            )));
        }
    }
    Ok(())
}

fn tensor_bytes(t: &TensorData) -> u64 {
    (t.num_elements() * t.dtype().size_bytes()) as u64
}

fn charge_node(device: &Device, work: Option<(f64, f64)>) {
    if let Some(cfg) = crate::context::sim() {
        cfg.stats.count_staged_node();
        cfg.stats.clock.advance(cfg.dispatch.executor_node_ns);
        if let (Some(model), Some((flops, bytes))) = (device.compute_model(), work) {
            cfg.stats.device_clock.advance(model.kernel_time_ns(KernelCost { flops, bytes }));
            cfg.stats.count_kernel();
        }
    }
}

/// Execute one non-placeholder node given its concrete inputs. Nested
/// `call`/`cond`/`while_loop` bodies run in the caller's `mode` — a parallel
/// run keeps its worker pool through function-call boundaries.
fn run_node(
    f: &GraphFunction,
    id: NodeId,
    inputs: &[Arc<TensorData>],
    device: &Device,
    mode: ExecMode,
) -> Result<Vec<Arc<TensorData>>> {
    let node = f.node(id);
    crate::context::stat_node_executed();
    let mut prof_span = tfe_profile::span("node", || node.op.clone());
    if let Some(sp) = prof_span.as_mut() {
        sp.set_detail(f.node_label(id));
    }
    // Work estimate for simulated devices (uses concrete input shapes).
    let work = if device.compute_model().is_some() {
        let def = tfe_ops::global().lookup(&node.op)?;
        let dtypes: Vec<_> = inputs.iter().map(|d| d.dtype()).collect();
        let shapes: Vec<_> = inputs.iter().map(|d| SymShape::known(d.shape())).collect();
        let ictx = InferCtx { dtypes: &dtypes, shapes: &shapes, attrs: &node.attrs };
        let sigs = def.infer(&ictx)?;
        let w = def.work(&ictx, &sigs);
        Some((w.flops, w.bytes))
    } else {
        None
    };
    charge_node(device, work);

    if !device.produces_real_values()
        && node.op != "call"
        && node.op != "cond"
        && node.op != "while_loop"
    {
        // Cost-only: shape-correct zeros (resolved against concrete inputs).
        let def = tfe_ops::global().lookup(&node.op)?;
        let dtypes: Vec<_> = inputs.iter().map(|d| d.dtype()).collect();
        let shapes: Vec<_> = inputs.iter().map(|d| SymShape::known(d.shape())).collect();
        let sigs = def.infer(&InferCtx { dtypes: &dtypes, shapes: &shapes, attrs: &node.attrs })?;
        return sigs
            .into_iter()
            .map(|(dt, s)| {
                s.to_shape().map(|shape| crate::kernels::zero_value(dt, shape)).ok_or_else(|| {
                    RuntimeError::Internal(format!(
                        "cost-only execution needs defined shapes (op {})",
                        node.op
                    ))
                })
            })
            .collect();
    }

    match node.op.as_str() {
        "const" => {
            let idx = match node.attrs.get("value_index") {
                Some(AttrValue::Int(i)) => *i as usize,
                _ => return Err(RuntimeError::Internal("const without value_index".into())),
            };
            Ok(vec![f
                .constants
                .get(idx)
                .cloned()
                .ok_or_else(|| RuntimeError::Internal("const pool underflow".into()))?])
        }
        "call" => {
            let name = node.attrs.str("function").map_err(tfe_ops::OpError::from)?;
            let callee = crate::context::library()
                .get(name)
                .ok_or_else(|| RuntimeError::UnknownFunction(name.into()))?;
            run_function_arc(&callee, inputs, device, mode)
        }
        "cond" => {
            let pred = inputs
                .first()
                .ok_or_else(|| RuntimeError::Internal("cond without predicate".into()))?
                .scalar_f64()?
                != 0.0;
            let branch = if pred {
                node.attrs.str("then_fn").map_err(tfe_ops::OpError::from)?
            } else {
                node.attrs.str("else_fn").map_err(tfe_ops::OpError::from)?
            };
            let callee = crate::context::library()
                .get(branch)
                .ok_or_else(|| RuntimeError::UnknownFunction(branch.into()))?;
            run_function_arc(&callee, &inputs[1..], device, mode)
        }
        "while_loop" => {
            let cond_name = node.attrs.str("cond_fn").map_err(tfe_ops::OpError::from)?;
            let body_name = node.attrs.str("body_fn").map_err(tfe_ops::OpError::from)?;
            let cond = crate::context::library()
                .get(cond_name)
                .ok_or_else(|| RuntimeError::UnknownFunction(cond_name.into()))?;
            let body = crate::context::library()
                .get(body_name)
                .ok_or_else(|| RuntimeError::UnknownFunction(body_name.into()))?;
            let mut state = inputs.to_vec();
            let max =
                node.attrs.int_or("max_iterations", 1_000_000).map_err(tfe_ops::OpError::from)?;
            let mut iters = 0i64;
            loop {
                let p = run_function_arc(&cond, &state, device, mode)?;
                if p.first()
                    .ok_or_else(|| RuntimeError::Internal("while cond empty".into()))?
                    .scalar_f64()?
                    == 0.0
                {
                    break;
                }
                state = run_function_arc(&body, &state, device, mode)?;
                iters += 1;
                if iters >= max {
                    return Err(RuntimeError::Internal(format!(
                        "while_loop exceeded max_iterations={max}"
                    )));
                }
            }
            Ok(state)
        }
        "host_func" => {
            // Escape into imperative code (§4.7): wrap inputs as eager
            // tensors and invoke the registered host closure.
            let id = node.attrs.int("fn_id").map_err(tfe_ops::OpError::from)? as u64;
            let hf = crate::context::host_fn(id)?;
            let eager: Vec<Tensor> = inputs
                .iter()
                .map(|d| Tensor::Eager(EagerTensor::new(d.clone(), device.name().clone())))
                .collect();
            // The closure's eager ops must dispatch synchronously: this
            // node may itself be running on a dispatch-stream thread (a
            // `call` enqueued in async mode), and enqueueing behind the
            // op currently executing would deadlock the stream.
            let _sync = crate::context::force_sync_scope();
            let out = hf(&eager)?;
            out.into_iter().map(|t| t.value()).collect()
        }
        "copy" => Ok(vec![inputs
            .first()
            .ok_or_else(|| RuntimeError::Internal("copy without input".into()))?
            .clone()]),
        _ => {
            crate::context::stat_kernel_launched();
            let t0 = std::time::Instant::now();
            let out = crate::kernels::run_kernel(&node.op, &node.attrs, inputs)?;
            tfe_metrics::static_histogram!(
                "tfe_kernel_time_ns",
                "Wall-clock nanoseconds per compute-kernel invocation (eager and staged)",
                tfe_metrics::DEFAULT_NS_BUCKETS
            )
            .observe(t0.elapsed().as_nanos() as u64);
            Ok(out.into_iter().map(Arc::new).collect())
        }
    }
}

fn run_serial(
    f: &GraphFunction,
    args: &[Arc<TensorData>],
    device: &Device,
) -> Result<Vec<Arc<TensorData>>> {
    crate::context::stat_serial_run();
    let _prof_span = tfe_profile::span("graph", || format!("serial:{}", f.name));
    // Last consumer index per tensor, for buffer release.
    let mut last_use: HashMap<TensorRef, usize> = HashMap::new();
    for (i, node) in f.nodes.iter().enumerate() {
        for &input in &node.inputs {
            last_use.insert(input, i);
        }
    }
    for &out in &f.outputs {
        last_use.insert(out, usize::MAX);
    }

    let mut live_bytes = 0u64;
    let mut peak_bytes = 0u64;
    let mut values: HashMap<TensorRef, Arc<TensorData>> = HashMap::new();
    // Bind placeholders.
    for (&node_id, arg) in f.inputs.iter().zip(args) {
        live_bytes += tensor_bytes(arg);
        values.insert(TensorRef::first(node_id), arg.clone());
    }
    peak_bytes = peak_bytes.max(live_bytes);
    for (i, node) in f.nodes.iter().enumerate() {
        if node.op == "placeholder" {
            continue;
        }
        let inputs: Vec<Arc<TensorData>> = node
            .inputs
            .iter()
            .map(|t| {
                values.get(t).cloned().ok_or_else(|| {
                    RuntimeError::Internal(format!("value for {t:?} missing in `{}`", f.name))
                })
            })
            .collect::<Result<_>>()?;
        let outs = run_node(f, NodeId(i), &inputs, device, ExecMode::SerialPlanned)?;
        for (k, v) in outs.into_iter().enumerate() {
            live_bytes += tensor_bytes(&v);
            values.insert(TensorRef { node: NodeId(i), output: k }, v);
        }
        peak_bytes = peak_bytes.max(live_bytes);
        // Buffer reuse: drop values whose last consumer has now run.
        for &input in &node.inputs {
            if last_use.get(&input) == Some(&i) {
                if let Some(v) = values.remove(&input) {
                    live_bytes -= tensor_bytes(&v);
                }
            }
        }
    }
    crate::context::stat_live_bytes(peak_bytes);
    f.outputs
        .iter()
        .map(|t| {
            values.get(t).cloned().ok_or_else(|| {
                RuntimeError::Internal(format!("output {t:?} missing in `{}`", f.name))
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Dependency-counted parallel scheduler
// ---------------------------------------------------------------------------

/// Shared state of one parallel run. Jobs on the worker pool hold an `Arc`
/// to this; the submitting thread waits (and work-helps) until `pending`
/// reaches zero.
struct RunState {
    f: Arc<GraphFunction>,
    device: Device,
    /// Flat value-slot index of `(node, output 0)`; slot `offset[n] + k` is
    /// output `k` of node `n`.
    slot_offset: Vec<usize>,
    /// One slot per node output.
    slots: Vec<Mutex<Option<Arc<TensorData>>>>,
    /// Remaining consumer input-slots of each value slot; a slot's tensor is
    /// dropped when this hits zero (function outputs carry an extra pin).
    slot_refs: Vec<AtomicUsize>,
    /// Unresolved predecessors (data producers + sequencing edges) per node.
    deps: Vec<AtomicUsize>,
    /// Dependent node ids per node (the reverse of `predecessors`).
    consumers: Vec<Vec<usize>>,
    /// Non-placeholder nodes not yet finished.
    pending: AtomicUsize,
    /// Bytes currently held in slots.
    live_bytes: AtomicU64,
    error: Mutex<Option<RuntimeError>>,
    abort: AtomicBool,
}

impl RunState {
    fn slot_of(&self, t: &TensorRef) -> usize {
        self.slot_offset[t.node.0] + t.output
    }

    fn fail(&self, e: RuntimeError) {
        tfe_profile::instant("sched", || format!("abort:{}:{e}", self.f.name));
        crate::context::stat_executor_abort();
        self.error.lock().get_or_insert(e);
        self.abort.store(true, Ordering::SeqCst);
    }

    /// Store one node's outputs, skipping slots nobody will ever read.
    /// Runs strictly before any consumer of the node is enqueued, so the
    /// unsynchronized refcount read is safe.
    fn store_outputs(&self, node: usize, outs: Vec<Arc<TensorData>>) {
        let base = self.slot_offset[node];
        let mut added = 0u64;
        for (k, v) in outs.into_iter().enumerate() {
            if self.slot_refs[base + k].load(Ordering::SeqCst) == 0 {
                continue; // dead output: never stored, dropped immediately
            }
            added += tensor_bytes(&v);
            *self.slots[base + k].lock() = Some(v);
        }
        let live = self.live_bytes.fetch_add(added, Ordering::SeqCst) + added;
        crate::context::stat_live_bytes(live);
    }

    /// Drop one reference to a value slot; frees the tensor on the last.
    fn release_slot(&self, slot: usize) {
        if self.slot_refs[slot].fetch_sub(1, Ordering::SeqCst) == 1 {
            if let Some(v) = self.slots[slot].lock().take() {
                self.live_bytes.fetch_sub(tensor_bytes(&v), Ordering::SeqCst);
            }
        }
    }

    /// Bookkeeping after a node ran (or was skipped by an abort): release
    /// its input buffers, wake consumers that became ready, and signal the
    /// waiters when this was the last pending node.
    fn finish_node(self: &Arc<Self>, node: usize) {
        for t in &self.f.nodes[node].inputs {
            self.release_slot(self.slot_of(t));
        }
        for &c in &self.consumers[node] {
            if self.deps[c].fetch_sub(1, Ordering::SeqCst) == 1 {
                self.enqueue(c);
            }
        }
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            crate::pool::global().notify();
        }
    }

    fn enqueue(self: &Arc<Self>, node: usize) {
        let state = self.clone();
        let depth = crate::pool::global().submit(Box::new(move || state.execute(node)));
        crate::context::stat_queue_depth(depth as u64);
        tfe_profile::counter("sched", "ready_queue_depth", depth as u64);
    }

    /// Run one ready node. Errors and panics flip the abort flag; the
    /// dependency countdown still completes so the run drains and the
    /// waiter observes the stored error.
    fn execute(self: &Arc<Self>, node: usize) {
        if self.abort.load(Ordering::SeqCst) {
            tfe_profile::instant("sched", || {
                format!("abort_skip:{}", self.f.node_label(NodeId(node)))
            });
        } else {
            let inputs: Result<Vec<Arc<TensorData>>> = self.f.nodes[node]
                .inputs
                .iter()
                .map(|t| {
                    self.slots[self.slot_of(t)].lock().clone().ok_or_else(|| {
                        RuntimeError::Internal(format!(
                            "parallel exec missing {t:?} in `{}`",
                            self.f.name
                        ))
                    })
                })
                .collect();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                inputs.and_then(|ins| {
                    run_node(&self.f, NodeId(node), &ins, &self.device, ExecMode::Parallel)
                })
            }));
            match result {
                Ok(Ok(outs)) => self.store_outputs(node, outs),
                Ok(Err(e)) => self.fail(e),
                Err(_) => self.fail(RuntimeError::Internal(format!(
                    "node %{node} ({}) panicked in `{}`",
                    self.f.nodes[node].op, self.f.name
                ))),
            }
        }
        self.finish_node(node);
    }
}

fn run_parallel(
    f: &Arc<GraphFunction>,
    args: &[Arc<TensorData>],
    device: &Device,
) -> Result<Vec<Arc<TensorData>>> {
    crate::context::stat_parallel_run();
    let _prof_span = tfe_profile::span("graph", || format!("parallel:{}", f.name));
    let n = f.nodes.len();

    // Value slots, flattened over node outputs.
    let mut slot_offset = Vec::with_capacity(n);
    let mut total_slots = 0usize;
    for node in &f.nodes {
        slot_offset.push(total_slots);
        total_slots += node.outputs.len();
    }
    let mut slot_refs = vec![0usize; total_slots];
    for node in &f.nodes {
        for t in &node.inputs {
            slot_refs[slot_offset[t.node.0] + t.output] += 1;
        }
    }
    for t in &f.outputs {
        // Pin function outputs: never released by the countdown.
        slot_refs[slot_offset[t.node.0] + t.output] += 1;
    }

    // Dependency counts and their reverse edges (data + sequencing).
    let mut deps = Vec::with_capacity(n);
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut pending = 0usize;
    for (i, node) in f.nodes.iter().enumerate() {
        let preds = f.predecessors(NodeId(i));
        deps.push(AtomicUsize::new(preds.len()));
        for p in preds {
            consumers[p.0].push(i);
        }
        if node.op != "placeholder" {
            pending += 1;
        }
    }

    let state = Arc::new(RunState {
        f: f.clone(),
        device: device.clone(),
        slot_offset,
        slots: (0..total_slots).map(|_| Mutex::new(None)).collect(),
        slot_refs: slot_refs.into_iter().map(AtomicUsize::new).collect(),
        deps,
        consumers,
        pending: AtomicUsize::new(pending),
        live_bytes: AtomicU64::new(0),
        error: Mutex::new(None),
        abort: AtomicBool::new(false),
    });

    // Bind placeholders.
    let mut bound = 0u64;
    for (&node_id, arg) in f.inputs.iter().zip(args) {
        let slot = state.slot_offset[node_id.0];
        if state.slot_refs[slot].load(Ordering::SeqCst) != 0 {
            bound += tensor_bytes(arg);
            *state.slots[slot].lock() = Some(arg.clone());
        }
    }
    state.live_bytes.store(bound, Ordering::SeqCst);
    crate::context::stat_live_bytes(bound);

    if pending == 0 {
        return collect_outputs(&state);
    }

    // Seed the queue: nodes with no predecessors at all (consts, random
    // sources), then everything placeholders unblock. A node can only be in
    // one of the two sets, so nothing is enqueued twice.
    let mut ready: Vec<usize> = Vec::new();
    for (i, node) in f.nodes.iter().enumerate() {
        if node.op != "placeholder" && state.deps[i].load(Ordering::SeqCst) == 0 {
            ready.push(i);
        }
    }
    for &node_id in &f.inputs {
        for &c in &state.consumers[node_id.0] {
            if state.deps[c].fetch_sub(1, Ordering::SeqCst) == 1 {
                ready.push(c);
            }
        }
    }
    for i in ready {
        state.enqueue(i);
    }

    // Work-help until the countdown completes (nested parallel runs issued
    // from worker threads pass through here too — helping instead of
    // blocking is what keeps them deadlock-free).
    crate::pool::global().wait_until(|| state.pending.load(Ordering::SeqCst) == 0);

    if let Some(e) = state.error.lock().take() {
        return Err(e);
    }
    collect_outputs(&state)
}

fn collect_outputs(state: &RunState) -> Result<Vec<Arc<TensorData>>> {
    state
        .f
        .outputs
        .iter()
        .map(|t| {
            state.slots[state.slot_of(t)].lock().clone().ok_or_else(|| {
                RuntimeError::Internal(format!("output {t:?} missing in `{}`", state.f.name))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_graph::GraphBuilder;
    use tfe_ops::Attrs;
    use tfe_tensor::{DType, Shape};

    fn device() -> Device {
        crate::context::device_manager().host_cpu()
    }

    fn known(dims: &[usize]) -> SymShape {
        SymShape::known(&Shape::from(dims))
    }

    fn build_axpy() -> GraphFunction {
        // f(x, y) = relu(x * 2 + y)
        let mut b = GraphBuilder::new("axpy");
        let x = b.placeholder(DType::F32, known(&[3])).unwrap();
        let y = b.placeholder(DType::F32, known(&[3])).unwrap();
        let two = b.constant(Arc::new(TensorData::scalar(2.0f32))).unwrap();
        let m = b.add_node("mul", vec![x, two], Attrs::new()).unwrap()[0];
        let s = b.add_node("add", vec![m, y], Attrs::new()).unwrap()[0];
        let r = b.add_node("relu", vec![s], Attrs::new()).unwrap()[0];
        b.finish(vec![r], 0)
    }

    #[test]
    fn serial_execution() {
        let f = build_axpy();
        let x = Arc::new(TensorData::from_vec(vec![1.0f32, -3.0, 2.0], Shape::from([3])).unwrap());
        let y = Arc::new(TensorData::from_vec(vec![0.5f32, 1.0, -10.0], Shape::from([3])).unwrap());
        let out = run_function(&f, &[x, y], &device(), ExecMode::SerialPlanned).unwrap();
        assert_eq!(out[0].to_f64_vec(), vec![2.5, 0.0, 0.0]);
    }

    #[test]
    fn parallel_matches_serial() {
        let f = build_axpy();
        let x = Arc::new(TensorData::from_vec(vec![1.0f32, -3.0, 2.0], Shape::from([3])).unwrap());
        let y = Arc::new(TensorData::from_vec(vec![0.5f32, 1.0, -10.0], Shape::from([3])).unwrap());
        let serial =
            run_function(&f, &[x.clone(), y.clone()], &device(), ExecMode::SerialPlanned).unwrap();
        let parallel = run_function(&f, &[x, y], &device(), ExecMode::Parallel).unwrap();
        assert_eq!(serial[0], parallel[0]);
    }

    #[test]
    fn wide_parallel_graph() {
        // 16 independent branches joined by adds: exercises the pool.
        let mut b = GraphBuilder::new("wide");
        let x = b.placeholder(DType::F32, known(&[4])).unwrap();
        let mut branches = Vec::new();
        for _ in 0..16 {
            let t = b.add_node("exp", vec![x], Attrs::new()).unwrap()[0];
            let t = b.add_node("tanh", vec![t], Attrs::new()).unwrap()[0];
            branches.push(t);
        }
        let mut acc = branches[0];
        for &t in &branches[1..] {
            acc = b.add_node("add", vec![acc, t], Attrs::new()).unwrap()[0];
        }
        let f = b.finish(vec![acc], 0);
        let x =
            Arc::new(TensorData::from_vec(vec![0.1f32, 0.2, 0.3, 0.4], Shape::from([4])).unwrap());
        let serial =
            run_function(&f, std::slice::from_ref(&x), &device(), ExecMode::SerialPlanned).unwrap();
        let parallel = run_function(&f, &[x], &device(), ExecMode::Parallel).unwrap();
        assert!(serial[0].all_close(&parallel[0], 1e-6, 1e-6));
    }

    #[test]
    fn parallel_runs_stateful_graphs_in_program_order() {
        // read v → assign v+1 → read v: the second read must observe the
        // write (sequencing edges, not serial fallback).
        let var = crate::Variable::new(TensorData::scalar(5.0f32));
        let vid = var.id() as i64;
        let mut b = GraphBuilder::new("stateful_order");
        let read_attrs = || {
            Attrs::new()
                .with("var_id", vid)
                .with("dtype", DType::F32)
                .with("shape", Vec::<i64>::new())
        };
        let r1 = b.add_node("read_variable", vec![], read_attrs()).unwrap()[0];
        let one = b.constant(Arc::new(TensorData::scalar(1.0f32))).unwrap();
        let inc = b.add_node("add", vec![r1, one], Attrs::new()).unwrap()[0];
        b.add_node("assign", vec![inc], Attrs::new().with("var_id", vid)).unwrap();
        let r2 = b.add_node("read_variable", vec![], read_attrs()).unwrap()[0];
        let f = b.finish(vec![r2], 0);
        assert!(f.is_stateful());

        let before = crate::context::exec_stats().parallel_runs;
        let out = run_function(&f, &[], &device(), ExecMode::Parallel).unwrap();
        assert_eq!(out[0].scalar_f64().unwrap(), 6.0);
        assert_eq!(var.peek().scalar_f64().unwrap(), 6.0);
        // Regression: Parallel mode must actually take the parallel path.
        assert!(crate::context::exec_stats().parallel_runs > before);
    }

    #[test]
    fn parallel_error_propagates() {
        // A call to a function missing from the library errors at run time;
        // the run must drain and report the error, not hang.
        let mut b = GraphBuilder::new("err");
        let x = b.placeholder(DType::F32, known(&[2])).unwrap();
        let (d, s) = tfe_ops::catalog::encode_sig(&[(DType::F32, known(&[2]))]);
        let c = b
            .add_node(
                "call",
                vec![x],
                Attrs::new()
                    .with("function", "definitely_not_registered")
                    .with("out_dtypes", d)
                    .with("out_shapes", s),
            )
            .unwrap()[0];
        let r = b.add_node("relu", vec![c], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![r], 0);
        let x = Arc::new(TensorData::zeros(DType::F32, [2]));
        assert!(run_function(&f, &[x], &device(), ExecMode::Parallel).is_err());
    }

    #[test]
    fn arity_and_signature_validation() {
        let f = build_axpy();
        let x = Arc::new(TensorData::zeros(DType::F32, [3]));
        assert!(
            run_function(&f, std::slice::from_ref(&x), &device(), ExecMode::SerialPlanned).is_err()
        );
        let bad_dtype = Arc::new(TensorData::zeros(DType::F64, [3]));
        assert!(
            run_function(&f, &[x.clone(), bad_dtype], &device(), ExecMode::SerialPlanned).is_err()
        );
        let bad_shape = Arc::new(TensorData::zeros(DType::F32, [4]));
        assert!(run_function(&f, &[x, bad_shape], &device(), ExecMode::SerialPlanned).is_err());
    }

    #[test]
    fn multi_output_split_in_graph() {
        let mut b = GraphBuilder::new("splitter");
        let x = b.placeholder(DType::F32, known(&[4])).unwrap();
        let parts = b
            .add_node("split", vec![x], Attrs::new().with("num", 2i64).with("axis", 0i64))
            .unwrap();
        let s = b.add_node("add", vec![parts[0], parts[1]], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![s], 0);
        let x = Arc::new(
            TensorData::from_vec(vec![1.0f32, 2.0, 10.0, 20.0], Shape::from([4])).unwrap(),
        );
        for mode in [ExecMode::SerialPlanned, ExecMode::Parallel] {
            let out = run_function(&f, std::slice::from_ref(&x), &device(), mode).unwrap();
            assert_eq!(out[0].to_f64_vec(), vec![11.0, 22.0]);
        }
    }

    #[test]
    fn nested_call_nodes() {
        // inner(a) = relu(a); outer(a) = inner(a) + 1  (Listing 8 shape)
        let mut ib = GraphBuilder::new("exec_inner");
        let a = ib.placeholder(DType::F32, known(&[2])).unwrap();
        let r = ib.add_node("relu", vec![a], Attrs::new()).unwrap()[0];
        let inner = ib.finish(vec![r], 0);
        let (d, s) = tfe_ops::catalog::encode_sig(&inner.output_sigs());
        crate::context::library().insert(inner);

        let mut ob = GraphBuilder::new("exec_outer");
        let a = ob.placeholder(DType::F32, known(&[2])).unwrap();
        let call = ob
            .add_node(
                "call",
                vec![a],
                Attrs::new()
                    .with("function", "exec_inner")
                    .with("out_dtypes", d)
                    .with("out_shapes", s),
            )
            .unwrap()[0];
        let one_c = ob.constant(Arc::new(TensorData::scalar(1.0f32))).unwrap();
        let out = ob.add_node("add", vec![call, one_c], Attrs::new()).unwrap()[0];
        let outer = ob.finish(vec![out], 0);

        let x = Arc::new(TensorData::from_vec(vec![-5.0f32, 3.0], Shape::from([2])).unwrap());
        // Nested calls inherit the caller's mode in both directions.
        for mode in [ExecMode::SerialPlanned, ExecMode::Parallel] {
            let r = run_function(&outer, std::slice::from_ref(&x), &device(), mode).unwrap();
            assert_eq!(r[0].to_f64_vec(), vec![1.0, 4.0]);
        }
    }

    #[test]
    fn exec_stats_report_scheduler_activity() {
        crate::context::reset_exec_stats();
        let f = build_axpy();
        let x = Arc::new(TensorData::from_vec(vec![1.0f32, -3.0, 2.0], Shape::from([3])).unwrap());
        let y = Arc::new(TensorData::from_vec(vec![0.5f32, 1.0, -10.0], Shape::from([3])).unwrap());
        run_function(&f, &[x.clone(), y.clone()], &device(), ExecMode::SerialPlanned).unwrap();
        run_function(&f, &[x, y], &device(), ExecMode::Parallel).unwrap();
        let stats = crate::context::exec_stats();
        assert!(stats.serial_runs >= 1);
        assert!(stats.parallel_runs >= 1);
        // axpy runs const + mul + add + relu per invocation.
        assert!(stats.nodes_executed >= 8);
        assert!(stats.kernels_launched >= 6);
        assert!(stats.peak_live_bytes >= 3 * 4 * 2); // two f32[3] args live
        assert!(stats.max_queue_depth >= 1);
    }
}
