//! The dataflow executor: runs [`GraphFunction`]s.
//!
//! Two modes mirror §4.1/§5:
//! - **SerialPlanned** (default): nodes execute in topological order using a
//!   liveness-based buffer-reuse plan — values are dropped the moment their
//!   last consumer has run ("buffer reuse").
//! - **Parallel**: inter-op parallelism on a crossbeam scoped thread pool
//!   ("runs kernels in parallel when possible"). Stateless graphs only;
//!   graphs with side effects fall back to serial execution to preserve
//!   program order of stateful ops.

use crate::error::{Result, RuntimeError};
use crate::tensor::{EagerTensor, Tensor};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tfe_device::{Device, KernelCost};
use tfe_graph::{GraphFunction, NodeId, TensorRef};
use tfe_ops::{AttrValue, InferCtx, SymShape};
use tfe_tensor::TensorData;

/// Executor scheduling mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Serial topological execution with buffer-reuse (default).
    #[default]
    SerialPlanned,
    /// Inter-op parallel execution (stateless graphs only; stateful graphs
    /// silently run serially).
    Parallel,
}

/// Execute `f` with `args` on `device`.
///
/// `args` must match the function's declared inputs *including captures*
/// (the `Func` wrapper in `tfe-core` appends capture values automatically).
///
/// # Errors
/// Arity mismatches, kernel failures, missing callees, dead variables.
pub fn run_function(
    f: &GraphFunction,
    args: &[Arc<TensorData>],
    device: &Device,
    mode: ExecMode,
) -> Result<Vec<Arc<TensorData>>> {
    crate::context::ensure_init();
    if args.len() != f.inputs.len() {
        return Err(RuntimeError::Internal(format!(
            "function `{}` expects {} inputs ({} args + {} captures), got {}",
            f.name,
            f.inputs.len(),
            f.inputs.len() - f.num_captures,
            f.num_captures,
            args.len()
        )));
    }
    for (i, (&node_id, arg)) in f.inputs.iter().zip(args).enumerate() {
        let (dtype, shape) = f.node(node_id).output_sig(0);
        if arg.dtype() != dtype || !shape.matches(arg.shape()) {
            return Err(RuntimeError::Internal(format!(
                "argument {i} of `{}` expects {dtype}{shape}, got {}{}",
                f.name,
                arg.dtype(),
                arg.shape()
            )));
        }
    }
    match mode {
        ExecMode::Parallel if !f.is_stateful() => run_parallel(f, args, device),
        _ => run_serial(f, args, device),
    }
}

fn charge_node(device: &Device, work: Option<(f64, f64)>) {
    if let Some(cfg) = crate::context::sim() {
        cfg.stats.count_staged_node();
        cfg.stats.clock.advance(cfg.dispatch.executor_node_ns);
        if let (Some(model), Some((flops, bytes))) = (device.compute_model(), work) {
            cfg.stats
                .device_clock
                .advance(model.kernel_time_ns(KernelCost { flops, bytes }));
            cfg.stats.count_kernel();
        }
    }
}

/// Execute one non-placeholder node given its concrete inputs.
fn run_node(
    f: &GraphFunction,
    id: NodeId,
    inputs: &[Arc<TensorData>],
    device: &Device,
) -> Result<Vec<Arc<TensorData>>> {
    let node = f.node(id);
    // Work estimate for simulated devices (uses concrete input shapes).
    let work = if device.compute_model().is_some() {
        let def = tfe_ops::global().lookup(&node.op)?;
        let dtypes: Vec<_> = inputs.iter().map(|d| d.dtype()).collect();
        let shapes: Vec<_> = inputs.iter().map(|d| SymShape::known(d.shape())).collect();
        let ictx = InferCtx { dtypes: &dtypes, shapes: &shapes, attrs: &node.attrs };
        let sigs = def.infer(&ictx)?;
        let w = def.work(&ictx, &sigs);
        Some((w.flops, w.bytes))
    } else {
        None
    };
    charge_node(device, work);

    if !device.produces_real_values() && node.op != "call" && node.op != "cond"
        && node.op != "while_loop"
    {
        // Cost-only: shape-correct zeros (resolved against concrete inputs).
        let def = tfe_ops::global().lookup(&node.op)?;
        let dtypes: Vec<_> = inputs.iter().map(|d| d.dtype()).collect();
        let shapes: Vec<_> = inputs.iter().map(|d| SymShape::known(d.shape())).collect();
        let sigs = def.infer(&InferCtx { dtypes: &dtypes, shapes: &shapes, attrs: &node.attrs })?;
        return sigs
            .into_iter()
            .map(|(dt, s)| {
                s.to_shape().map(|shape| crate::kernels::zero_value(dt, shape)).ok_or_else(
                    || {
                        RuntimeError::Internal(format!(
                            "cost-only execution needs defined shapes (op {})",
                            node.op
                        ))
                    },
                )
            })
            .collect();
    }

    match node.op.as_str() {
        "const" => {
            let idx = match node.attrs.get("value_index") {
                Some(AttrValue::Int(i)) => *i as usize,
                _ => return Err(RuntimeError::Internal("const without value_index".into())),
            };
            Ok(vec![f
                .constants
                .get(idx)
                .cloned()
                .ok_or_else(|| RuntimeError::Internal("const pool underflow".into()))?])
        }
        "call" => {
            let name = node.attrs.str("function").map_err(tfe_ops::OpError::from)?;
            let callee = crate::context::library()
                .get(name)
                .ok_or_else(|| RuntimeError::UnknownFunction(name.into()))?;
            run_function(&callee, inputs, device, ExecMode::SerialPlanned)
        }
        "cond" => {
            let pred = inputs
                .first()
                .ok_or_else(|| RuntimeError::Internal("cond without predicate".into()))?
                .scalar_f64()?
                != 0.0;
            let branch = if pred {
                node.attrs.str("then_fn").map_err(tfe_ops::OpError::from)?
            } else {
                node.attrs.str("else_fn").map_err(tfe_ops::OpError::from)?
            };
            let callee = crate::context::library()
                .get(branch)
                .ok_or_else(|| RuntimeError::UnknownFunction(branch.into()))?;
            run_function(&callee, &inputs[1..], device, ExecMode::SerialPlanned)
        }
        "while_loop" => {
            let cond_name = node.attrs.str("cond_fn").map_err(tfe_ops::OpError::from)?;
            let body_name = node.attrs.str("body_fn").map_err(tfe_ops::OpError::from)?;
            let cond = crate::context::library()
                .get(cond_name)
                .ok_or_else(|| RuntimeError::UnknownFunction(cond_name.into()))?;
            let body = crate::context::library()
                .get(body_name)
                .ok_or_else(|| RuntimeError::UnknownFunction(body_name.into()))?;
            let mut state = inputs.to_vec();
            let max = node
                .attrs
                .int_or("max_iterations", 1_000_000)
                .map_err(tfe_ops::OpError::from)?;
            let mut iters = 0i64;
            loop {
                let p = run_function(&cond, &state, device, ExecMode::SerialPlanned)?;
                if p.first()
                    .ok_or_else(|| RuntimeError::Internal("while cond empty".into()))?
                    .scalar_f64()?
                    == 0.0
                {
                    break;
                }
                state = run_function(&body, &state, device, ExecMode::SerialPlanned)?;
                iters += 1;
                if iters >= max {
                    return Err(RuntimeError::Internal(format!(
                        "while_loop exceeded max_iterations={max}"
                    )));
                }
            }
            Ok(state)
        }
        "host_func" => {
            // Escape into imperative code (§4.7): wrap inputs as eager
            // tensors and invoke the registered host closure.
            let id = node.attrs.int("fn_id").map_err(tfe_ops::OpError::from)? as u64;
            let hf = crate::context::host_fn(id)?;
            let eager: Vec<Tensor> = inputs
                .iter()
                .map(|d| Tensor::Eager(EagerTensor::new(d.clone(), device.name().clone())))
                .collect();
            let out = hf(&eager)?;
            out.into_iter().map(|t| t.value()).collect()
        }
        "copy" => Ok(vec![inputs
            .first()
            .ok_or_else(|| RuntimeError::Internal("copy without input".into()))?
            .clone()]),
        _ => {
            let out = crate::kernels::run_kernel(&node.op, &node.attrs, inputs)?;
            Ok(out.into_iter().map(Arc::new).collect())
        }
    }
}

fn run_serial(
    f: &GraphFunction,
    args: &[Arc<TensorData>],
    device: &Device,
) -> Result<Vec<Arc<TensorData>>> {
    // Last consumer index per tensor, for buffer release.
    let mut last_use: HashMap<TensorRef, usize> = HashMap::new();
    for (i, node) in f.nodes.iter().enumerate() {
        for &input in &node.inputs {
            last_use.insert(input, i);
        }
    }
    for &out in &f.outputs {
        last_use.insert(out, usize::MAX);
    }

    let mut values: HashMap<TensorRef, Arc<TensorData>> = HashMap::new();
    // Bind placeholders.
    for (&node_id, arg) in f.inputs.iter().zip(args) {
        values.insert(TensorRef::first(node_id), arg.clone());
    }
    for (i, node) in f.nodes.iter().enumerate() {
        if node.op == "placeholder" {
            continue;
        }
        let inputs: Vec<Arc<TensorData>> = node
            .inputs
            .iter()
            .map(|t| {
                values.get(t).cloned().ok_or_else(|| {
                    RuntimeError::Internal(format!("value for {t:?} missing in `{}`", f.name))
                })
            })
            .collect::<Result<_>>()?;
        let outs = run_node(f, NodeId(i), &inputs, device)?;
        for (k, v) in outs.into_iter().enumerate() {
            values.insert(TensorRef { node: NodeId(i), output: k }, v);
        }
        // Buffer reuse: drop values whose last consumer has now run.
        for &input in &node.inputs {
            if last_use.get(&input) == Some(&i) {
                values.remove(&input);
            }
        }
    }
    f.outputs
        .iter()
        .map(|t| {
            values.get(t).cloned().ok_or_else(|| {
                RuntimeError::Internal(format!("output {t:?} missing in `{}`", f.name))
            })
        })
        .collect()
}

fn run_parallel(
    f: &GraphFunction,
    args: &[Arc<TensorData>],
    device: &Device,
) -> Result<Vec<Arc<TensorData>>> {
    let n = f.nodes.len();
    // Topological levels: a node's level is 1 + max(level of producers).
    // Nodes within one level are independent and run concurrently; levels
    // form barriers, which keeps error handling and shutdown trivial.
    let mut level = vec![0usize; n];
    let mut max_level = 0usize;
    for (i, node) in f.nodes.iter().enumerate() {
        let l = node
            .inputs
            .iter()
            .map(|t| level[t.node.0] + 1)
            .max()
            .unwrap_or(0);
        level[i] = l;
        max_level = max_level.max(l);
    }
    let mut by_level: Vec<Vec<usize>> = vec![Vec::new(); max_level + 1];
    for (i, node) in f.nodes.iter().enumerate() {
        if node.op != "placeholder" {
            by_level[level[i]].push(i);
        }
    }

    let values: Vec<Mutex<Option<Vec<Arc<TensorData>>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    for (&node_id, arg) in f.inputs.iter().zip(args) {
        *values[node_id.0].lock() = Some(vec![arg.clone()]);
    }
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(8);
    for nodes in &by_level {
        if nodes.is_empty() {
            continue;
        }
        let error: Mutex<Option<RuntimeError>> = Mutex::new(None);
        let cursor = AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers.min(nodes.len()) {
                let values = &values;
                let error = &error;
                let cursor = &cursor;
                scope.spawn(move |_| loop {
                    let k = cursor.fetch_add(1, Ordering::SeqCst);
                    if k >= nodes.len() || error.lock().is_some() {
                        break;
                    }
                    let i = nodes[k];
                    let node = &f.nodes[i];
                    let inputs: Result<Vec<Arc<TensorData>>> = node
                        .inputs
                        .iter()
                        .map(|t| {
                            values[t.node.0]
                                .lock()
                                .as_ref()
                                .and_then(|v| v.get(t.output).cloned())
                                .ok_or_else(|| {
                                    RuntimeError::Internal(format!(
                                        "parallel exec missing {t:?}"
                                    ))
                                })
                        })
                        .collect();
                    match inputs.and_then(|ins| run_node(f, NodeId(i), &ins, device)) {
                        Ok(outs) => *values[i].lock() = Some(outs),
                        Err(e) => {
                            error.lock().get_or_insert(e);
                            break;
                        }
                    }
                });
            }
        })
        .map_err(|_| RuntimeError::Internal("executor worker panicked".to_string()))?;
        let taken = error.lock().take();
        if let Some(e) = taken {
            return Err(e);
        }
    }
    f.outputs
        .iter()
        .map(|t| {
            values[t.node.0]
                .lock()
                .as_ref()
                .and_then(|v| v.get(t.output).cloned())
                .ok_or_else(|| {
                    RuntimeError::Internal(format!("output {t:?} missing in `{}`", f.name))
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_graph::GraphBuilder;
    use tfe_ops::Attrs;
    use tfe_tensor::{DType, Shape};

    fn device() -> Device {
        crate::context::device_manager().host_cpu()
    }

    fn known(dims: &[usize]) -> SymShape {
        SymShape::known(&Shape::from(dims))
    }

    fn build_axpy() -> GraphFunction {
        // f(x, y) = relu(x * 2 + y)
        let mut b = GraphBuilder::new("axpy");
        let x = b.placeholder(DType::F32, known(&[3])).unwrap();
        let y = b.placeholder(DType::F32, known(&[3])).unwrap();
        let two = b.constant(Arc::new(TensorData::scalar(2.0f32))).unwrap();
        let m = b.add_node("mul", vec![x, two], Attrs::new()).unwrap()[0];
        let s = b.add_node("add", vec![m, y], Attrs::new()).unwrap()[0];
        let r = b.add_node("relu", vec![s], Attrs::new()).unwrap()[0];
        b.finish(vec![r], 0)
    }

    #[test]
    fn serial_execution() {
        let f = build_axpy();
        let x = Arc::new(TensorData::from_vec(vec![1.0f32, -3.0, 2.0], Shape::from([3])).unwrap());
        let y = Arc::new(TensorData::from_vec(vec![0.5f32, 1.0, -10.0], Shape::from([3])).unwrap());
        let out = run_function(&f, &[x, y], &device(), ExecMode::SerialPlanned).unwrap();
        assert_eq!(out[0].to_f64_vec(), vec![2.5, 0.0, 0.0]);
    }

    #[test]
    fn parallel_matches_serial() {
        let f = build_axpy();
        let x = Arc::new(TensorData::from_vec(vec![1.0f32, -3.0, 2.0], Shape::from([3])).unwrap());
        let y = Arc::new(TensorData::from_vec(vec![0.5f32, 1.0, -10.0], Shape::from([3])).unwrap());
        let serial =
            run_function(&f, &[x.clone(), y.clone()], &device(), ExecMode::SerialPlanned).unwrap();
        let parallel = run_function(&f, &[x, y], &device(), ExecMode::Parallel).unwrap();
        assert_eq!(serial[0], parallel[0]);
    }

    #[test]
    fn wide_parallel_graph() {
        // 16 independent branches joined by adds: exercises the pool.
        let mut b = GraphBuilder::new("wide");
        let x = b.placeholder(DType::F32, known(&[4])).unwrap();
        let mut branches = Vec::new();
        for _ in 0..16 {
            let t = b.add_node("exp", vec![x], Attrs::new()).unwrap()[0];
            let t = b.add_node("tanh", vec![t], Attrs::new()).unwrap()[0];
            branches.push(t);
        }
        let mut acc = branches[0];
        for &t in &branches[1..] {
            acc = b.add_node("add", vec![acc, t], Attrs::new()).unwrap()[0];
        }
        let f = b.finish(vec![acc], 0);
        let x = Arc::new(TensorData::from_vec(vec![0.1f32, 0.2, 0.3, 0.4], Shape::from([4])).unwrap());
        let serial = run_function(&f, &[x.clone()], &device(), ExecMode::SerialPlanned).unwrap();
        let parallel = run_function(&f, &[x], &device(), ExecMode::Parallel).unwrap();
        assert!(serial[0].all_close(&parallel[0], 1e-6, 1e-6));
    }

    #[test]
    fn arity_and_signature_validation() {
        let f = build_axpy();
        let x = Arc::new(TensorData::zeros(DType::F32, [3]));
        assert!(run_function(&f, &[x.clone()], &device(), ExecMode::SerialPlanned).is_err());
        let bad_dtype = Arc::new(TensorData::zeros(DType::F64, [3]));
        assert!(run_function(&f, &[x.clone(), bad_dtype], &device(), ExecMode::SerialPlanned)
            .is_err());
        let bad_shape = Arc::new(TensorData::zeros(DType::F32, [4]));
        assert!(run_function(&f, &[x, bad_shape], &device(), ExecMode::SerialPlanned).is_err());
    }

    #[test]
    fn multi_output_split_in_graph() {
        let mut b = GraphBuilder::new("splitter");
        let x = b.placeholder(DType::F32, known(&[4])).unwrap();
        let parts = b
            .add_node("split", vec![x], Attrs::new().with("num", 2i64).with("axis", 0i64))
            .unwrap();
        let s = b.add_node("add", vec![parts[0], parts[1]], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![s], 0);
        let x =
            Arc::new(TensorData::from_vec(vec![1.0f32, 2.0, 10.0, 20.0], Shape::from([4])).unwrap());
        let out = run_function(&f, &[x], &device(), ExecMode::SerialPlanned).unwrap();
        assert_eq!(out[0].to_f64_vec(), vec![11.0, 22.0]);
    }

    #[test]
    fn nested_call_nodes() {
        // inner(a) = relu(a); outer(a) = inner(a) + 1  (Listing 8 shape)
        let mut ib = GraphBuilder::new("exec_inner");
        let a = ib.placeholder(DType::F32, known(&[2])).unwrap();
        let r = ib.add_node("relu", vec![a], Attrs::new()).unwrap()[0];
        let inner = ib.finish(vec![r], 0);
        let (d, s) = tfe_ops::catalog::encode_sig(&inner.output_sigs());
        crate::context::library().insert(inner);

        let mut ob = GraphBuilder::new("exec_outer");
        let a = ob.placeholder(DType::F32, known(&[2])).unwrap();
        let call = ob
            .add_node(
                "call",
                vec![a],
                Attrs::new()
                    .with("function", "exec_inner")
                    .with("out_dtypes", d)
                    .with("out_shapes", s),
            )
            .unwrap()[0];
        let one_c = ob.constant(Arc::new(TensorData::scalar(1.0f32))).unwrap();
        let out = ob.add_node("add", vec![call, one_c], Attrs::new()).unwrap()[0];
        let outer = ob.finish(vec![out], 0);

        let x = Arc::new(TensorData::from_vec(vec![-5.0f32, 3.0], Shape::from([2])).unwrap());
        let r = run_function(&outer, &[x], &device(), ExecMode::SerialPlanned).unwrap();
        assert_eq!(r[0].to_f64_vec(), vec![1.0, 4.0]);
    }
}
