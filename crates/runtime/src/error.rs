//! Runtime error type.

use std::fmt;
use tfe_ops::OpError;
use tfe_tensor::TensorError;

/// Errors raised while executing operations (eagerly or staged).
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// An op-definition problem (unknown op, arity, attrs, inference).
    Op(OpError),
    /// A kernel-level tensor math failure.
    Tensor(TensorError),
    /// Device resolution/placement failure.
    Device(String),
    /// A symbolic tensor was used where a concrete value is required
    /// (e.g. calling `.value()` during tracing — the moral equivalent of
    /// calling `.numpy()` on a graph tensor).
    SymbolicValue(String),
    /// A variable was used after its owning object was dropped (§4.3:
    /// "unique identifiers ... are no longer usable if the Python variable
    /// objects they reference do not exist").
    VariableDead(u64),
    /// A referenced graph function is missing from the library.
    UnknownFunction(String),
    /// A referenced host function (py_func analog) is missing.
    UnknownHostFunction(u64),
    /// The operation is valid but deliberately unsupported (documented
    /// limitations, e.g. the gradient of `while_loop`).
    Unsupported(String),
    /// A non-persistent `GradientTape` was asked for a second gradient.
    /// Exactly one caller wins the tape; everyone else gets this.
    TapeConsumed,
    /// An asynchronously dispatched operation failed after its handle was
    /// already returned to the caller. Captured in stream order and
    /// surfaced at the next sync point (`Tensor::value`, `context::sync`,
    /// an `async_scope` exit, or a fast-failed enqueue on the poisoned
    /// stream); `op` names the operation whose kernel originally failed.
    Deferred {
        /// The operation that failed on the dispatch stream.
        op: String,
        /// The underlying synchronous error.
        source: Box<RuntimeError>,
    },
    /// Anything else.
    Internal(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Op(e) => write!(f, "{e}"),
            RuntimeError::Tensor(e) => write!(f, "{e}"),
            RuntimeError::Device(msg) => write!(f, "device error: {msg}"),
            RuntimeError::SymbolicValue(msg) => {
                write!(f, "cannot read a concrete value during tracing: {msg}")
            }
            RuntimeError::VariableDead(id) => {
                write!(f, "variable {id} no longer exists (owning object was dropped)")
            }
            RuntimeError::UnknownFunction(name) => {
                write!(f, "graph function `{name}` is not in the function library")
            }
            RuntimeError::UnknownHostFunction(id) => {
                write!(f, "host function {id} is not registered")
            }
            RuntimeError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            RuntimeError::TapeConsumed => write!(
                f,
                "a non-persistent GradientTape can only be used to compute one set of gradients"
            ),
            RuntimeError::Deferred { op, source } => {
                write!(f, "deferred error from async op `{op}`: {source}")
            }
            RuntimeError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<OpError> for RuntimeError {
    fn from(e: OpError) -> RuntimeError {
        RuntimeError::Op(e)
    }
}

impl From<TensorError> for RuntimeError {
    fn from(e: TensorError) -> RuntimeError {
        RuntimeError::Tensor(e)
    }
}

/// Result alias for runtime operations.
pub type Result<T, E = RuntimeError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(RuntimeError::VariableDead(3).to_string().contains("variable 3"));
        assert!(RuntimeError::UnknownFunction("f".into()).to_string().contains("`f`"));
        let e: RuntimeError = OpError::UnknownOp("x".into()).into();
        assert!(e.to_string().contains("unknown operation"));
        let e: RuntimeError = TensorError::InvalidArgument("bad".into()).into();
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn deferred_names_the_originating_op() {
        let inner: RuntimeError = TensorError::InvalidArgument("bad index".into()).into();
        let e = RuntimeError::Deferred { op: "gather".into(), source: Box::new(inner) };
        let msg = e.to_string();
        assert!(msg.contains("`gather`"), "{msg}");
        assert!(msg.contains("bad index"), "{msg}");
        assert!(msg.contains("deferred"), "{msg}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RuntimeError>();
    }
}
