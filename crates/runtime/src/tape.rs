//! Low-level gradient-tape machinery (§4.2).
//!
//! The runtime records executed operations onto every active tape that is
//! watching (directly or transitively) one of the op's inputs. The
//! user-facing `GradientTape` API and the actual backprop algorithm live in
//! `tfe-autodiff`; this module only owns the data structure and the
//! recording rule, because recording has to happen inside the dispatcher.

use crate::tensor::Tensor;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;
use tfe_ops::Attrs;

/// One recorded operation.
#[derive(Debug, Clone)]
pub struct TapeRecord {
    /// Op name.
    pub op: String,
    /// Attributes it ran with.
    pub attrs: Attrs,
    /// Input handles (eager or symbolic — tapes work in both modes).
    pub inputs: Vec<Tensor>,
    /// Output handles.
    pub outputs: Vec<Tensor>,
    /// Ids gradients flow *from* (usually input ids; `read_variable`
    /// records the variable id so all reads of one variable alias).
    pub input_ids: Vec<u64>,
    /// Ids gradients flow *to*.
    pub output_ids: Vec<u64>,
}

struct TapeInner {
    watched: HashSet<u64>,
    tracked: HashSet<u64>,
    records: Vec<TapeRecord>,
    consumed: bool,
}

/// A recording of differentiable operations.
///
/// Tapes are composable (§4.2): several can be active at once, and a tape
/// may record the gradient computation another tape performs — that is how
/// higher-order derivatives work (Listing 1).
pub struct Tape {
    /// Unique tape id.
    pub id: u64,
    /// Whether `gradient` may be called multiple times.
    pub persistent: bool,
    /// Whether variables are watched automatically on access (§4.3,
    /// Listing 2). Defaults to true.
    pub watch_accessed_variables: bool,
    inner: Mutex<TapeInner>,
}

impl Tape {
    /// A fresh tape.
    pub fn new(persistent: bool, watch_accessed_variables: bool) -> Arc<Tape> {
        Arc::new(Tape {
            id: crate::tensor::fresh_id(),
            persistent,
            watch_accessed_variables,
            inner: Mutex::new(TapeInner {
                watched: HashSet::new(),
                tracked: HashSet::new(),
                records: Vec::new(),
                consumed: false,
            }),
        })
    }

    /// Start watching an id (tensor id or variable id).
    pub fn watch_id(&self, id: u64) {
        let mut inner = self.inner.lock();
        inner.watched.insert(id);
        inner.tracked.insert(id);
    }

    /// Whether `id` is on the differentiable path.
    pub fn is_tracked(&self, id: u64) -> bool {
        self.inner.lock().tracked.contains(&id)
    }

    /// Record `record` if any of its `input_ids` is tracked. Returns
    /// whether it was recorded.
    pub fn maybe_record(&self, record: &TapeRecord) -> bool {
        let mut inner = self.inner.lock();
        if !record.input_ids.iter().any(|id| inner.tracked.contains(id)) {
            return false;
        }
        for &id in &record.output_ids {
            inner.tracked.insert(id);
        }
        inner.records.push(record.clone());
        true
    }

    /// Snapshot the records (used by backprop).
    pub fn records(&self) -> Vec<TapeRecord> {
        self.inner.lock().records.clone()
    }

    /// Number of recorded ops.
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mark the tape used by a `gradient` call. The check and the set
    /// happen under one lock acquisition, so concurrent callers racing a
    /// shared non-persistent tape see exactly one winner.
    ///
    /// # Errors
    /// [`RuntimeError::TapeConsumed`] for a non-persistent tape that was
    /// already consumed (mirrors TensorFlow's `GradientTape` error).
    pub fn consume(&self) -> Result<(), crate::RuntimeError> {
        let mut inner = self.inner.lock();
        if inner.consumed && !self.persistent {
            return Err(crate::RuntimeError::TapeConsumed);
        }
        inner.consumed = true;
        Ok(())
    }
}

impl fmt::Debug for Tape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tape(id={}, records={}, persistent={})", self.id, self.len(), self.persistent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_tensor::TensorData;

    fn record(ids_in: &[u64], ids_out: &[u64]) -> TapeRecord {
        TapeRecord {
            op: "add".to_string(),
            attrs: Attrs::new(),
            inputs: ids_in.iter().map(|_| Tensor::from_data(TensorData::scalar(0.0f32))).collect(),
            outputs: ids_out
                .iter()
                .map(|_| Tensor::from_data(TensorData::scalar(0.0f32)))
                .collect(),
            input_ids: ids_in.to_vec(),
            output_ids: ids_out.to_vec(),
        }
    }

    #[test]
    fn records_only_watched_paths() {
        let tape = Tape::new(false, true);
        tape.watch_id(1);
        assert!(!tape.maybe_record(&record(&[7], &[8]))); // untracked input
        assert!(tape.maybe_record(&record(&[1], &[2]))); // watched
        assert!(tape.maybe_record(&record(&[2], &[3]))); // transitively tracked
        assert!(tape.is_tracked(3));
        assert!(!tape.is_tracked(8));
        assert_eq!(tape.len(), 2);
    }

    #[test]
    fn consume_semantics() {
        let tape = Tape::new(false, true);
        assert!(tape.consume().is_ok());
        assert!(tape.consume().is_err());
        let p = Tape::new(true, true);
        assert!(p.consume().is_ok());
        assert!(p.consume().is_ok());
    }

    #[test]
    fn multiple_watches() {
        let tape = Tape::new(false, true);
        tape.watch_id(10);
        tape.watch_id(20);
        assert!(tape.maybe_record(&record(&[5, 20], &[30])));
        assert!(tape.is_tracked(30));
    }
}
