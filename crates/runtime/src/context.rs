//! The execution context: thread-local stacks for tracing frames, device
//! scopes and gradient tapes, plus the central operation dispatcher.
//!
//! This is the runtime half of the paper's multi-stage model (§4.1): every
//! user-visible operation funnels through [`execute`], which either runs a
//! kernel immediately (imperative mode) or records a node into the graph
//! being traced (staged mode). Both paths share the op registry, the
//! kernels, and the tape-recording rule — the "single set of primitive
//! operations" of §1.

use crate::error::{Result, RuntimeError};
use crate::executor::{self, ExecMode};
use crate::tape::{Tape, TapeRecord};
use crate::tensor::{fresh_id, EagerTensor, SymbolicTensor, Tensor};
use parking_lot::{Mutex, RwLock};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;
use tfe_device::{Device, DeviceManager, DeviceName, DispatchModel, KernelCost, SimStats};
use tfe_graph::{FunctionLibrary, GraphBuilder, TensorRef};
use tfe_ops::{Attrs, InferCtx, SymShape};
use tfe_tensor::rng::TensorRng;
use tfe_tensor::TensorData;

// ---------------------------------------------------------------------------
// Global singletons
// ---------------------------------------------------------------------------

/// The process-wide device registry (§4.4's start-up device detection).
pub fn device_manager() -> &'static DeviceManager {
    static M: std::sync::OnceLock<DeviceManager> = std::sync::OnceLock::new();
    M.get_or_init(DeviceManager::new)
}

/// The process-wide graph-function library (resolves `call` nodes).
pub fn library() -> &'static FunctionLibrary {
    static L: std::sync::OnceLock<FunctionLibrary> = std::sync::OnceLock::new();
    L.get_or_init(FunctionLibrary::new)
}

/// A host closure embeddable in graphs — the `py_func` analog (§4.7).
pub type HostFn = Arc<dyn Fn(&[Tensor]) -> Result<Vec<Tensor>> + Send + Sync>;

fn host_fns() -> &'static RwLock<HashMap<u64, HostFn>> {
    static H: std::sync::OnceLock<RwLock<HashMap<u64, HostFn>>> = std::sync::OnceLock::new();
    H.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Register a host function; the returned id goes into `host_func` nodes.
pub fn register_host_fn(f: HostFn) -> u64 {
    let id = fresh_id();
    host_fns().write().insert(id, f);
    id
}

/// Resolve a host-function id.
///
/// # Errors
/// Unknown id.
pub fn host_fn(id: u64) -> Result<HostFn> {
    host_fns().read().get(&id).cloned().ok_or(RuntimeError::UnknownHostFunction(id))
}

fn global_rng() -> &'static Mutex<TensorRng> {
    static R: std::sync::OnceLock<Mutex<TensorRng>> = std::sync::OnceLock::new();
    R.get_or_init(|| Mutex::new(TensorRng::seed_from_u64(0)))
}

/// Re-seed the process RNG used by stateful random ops (`tf.set_random_seed`).
pub fn set_random_seed(seed: u64) {
    *global_rng().lock() = TensorRng::seed_from_u64(seed);
}

/// Run `f` with exclusive access to the process RNG.
pub(crate) fn with_rng<R>(f: impl FnOnce(&mut TensorRng) -> R) -> R {
    f(&mut global_rng().lock())
}

/// Per-op simulated-kernel-time accounting, enabled by the
/// `TFE_SIM_PROFILE` environment variable (used to calibrate the bench
/// profiles; not part of the public contract).
pub fn sim_profile() -> &'static RwLock<HashMap<String, (u64, f64)>> {
    static P: std::sync::OnceLock<RwLock<HashMap<String, (u64, f64)>>> = std::sync::OnceLock::new();
    P.get_or_init(|| RwLock::new(HashMap::new()))
}

pub(crate) fn sim_profile_add(op: &str, ns: f64) {
    if std::env::var_os("TFE_SIM_PROFILE").is_some() {
        let mut p = sim_profile().write();
        let e = p.entry(op.to_string()).or_default();
        e.0 += 1;
        e.1 += ns;
    }
}

/// Make sure op catalog and kernels are registered. Cheap after first call.
pub fn ensure_init() {
    tfe_ops::ensure_standard_ops();
    crate::kernels::ensure_kernels();
}

// ---------------------------------------------------------------------------
// Executor statistics
// ---------------------------------------------------------------------------

/// Process-wide executor counters, updated by both scheduling modes and by
/// workers of the parallel pool (which have no thread-local context). Read
/// them with [`exec_stats`]; benches reset between phases with
/// [`reset_exec_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Graph nodes executed (placeholders excluded).
    pub nodes_executed: u64,
    /// Compute kernels launched (structural ops — `const`, `call`, `cond`,
    /// `while_loop`, `host_func`, `copy` — excluded).
    pub kernels_launched: u64,
    /// Completed `run_function` invocations in serial-planned mode.
    pub serial_runs: u64,
    /// Completed `run_function` invocations in parallel mode.
    pub parallel_runs: u64,
    /// Deepest ready-queue depth observed by the parallel scheduler.
    pub max_queue_depth: u64,
    /// Largest number of tensor bytes simultaneously live in one run
    /// (placeholder bindings included), across both modes.
    pub peak_live_bytes: u64,
    /// Kernel loops the intra-op splitter ran in parallel tiles on the
    /// shared pool (sourced from `tfe-parallel`).
    pub intra_par_kernels: u64,
    /// Kernel loops the intra-op grain heuristic kept serial.
    pub intra_serial_kernels: u64,
    /// Total tiles executed by parallel kernel loops.
    pub intra_tiles: u64,
}

struct ExecStatCells {
    /// Update generation: bumped (Release) after every field update, so
    /// [`exec_stats`] can detect that a read pass overlapped a writer and
    /// retry — a seqlock with lock-free writers.
    version: std::sync::atomic::AtomicU64,
    nodes_executed: std::sync::atomic::AtomicU64,
    kernels_launched: std::sync::atomic::AtomicU64,
    serial_runs: std::sync::atomic::AtomicU64,
    parallel_runs: std::sync::atomic::AtomicU64,
    max_queue_depth: std::sync::atomic::AtomicU64,
    peak_live_bytes: std::sync::atomic::AtomicU64,
}

fn exec_stat_cells() -> &'static ExecStatCells {
    static C: std::sync::OnceLock<ExecStatCells> = std::sync::OnceLock::new();
    C.get_or_init(|| ExecStatCells {
        version: std::sync::atomic::AtomicU64::new(0),
        nodes_executed: std::sync::atomic::AtomicU64::new(0),
        kernels_launched: std::sync::atomic::AtomicU64::new(0),
        serial_runs: std::sync::atomic::AtomicU64::new(0),
        parallel_runs: std::sync::atomic::AtomicU64::new(0),
        max_queue_depth: std::sync::atomic::AtomicU64::new(0),
        peak_live_bytes: std::sync::atomic::AtomicU64::new(0),
    })
}

impl ExecStatCells {
    #[inline]
    fn bump_version(&self) {
        self.version.fetch_add(1, std::sync::atomic::Ordering::Release);
    }

    /// One read pass. `kernels_launched` is read first, with Acquire: every
    /// kernel bump is a Release RMW sequenced *after* its node bump on the
    /// same thread, so acquiring a kernel count of `k` guarantees the
    /// subsequent `nodes_executed` load observes at least the `k` matching
    /// node bumps. The `kernels ≤ nodes` invariant therefore holds for
    /// every pass, even one that overlapped writers.
    fn read_pass(&self) -> ExecStats {
        use std::sync::atomic::Ordering::{Acquire, Relaxed};
        let kernels_launched = self.kernels_launched.load(Acquire);
        let intra = tfe_parallel::intra_stats();
        ExecStats {
            nodes_executed: self.nodes_executed.load(Relaxed),
            kernels_launched,
            serial_runs: self.serial_runs.load(Relaxed),
            parallel_runs: self.parallel_runs.load(Relaxed),
            max_queue_depth: self.max_queue_depth.load(Relaxed),
            peak_live_bytes: self.peak_live_bytes.load(Relaxed),
            intra_par_kernels: intra.par_kernels,
            intra_serial_kernels: intra.serial_kernels,
            intra_tiles: intra.tiles,
        }
    }
}

/// Snapshot the executor counters — seqlock-consistent: the whole struct is
/// re-read until a pass completes with no interleaved update (bounded
/// retries, so a steady stream of writers cannot live-lock the reader). The
/// bounded-retry fallback still guarantees `kernels_launched ≤
/// nodes_executed` via the ordered read in `read_pass`, so no torn view of
/// that invariant is ever observable.
pub fn exec_stats() -> ExecStats {
    use std::sync::atomic::Ordering::Acquire;
    let c = exec_stat_cells();
    let mut stats = c.read_pass();
    for _ in 0..8 {
        let v1 = c.version.load(Acquire);
        stats = c.read_pass();
        if c.version.load(Acquire) == v1 {
            break;
        }
    }
    stats
}

/// Zero the executor counters. (Resets only this resettable snapshot used
/// by benches; the always-on `tfe_executor_*` metrics counters are monotone
/// for the lifetime of the process and are *not* reset.)
pub fn reset_exec_stats() {
    use std::sync::atomic::Ordering::Relaxed;
    let c = exec_stat_cells();
    c.nodes_executed.store(0, Relaxed);
    c.kernels_launched.store(0, Relaxed);
    c.serial_runs.store(0, Relaxed);
    c.parallel_runs.store(0, Relaxed);
    c.max_queue_depth.store(0, Relaxed);
    c.peak_live_bytes.store(0, Relaxed);
    c.bump_version();
    tfe_parallel::reset_intra_stats();
}

pub(crate) fn stat_node_executed() {
    let c = exec_stat_cells();
    c.nodes_executed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    c.bump_version();
    tfe_metrics::static_counter!(
        "tfe_executor_nodes_run_total",
        "Graph nodes executed by either scheduling mode (placeholders excluded)"
    )
    .inc();
}

pub(crate) fn stat_kernel_launched() {
    let c = exec_stat_cells();
    // Release: pairs with the Acquire read in `read_pass` so a reader that
    // sees this kernel also sees the node bump sequenced before it.
    c.kernels_launched.fetch_add(1, std::sync::atomic::Ordering::Release);
    c.bump_version();
    tfe_metrics::static_counter!(
        "tfe_executor_kernels_run_total",
        "Compute kernels launched by the graph executor (structural ops excluded)"
    )
    .inc();
}

pub(crate) fn stat_serial_run() {
    let c = exec_stat_cells();
    c.serial_runs.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    c.bump_version();
    tfe_metrics::static_counter!(
        "tfe_executor_serial_runs_total",
        "Graph-function invocations run by the serial-planned executor"
    )
    .inc();
}

pub(crate) fn stat_parallel_run() {
    let c = exec_stat_cells();
    c.parallel_runs.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    c.bump_version();
    tfe_metrics::static_counter!(
        "tfe_executor_parallel_runs_total",
        "Graph-function invocations run by the dependency-counted parallel executor"
    )
    .inc();
}

pub(crate) fn stat_queue_depth(depth: u64) {
    let c = exec_stat_cells();
    c.max_queue_depth.fetch_max(depth, std::sync::atomic::Ordering::Relaxed);
    c.bump_version();
    tfe_metrics::static_gauge!(
        "tfe_executor_ready_queue_depth_peak",
        "Deepest ready-queue depth observed by the parallel scheduler"
    )
    .set_max(depth as i64);
}

pub(crate) fn stat_live_bytes(bytes: u64) {
    let c = exec_stat_cells();
    c.peak_live_bytes.fetch_max(bytes, std::sync::atomic::Ordering::Relaxed);
    c.bump_version();
    tfe_metrics::static_gauge!(
        "tfe_executor_peak_live_bytes",
        "Largest number of tensor bytes simultaneously live in one graph run"
    )
    .set_max(bytes as i64);
}

pub(crate) fn stat_executor_abort() {
    tfe_metrics::static_counter!(
        "tfe_executor_aborts_total",
        "Parallel graph runs aborted by a node error or panic"
    )
    .inc();
}

// ---------------------------------------------------------------------------
// Thread-local context stack
// ---------------------------------------------------------------------------

/// Per-thread simulation configuration (virtual clock + overhead model).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Shared counters and virtual clock.
    pub stats: SimStats,
    /// Host-side dispatch overheads.
    pub dispatch: DispatchModel,
}

/// One tracing frame: a graph under construction.
pub struct TraceFrame {
    /// Frame id (symbolic tensors remember which frame minted them).
    pub frame_id: u64,
    /// The graph builder.
    pub builder: GraphBuilder,
    /// Captured outer tensors, in placeholder order (§4.6 lexical closure).
    pub captures: Vec<Tensor>,
    capture_refs: HashMap<u64, TensorRef>,
    /// Variables created while this frame was active (§4.6 state creation).
    pub created_variables: Vec<u64>,
}

/// Everything [`end_tracing`] hands back to the tracer.
pub struct FinishedTrace {
    /// The frame id that was traced.
    pub frame_id: u64,
    /// The builder, ready for `finish(outputs, num_captures)`.
    pub builder: GraphBuilder,
    /// Captured outer tensors, in placeholder order.
    pub captures: Vec<Tensor>,
    /// Variables created during the trace.
    pub created_variables: Vec<u64>,
}

#[derive(Default)]
struct Stack {
    traces: Vec<TraceFrame>,
    init_scope_stash: Vec<Vec<TraceFrame>>,
    devices: Vec<Device>,
    tapes: Vec<Arc<Tape>>,
    sim: Option<SimConfig>,
    exec_mode: ExecMode,
    /// Nested async-mode overrides; the innermost wins, the `TFE_ASYNC`
    /// environment default applies when empty.
    async_overrides: Vec<bool>,
}

thread_local! {
    static STACK: RefCell<Stack> = RefCell::new(Stack::default());
}

fn with_stack<R>(f: impl FnOnce(&mut Stack) -> R) -> R {
    STACK.with(|s| f(&mut s.borrow_mut()))
}

// ---------------------------------------------------------------------------
// Devices
// ---------------------------------------------------------------------------

/// RAII guard for a device scope: pushing happens at construction, popping
/// on drop — so a panicking closure unwinds the thread's scope stack
/// correctly instead of leaking the scope into unrelated code that later
/// runs on the same thread.
///
/// Not `Send`: the scope lives on the stack of the thread that opened it.
#[must_use = "the device scope ends when this guard drops"]
pub struct DeviceScope {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl DeviceScope {
    fn push(device: Device) -> DeviceScope {
        with_stack(|s| s.devices.push(device));
        DeviceScope { _not_send: std::marker::PhantomData }
    }
}

impl Drop for DeviceScope {
    fn drop(&mut self) {
        with_stack(|s| {
            s.devices.pop();
        });
    }
}

/// Open a device scope by name, closed when the returned guard drops.
///
/// # Errors
/// Unknown device name.
pub fn device_scope(name: &str) -> Result<DeviceScope> {
    let device = device_manager().resolve(name).map_err(RuntimeError::Device)?;
    Ok(DeviceScope::push(device))
}

/// Open a device scope for an already-resolved device.
pub fn device_scope_obj(device: Device) -> DeviceScope {
    DeviceScope::push(device)
}

/// Run `f` with operations placed on the named device (§4.4's `device`
/// context manager).
///
/// # Errors
/// Unknown device name.
pub fn with_device<R>(name: &str, f: impl FnOnce() -> R) -> Result<R> {
    let _scope = device_scope(name)?;
    Ok(f())
}

/// Like [`with_device`], with an already-resolved device.
pub fn with_device_obj<R>(device: Device, f: impl FnOnce() -> R) -> R {
    let _scope = device_scope_obj(device);
    f()
}

/// The device new operations run on: the innermost `device` scope, else the
/// host CPU (input-based placement happens in the dispatcher).
pub fn current_device() -> Device {
    with_stack(|s| s.devices.last().cloned()).unwrap_or_else(|| device_manager().host_cpu())
}

/// Name of [`current_device`].
pub fn current_device_name() -> DeviceName {
    current_device().name().clone()
}

// ---------------------------------------------------------------------------
// Tapes
// ---------------------------------------------------------------------------

/// Push a tape onto this thread's active stack.
pub fn push_tape(tape: Arc<Tape>) {
    with_stack(|s| s.tapes.push(tape));
}

/// Remove a tape by id. Returns whether it was found.
pub fn pop_tape(id: u64) -> bool {
    with_stack(|s| {
        let before = s.tapes.len();
        s.tapes.retain(|t| t.id != id);
        s.tapes.len() != before
    })
}

/// Snapshot of the active tapes (outermost first).
pub fn active_tapes() -> Vec<Arc<Tape>> {
    with_stack(|s| s.tapes.clone())
}

fn record_on_tapes(op: &str, attrs: &Attrs, inputs: &[Tensor], outputs: &[Tensor]) {
    if outputs.is_empty() {
        return; // assigns and friends are not differentiable events
    }
    let tapes = with_stack(|s| s.tapes.clone());
    if tapes.is_empty() {
        return;
    }
    // `read_variable` flows gradients from the *variable id*, so that
    // multiple reads of one variable alias to one gradient slot and tapes
    // auto-watch variables (§4.2/§4.3).
    let mut input_ids: Vec<u64> = if op == "read_variable" {
        match attrs.int("var_id") {
            Ok(id) => vec![id as u64],
            Err(_) => inputs.iter().map(Tensor::id).collect(),
        }
    } else {
        inputs.iter().map(Tensor::id).collect()
    };
    if op == "read_variable" {
        for tape in &tapes {
            if tape.watch_accessed_variables {
                if let Ok(id) = attrs.int("var_id") {
                    tape.watch_id(id as u64);
                }
            }
        }
    }
    // A `call` node exposes the variables its graph reads as extra gradient
    // slots (attr `var_ids`, set by the tracer), so tapes can flow
    // gradients to variables *through* staged functions and auto-watch
    // them, just like direct `read_variable` ops.
    if op == "call" {
        if let Ok(var_ids) = attrs.int_list("var_ids") {
            for &vid in var_ids {
                input_ids.push(vid as u64);
                for tape in &tapes {
                    if tape.watch_accessed_variables {
                        tape.watch_id(vid as u64);
                    }
                }
            }
        }
    }
    let record = TapeRecord {
        op: op.to_string(),
        attrs: attrs.clone(),
        inputs: inputs.to_vec(),
        outputs: outputs.to_vec(),
        input_ids,
        output_ids: outputs.iter().map(Tensor::id).collect(),
    };
    for tape in &tapes {
        tape.maybe_record(&record);
    }
}

// ---------------------------------------------------------------------------
// Tracing frames
// ---------------------------------------------------------------------------

/// Whether the current thread is inside a graph-building context.
pub fn is_tracing() -> bool {
    with_stack(|s| !s.traces.is_empty())
}

/// Id of the innermost tracing frame, if any.
pub fn current_frame_id() -> Option<u64> {
    with_stack(|s| s.traces.last().map(|t| t.frame_id))
}

/// Open a new tracing frame; subsequent [`execute`] calls record nodes into
/// it. Returns the frame id.
pub fn begin_tracing(name: &str) -> u64 {
    ensure_init();
    let frame_id = fresh_id();
    let frame = TraceFrame {
        frame_id,
        builder: GraphBuilder::new(name),
        captures: Vec::new(),
        capture_refs: HashMap::new(),
        created_variables: Vec::new(),
    };
    with_stack(|s| s.traces.push(frame));
    frame_id
}

/// Close the innermost tracing frame.
///
/// # Errors
/// No frame is open.
pub fn end_tracing() -> Result<FinishedTrace> {
    with_stack(|s| s.traces.pop())
        .map(|f| FinishedTrace {
            frame_id: f.frame_id,
            builder: f.builder,
            captures: f.captures,
            created_variables: f.created_variables,
        })
        .ok_or_else(|| RuntimeError::Internal("end_tracing without begin_tracing".to_string()))
}

/// Add an argument placeholder to the innermost frame.
///
/// # Errors
/// No frame is open, or inference fails.
pub fn tracing_placeholder(dtype: tfe_tensor::DType, shape: SymShape) -> Result<Tensor> {
    with_stack(|s| {
        let frame = s
            .traces
            .last_mut()
            .ok_or_else(|| RuntimeError::Internal("placeholder outside tracing".to_string()))?;
        let tref = frame.builder.placeholder(dtype, shape.clone())?;
        Ok(Tensor::Symbolic(SymbolicTensor {
            id: fresh_id(),
            frame_id: frame.frame_id,
            tref,
            dtype,
            shape,
        }))
    })
}

/// Intern a constant tensor as a `const` node in the innermost frame — how
/// `tf.constant` behaves inside a graph-building context (and how the
/// `add_noise` example of §4.1 bakes host values into traces).
///
/// # Errors
/// No frame is open.
pub fn trace_constant(value: TensorData) -> Result<Tensor> {
    with_stack(|s| {
        let frame = s
            .traces
            .last_mut()
            .ok_or_else(|| RuntimeError::Internal("trace_constant outside tracing".to_string()))?;
        let value = Arc::new(value);
        let tref = frame.builder.constant(value)?;
        let (dtype, shape) = frame.builder.sig(tref);
        Ok(Tensor::Symbolic(SymbolicTensor {
            id: fresh_id(),
            frame_id: frame.frame_id,
            tref,
            dtype,
            shape,
        }))
    })
}

/// Record a variable creation against the innermost frame (the §4.6
/// state-creation contract); no-op outside tracing.
pub fn notify_variable_created(id: u64) {
    with_stack(|s| {
        if let Some(frame) = s.traces.last_mut() {
            frame.created_variables.push(id);
        }
    });
}

/// Pause all tracing and run `f` imperatively — `tf.init_scope` (§4.7).
pub fn init_scope<R>(f: impl FnOnce() -> R) -> R {
    with_stack(|s| {
        let t = std::mem::take(&mut s.traces);
        s.init_scope_stash.push(t);
    });
    let r = f();
    with_stack(|s| {
        let restored = s.init_scope_stash.pop().expect("init_scope stash must exist");
        debug_assert!(s.traces.is_empty(), "traces created inside init_scope must be closed");
        s.traces = restored;
    });
    r
}

// ---------------------------------------------------------------------------
// Simulation controls
// ---------------------------------------------------------------------------

/// Install a simulation config (virtual clock + overhead model) for this
/// thread. Returns the previous config.
pub fn set_sim(config: Option<SimConfig>) -> Option<SimConfig> {
    with_stack(|s| std::mem::replace(&mut s.sim, config))
}

/// The active simulation config, if any.
pub fn sim() -> Option<SimConfig> {
    with_stack(|s| s.sim.clone())
}

/// Set the graph-executor mode for this thread (serial planned vs
/// inter-op parallel). Returns the previous mode.
pub fn set_exec_mode(mode: ExecMode) -> ExecMode {
    with_stack(|s| std::mem::replace(&mut s.exec_mode, mode))
}

/// Current executor mode.
pub fn exec_mode() -> ExecMode {
    with_stack(|s| s.exec_mode)
}

// ---------------------------------------------------------------------------
// Async eager mode (§4.1 asynchronous dispatch)
// ---------------------------------------------------------------------------

/// The `TFE_ASYNC` environment default, parsed once. Unrecognized values
/// warn once on stderr and fall back to sync (off).
fn env_async_default() -> bool {
    static D: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *D.get_or_init(|| match std::env::var("TFE_ASYNC") {
        Ok(v) => match v.trim() {
            "1" | "true" | "on" | "yes" => true,
            "" | "0" | "false" | "off" | "no" => false,
            other => {
                eprintln!(
                    "tf-eager: ignoring unparseable TFE_ASYNC={other:?} \
                     (expected 0/1/true/false); eager execution stays synchronous"
                );
                false
            }
        },
        Err(_) => false,
    })
}

/// Whether eager ops on this thread should dispatch asynchronously.
pub fn async_enabled() -> bool {
    with_stack(|s| s.async_overrides.last().copied()).unwrap_or_else(env_async_default)
}

/// RAII guard that forces synchronous dispatch on the current thread while
/// alive. Used wherever re-entering the async path could deadlock a
/// dispatch stream against itself: on the stream threads, and around host
/// closures invoked from inside graph execution.
pub(crate) struct ForceSyncScope {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ForceSyncScope {
    fn drop(&mut self) {
        with_stack(|s| {
            s.async_overrides.pop();
        });
    }
}

pub(crate) fn force_sync_scope() -> ForceSyncScope {
    with_stack(|s| s.async_overrides.push(false));
    ForceSyncScope { _not_send: std::marker::PhantomData }
}

/// Run `f` with asynchronous dispatch disabled on the calling thread,
/// overriding both the `TFE_ASYNC` environment default and any enclosing
/// [`async_scope`]. The exact inverse of [`async_scope`]: ops dispatched
/// inside run to completion on the caller before `execute` returns.
///
/// Unlike [`async_scope`] this is not a sync point — work already enqueued
/// on the streams keeps running; only *new* dispatches from `f` are forced
/// synchronous. Pending handles created before the scope still force a
/// wait when `f` consumes them as inputs.
pub fn sync_scope<R>(f: impl FnOnce() -> R) -> R {
    let _guard = force_sync_scope();
    f()
}

/// Permanently pin the calling thread to synchronous dispatch. Called once
/// at the top of every stream dispatch thread: an op executing *on* a
/// stream must never enqueue behind itself.
pub(crate) fn disable_async_on_thread() {
    with_stack(|s| s.async_overrides.push(false));
}

/// Block until every async dispatch stream has run everything enqueued so
/// far, and surface the first deferred error, if any (clearing it). With
/// multiple poisoned streams the remaining errors stay put and surface at
/// their own next sync point — a deferred error is never silently dropped.
///
/// # Errors
/// The first [`RuntimeError::Deferred`] captured by any stream.
pub fn sync() -> Result<()> {
    tfe_metrics::static_counter!(
        "tfe_async_syncs_total",
        "Explicit synchronization points (context::sync and async_scope exits)"
    )
    .inc();
    let streams = crate::stream::all();
    if streams.is_empty() {
        return Ok(());
    }
    let _span = tfe_profile::span("sync", || "context_sync".to_string());
    for s in &streams {
        s.drain();
    }
    for s in &streams {
        if let Some(e) = s.take_error() {
            return Err(e);
        }
    }
    Ok(())
}

/// Block until all streams are quiet *without* consuming deferred errors —
/// for raw-storage peeks (e.g. `Variable::peek`) that must not swallow an
/// error destined for the caller's next real sync point.
pub(crate) fn drain_streams() {
    for s in crate::stream::all() {
        s.drain();
    }
}

/// Whether any async dispatch stream still has in-flight work. A
/// non-blocking probe for tests, benches, and progress displays.
pub fn async_pending() -> bool {
    crate::stream::all().iter().any(|s| s.has_inflight())
}

/// Run `f` with asynchronous eager dispatch enabled on this thread, then
/// synchronize: the scope exit is a sync point, so every op enqueued inside
/// has completed — and any deferred error has surfaced — before this
/// returns. Panic-safe: the mode override is popped during unwinding.
///
/// # Errors
/// The first deferred error captured while the scope was active.
pub fn async_scope<R>(f: impl FnOnce() -> R) -> Result<R> {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            with_stack(|s| {
                s.async_overrides.pop();
            });
        }
    }
    with_stack(|s| s.async_overrides.push(true));
    let r = {
        let _restore = Restore;
        f()
    };
    sync()?;
    Ok(r)
}

// ---------------------------------------------------------------------------
// The dispatcher
// ---------------------------------------------------------------------------

/// Execute (or trace) one primitive operation. This is the single entry
/// point every API wrapper, gradient function, and layer goes through.
///
/// # Errors
/// Unknown ops, arity/attr/shape problems, kernel failures, device errors.
pub fn execute(op: &str, inputs: &[Tensor], attrs: Attrs) -> Result<Vec<Tensor>> {
    ensure_init();
    if is_tracing() {
        execute_traced(op, inputs, attrs)
    } else {
        execute_eager(op, inputs, attrs)
    }
}

fn execute_traced(op: &str, inputs: &[Tensor], attrs: Attrs) -> Result<Vec<Tensor>> {
    let outputs = with_stack(|s| -> Result<Vec<Tensor>> {
        let frame = s
            .traces
            .last_mut()
            .ok_or_else(|| RuntimeError::Internal("lost tracing frame".to_string()))?;
        let mut trefs = Vec::with_capacity(inputs.len());
        for t in inputs {
            let tref = match t {
                Tensor::Symbolic(sym) if sym.frame_id == frame.frame_id => sym.tref,
                other => {
                    // Lexical capture (§4.6): outer eager/symbolic tensors
                    // become silent placeholder inputs, deduplicated by id.
                    if let Some(&tref) = frame.capture_refs.get(&other.id()) {
                        tref
                    } else {
                        let tref = frame.builder.placeholder(other.dtype(), other.sym_shape())?;
                        frame.capture_refs.insert(other.id(), tref);
                        frame.captures.push(other.clone());
                        tref
                    }
                }
            };
            trefs.push(tref);
        }
        let refs = frame.builder.add_node(op, trefs, attrs.clone())?;
        Ok(refs
            .into_iter()
            .map(|tref| {
                let (dtype, shape) = frame.builder.sig(tref);
                Tensor::Symbolic(SymbolicTensor {
                    id: fresh_id(),
                    frame_id: frame.frame_id,
                    tref,
                    dtype,
                    shape,
                })
            })
            .collect())
    })?;
    record_on_tapes(op, &attrs, inputs, &outputs);
    Ok(outputs)
}

/// Pick the device for an eager op: innermost `device` scope, else the
/// device of the first concrete input, else the host CPU (§4.4).
fn resolve_device(inputs: &[Tensor]) -> Device {
    if let Some(d) = with_stack(|s| s.devices.last().cloned()) {
        return d;
    }
    for t in inputs {
        if let Tensor::Eager(e) = t {
            if let Some(d) = device_manager().find(&e.device) {
                return d;
            }
        }
    }
    device_manager().host_cpu()
}

fn execute_eager(op: &str, inputs: &[Tensor], attrs: Attrs) -> Result<Vec<Tensor>> {
    // Dispatcher-level ops that are not plain kernels.
    match op {
        "call" => return execute_call(inputs, &attrs),
        "cond" => return execute_cond(inputs, &attrs),
        "while_loop" => return execute_while(inputs, &attrs),
        "host_func" => return execute_host_func(inputs, &attrs),
        "copy" => return execute_copy(inputs, &attrs),
        _ => {}
    }

    tfe_metrics::static_counter!(
        "tfe_eager_ops_dispatched_total",
        "Primitive operations dispatched eagerly (structural ops excluded)"
    )
    .inc();

    // A top-level eager op is a request entry point: when no ambient
    // request exists (a serve batch, `Func` call or RPC would have
    // installed one), open a lightweight root so the op's spans — and
    // any async stream / pool work it fans out — share one trace id.
    let _root = tfe_profile::request_scope("eager", || format!("eager:{op}"));

    // Eager-dispatch span: covers validation + inference + the kernel (or,
    // in async mode, just the enqueue), so the timeline shows dispatch
    // overhead as the gap around the nested `kernel` span (§6's
    // eager-vs-staged overhead, measured for real).
    let mut prof_span = tfe_profile::span("eager", || op.to_string());

    let device = resolve_device(inputs);
    let sim = with_stack(|s| s.sim.clone());

    // Async dispatch (§4.1): validate and infer now, enqueue the kernel on
    // the device's stream, hand back pending handles. Conservative gate —
    // simulated clocks, cost-only devices, and symbolic inputs stay on the
    // synchronous path, as does any op whose output shapes aren't fully
    // inferable from input metadata (data-dependent shapes need values).
    if sim.is_none()
        && device.produces_real_values()
        && async_enabled()
        && inputs.iter().all(|t| !t.is_symbolic())
    {
        if let Some(outputs) = execute_async(op, inputs, &attrs, &device, &mut prof_span)? {
            return Ok(outputs);
        }
    }

    let input_data: Vec<Arc<TensorData>> =
        inputs.iter().map(Tensor::value).collect::<Result<_>>()?;

    // Validate + infer through the shared op definition.
    let def = tfe_ops::global().lookup(op)?;
    let dtypes: Vec<_> = input_data.iter().map(|d| d.dtype()).collect();
    let shapes: Vec<_> = input_data.iter().map(|d| SymShape::known(d.shape())).collect();
    let infer_ctx = InferCtx { dtypes: &dtypes, shapes: &shapes, attrs: &attrs };
    let out_sigs = def.infer(&infer_ctx)?;

    // Simulation accounting: the per-op interpreter cost (the CPython
    // stand-in), compile costs on compile-required devices, kernel time.
    if let Some(cfg) = &sim {
        cfg.stats.count_eager_op();
        cfg.stats.clock.advance(cfg.dispatch.interpreter_ns);
        if device.device_type().requires_compilation() {
            cfg.stats.clock.advance(cfg.dispatch.eager_compile_ns);
        }
        if let Some(model) = device.compute_model() {
            let w = def.work(&infer_ctx, &out_sigs);
            let ns = model.kernel_time_ns(KernelCost { flops: w.flops, bytes: w.bytes });
            sim_profile_add(op, ns);
            cfg.stats.device_clock.advance(ns);
            cfg.stats.count_kernel();
        }
    }

    let outputs: Vec<Tensor> = if device.produces_real_values() {
        let t0 = std::time::Instant::now();
        let out = crate::kernels::run_kernel(op, &attrs, &input_data)?;
        tfe_metrics::static_histogram!(
            "tfe_kernel_time_ns",
            "Wall-clock nanoseconds per compute-kernel invocation (eager and staged)",
            tfe_metrics::DEFAULT_NS_BUCKETS
        )
        .observe(t0.elapsed().as_nanos() as u64);
        out.into_iter()
            .map(|d| Tensor::Eager(EagerTensor::new(Arc::new(d), device.name().clone())))
            .collect()
    } else {
        // Cost-only device: shared shape-correct zero placeholders.
        out_sigs
            .iter()
            .map(|(dt, s)| {
                s.to_shape()
                    .map(|shape| {
                        Tensor::Eager(EagerTensor::new(
                            crate::kernels::zero_value(*dt, shape),
                            device.name().clone(),
                        ))
                    })
                    .ok_or_else(|| {
                        RuntimeError::Internal(format!(
                            "cost-only execution needs fully-defined shapes (op {op})"
                        ))
                    })
            })
            .collect::<Result<_>>()?
    };
    let out_bytes: u64 = outputs
        .iter()
        .filter_map(|t| t.value().ok())
        .map(|d| (d.num_elements() * d.dtype().size_bytes()) as u64)
        .sum();
    tfe_metrics::static_counter!(
        "tfe_eager_bytes_allocated_total",
        "Tensor bytes produced by eagerly dispatched operations"
    )
    .add(out_bytes);
    if let Some(sp) = prof_span.as_mut() {
        sp.set_bytes(out_bytes);
    }
    record_on_tapes(op, &attrs, inputs, &outputs);
    Ok(outputs)
}

/// Enqueue one primitive op on its device's dispatch stream and return
/// pending handles. `Ok(None)` means "not async-dispatchable, run it
/// synchronously" (output shapes depend on input *values*). Validation and
/// shape inference run here, on the calling thread, from handle metadata —
/// malformed programs still fail eagerly, exactly like sync mode.
///
/// # Errors
/// Validation/inference failures, or the fast-failed deferred error of a
/// poisoned stream.
fn execute_async(
    op: &str,
    inputs: &[Tensor],
    attrs: &Attrs,
    device: &Device,
    prof_span: &mut Option<tfe_profile::SpanGuard>,
) -> Result<Option<Vec<Tensor>>> {
    let def = tfe_ops::global().lookup(op)?;
    let dtypes: Vec<_> = inputs.iter().map(Tensor::dtype).collect();
    let shapes: Vec<_> = inputs.iter().map(Tensor::sym_shape).collect();
    let infer_ctx = InferCtx { dtypes: &dtypes, shapes: &shapes, attrs };
    let out_sigs = def.infer(&infer_ctx)?;
    let mut out_shapes = Vec::with_capacity(out_sigs.len());
    for (_, s) in &out_sigs {
        match s.to_shape() {
            Some(shape) => out_shapes.push(shape),
            None => return Ok(None),
        }
    }

    let stream = crate::stream::for_device(device.name());
    let pending: Vec<_> = out_sigs
        .iter()
        .zip(out_shapes)
        .map(|((dt, _), shape)| stream.pending_value(*dt, shape))
        .collect();
    let args: Vec<_> = inputs
        .iter()
        .map(|t| t.as_eager().expect("async gate rejects symbolic inputs").async_arg())
        .collect();
    let job_op = op.to_string();
    let job_attrs = attrs.clone();
    stream.enqueue(
        op,
        pending.clone(),
        Box::new(move || {
            let input_data: Vec<Arc<TensorData>> =
                args.iter().map(crate::stream::AsyncArg::resolve).collect::<Result<_>>()?;
            let t0 = std::time::Instant::now();
            let out = crate::kernels::run_kernel(&job_op, &job_attrs, &input_data)?;
            tfe_metrics::static_histogram!(
                "tfe_kernel_time_ns",
                "Wall-clock nanoseconds per compute-kernel invocation (eager and staged)",
                tfe_metrics::DEFAULT_NS_BUCKETS
            )
            .observe(t0.elapsed().as_nanos() as u64);
            Ok(out.into_iter().map(Arc::new).collect())
        }),
    )?;

    let outputs: Vec<Tensor> = pending
        .into_iter()
        .map(|pv| Tensor::Eager(EagerTensor::pending(pv, device.name().clone())))
        .collect();
    // Output sizes are fully determined by the inferred metadata, so the
    // allocation accounting doesn't have to wait for the kernel.
    let out_bytes: u64 = outputs
        .iter()
        .filter_map(Tensor::as_eager)
        .map(|t| (t.shape().num_elements() * t.dtype().size_bytes()) as u64)
        .sum();
    tfe_metrics::static_counter!(
        "tfe_eager_bytes_allocated_total",
        "Tensor bytes produced by eagerly dispatched operations"
    )
    .add(out_bytes);
    if let Some(sp) = prof_span.as_mut() {
        sp.set_bytes(out_bytes);
    }
    record_on_tapes(op, attrs, inputs, &outputs);
    Ok(Some(outputs))
}

fn eager_values(inputs: &[Tensor]) -> Result<Vec<Arc<TensorData>>> {
    inputs.iter().map(Tensor::value).collect()
}

fn execute_call(inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    let name = attrs.str("function").map_err(tfe_ops::OpError::from)?;
    let func = library().get(name).ok_or_else(|| RuntimeError::UnknownFunction(name.into()))?;
    let device = resolve_device(inputs);
    let sim = with_stack(|s| s.sim.clone());
    if let Some(cfg) = &sim {
        cfg.stats.count_function_call();
        cfg.stats.clock.advance(cfg.dispatch.function_call_ns);
        if device.device_type().requires_compilation() {
            // Round-trip launch of the compiled program (device stream).
            cfg.stats.device_clock.advance(cfg.dispatch.staged_call_latency_ns);
        }
    }
    let mode = exec_mode();

    // Staged calls join the caller's stream (§4.1): the graph run is
    // enqueued like any other op, so a train-step `Func` doesn't block the
    // input pipeline driving it. Output metadata comes from the traced
    // signature; calls whose output shapes weren't fully inferred at trace
    // time fall back to the blocking path.
    if sim.is_none()
        && device.produces_real_values()
        && async_enabled()
        && inputs.iter().all(|t| !t.is_symbolic())
    {
        let out_sigs = func.output_sigs();
        let known: Option<Vec<_>> = out_sigs.iter().map(|(_, s)| s.to_shape()).collect();
        if let Some(out_shapes) = known {
            let stream = crate::stream::for_device(device.name());
            let pending: Vec<_> = out_sigs
                .iter()
                .zip(out_shapes)
                .map(|((dt, _), shape)| stream.pending_value(*dt, shape))
                .collect();
            let args: Vec<_> = inputs
                .iter()
                .map(|t| t.as_eager().expect("async gate rejects symbolic inputs").async_arg())
                .collect();
            let job_func = func.clone();
            let job_device = device.clone();
            stream.enqueue(
                &format!("call:{name}"),
                pending.clone(),
                Box::new(move || {
                    let vals: Vec<Arc<TensorData>> =
                        args.iter().map(crate::stream::AsyncArg::resolve).collect::<Result<_>>()?;
                    executor::run_function_arc(&job_func, &vals, &job_device, mode)
                }),
            )?;
            let outputs: Vec<Tensor> = pending
                .into_iter()
                .map(|pv| Tensor::Eager(EagerTensor::pending(pv, device.name().clone())))
                .collect();
            record_on_tapes("call", attrs, inputs, &outputs);
            return Ok(outputs);
        }
    }

    let args = eager_values(inputs)?;
    let out = executor::run_function_arc(&func, &args, &device, mode)?;
    let outputs: Vec<Tensor> = out
        .into_iter()
        .map(|d| Tensor::Eager(EagerTensor::new(d, device.name().clone())))
        .collect();
    record_on_tapes("call", attrs, inputs, &outputs);
    Ok(outputs)
}

fn execute_cond(inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    if inputs.is_empty() {
        return Err(RuntimeError::Internal("cond needs a predicate".to_string()));
    }
    let pred = inputs[0].value()?.scalar_f64()? != 0.0;
    let branch = if pred {
        attrs.str("then_fn").map_err(tfe_ops::OpError::from)?
    } else {
        attrs.str("else_fn").map_err(tfe_ops::OpError::from)?
    };
    let func = library().get(branch).ok_or_else(|| RuntimeError::UnknownFunction(branch.into()))?;
    let device = resolve_device(inputs);
    let args = eager_values(&inputs[1..])?;
    let out = executor::run_function_arc(&func, &args, &device, exec_mode())?;
    let outputs: Vec<Tensor> = out
        .into_iter()
        .map(|d| Tensor::Eager(EagerTensor::new(d, device.name().clone())))
        .collect();
    record_on_tapes("cond", attrs, inputs, &outputs);
    Ok(outputs)
}

fn execute_while(inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    let cond_name = attrs.str("cond_fn").map_err(tfe_ops::OpError::from)?;
    let body_name = attrs.str("body_fn").map_err(tfe_ops::OpError::from)?;
    let cond =
        library().get(cond_name).ok_or_else(|| RuntimeError::UnknownFunction(cond_name.into()))?;
    let body =
        library().get(body_name).ok_or_else(|| RuntimeError::UnknownFunction(body_name.into()))?;
    let device = resolve_device(inputs);
    let mut state = eager_values(inputs)?;
    let max_iters = attrs.int_or("max_iterations", 1_000_000).map_err(tfe_ops::OpError::from)?;
    let mut iters = 0i64;
    loop {
        let p = executor::run_function_arc(&cond, &state, &device, exec_mode())?;
        let flag = p
            .first()
            .ok_or_else(|| RuntimeError::Internal("while cond returned nothing".to_string()))?
            .scalar_f64()?;
        if flag == 0.0 {
            break;
        }
        state = executor::run_function_arc(&body, &state, &device, exec_mode())?;
        iters += 1;
        if iters >= max_iters {
            return Err(RuntimeError::Internal(format!(
                "while_loop exceeded max_iterations={max_iters}"
            )));
        }
    }
    let outputs: Vec<Tensor> = state
        .into_iter()
        .map(|d| Tensor::Eager(EagerTensor::new(d, device.name().clone())))
        .collect();
    record_on_tapes("while_loop", attrs, inputs, &outputs);
    Ok(outputs)
}

fn execute_host_func(inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    let id = attrs.int("fn_id").map_err(tfe_ops::OpError::from)? as u64;
    let f = host_fn(id)?;
    // NOT recorded on tapes here: eagerly, the closure's internal ops are
    // recorded individually (§4.7: wrapping a function in py_func "has
    // essentially no effect" when executing imperatively). Recording the
    // host_func itself as well would double-count the gradient.
    f(inputs)
}

fn execute_copy(inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    let target = attrs.str("device").map_err(tfe_ops::OpError::from)?;
    let device = device_manager().resolve(target).map_err(RuntimeError::Device)?;
    let data = inputs
        .first()
        .ok_or_else(|| RuntimeError::Internal("copy needs an input".to_string()))?
        .value()?;
    let outputs = vec![Tensor::Eager(EagerTensor::new(data, device.name().clone()))];
    record_on_tapes("copy", attrs, inputs, &outputs);
    Ok(outputs)
}
