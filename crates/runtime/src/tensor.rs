//! The user-visible tensor handle.
//!
//! A [`Tensor`] is either *concrete* (an eagerly-computed value resident on
//! a device) or *symbolic* (a value flowing through a graph under
//! construction). User code and library code are written against `Tensor`
//! and work identically in both modes — the paper's "single, coherent API
//! surface ... agnostic to execution mode" (§1).

use crate::error::{Result, RuntimeError};
use crate::stream::{AsyncArg, PendingValue};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tfe_device::DeviceName;
use tfe_graph::TensorRef;
use tfe_ops::SymShape;
use tfe_tensor::{DType, Shape, TensorData};

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh tensor/variable id. Ids are process-unique and used by
/// gradient tapes to track data flow.
pub fn fresh_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Keeps the live-tensor gauges honest: one token per [`EagerTensor`]
/// *allocation*, shared by all clones of the handle, so the gauges go up
/// exactly once per `EagerTensor::new` and come back down exactly once,
/// when the last clone drops.
struct AllocToken {
    bytes: i64,
}

impl AllocToken {
    fn new(bytes: i64) -> Arc<AllocToken> {
        tfe_metrics::static_gauge!("tfe_live_tensors", "Live eager tensor handles").inc();
        let live = tfe_metrics::static_gauge!(
            "tfe_live_tensor_bytes",
            "Tensor bytes referenced by live eager handles (a shared buffer counts once per handle)"
        );
        let now = live.add_and_get(bytes);
        tfe_metrics::static_gauge!(
            "tfe_live_tensor_bytes_peak",
            "High-water mark of tfe_live_tensor_bytes"
        )
        .set_max(now);
        Arc::new(AllocToken { bytes })
    }
}

impl Drop for AllocToken {
    fn drop(&mut self) {
        tfe_metrics::static_gauge!("tfe_live_tensors", "Live eager tensor handles").dec();
        tfe_metrics::static_gauge!(
            "tfe_live_tensor_bytes",
            "Tensor bytes referenced by live eager handles (a shared buffer counts once per handle)"
        )
        .sub(self.bytes);
    }
}

/// The value behind a concrete handle: materialized, or still in flight on
/// an async dispatch stream (§4.1 — handles are returned before kernels
/// run; metadata is known either way).
#[derive(Clone)]
pub(crate) enum Payload {
    /// Materialized data.
    Ready(Arc<TensorData>),
    /// Produced by an op still enqueued on (or running on) a stream.
    Pending(Arc<PendingValue>),
}

/// A concrete tensor resident on a device.
#[derive(Clone)]
pub struct EagerTensor {
    /// Tape-tracking id.
    pub id: u64,
    payload: Payload,
    /// Where the tensor lives.
    pub device: DeviceName,
    /// Live-tensor accounting; shared by clones, settled on last drop.
    _alloc: Arc<AllocToken>,
}

impl EagerTensor {
    /// Wrap data on a device with a fresh id.
    pub fn new(data: Arc<TensorData>, device: DeviceName) -> EagerTensor {
        let bytes = (data.num_elements() * data.dtype().size_bytes()) as i64;
        EagerTensor {
            id: fresh_id(),
            payload: Payload::Ready(data),
            device,
            _alloc: AllocToken::new(bytes),
        }
    }

    /// Wrap a pending async-dispatch handle. Dtype and shape were inferred
    /// synchronously at enqueue, so the allocation gauges can account for
    /// the value before it exists.
    pub(crate) fn pending(pv: Arc<PendingValue>, device: DeviceName) -> EagerTensor {
        let bytes = (pv.shape.num_elements() * pv.dtype.size_bytes()) as i64;
        EagerTensor {
            id: fresh_id(),
            payload: Payload::Pending(pv),
            device,
            _alloc: AllocToken::new(bytes),
        }
    }

    /// Element dtype (known even while pending).
    pub fn dtype(&self) -> DType {
        match &self.payload {
            Payload::Ready(d) => d.dtype(),
            Payload::Pending(pv) => pv.dtype,
        }
    }

    /// Concrete shape (known even while pending — async dispatch requires
    /// fully-inferred output shapes).
    pub fn shape(&self) -> &Shape {
        match &self.payload {
            Payload::Ready(d) => d.shape(),
            Payload::Pending(pv) => &pv.shape,
        }
    }

    /// Whether the producing op has not completed yet. A resolved async
    /// output reports `false` even before anyone reads it.
    pub fn is_pending(&self) -> bool {
        match &self.payload {
            Payload::Ready(_) => false,
            Payload::Pending(pv) => pv.is_pending(),
        }
    }

    /// The materialized value. On a pending handle this is a sync point:
    /// it blocks until the producing op completes and surfaces the
    /// stream's deferred error if that op (or one before it) failed.
    ///
    /// # Errors
    /// The producing async op failed ([`RuntimeError::Deferred`]).
    pub fn value(&self) -> Result<Arc<TensorData>> {
        match &self.payload {
            Payload::Ready(d) => Ok(d.clone()),
            Payload::Pending(pv) => {
                if let Some(r) = pv.try_value() {
                    return r;
                }
                tfe_metrics::static_counter!(
                    "tfe_async_sync_points_total",
                    "Blocking waits on pending async tensors (value reads)"
                )
                .inc();
                let _span = tfe_profile::span("sync", || "tensor_value".to_string());
                pv.wait_value()
            }
        }
    }

    /// The value as a stream-job input: ready data passes through, a
    /// pending payload is resolved by the consuming job when it runs.
    pub(crate) fn async_arg(&self) -> AsyncArg {
        match &self.payload {
            Payload::Ready(d) => AsyncArg::Ready(d.clone()),
            Payload::Pending(pv) => AsyncArg::Pending(pv.clone()),
        }
    }
}

impl fmt::Debug for EagerTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.payload {
            Payload::Ready(d) => {
                write!(f, "EagerTensor(id={}, {:?}, device={})", self.id, d, self.device)
            }
            Payload::Pending(pv) => {
                write!(f, "EagerTensor(id={}, {:?}, device={})", self.id, pv, self.device)
            }
        }
    }
}

/// A symbolic tensor: an output of a node in a graph under construction.
#[derive(Clone)]
pub struct SymbolicTensor {
    /// Tape-tracking id.
    pub id: u64,
    /// Which tracing frame produced it (guards against mixing graphs).
    pub frame_id: u64,
    /// The node output it refers to.
    pub tref: TensorRef,
    /// Element dtype.
    pub dtype: DType,
    /// Inferred (possibly partial) shape.
    pub shape: SymShape,
}

impl fmt::Debug for SymbolicTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SymbolicTensor(id={}, frame={}, %{}:{}, {}{})",
            self.id, self.frame_id, self.tref.node.0, self.tref.output, self.dtype, self.shape
        )
    }
}

/// A tensor handle: concrete in eager mode, symbolic while tracing.
#[derive(Clone, Debug)]
pub enum Tensor {
    /// Concrete value.
    Eager(EagerTensor),
    /// Graph value under construction.
    Symbolic(SymbolicTensor),
}

impl Tensor {
    /// Build a concrete tensor on the host CPU.
    pub fn from_data(data: TensorData) -> Tensor {
        Tensor::Eager(EagerTensor::new(Arc::new(data), DeviceName::local_cpu()))
    }

    /// The tape-tracking id.
    pub fn id(&self) -> u64 {
        match self {
            Tensor::Eager(t) => t.id,
            Tensor::Symbolic(t) => t.id,
        }
    }

    /// Element dtype.
    pub fn dtype(&self) -> DType {
        match self {
            Tensor::Eager(t) => t.dtype(),
            Tensor::Symbolic(t) => t.dtype,
        }
    }

    /// Possibly-symbolic shape.
    pub fn sym_shape(&self) -> SymShape {
        match self {
            Tensor::Eager(t) => SymShape::known(t.shape()),
            Tensor::Symbolic(t) => t.shape.clone(),
        }
    }

    /// Whether this is a concrete handle whose producing async op has not
    /// completed yet. Symbolic tensors are never pending.
    pub fn is_pending(&self) -> bool {
        match self {
            Tensor::Eager(t) => t.is_pending(),
            Tensor::Symbolic(_) => false,
        }
    }

    /// Concrete shape.
    ///
    /// # Errors
    /// Symbolic tensor with unknown dimensions.
    pub fn shape(&self) -> Result<Shape> {
        self.sym_shape().to_shape().ok_or_else(|| {
            RuntimeError::SymbolicValue(format!(
                "shape {} has unknown dimensions",
                self.sym_shape()
            ))
        })
    }

    /// Rank (always known, even for symbolic tensors).
    pub fn rank(&self) -> usize {
        self.sym_shape().rank()
    }

    /// Whether this handle is symbolic (being traced).
    pub fn is_symbolic(&self) -> bool {
        matches!(self, Tensor::Symbolic(_))
    }

    /// The concrete value — the analog of `.numpy()` in the paper. On a
    /// pending async handle this is a sync point: it blocks until the
    /// producing op completes and surfaces any deferred stream error.
    ///
    /// # Errors
    /// Called on a symbolic tensor (inside a trace), or the producing
    /// async op failed ([`RuntimeError::Deferred`]).
    pub fn value(&self) -> Result<Arc<TensorData>> {
        match self {
            Tensor::Eager(t) => t.value(),
            Tensor::Symbolic(t) => Err(RuntimeError::SymbolicValue(format!(
                "tensor {t:?} is symbolic; use host_func or init_scope to escape the trace"
            ))),
        }
    }

    /// The single scalar value as `f64`.
    ///
    /// # Errors
    /// Symbolic handle or non-scalar tensor.
    pub fn scalar_f64(&self) -> Result<f64> {
        Ok(self.value()?.scalar_f64()?)
    }

    /// All elements as `f64`, row-major.
    ///
    /// # Errors
    /// Symbolic handle.
    pub fn to_f64_vec(&self) -> Result<Vec<f64>> {
        Ok(self.value()?.to_f64_vec())
    }

    /// The device a concrete tensor lives on.
    ///
    /// # Errors
    /// Symbolic handle.
    pub fn device(&self) -> Result<DeviceName> {
        match self {
            Tensor::Eager(t) => Ok(t.device.clone()),
            Tensor::Symbolic(_) => Err(RuntimeError::SymbolicValue(
                "symbolic tensors have no device until executed".to_string(),
            )),
        }
    }

    /// The eager payload, if concrete.
    pub fn as_eager(&self) -> Option<&EagerTensor> {
        match self {
            Tensor::Eager(t) => Some(t),
            Tensor::Symbolic(_) => None,
        }
    }

    /// The symbolic payload, if tracing.
    pub fn as_symbolic(&self) -> Option<&SymbolicTensor> {
        match self {
            Tensor::Symbolic(t) => Some(t),
            Tensor::Eager(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let a = Tensor::from_data(TensorData::scalar(1.0f32));
        let b = Tensor::from_data(TensorData::scalar(1.0f32));
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn eager_accessors() {
        let t =
            Tensor::from_data(TensorData::from_vec(vec![1.0f32, 2.0], Shape::from([2])).unwrap());
        assert_eq!(t.dtype(), DType::F32);
        assert_eq!(t.shape().unwrap(), Shape::from([2]));
        assert_eq!(t.rank(), 1);
        assert!(!t.is_symbolic());
        assert_eq!(t.to_f64_vec().unwrap(), vec![1.0, 2.0]);
        assert_eq!(t.device().unwrap(), DeviceName::local_cpu());
        assert!(t.as_eager().is_some());
        assert!(t.as_symbolic().is_none());
    }

    #[test]
    fn symbolic_value_errors() {
        let s = Tensor::Symbolic(SymbolicTensor {
            id: fresh_id(),
            frame_id: 1,
            tref: TensorRef::first(tfe_graph::NodeId(0)),
            dtype: DType::F32,
            shape: SymShape::new(vec![None]),
        });
        assert!(s.is_symbolic());
        assert!(s.value().is_err());
        assert!(s.device().is_err());
        assert!(s.shape().is_err()); // unknown dim
        assert_eq!(s.rank(), 1);
    }

    #[test]
    fn scalar_access() {
        let t = Tensor::from_data(TensorData::scalar(4.25f64));
        assert_eq!(t.scalar_f64().unwrap(), 4.25);
        let v = Tensor::from_data(TensorData::zeros(DType::F32, [3]));
        assert!(v.scalar_f64().is_err());
    }
}
