//! Tensor shapes, row-major strides, index arithmetic and broadcasting.

use crate::{Result, TensorError};
use std::fmt;

/// The shape of a tensor: a list of non-negative dimension sizes.
///
/// A rank-0 (scalar) tensor has an empty dimension list and one element.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Shape of a scalar (rank 0, one element).
    pub fn scalar() -> Shape {
        Shape(Vec::new())
    }

    /// Create a shape from dimension sizes.
    pub fn new(dims: impl Into<Vec<usize>>) -> Shape {
        Shape(dims.into())
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dimensions; 1 for scalars).
    pub fn num_elements(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Resolve a possibly-negative axis (Python style) against this rank.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidAxis`] when out of range.
    pub fn resolve_axis(&self, axis: i64) -> Result<usize> {
        let rank = self.rank() as i64;
        let a = if axis < 0 { axis + rank } else { axis };
        if a < 0 || a >= rank {
            return Err(TensorError::InvalidAxis { axis, rank: self.rank() });
        }
        Ok(a as usize)
    }

    /// Row-major (C order) strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.rank()];
        let mut acc = 1;
        for i in (0..self.rank()).rev() {
            strides[i] = acc;
            acc *= self.0[i];
        }
        strides
    }

    /// Whether this shape broadcasts with `other` under NumPy rules.
    pub fn broadcasts_with(&self, other: &Shape) -> bool {
        broadcast_shapes(self, other).is_ok()
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape({:?})", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        if self.0.len() == 1 {
            write!(f, ",")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Shape {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Shape {
        Shape(v.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Shape {
        Shape(v.to_vec())
    }
}

/// Compute the broadcast of two shapes under NumPy rules.
///
/// Missing leading dimensions are treated as 1; a dimension of size 1
/// stretches to match the other operand.
///
/// # Errors
/// Returns [`TensorError::BroadcastMismatch`] when a pair of dimensions is
/// incompatible.
pub fn broadcast_shapes(a: &Shape, b: &Shape) -> Result<Shape> {
    let rank = a.rank().max(b.rank());
    let mut dims = vec![0usize; rank];
    for (i, dim) in dims.iter_mut().enumerate() {
        let da = if i < rank - a.rank() { 1 } else { a.dims()[i - (rank - a.rank())] };
        let db = if i < rank - b.rank() { 1 } else { b.dims()[i - (rank - b.rank())] };
        *dim = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return Err(TensorError::BroadcastMismatch { lhs: a.clone(), rhs: b.clone() });
        };
    }
    Ok(Shape(dims))
}

/// Iterator-free index math: convert a linear index into `shape` to the
/// linear index of the corresponding (broadcast) element of a tensor whose
/// shape broadcasts to `shape`.
///
/// `src_dims` are the source dimensions right-aligned against `out_dims`.
pub fn broadcast_source_index(out_dims: &[usize], src_dims: &[usize], linear: usize) -> usize {
    let rank = out_dims.len();
    let offset = rank - src_dims.len();
    let mut rem = linear;
    let mut src_index = 0;
    let mut src_stride = 1;
    // Walk dimensions from the innermost outwards, accumulating the source
    // index with stride-0 semantics for broadcast dimensions.
    let mut src_strides = vec![0usize; src_dims.len()];
    {
        let mut acc = 1;
        for i in (0..src_dims.len()).rev() {
            src_strides[i] = acc;
            acc *= src_dims[i];
        }
    }
    for i in (0..rank).rev() {
        let coord = rem % out_dims[i];
        rem /= out_dims[i];
        if i >= offset {
            let sd = src_dims[i - offset];
            if sd != 1 {
                src_index += coord * src_strides[i - offset];
            }
        }
        src_stride *= out_dims[i];
    }
    let _ = src_stride;
    src_index
}

/// A cursor that walks every multi-dimensional index of a shape in row-major
/// order while maintaining the corresponding linear index into a broadcast
/// source. Much faster than calling [`broadcast_source_index`] per element.
#[derive(Debug)]
pub struct BroadcastWalker {
    out_dims: Vec<usize>,
    coords: Vec<usize>,
    src_strides: Vec<usize>, // aligned to out rank, 0 where broadcast
    src_index: usize,
    remaining: usize,
}

impl BroadcastWalker {
    /// Create a walker producing, for each element of `out` in row-major
    /// order, the linear index into a source of shape `src` (which must
    /// broadcast to `out`).
    pub fn new(out: &Shape, src: &Shape) -> BroadcastWalker {
        let rank = out.rank();
        let offset = rank - src.rank();
        let raw = src.strides();
        let mut src_strides = vec![0usize; rank];
        for i in 0..src.rank() {
            src_strides[i + offset] = if src.dims()[i] == 1 { 0 } else { raw[i] };
        }
        BroadcastWalker {
            out_dims: out.dims().to_vec(),
            coords: vec![0; rank],
            src_strides,
            src_index: 0,
            remaining: out.num_elements(),
        }
    }

    /// Like [`BroadcastWalker::new`] but starting from linear position
    /// `start` of `out` (row-major). Lets parallel kernels hand each tile
    /// its own walker over just that tile's index range.
    pub fn new_at(out: &Shape, src: &Shape, start: usize) -> BroadcastWalker {
        let mut w = BroadcastWalker::new(out, src);
        debug_assert!(start <= w.remaining);
        // Decompose `start` into coordinates and accumulate the source
        // index with the stride-0 broadcast semantics.
        let mut rem = start;
        for i in (0..w.out_dims.len()).rev() {
            let c = rem % w.out_dims[i];
            rem /= w.out_dims[i];
            w.coords[i] = c;
            w.src_index += c * w.src_strides[i];
        }
        w.remaining -= start;
        w
    }
}

impl Iterator for BroadcastWalker {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        let current = self.src_index;
        self.remaining -= 1;
        // Advance the odometer.
        for i in (0..self.out_dims.len()).rev() {
            self.coords[i] += 1;
            self.src_index += self.src_strides[i];
            if self.coords[i] < self.out_dims[i] {
                break;
            }
            self.src_index -= self.src_strides[i] * self.out_dims[i];
            self.coords[i] = 0;
        }
        Some(current)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for BroadcastWalker {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.num_elements(), 1);
        assert_eq!(s.to_string(), "()");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Shape::from([3]).to_string(), "(3,)");
        assert_eq!(Shape::from([2, 3]).to_string(), "(2, 3)");
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::from([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::scalar().strides(), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_basic() {
        let a = Shape::from([2, 1, 4]);
        let b = Shape::from([3, 1]);
        assert_eq!(broadcast_shapes(&a, &b).unwrap(), Shape::from([2, 3, 4]));
    }

    #[test]
    fn broadcast_scalar() {
        let a = Shape::scalar();
        let b = Shape::from([5, 2]);
        assert_eq!(broadcast_shapes(&a, &b).unwrap(), Shape::from([5, 2]));
        assert_eq!(broadcast_shapes(&b, &a).unwrap(), Shape::from([5, 2]));
    }

    #[test]
    fn broadcast_mismatch() {
        let a = Shape::from([2, 3]);
        let b = Shape::from([4, 3]);
        assert!(broadcast_shapes(&a, &b).is_err());
    }

    #[test]
    fn resolve_axis_negative() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.resolve_axis(-1).unwrap(), 2);
        assert_eq!(s.resolve_axis(0).unwrap(), 0);
        assert!(s.resolve_axis(3).is_err());
        assert!(s.resolve_axis(-4).is_err());
    }

    #[test]
    fn walker_identity() {
        let s = Shape::from([2, 3]);
        let idx: Vec<usize> = BroadcastWalker::new(&s, &s).collect();
        assert_eq!(idx, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn walker_broadcast_row() {
        // src shape (3,) broadcast over (2, 3): 0 1 2 0 1 2
        let out = Shape::from([2, 3]);
        let src = Shape::from([3]);
        let idx: Vec<usize> = BroadcastWalker::new(&out, &src).collect();
        assert_eq!(idx, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn walker_broadcast_col() {
        // src shape (2,1) broadcast over (2, 3): 0 0 0 1 1 1
        let out = Shape::from([2, 3]);
        let src = Shape::from([2, 1]);
        let idx: Vec<usize> = BroadcastWalker::new(&out, &src).collect();
        assert_eq!(idx, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn walker_scalar_src() {
        let out = Shape::from([2, 2]);
        let src = Shape::scalar();
        let idx: Vec<usize> = BroadcastWalker::new(&out, &src).collect();
        assert_eq!(idx, vec![0, 0, 0, 0]);
    }

    fn small_dims() -> impl Strategy<Value = Vec<usize>> {
        prop::collection::vec(1usize..4, 0..4)
    }

    proptest! {
        #[test]
        fn broadcast_commutes(a in small_dims(), b in small_dims()) {
            let sa = Shape::new(a);
            let sb = Shape::new(b);
            let ab = broadcast_shapes(&sa, &sb);
            let ba = broadcast_shapes(&sb, &sa);
            match (ab, ba) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "broadcast not symmetric"),
            }
        }

        #[test]
        fn broadcast_with_self_is_identity(a in small_dims()) {
            let s = Shape::new(a);
            prop_assert_eq!(broadcast_shapes(&s, &s).unwrap(), s);
        }

        #[test]
        fn walker_matches_per_element_math(a in small_dims(), b in small_dims()) {
            let sa = Shape::new(a);
            let sb = Shape::new(b);
            if let Ok(out) = broadcast_shapes(&sa, &sb) {
                let walked: Vec<usize> = BroadcastWalker::new(&out, &sa).collect();
                let direct: Vec<usize> = (0..out.num_elements())
                    .map(|i| broadcast_source_index(out.dims(), sa.dims(), i))
                    .collect();
                prop_assert_eq!(walked, direct);
            }
        }

        #[test]
        fn walker_indices_in_bounds(a in small_dims(), b in small_dims()) {
            let sa = Shape::new(a);
            let sb = Shape::new(b);
            if let Ok(out) = broadcast_shapes(&sa, &sb) {
                let n = sa.num_elements();
                for idx in BroadcastWalker::new(&out, &sa) {
                    prop_assert!(idx < n);
                }
            }
        }
    }
}
