//! A write-once asynchronous value slot.
//!
//! [`AsyncSlot`] is the payload cell behind *pending* eager tensor handles
//! (the deferred-materialization design of the paper's §4.1 dispatch and of
//! LazyTensor-style front-ends): a handle is created with metadata only,
//! and the producing stream later resolves the slot exactly once — either
//! with a value or with an error. Readers can poll or block.
//!
//! The slot is deliberately dumb: it knows nothing about streams, devices,
//! or ordering. Sequencing lives in the runtime's dispatch streams; this
//! cell only provides the resolve-once/wait rendezvous.

use std::sync::{Condvar, Mutex, MutexGuard};

/// The three states of an asynchronous value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotState<V, E> {
    /// The producer has not resolved the slot yet.
    Pending,
    /// Resolved with a value.
    Ready(V),
    /// Resolved with an error.
    Failed(E),
}

/// A write-once cell that starts [`SlotState::Pending`] and is resolved by
/// a producer exactly once. Cloneable results, blocking waiters.
#[derive(Debug)]
pub struct AsyncSlot<V, E> {
    state: Mutex<SlotState<V, E>>,
    cv: Condvar,
}

impl<V, E> Default for AsyncSlot<V, E> {
    fn default() -> Self {
        AsyncSlot::new()
    }
}

impl<V, E> AsyncSlot<V, E> {
    /// A fresh pending slot.
    pub fn new() -> AsyncSlot<V, E> {
        AsyncSlot { state: Mutex::new(SlotState::Pending), cv: Condvar::new() }
    }

    fn lock(&self) -> MutexGuard<'_, SlotState<V, E>> {
        // A panic while holding the lock can only happen between plain
        // moves; the state is still coherent, so poisoning is ignored.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Resolve with a value. The first resolution wins; later calls are
    /// ignored (the producer side only ever resolves once by construction,
    /// but a steal/skip race must not panic the stream thread).
    pub fn fulfill(&self, v: V) {
        let mut s = self.lock();
        if matches!(*s, SlotState::Pending) {
            *s = SlotState::Ready(v);
        }
        drop(s);
        self.cv.notify_all();
    }

    /// Resolve with an error. First resolution wins, as with `fulfill`.
    pub fn fail(&self, e: E) {
        let mut s = self.lock();
        if matches!(*s, SlotState::Pending) {
            *s = SlotState::Failed(e);
        }
        drop(s);
        self.cv.notify_all();
    }

    /// Whether the slot has been resolved (either way).
    pub fn is_resolved(&self) -> bool {
        !matches!(*self.lock(), SlotState::Pending)
    }
}

impl<V: Clone, E: Clone> AsyncSlot<V, E> {
    /// The result, if resolved; `None` while pending. Never blocks.
    pub fn try_get(&self) -> Option<Result<V, E>> {
        match &*self.lock() {
            SlotState::Pending => None,
            SlotState::Ready(v) => Some(Ok(v.clone())),
            SlotState::Failed(e) => Some(Err(e.clone())),
        }
    }

    /// Block until the slot is resolved and return the result.
    pub fn wait(&self) -> Result<V, E> {
        let mut s = self.lock();
        loop {
            match &*s {
                SlotState::Pending => {}
                SlotState::Ready(v) => return Ok(v.clone()),
                SlotState::Failed(e) => return Err(e.clone()),
            }
            s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_pending() {
        let s: AsyncSlot<i32, String> = AsyncSlot::new();
        assert!(!s.is_resolved());
        assert_eq!(s.try_get(), None);
    }

    #[test]
    fn fulfill_then_read() {
        let s: AsyncSlot<i32, String> = AsyncSlot::new();
        s.fulfill(7);
        assert!(s.is_resolved());
        assert_eq!(s.try_get(), Some(Ok(7)));
        assert_eq!(s.wait(), Ok(7));
    }

    #[test]
    fn fail_then_read() {
        let s: AsyncSlot<i32, String> = AsyncSlot::new();
        s.fail("boom".to_string());
        assert_eq!(s.wait(), Err("boom".to_string()));
    }

    #[test]
    fn first_resolution_wins() {
        let s: AsyncSlot<i32, String> = AsyncSlot::new();
        s.fail("first".to_string());
        s.fulfill(3);
        s.fail("second".to_string());
        assert_eq!(s.try_get(), Some(Err("first".to_string())));
    }

    #[test]
    fn wait_blocks_until_producer_resolves() {
        let slot: Arc<AsyncSlot<u64, String>> = Arc::new(AsyncSlot::new());
        let waiter = {
            let slot = slot.clone();
            std::thread::spawn(move || slot.wait())
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        slot.fulfill(42);
        assert_eq!(waiter.join().unwrap(), Ok(42));
    }

    #[test]
    fn many_waiters_all_wake() {
        let slot: Arc<AsyncSlot<u64, String>> = Arc::new(AsyncSlot::new());
        let waiters: Vec<_> = (0..8)
            .map(|_| {
                let slot = slot.clone();
                std::thread::spawn(move || slot.wait())
            })
            .collect();
        slot.fulfill(9);
        for w in waiters {
            assert_eq!(w.join().unwrap(), Ok(9));
        }
    }
}
