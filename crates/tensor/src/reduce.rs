//! Reductions over axes: sum, mean, max, min, prod, any/all, argmax/argmin.
//!
//! Float reductions over contiguous leading or trailing axes run in
//! parallel on the shared pool. Full and trailing-axis (row) reductions
//! fold through [`crate::lanes::lane_fold_f64`]'s fixed 8-lane accumulator
//! order, and full reductions additionally use
//! [`tfe_parallel::par_reduce`]'s fixed chunking — both depend only on the
//! element count, so results are **deterministic and thread-count
//! invariant**, but the accumulation order is reassociated relative to a
//! strict left fold: `sum`/`mean`/`prod` carry a documented rounding
//! tolerance versus the serial odometer, while `max`/`min` stay
//! value-exact (NaN-free inputs assumed). Leading-axis (column)
//! reductions keep the exact serial per-element fold order, bit-for-bit.
//! See DESIGN.md ("Exactness vs. tolerance policy").

use crate::data::Scalar;
use crate::{DType, Result, Shape, TensorData, TensorError};

/// The supported reduction kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Sum of elements.
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Maximum element.
    Max,
    /// Minimum element.
    Min,
    /// Product of elements.
    Prod,
}

impl ReduceOp {
    /// Stable lowercase name (`reduce_sum`, ...).
    pub fn name(self) -> &'static str {
        match self {
            ReduceOp::Sum => "reduce_sum",
            ReduceOp::Mean => "reduce_mean",
            ReduceOp::Max => "reduce_max",
            ReduceOp::Min => "reduce_min",
            ReduceOp::Prod => "reduce_prod",
        }
    }

    /// Inverse of [`ReduceOp::name`].
    pub fn from_name(name: &str) -> Option<ReduceOp> {
        ReduceOp::all().iter().copied().find(|op| op.name() == name)
    }

    /// All reduce ops.
    pub fn all() -> &'static [ReduceOp] {
        &[ReduceOp::Sum, ReduceOp::Mean, ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod]
    }
}

/// Normalize and validate a reduction axis list.
///
/// Empty `axes` means "reduce over all axes". Axes may be negative.
///
/// # Errors
/// Invalid or duplicate axes.
pub fn normalize_axes(shape: &Shape, axes: &[i64]) -> Result<Vec<usize>> {
    if axes.is_empty() {
        return Ok((0..shape.rank()).collect());
    }
    let mut out = Vec::with_capacity(axes.len());
    for &a in axes {
        let r = shape.resolve_axis(a)?;
        if out.contains(&r) {
            return Err(TensorError::InvalidArgument(format!("duplicate reduction axis {a}")));
        }
        out.push(r);
    }
    out.sort_unstable();
    Ok(out)
}

/// Shape after reducing `axes` (normalized) with or without kept dims.
pub fn reduced_shape(shape: &Shape, axes: &[usize], keep_dims: bool) -> Shape {
    let mut dims = Vec::new();
    for (i, &d) in shape.dims().iter().enumerate() {
        if axes.contains(&i) {
            if keep_dims {
                dims.push(1);
            }
        } else {
            dims.push(d);
        }
    }
    Shape::new(dims)
}

/// Reduce `a` over `axes` (empty = all axes).
///
/// Follows `tf.reduce_*` semantics: the reduced dimensions are removed
/// unless `keep_dims` is set. Max/Min over floats propagate the actual
/// values (NaN-free inputs assumed, as in TF's default kernels).
///
/// # Errors
/// Invalid axes; bool inputs for arithmetic reductions; empty reduction
/// extent for max/min.
pub fn reduce(a: &TensorData, axes: &[i64], keep_dims: bool, op: ReduceOp) -> Result<TensorData> {
    if a.dtype() == DType::Bool {
        return Err(TensorError::DTypeMismatch {
            expected: "a numeric dtype (use reduce_any/reduce_all for bool)".to_string(),
            got: DType::Bool,
        });
    }
    let axes = normalize_axes(a.shape(), axes)?;
    let out_shape = reduced_shape(a.shape(), &axes, keep_dims);
    let reduce_count: usize = axes.iter().map(|&i| a.shape().dim(i)).product();
    if reduce_count == 0 && matches!(op, ReduceOp::Max | ReduceOp::Min) {
        return Err(TensorError::InvalidArgument(
            "max/min reduction over an empty extent".to_string(),
        ));
    }

    // A zero-extent kept dimension means the output itself is empty; there
    // is nothing to accumulate, and sizing the accumulator `max(out_n, 1)`
    // would desync it from the output length.
    if out_shape.num_elements() == 0 {
        return Ok(TensorData::zeros(a.dtype(), out_shape));
    }

    // Accumulate in f64 for floats, i64 for ints.
    let out_n = out_shape.num_elements();
    let init = match op {
        ReduceOp::Sum | ReduceOp::Mean => 0.0,
        ReduceOp::Prod => 1.0,
        ReduceOp::Max => f64::NEG_INFINITY,
        ReduceOp::Min => f64::INFINITY,
    };
    let mut acc = vec![init; out_n];
    let mut iacc: Vec<i64> = match op {
        ReduceOp::Prod => vec![1; out_n],
        ReduceOp::Max => vec![i64::MIN; out_n],
        ReduceOp::Min => vec![i64::MAX; out_n],
        _ => vec![0; out_n],
    };
    let is_int = a.dtype().is_int();

    let in_dims = a.shape().dims();
    let rank = in_dims.len();
    // Strides of the *output* aligned to input dims: 0 on reduced axes.
    let full_out_shape = reduced_shape(a.shape(), &axes, true);
    let out_strides_kept = full_out_shape.strides();
    let mut aligned = vec![0usize; rank];
    for i in 0..rank {
        if !axes.contains(&i) {
            aligned[i] = out_strides_kept[i];
        }
    }

    let n = a.num_elements();
    let int_vals: Option<Vec<i64>> = if is_int { Some(a.to_i64_vec()) } else { None };
    if int_vals.is_none() && n > 0 && float_fast_reduce(a, &axes, op, &mut acc) {
        return Ok(finish_reduce(a.dtype(), acc, iacc, is_int, op, reduce_count, out_shape));
    }
    let mut coords = vec![0usize; rank];
    let mut out_idx = 0usize;
    for lin in 0..n {
        if let Some(iv) = &int_vals {
            let v = iv[lin];
            match op {
                ReduceOp::Sum | ReduceOp::Mean => iacc[out_idx] = iacc[out_idx].wrapping_add(v),
                ReduceOp::Prod => iacc[out_idx] = iacc[out_idx].wrapping_mul(v),
                ReduceOp::Max => iacc[out_idx] = iacc[out_idx].max(v),
                ReduceOp::Min => iacc[out_idx] = iacc[out_idx].min(v),
            }
        } else {
            let v = a.get_f64_linear(lin);
            match op {
                ReduceOp::Sum | ReduceOp::Mean => acc[out_idx] += v,
                ReduceOp::Prod => acc[out_idx] *= v,
                ReduceOp::Max => acc[out_idx] = acc[out_idx].max(v),
                ReduceOp::Min => acc[out_idx] = acc[out_idx].min(v),
            }
        }
        // Advance odometer and the aligned output index together.
        for i in (0..rank).rev() {
            coords[i] += 1;
            out_idx += aligned[i];
            if coords[i] < in_dims[i] {
                break;
            }
            out_idx -= aligned[i] * in_dims[i];
            coords[i] = 0;
        }
    }

    Ok(finish_reduce(a.dtype(), acc, iacc, is_int, op, reduce_count, out_shape))
}

/// Final Mean division / int truncation and materialization, shared by the
/// odometer path and the parallel float fast paths.
fn finish_reduce(
    dtype: DType,
    acc: Vec<f64>,
    iacc: Vec<i64>,
    is_int: bool,
    op: ReduceOp,
    reduce_count: usize,
    out_shape: Shape,
) -> TensorData {
    let vals: Vec<f64> = if is_int {
        let mut v: Vec<f64> = iacc.iter().map(|&x| x as f64).collect();
        if op == ReduceOp::Mean {
            for x in &mut v {
                *x /= reduce_count.max(1) as f64;
            }
        }
        // Mean on ints truncates, like tf.reduce_mean on integer tensors.
        if op == ReduceOp::Mean {
            for x in &mut v {
                *x = x.trunc();
            }
        }
        v
    } else {
        let mut v = acc;
        if op == ReduceOp::Mean {
            for x in &mut v {
                *x /= reduce_count.max(1) as f64;
            }
        }
        v
    };
    TensorData::from_f64_vec(dtype, vals, out_shape)
}

fn fold(op: ReduceOp, acc: f64, v: f64) -> f64 {
    match op {
        ReduceOp::Sum | ReduceOp::Mean => acc + v,
        ReduceOp::Prod => acc * v,
        ReduceOp::Max => acc.max(v),
        ReduceOp::Min => acc.min(v),
    }
}

/// Parallel float fast paths. `acc` arrives pre-filled with the op's
/// identity and receives the (pre-Mean-division) per-element accumulators.
/// Returns false when the axis pattern has no fast path (mixed interior
/// axes fall back to the serial odometer).
fn float_fast_reduce(a: &TensorData, axes: &[usize], op: ReduceOp, acc: &mut [f64]) -> bool {
    let rank = a.shape().rank();
    let la = axes.len();
    // `axes` is sorted; classify contiguous patterns.
    let all = la == rank;
    let suffix = axes.iter().enumerate().all(|(i, &ax)| ax == rank - la + i);
    let prefix = axes.iter().enumerate().all(|(i, &ax)| ax == i);
    if !(all || suffix || prefix) {
        return false;
    }
    match a.dtype() {
        DType::F32 => {
            float_fast_typed(a.as_slice::<f32>().unwrap(), a.shape(), la, op, acc, all, suffix)
        }
        DType::F64 => {
            float_fast_typed(a.as_slice::<f64>().unwrap(), a.shape(), la, op, acc, all, suffix)
        }
        _ => return false,
    }
    true
}

fn float_fast_typed<T: Scalar>(
    v: &[T],
    shape: &Shape,
    num_axes: usize,
    op: ReduceOp,
    acc: &mut [f64],
    all: bool,
    suffix: bool,
) {
    let rank = shape.rank();
    if all {
        // Full reduction: fixed-chunk tree, each chunk folded through the
        // 8-lane accumulator order, chunks combined in ascending order —
        // deterministic for every thread count; reassociated vs. a left
        // fold for sum/mean/prod (tolerance mode), value-exact for max/min.
        let init = acc[0];
        acc[0] = tfe_parallel::par_reduce(
            v.len(),
            crate::par::GRAIN_REDUCE,
            |r| crate::lanes::lane_fold_f64(&v[r], init, |a, b| fold(op, a, b)),
            |a, b| match op {
                ReduceOp::Sum | ReduceOp::Mean => a + b,
                ReduceOp::Prod => a * b,
                ReduceOp::Max => a.max(b),
                ReduceOp::Min => a.min(b),
            },
        )
        .unwrap_or(init);
    } else if suffix {
        // Trailing axes: each output element folds one contiguous row
        // through the fixed 8-lane order (`lane_fold_f64`) — deterministic
        // and thread-invariant, tolerance mode for sum/mean/prod.
        let row: usize = shape.dims()[rank - num_axes..].iter().product();
        if row == 0 {
            return;
        }
        let grain = (crate::par::GRAIN_ELEMWISE / row).max(1);
        crate::par::par_fill(acc, grain, |start, chunk| {
            for (off, o) in chunk.iter_mut().enumerate() {
                let r = &v[(start + off) * row..][..row];
                *o = crate::lanes::lane_fold_f64(r, *o, |a, b| fold(op, a, b));
            }
        });
    } else {
        // Leading axes: column reduction. Each output element accumulates
        // strided entries with the outer index ascending — the exact serial
        // odometer order per element (lane blocks only reschedule columns,
        // never reorder within one), so this branch stays bit-for-bit.
        let inner: usize = shape.dims()[num_axes..].iter().product();
        let outer = v.len() / inner;
        let grain = (crate::par::GRAIN_ELEMWISE / outer.max(1)).max(1);
        crate::par::par_fill(acc, grain, |start, chunk| {
            for k in 0..outer {
                let src = &v[k * inner + start..][..chunk.len()];
                crate::lanes::fold_columns_f64(chunk, src, |a, b| fold(op, a, b));
            }
        });
    }
}

/// `reduce_any` / `reduce_all` over bool tensors.
///
/// # Errors
/// Non-bool input or invalid axes.
pub fn reduce_bool(a: &TensorData, axes: &[i64], keep_dims: bool, all: bool) -> Result<TensorData> {
    if a.dtype() != DType::Bool {
        return Err(TensorError::DTypeMismatch { expected: "bool".to_string(), got: a.dtype() });
    }
    let as_i = a.cast(DType::I64);
    let red = reduce(&as_i, axes, keep_dims, if all { ReduceOp::Min } else { ReduceOp::Max })?;
    Ok(red.cast(DType::Bool))
}

/// Index of the maximum (or minimum) element along `axis`; result is `int64`.
///
/// Ties resolve to the lowest index, matching `tf.argmax`.
///
/// # Errors
/// Invalid axis, bool input, or empty extent.
pub fn argminmax(a: &TensorData, axis: i64, max: bool) -> Result<TensorData> {
    if a.dtype() == DType::Bool {
        return Err(TensorError::DTypeMismatch {
            expected: "a numeric dtype".to_string(),
            got: DType::Bool,
        });
    }
    let ax = a.shape().resolve_axis(axis)?;
    let extent = a.shape().dim(ax);
    if extent == 0 {
        return Err(TensorError::InvalidArgument("argmax over an empty axis".to_string()));
    }
    let out_shape = reduced_shape(a.shape(), &[ax], false);
    let outer: usize = a.shape().dims()[..ax].iter().product();
    let inner: usize = a.shape().dims()[ax + 1..].iter().product();
    let mut out = Vec::with_capacity(outer * inner);
    for o in 0..outer {
        for i in 0..inner {
            let mut best_idx = 0i64;
            let mut best = a.get_f64_linear(o * extent * inner + i);
            for k in 1..extent {
                let v = a.get_f64_linear((o * extent + k) * inner + i);
                let better = if max { v > best } else { v < best };
                if better {
                    best = v;
                    best_idx = k as i64;
                }
            }
            out.push(best_idx);
        }
    }
    TensorData::from_vec(out, out_shape)
}

/// Cumulative sum along `axis` (exclusive=false, reverse=false variant).
///
/// # Errors
/// Invalid axis or bool input.
pub fn cumsum(a: &TensorData, axis: i64) -> Result<TensorData> {
    if a.dtype() == DType::Bool {
        return Err(TensorError::DTypeMismatch {
            expected: "a numeric dtype".to_string(),
            got: DType::Bool,
        });
    }
    let ax = a.shape().resolve_axis(axis)?;
    let extent = a.shape().dim(ax);
    let outer: usize = a.shape().dims()[..ax].iter().product();
    let inner: usize = a.shape().dims()[ax + 1..].iter().product();
    let mut out = TensorData::zeros(a.dtype(), a.shape().clone());
    for o in 0..outer {
        for i in 0..inner {
            let mut acc = 0.0;
            for k in 0..extent {
                let lin = (o * extent + k) * inner + i;
                acc += a.get_f64_linear(lin);
                out.set_f64_linear(lin, acc);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t23() -> TensorData {
        TensorData::from_vec(vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0], Shape::from([2, 3])).unwrap()
    }

    #[test]
    fn sum_all() {
        let r = reduce(&t23(), &[], false, ReduceOp::Sum).unwrap();
        assert_eq!(r.shape().rank(), 0);
        assert_eq!(r.scalar_f64().unwrap(), 21.0);
    }

    #[test]
    fn sum_axis0() {
        let r = reduce(&t23(), &[0], false, ReduceOp::Sum).unwrap();
        assert_eq!(r.shape().dims(), &[3]);
        assert_eq!(r.to_f64_vec(), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn sum_axis1_keepdims() {
        let r = reduce(&t23(), &[1], true, ReduceOp::Sum).unwrap();
        assert_eq!(r.shape().dims(), &[2, 1]);
        assert_eq!(r.to_f64_vec(), vec![6.0, 15.0]);
    }

    #[test]
    fn sum_negative_axis() {
        let r = reduce(&t23(), &[-1], false, ReduceOp::Sum).unwrap();
        assert_eq!(r.to_f64_vec(), vec![6.0, 15.0]);
    }

    #[test]
    fn mean_max_min_prod() {
        let a = t23();
        assert_eq!(reduce(&a, &[], false, ReduceOp::Mean).unwrap().scalar_f64().unwrap(), 3.5);
        assert_eq!(reduce(&a, &[], false, ReduceOp::Max).unwrap().scalar_f64().unwrap(), 6.0);
        assert_eq!(reduce(&a, &[], false, ReduceOp::Min).unwrap().scalar_f64().unwrap(), 1.0);
        assert_eq!(reduce(&a, &[], false, ReduceOp::Prod).unwrap().scalar_f64().unwrap(), 720.0);
    }

    #[test]
    fn multi_axis() {
        let a = TensorData::from_f64_vec(
            DType::F64,
            (0..24).map(|i| i as f64).collect(),
            Shape::from([2, 3, 4]),
        );
        let r = reduce(&a, &[0, 2], false, ReduceOp::Sum).unwrap();
        assert_eq!(r.shape().dims(), &[3]);
        // axis-1 groups: rows {0..4,12..16}, {4..8,16..20}, {8..12,20..24}
        assert_eq!(r.to_f64_vec(), vec![60.0, 92.0, 124.0]);
    }

    #[test]
    fn duplicate_axis_rejected() {
        assert!(reduce(&t23(), &[0, 0], false, ReduceOp::Sum).is_err());
        assert!(reduce(&t23(), &[0, -2], false, ReduceOp::Sum).is_err());
    }

    #[test]
    fn int_reductions_exact() {
        let a = TensorData::from_vec(vec![3i64, 5, 7], Shape::from([3])).unwrap();
        assert_eq!(reduce(&a, &[], false, ReduceOp::Sum).unwrap().to_i64_vec(), vec![15]);
        assert_eq!(reduce(&a, &[], false, ReduceOp::Mean).unwrap().to_i64_vec(), vec![5]);
        assert_eq!(reduce(&a, &[], false, ReduceOp::Max).unwrap().to_i64_vec(), vec![7]);
    }

    #[test]
    fn bool_reduce_any_all() {
        let a = TensorData::from_vec(vec![true, false, true, true], Shape::from([2, 2])).unwrap();
        let any = reduce_bool(&a, &[1], false, false).unwrap();
        assert_eq!(any.to_f64_vec(), vec![1.0, 1.0]);
        let all = reduce_bool(&a, &[1], false, true).unwrap();
        assert_eq!(all.to_f64_vec(), vec![0.0, 1.0]);
    }

    #[test]
    fn argmax_basic_and_ties() {
        let a = TensorData::from_vec(vec![1.0f32, 3.0, 3.0, 0.0, -1.0, 2.0], Shape::from([2, 3]))
            .unwrap();
        let r = argminmax(&a, 1, true).unwrap();
        assert_eq!(r.dtype(), DType::I64);
        assert_eq!(r.to_i64_vec(), vec![1, 2]); // tie at row 0 -> first index
        let r0 = argminmax(&a, 0, true).unwrap();
        assert_eq!(r0.to_i64_vec(), vec![0, 0, 0]);
        let rmin = argminmax(&a, 1, false).unwrap();
        assert_eq!(rmin.to_i64_vec(), vec![0, 1]);
    }

    #[test]
    fn cumsum_axis() {
        let a = t23();
        let r = cumsum(&a, 1).unwrap();
        assert_eq!(r.to_f64_vec(), vec![1.0, 3.0, 6.0, 4.0, 9.0, 15.0]);
        let r0 = cumsum(&a, 0).unwrap();
        assert_eq!(r0.to_f64_vec(), vec![1.0, 2.0, 3.0, 5.0, 7.0, 9.0]);
    }

    proptest! {
        #[test]
        fn sum_matches_iterator(xs in prop::collection::vec(-100.0f64..100.0, 1..32)) {
            let n = xs.len();
            let a = TensorData::from_vec(xs.clone(), Shape::from([n])).unwrap();
            let r = reduce(&a, &[], false, ReduceOp::Sum).unwrap().scalar_f64().unwrap();
            let expect: f64 = xs.iter().sum();
            prop_assert!((r - expect).abs() < 1e-9);
        }

        #[test]
        fn axis_sums_compose(xs in prop::collection::vec(-10.0f64..10.0, 12..=12)) {
            // Reducing both axes one at a time equals reducing all at once.
            let a = TensorData::from_vec(xs, Shape::from([3, 4])).unwrap();
            let two_step = reduce(&reduce(&a, &[0], false, ReduceOp::Sum).unwrap(), &[0], false, ReduceOp::Sum).unwrap();
            let one_step = reduce(&a, &[], false, ReduceOp::Sum).unwrap();
            prop_assert!((two_step.scalar_f64().unwrap() - one_step.scalar_f64().unwrap()).abs() < 1e-9);
        }

        #[test]
        fn max_ge_mean(xs in prop::collection::vec(-100.0f64..100.0, 1..32)) {
            let n = xs.len();
            let a = TensorData::from_vec(xs, Shape::from([n])).unwrap();
            let mx = reduce(&a, &[], false, ReduceOp::Max).unwrap().scalar_f64().unwrap();
            let mn = reduce(&a, &[], false, ReduceOp::Mean).unwrap().scalar_f64().unwrap();
            prop_assert!(mx >= mn - 1e-9);
        }
    }
}
