//! 2-D convolution and its gradients, NHWC layout with HWIO filters.
//!
//! The forward pass lowers to im2col + the packed [`crate::gemm`]
//! micro-kernel (accumulating in f64, like the direct loop it replaced)
//! and parallelizes over batch and output rows; the input gradient is
//! parallel over batches (disjoint outputs, bitwise equal to serial); the
//! filter gradient tree-reduces per-batch partials with fixed chunking
//! (deterministic for every thread count, but the partial-sum order
//! differs from the serial fold — parity tests use a 1e-6 tolerance).

use crate::elementwise::FloatScalar;
use crate::gemm::gemm_into;
use crate::par::{par_fill_rows, SendPtr};
use crate::{Result, Shape, TensorData, TensorError};

/// Multiply-adds per batch above which conv kernels parallelize across
/// rather than within batches (and at all).
const CONV_PAR_MADDS: usize = 1 << 18;

/// Spatial padding scheme, as in TensorFlow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Padding {
    /// Output size `ceil(in / stride)`; zero-pads as evenly as possible.
    Same,
    /// No padding; output size `ceil((in - k + 1) / stride)`.
    Valid,
}

impl Padding {
    /// Stable name ("SAME"/"VALID"), matching TensorFlow attr spelling.
    pub fn name(self) -> &'static str {
        match self {
            Padding::Same => "SAME",
            Padding::Valid => "VALID",
        }
    }

    /// Inverse of [`Padding::name`] (case-insensitive).
    pub fn from_name(name: &str) -> Option<Padding> {
        match name.to_ascii_uppercase().as_str() {
            "SAME" => Some(Padding::Same),
            "VALID" => Some(Padding::Valid),
            _ => None,
        }
    }

    /// (output extent, pad_before) for one spatial dimension.
    pub fn resolve(self, input: usize, k: usize, stride: usize) -> (usize, usize) {
        match self {
            Padding::Same => {
                let out = input.div_ceil(stride);
                let needed = ((out - 1) * stride + k).saturating_sub(input);
                (out, needed / 2)
            }
            Padding::Valid => {
                let out = (input + 1).saturating_sub(k).div_ceil(stride);
                (out, 0)
            }
        }
    }
}

/// Validated convolution geometry shared by forward and backward kernels.
#[derive(Debug, Clone, Copy)]
pub struct Conv2dGeometry {
    /// batch
    pub n: usize,
    /// input height/width
    pub h: usize,
    /// input width
    pub w: usize,
    /// input channels
    pub c_in: usize,
    /// filter height
    pub kh: usize,
    /// filter width
    pub kw: usize,
    /// output channels
    pub c_out: usize,
    /// strides
    pub sh: usize,
    /// stride width
    pub sw: usize,
    /// output height
    pub oh: usize,
    /// output width
    pub ow: usize,
    /// padding before (top)
    pub ph: usize,
    /// padding before (left)
    pub pw: usize,
}

/// Compute and validate conv geometry from input/filter shapes.
///
/// # Errors
/// Wrong ranks, channel mismatch, or zero strides.
pub fn conv2d_geometry(
    input: &Shape,
    filter: &Shape,
    strides: (usize, usize),
    padding: Padding,
) -> Result<Conv2dGeometry> {
    if input.rank() != 4 {
        return Err(TensorError::ShapeMismatch {
            expected: "NHWC rank-4 input".to_string(),
            got: input.clone(),
        });
    }
    if filter.rank() != 4 {
        return Err(TensorError::ShapeMismatch {
            expected: "HWIO rank-4 filter".to_string(),
            got: filter.clone(),
        });
    }
    let (sh, sw) = strides;
    if sh == 0 || sw == 0 {
        return Err(TensorError::InvalidArgument("conv2d strides must be positive".to_string()));
    }
    let (n, h, w, c_in) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let (kh, kw, fc_in, c_out) = (filter.dim(0), filter.dim(1), filter.dim(2), filter.dim(3));
    if fc_in != c_in {
        return Err(TensorError::ShapeMismatch {
            expected: format!("filter input channels == {c_in}"),
            got: filter.clone(),
        });
    }
    let (oh, ph) = padding.resolve(h, kh, sh);
    let (ow, pw) = padding.resolve(w, kw, sw);
    Ok(Conv2dGeometry { n, h, w, c_in, kh, kw, c_out, sh, sw, oh, ow, ph, pw })
}

/// Direct-loop reference convolution, kept for parity testing of the
/// im2col + gemm fast path (`tests/kernel_parity.rs`).
pub fn conv2d_reference<T: FloatScalar>(x: &[T], f: &[T], g: &Conv2dGeometry) -> Vec<f64> {
    let mut out = vec![0.0f64; g.n * g.oh * g.ow * g.c_out];
    for b in 0..g.n {
        for oy in 0..g.oh {
            for ox in 0..g.ow {
                for ky in 0..g.kh {
                    let iy = (oy * g.sh + ky) as isize - g.ph as isize;
                    if iy < 0 || iy as usize >= g.h {
                        continue;
                    }
                    for kx in 0..g.kw {
                        let ix = (ox * g.sw + kx) as isize - g.pw as isize;
                        if ix < 0 || ix as usize >= g.w {
                            continue;
                        }
                        let xin = ((b * g.h + iy as usize) * g.w + ix as usize) * g.c_in;
                        let fin = (ky * g.kw + kx) * g.c_in;
                        let oout = ((b * g.oh + oy) * g.ow + ox) * g.c_out;
                        for ci in 0..g.c_in {
                            let xv = x[xin + ci].to_f64();
                            let frow = (fin + ci) * g.c_out;
                            for co in 0..g.c_out {
                                out[oout + co] += xv * f[frow + co].to_f64();
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Copy the im2col patch rows `rows` (flat `oy * ow + ox` indices) of
/// batch `b` into `dst` (one `kh*kw*c_in`-wide row per output position,
/// zeros where the window hangs over the padding).
fn pack_patch_rows(
    x: &[f64],
    g: &Conv2dGeometry,
    b: usize,
    rows: std::ops::Range<usize>,
    dst: &mut [f64],
) {
    let k = g.kh * g.kw * g.c_in;
    for (ri, prow) in rows.zip(dst.chunks_exact_mut(k)) {
        let (oy, ox) = (ri / g.ow, ri % g.ow);
        prow.fill(0.0);
        for ky in 0..g.kh {
            let iy = (oy * g.sh + ky) as isize - g.ph as isize;
            if iy < 0 || iy as usize >= g.h {
                continue;
            }
            for kx in 0..g.kw {
                let ix = (ox * g.sw + kx) as isize - g.pw as isize;
                if ix < 0 || ix as usize >= g.w {
                    continue;
                }
                let src = &x[((b * g.h + iy as usize) * g.w + ix as usize) * g.c_in..][..g.c_in];
                prow[(ky * g.kw + kx) * g.c_in..][..g.c_in].copy_from_slice(src);
            }
        }
    }
}

/// im2col + gemm forward pass: per batch, gather the `oh*ow x kh*kw*c_in`
/// patch matrix and multiply by the `kh*kw*c_in x c_out` filter matrix
/// (HWIO is already that layout). Accumulation order per output element is
/// (ky, kx, ci) ascending — the same as the direct loop, plus exact-zero
/// padding terms.
fn conv2d_im2col(x: &[f64], f: &[f64], g: &Conv2dGeometry) -> Vec<f64> {
    let k = g.kh * g.kw * g.c_in;
    let m = g.oh * g.ow;
    let mut out = vec![0.0f64; g.n * m * g.c_out];
    if k == 0 || m == 0 || g.c_out == 0 || g.n == 0 {
        return out;
    }
    let per_batch = m * k * g.c_out;
    if per_batch >= CONV_PAR_MADDS {
        // Few large batches: parallelize the patch gather over output rows
        // and let the gemm split its row blocks across the pool.
        let mut patches = vec![0.0f64; m * k];
        for b in 0..g.n {
            par_fill_rows(&mut patches, g.ow * k, crate::par::GRAIN_ROWS, |rows, chunk| {
                pack_patch_rows(x, g, b, rows.start * g.ow..rows.end * g.ow, chunk);
            });
            gemm_into(
                m,
                k,
                g.c_out,
                &patches,
                false,
                f,
                false,
                &mut out[b * m * g.c_out..][..m * g.c_out],
                true,
            );
        }
    } else {
        // Many small batches: one task per group of batches, serial inside.
        let grain = (CONV_PAR_MADDS / per_batch.max(1)).max(1);
        let ptr = SendPtr::new(out.as_mut_ptr());
        tfe_parallel::par_for(g.n, grain, |bs| {
            let mut patches = vec![0.0f64; m * k];
            for b in bs {
                pack_patch_rows(x, g, b, 0..m, &mut patches);
                // SAFETY: per-batch output slices are disjoint; par_for
                // joins before `out` is read.
                let ob = unsafe { ptr.slice_mut(b * m * g.c_out, m * g.c_out) };
                gemm_into(m, k, g.c_out, &patches, false, f, false, ob, false);
            }
        });
    }
    out
}

/// Forward 2-D convolution (NHWC input, HWIO filter).
///
/// # Errors
/// Geometry validation failures or non-float/matching dtypes.
pub fn conv2d(
    input: &TensorData,
    filter: &TensorData,
    strides: (usize, usize),
    padding: Padding,
) -> Result<TensorData> {
    let _sp = tfe_profile::span("intra", || "conv2d_im2col".to_string());
    check_float_pair(input, filter)?;
    let g = conv2d_geometry(input.shape(), filter.shape(), strides, padding)?;
    let out = conv2d_im2col(&input.to_f64_vec(), &filter.to_f64_vec(), &g);
    Ok(TensorData::from_f64_vec(input.dtype(), out, Shape::from([g.n, g.oh, g.ow, g.c_out])))
}

/// Gradient of [`conv2d`] with respect to its input.
///
/// # Errors
/// Geometry or dtype failures; `grad_out` shape must match the forward
/// output shape.
pub fn conv2d_backprop_input(
    input_shape: &Shape,
    filter: &TensorData,
    grad_out: &TensorData,
    strides: (usize, usize),
    padding: Padding,
) -> Result<TensorData> {
    check_float_pair(filter, grad_out)?;
    let g = conv2d_geometry(input_shape, filter.shape(), strides, padding)?;
    expect_shape(grad_out, &[g.n, g.oh, g.ow, g.c_out])?;
    let f = filter.to_f64_vec();
    let go = grad_out.to_f64_vec();
    let mut gx = vec![0.0f64; g.n * g.h * g.w * g.c_in];
    let batch_elems = g.h * g.w * g.c_in;
    if !gx.is_empty() {
        // Batches write disjoint regions of gx, so they run in parallel
        // with the per-batch loop untouched (bitwise equal to serial).
        let per_batch = g.oh * g.ow * g.kh * g.kw * g.c_in * g.c_out;
        let grain = if per_batch >= CONV_PAR_MADDS { 1 } else { g.n };
        par_fill_rows(&mut gx, batch_elems, grain, |bs, chunk| {
            for b in bs.clone() {
                let gxb = &mut chunk[(b - bs.start) * batch_elems..][..batch_elems];
                input_grad_batch(&f, &go, &g, b, gxb);
            }
        });
    }
    Ok(TensorData::from_f64_vec(filter.dtype(), gx, input_shape.clone()))
}

/// Accumulate one batch's input gradient into `gxb` (that batch's
/// `h*w*c_in` slice, already zeroed).
fn input_grad_batch(f: &[f64], go: &[f64], g: &Conv2dGeometry, b: usize, gxb: &mut [f64]) {
    for oy in 0..g.oh {
        for ox in 0..g.ow {
            for ky in 0..g.kh {
                let iy = (oy * g.sh + ky) as isize - g.ph as isize;
                if iy < 0 || iy as usize >= g.h {
                    continue;
                }
                for kx in 0..g.kw {
                    let ix = (ox * g.sw + kx) as isize - g.pw as isize;
                    if ix < 0 || ix as usize >= g.w {
                        continue;
                    }
                    let xin = (iy as usize * g.w + ix as usize) * g.c_in;
                    let fin = (ky * g.kw + kx) * g.c_in;
                    let oout = ((b * g.oh + oy) * g.ow + ox) * g.c_out;
                    for ci in 0..g.c_in {
                        let frow = (fin + ci) * g.c_out;
                        let mut acc = 0.0;
                        for co in 0..g.c_out {
                            acc += go[oout + co] * f[frow + co];
                        }
                        gxb[xin + ci] += acc;
                    }
                }
            }
        }
    }
}

/// Gradient of [`conv2d`] with respect to its filter.
///
/// # Errors
/// Geometry or dtype failures.
pub fn conv2d_backprop_filter(
    input: &TensorData,
    filter_shape: &Shape,
    grad_out: &TensorData,
    strides: (usize, usize),
    padding: Padding,
) -> Result<TensorData> {
    check_float_pair(input, grad_out)?;
    let g = conv2d_geometry(input.shape(), filter_shape, strides, padding)?;
    expect_shape(grad_out, &[g.n, g.oh, g.ow, g.c_out])?;
    let x = input.to_f64_vec();
    let go = grad_out.to_f64_vec();
    let flen = g.kh * g.kw * g.c_in * g.c_out;
    // All batches accumulate into the same filter gradient, so this is a
    // tree reduction over per-batch-group partials. Chunk boundaries are
    // fixed by (n, grain) and partials combine in ascending batch order —
    // deterministic for every thread count (though the grouping changes
    // the float sum versus the serial fold; parity tests use tolerance).
    let per_batch = g.oh * g.ow * g.kh * g.kw * g.c_in * g.c_out;
    let grain = if per_batch >= CONV_PAR_MADDS { 1 } else { g.n.max(1) };
    let gf = tfe_parallel::par_reduce(
        g.n,
        grain,
        |bs| {
            let mut part = vec![0.0f64; flen];
            for b in bs {
                filter_grad_batch(&x, &go, &g, b, &mut part);
            }
            part
        },
        |mut a, b| {
            for (av, bv) in a.iter_mut().zip(&b) {
                *av += bv;
            }
            a
        },
    )
    .unwrap_or_else(|| vec![0.0f64; flen]);
    Ok(TensorData::from_f64_vec(input.dtype(), gf, filter_shape.clone()))
}

/// Accumulate one batch's filter-gradient contribution into `gf`.
fn filter_grad_batch(x: &[f64], go: &[f64], g: &Conv2dGeometry, b: usize, gf: &mut [f64]) {
    for oy in 0..g.oh {
        for ox in 0..g.ow {
            for ky in 0..g.kh {
                let iy = (oy * g.sh + ky) as isize - g.ph as isize;
                if iy < 0 || iy as usize >= g.h {
                    continue;
                }
                for kx in 0..g.kw {
                    let ix = (ox * g.sw + kx) as isize - g.pw as isize;
                    if ix < 0 || ix as usize >= g.w {
                        continue;
                    }
                    let xin = ((b * g.h + iy as usize) * g.w + ix as usize) * g.c_in;
                    let fin = (ky * g.kw + kx) * g.c_in;
                    let oout = ((b * g.oh + oy) * g.ow + ox) * g.c_out;
                    for ci in 0..g.c_in {
                        let xv = x[xin + ci];
                        let frow = (fin + ci) * g.c_out;
                        for co in 0..g.c_out {
                            gf[frow + co] += xv * go[oout + co];
                        }
                    }
                }
            }
        }
    }
}

fn check_float_pair(a: &TensorData, b: &TensorData) -> Result<()> {
    if a.dtype() != b.dtype() {
        return Err(TensorError::DTypeMismatch {
            expected: a.dtype().name().to_string(),
            got: b.dtype(),
        });
    }
    if !a.dtype().is_float() {
        return Err(TensorError::DTypeMismatch {
            expected: "a float dtype".to_string(),
            got: a.dtype(),
        });
    }
    Ok(())
}

fn expect_shape(t: &TensorData, dims: &[usize]) -> Result<()> {
    if t.shape().dims() != dims {
        return Err(TensorError::ShapeMismatch {
            expected: format!("shape {:?}", dims),
            got: t.shape().clone(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DType;

    #[test]
    fn padding_resolution() {
        assert_eq!(Padding::Valid.resolve(5, 3, 1), (3, 0));
        assert_eq!(Padding::Same.resolve(5, 3, 1), (5, 1));
        assert_eq!(Padding::Same.resolve(5, 3, 2), (3, 1));
        assert_eq!(Padding::Valid.resolve(5, 3, 2), (2, 0));
        assert_eq!(Padding::from_name("same"), Some(Padding::Same));
        assert_eq!(Padding::from_name("x"), None);
    }

    #[test]
    fn identity_kernel() {
        // 1x1 filter with weight 1 is identity.
        let x = TensorData::from_f64_vec(
            DType::F32,
            (0..16).map(|i| i as f64).collect(),
            Shape::from([1, 4, 4, 1]),
        );
        let f = TensorData::ones(DType::F32, [1, 1, 1, 1]);
        let y = conv2d(&x, &f, (1, 1), Padding::Valid).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn box_filter_valid() {
        // 2x2 box filter over a 3x3 image of ones -> all 4s, 2x2 output.
        let x = TensorData::ones(DType::F32, [1, 3, 3, 1]);
        let f = TensorData::ones(DType::F32, [2, 2, 1, 1]);
        let y = conv2d(&x, &f, (1, 1), Padding::Valid).unwrap();
        assert_eq!(y.shape().dims(), &[1, 2, 2, 1]);
        assert_eq!(y.to_f64_vec(), vec![4.0; 4]);
    }

    #[test]
    fn same_padding_shape_and_borders() {
        let x = TensorData::ones(DType::F32, [1, 3, 3, 1]);
        let f = TensorData::ones(DType::F32, [3, 3, 1, 1]);
        let y = conv2d(&x, &f, (1, 1), Padding::Same).unwrap();
        assert_eq!(y.shape().dims(), &[1, 3, 3, 1]);
        // Corner sees a 2x2 window, edge 2x3, center 3x3.
        assert_eq!(y.get_f64(&[0, 0, 0, 0]).unwrap(), 4.0);
        assert_eq!(y.get_f64(&[0, 0, 1, 0]).unwrap(), 6.0);
        assert_eq!(y.get_f64(&[0, 1, 1, 0]).unwrap(), 9.0);
    }

    #[test]
    fn strided_conv() {
        let x = TensorData::from_f64_vec(
            DType::F32,
            (0..16).map(|i| i as f64).collect(),
            Shape::from([1, 4, 4, 1]),
        );
        let f = TensorData::ones(DType::F32, [1, 1, 1, 1]);
        let y = conv2d(&x, &f, (2, 2), Padding::Valid).unwrap();
        assert_eq!(y.shape().dims(), &[1, 2, 2, 1]);
        assert_eq!(y.to_f64_vec(), vec![0.0, 2.0, 8.0, 10.0]);
    }

    #[test]
    fn multi_channel() {
        // 2 input channels summed into 1 output channel.
        let x =
            TensorData::from_vec(vec![1.0f32, 10.0, 2.0, 20.0], Shape::from([1, 1, 2, 2])).unwrap();
        let f = TensorData::ones(DType::F32, [1, 1, 2, 1]);
        let y = conv2d(&x, &f, (1, 1), Padding::Valid).unwrap();
        assert_eq!(y.to_f64_vec(), vec![11.0, 22.0]);
    }

    #[test]
    fn channel_mismatch_rejected() {
        let x = TensorData::ones(DType::F32, [1, 3, 3, 2]);
        let f = TensorData::ones(DType::F32, [2, 2, 3, 1]);
        assert!(conv2d(&x, &f, (1, 1), Padding::Valid).is_err());
    }

    /// Finite-difference check of both gradients on a tiny conv.
    #[test]
    fn gradients_match_finite_differences() {
        let xs: Vec<f64> = (0..18).map(|i| (i as f64) * 0.1 - 0.9).collect();
        let fs: Vec<f64> = (0..8).map(|i| (i as f64) * 0.2 - 0.8).collect();
        let x = TensorData::from_vec(xs.clone(), Shape::from([1, 3, 3, 2])).unwrap();
        let f = TensorData::from_vec(fs.clone(), Shape::from([2, 2, 2, 1])).unwrap();
        let strides = (1, 1);
        let pad = Padding::Valid;

        let loss = |x: &TensorData, f: &TensorData| -> f64 {
            conv2d(x, f, strides, pad).unwrap().to_f64_vec().iter().sum()
        };
        // grad_out = ones since loss = sum(output)
        let y = conv2d(&x, &f, strides, pad).unwrap();
        let go = TensorData::ones(DType::F64, y.shape().clone());

        let gx = conv2d_backprop_input(x.shape(), &f, &go, strides, pad).unwrap();
        let gf = conv2d_backprop_filter(&x, f.shape(), &go, strides, pad).unwrap();

        let eps = 1e-5;
        for i in 0..xs.len() {
            let mut xp = xs.clone();
            xp[i] += eps;
            let xp = TensorData::from_vec(xp, Shape::from([1, 3, 3, 2])).unwrap();
            let num = (loss(&xp, &f) - loss(&x, &f)) / eps;
            assert!(
                (num - gx.get_f64_linear(i)).abs() < 1e-4,
                "input grad {i}: fd={num} analytic={}",
                gx.get_f64_linear(i)
            );
        }
        for i in 0..fs.len() {
            let mut fp = fs.clone();
            fp[i] += eps;
            let fp = TensorData::from_vec(fp, Shape::from([2, 2, 2, 1])).unwrap();
            let num = (loss(&x, &fp) - loss(&x, &f)) / eps;
            assert!(
                (num - gf.get_f64_linear(i)).abs() < 1e-4,
                "filter grad {i}: fd={num} analytic={}",
                gf.get_f64_linear(i)
            );
        }
    }

    #[test]
    fn backprop_shapes_validated() {
        let x = TensorData::ones(DType::F32, [1, 4, 4, 1]);
        let f = TensorData::ones(DType::F32, [2, 2, 1, 3]);
        let bad_go = TensorData::ones(DType::F32, [1, 4, 4, 3]);
        assert!(conv2d_backprop_input(x.shape(), &f, &bad_go, (1, 1), Padding::Valid).is_err());
        assert!(conv2d_backprop_filter(&x, f.shape(), &bad_go, (1, 1), Padding::Valid).is_err());
    }
}
