//! Packed, cache-blocked, register-tiled GEMM — the shared micro-kernel
//! behind [`crate::matmul`] and the im2col convolution path.
//!
//! Structure follows the classic GotoBLAS/BLIS decomposition:
//!
//! - the `n` dimension is split into `NC` column slabs, `k` into `KC`
//!   depth slices, and `m` into `MC` row blocks;
//! - for each (slab, slice) the relevant panel of B is **packed** into a
//!   contiguous `NR`-wide layout, and each row block packs its panel of A
//!   into an `MR`-tall layout — the packing step also absorbs the
//!   transpose flags, so all four `transpose_a`/`transpose_b` combinations
//!   run the same fast loop;
//! - an `MR x NR` register-tiled micro-kernel walks the packed panels.
//!
//! Row blocks are independent, so they run in parallel on the shared pool
//! ([`tfe_parallel::par_for`]) when the problem is large enough.
//!
//! # Determinism
//!
//! The micro-kernel *continues* each output element's accumulator from
//! `out` across the sequential `KC` slices, so every element is the plain
//! left-to-right sum over `p = 0..k` — bit-for-bit identical to the naive
//! triple loop, for every transpose combination, block size, and thread
//! count.

use crate::data::Scalar;
use crate::par::SendPtr;
use std::ops::{Add, Mul};

/// Rows per register tile.
const MR: usize = 4;
/// Columns per register tile.
const NR: usize = 8;
/// Depth (k) block: one packed panel pair stays in cache while the
/// micro-kernel sweeps it.
const KC: usize = 256;
/// Row (m) block per parallel task.
const MC: usize = 128;
/// Column (n) slab.
const NC: usize = 2048;

/// Multiply-adds below which the row-block loop stays serial (pool
/// dispatch costs more than it saves on tiny products).
const PAR_MADDS: usize = 1 << 18;

/// Scalar types the gemm kernels accept (both float widths; also integer
/// types for internal reuse, e.g. packed convolution accumulation).
pub trait GemmScalar:
    Scalar + Add<Output = Self> + Mul<Output = Self> + Default + Send + Sync
{
}
impl<T: Scalar + Add<Output = T> + Mul<Output = T> + Default + Send + Sync> GemmScalar for T {}

/// `out += op(a) @ op(b)` for row-major `a`, `b`, `out` where `op`
/// optionally transposes. `a` is `m x k` after `op` (stored `k x m` when
/// `ta`), `b` is `k x n` after `op` (stored `n x k` when `tb`), `out` is
/// `m x n`. Accumulates *into* `out`, so pass a zeroed buffer for a plain
/// product. Parallel over row blocks unless `allow_par` is false or the
/// product is small.
#[allow(clippy::too_many_arguments)]
pub fn gemm_into<T: GemmScalar>(
    m: usize,
    k: usize,
    n: usize,
    a: &[T],
    ta: bool,
    b: &[T],
    tb: bool,
    out: &mut [T],
    allow_par: bool,
) {
    assert_eq!(out.len(), m * n, "gemm output buffer size");
    assert_eq!(a.len(), m * k, "gemm lhs buffer size");
    assert_eq!(b.len(), k * n, "gemm rhs buffer size");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let a_at = |i: usize, p: usize| if ta { a[p * m + i] } else { a[i * k + p] };
    let b_at = |p: usize, j: usize| if tb { b[j * k + p] } else { b[p * n + j] };

    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let n_panels = nc.div_ceil(NR);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            // Pack the B panel once per (jc, pc); every row block reads it.
            let mut bp = vec![T::default(); n_panels * kc * NR];
            for jp in 0..n_panels {
                let j0 = jc + jp * NR;
                let jw = NR.min(jc + nc - j0);
                let dst = &mut bp[jp * kc * NR..][..kc * NR];
                for (p, drow) in dst.chunks_exact_mut(NR).enumerate() {
                    for (jr, d) in drow.iter_mut().take(jw).enumerate() {
                        *d = b_at(pc + p, j0 + jr);
                    }
                }
            }
            let n_blocks = m.div_ceil(MC);
            let grain = if allow_par && m * nc * kc >= PAR_MADDS { 1 } else { n_blocks };
            let out_ptr = SendPtr::new(out.as_mut_ptr());
            let bp = &bp;
            tfe_parallel::par_for(n_blocks, grain, |blocks| {
                let mut ap = vec![T::default(); MC.div_ceil(MR) * kc * MR];
                for ib in blocks {
                    let ic = ib * MC;
                    let mc = MC.min(m - ic);
                    let m_panels = mc.div_ceil(MR);
                    // Pack this row block of A (transpose absorbed here).
                    for ipl in 0..m_panels {
                        let i0 = ic + ipl * MR;
                        let iw = MR.min(m - i0);
                        let dst = &mut ap[ipl * kc * MR..][..kc * MR];
                        for (p, drow) in dst.chunks_exact_mut(MR).enumerate() {
                            for (ir, d) in drow.iter_mut().enumerate() {
                                *d = if ir < iw { a_at(i0 + ir, pc + p) } else { T::default() };
                            }
                        }
                    }
                    for jp in 0..n_panels {
                        let j0 = jc + jp * NR;
                        let jw = NR.min(jc + nc - j0);
                        let bpan = &bp[jp * kc * NR..][..kc * NR];
                        for ipl in 0..m_panels {
                            let i0 = ic + ipl * MR;
                            let iw = MR.min(m - i0);
                            let apan = &ap[ipl * kc * MR..][..kc * MR];
                            // SAFETY: row blocks cover disjoint i ranges, and
                            // within a block the (i0, j0) tiles are disjoint;
                            // out lives past the par_for join.
                            unsafe {
                                micro_kernel(apan, bpan, kc, out_ptr, i0, j0, iw, jw, n);
                            }
                        }
                    }
                }
            });
        }
    }
}

/// One `MR x NR` register tile: resumes the accumulators from `out`,
/// sweeps the packed panels over `kc` depth steps, writes the valid
/// `iw x jw` corner back.
#[allow(clippy::too_many_arguments)]
#[inline]
unsafe fn micro_kernel<T: GemmScalar>(
    apan: &[T],
    bpan: &[T],
    kc: usize,
    out: SendPtr<T>,
    i0: usize,
    j0: usize,
    iw: usize,
    jw: usize,
    ldc: usize,
) {
    let mut acc = [[T::default(); NR]; MR];
    // Resume each element's accumulation chain from the previous KC slice
    // so the final sum is the plain ascending-p fold (bitwise == naive).
    for (ir, row) in acc.iter_mut().enumerate().take(iw) {
        for (jr, v) in row.iter_mut().enumerate().take(jw) {
            *v = *out.add((i0 + ir) * ldc + j0 + jr);
        }
    }
    for p in 0..kc {
        let av = &apan[p * MR..p * MR + MR];
        let bv = &bpan[p * NR..p * NR + NR];
        for (ir, row) in acc.iter_mut().enumerate() {
            let aval = av[ir];
            for (jr, v) in row.iter_mut().enumerate() {
                *v = *v + aval * bv[jr];
            }
        }
    }
    for (ir, row) in acc.iter().enumerate().take(iw) {
        for (jr, v) in row.iter().enumerate().take(jw) {
            *out.add((i0 + ir) * ldc + j0 + jr) = *v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, k: usize, n: usize, a: &[f64], ta: bool, b: &[f64], tb: bool) -> Vec<f64> {
        let a_at = |i: usize, p: usize| if ta { a[p * m + i] } else { a[i * k + p] };
        let b_at = |p: usize, j: usize| if tb { b[j * k + p] } else { b[p * n + j] };
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a_at(i, p) * b_at(p, j);
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn fill(len: usize, seed: u64) -> Vec<f64> {
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5
            })
            .collect()
    }

    #[test]
    fn matches_naive_bitwise_over_blocked_shapes() {
        // Shapes chosen to cross MR/NR/KC/MC edges (including k > KC, which
        // exercises the accumulator-resume path).
        for &(m, k, n) in
            &[(1, 1, 1), (3, 5, 7), (4, 8, 8), (5, 300, 9), (130, 17, 11), (33, 513, 19)]
        {
            let a = fill(m * k, (m * 31 + k * 7 + n) as u64);
            let b = fill(k * n, (n * 13 + k) as u64);
            for &(ta, tb) in &[(false, false), (true, false), (false, true), (true, true)] {
                let mut out = vec![0.0f64; m * n];
                gemm_into(m, k, n, &a, ta, &b, tb, &mut out, true);
                let want = naive(m, k, n, &a, ta, &b, tb);
                assert!(
                    out.iter().zip(&want).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "mismatch at m={m} k={k} n={n} ta={ta} tb={tb}"
                );
            }
        }
    }

    #[test]
    fn thread_count_invariant() {
        let (m, k, n) = (97, 290, 65);
        let a = fill(m * k, 3);
        let b = fill(k * n, 4);
        let mut par = vec![0.0f64; m * n];
        gemm_into(m, k, n, &a, false, &b, false, &mut par, true);
        let prev = tfe_parallel::set_intra_threads(Some(1));
        let mut ser = vec![0.0f64; m * n];
        gemm_into(m, k, n, &a, false, &b, false, &mut ser, true);
        tfe_parallel::set_intra_threads(prev);
        assert!(par.iter().zip(&ser).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn accumulates_into_out() {
        let mut out = vec![1.0f32, 1.0, 1.0, 1.0];
        let a = vec![1.0f32, 0.0, 0.0, 1.0];
        gemm_into(2, 2, 2, &a, false, &a, false, &mut out, false);
        assert_eq!(out, vec![2.0, 1.0, 1.0, 2.0]);
    }
}
