//! Elementwise binary/unary/comparison kernels with NumPy-style broadcasting.
//!
//! The op enums here double as the instruction set of the fused-elementwise
//! interpreter in `tfe-graph` (our XLA stand-in), so every op is a small,
//! named, pure function.

use crate::data::Scalar;
use crate::shape::{broadcast_shapes, BroadcastWalker};
use crate::{DType, Result, TensorData, TensorError};

/// Floating-point scalars with transcendental math.
pub trait FloatScalar: Scalar {
    /// e^x
    fn fexp(self) -> Self;
    /// natural log
    fn fln(self) -> Self;
    /// ln(1+x)
    fn fln_1p(self) -> Self;
    /// square root
    fn fsqrt(self) -> Self;
    /// |x|
    fn fabs(self) -> Self;
    /// tanh
    fn ftanh(self) -> Self;
    /// sin
    fn fsin(self) -> Self;
    /// cos
    fn fcos(self) -> Self;
    /// floor
    fn ffloor(self) -> Self;
    /// ceil
    fn fceil(self) -> Self;
    /// round half away from zero
    fn fround(self) -> Self;
    /// x^y
    fn fpowf(self, y: Self) -> Self;
    /// maximum treating NaN as missing
    fn fmax(self, y: Self) -> Self;
    /// minimum treating NaN as missing
    fn fmin(self, y: Self) -> Self;
    /// 0, 1 and -1 constants
    fn zero() -> Self;
    /// 1
    fn one() -> Self;
}

macro_rules! impl_float_scalar {
    ($ty:ty) => {
        impl FloatScalar for $ty {
            fn fexp(self) -> Self {
                self.exp()
            }
            fn fln(self) -> Self {
                self.ln()
            }
            fn fln_1p(self) -> Self {
                self.ln_1p()
            }
            fn fsqrt(self) -> Self {
                self.sqrt()
            }
            fn fabs(self) -> Self {
                self.abs()
            }
            fn ftanh(self) -> Self {
                self.tanh()
            }
            fn fsin(self) -> Self {
                self.sin()
            }
            fn fcos(self) -> Self {
                self.cos()
            }
            fn ffloor(self) -> Self {
                self.floor()
            }
            fn fceil(self) -> Self {
                self.ceil()
            }
            fn fround(self) -> Self {
                self.round()
            }
            fn fpowf(self, y: Self) -> Self {
                self.powf(y)
            }
            fn fmax(self, y: Self) -> Self {
                self.max(y)
            }
            fn fmin(self, y: Self) -> Self {
                self.min(y)
            }
            fn zero() -> Self {
                0.0
            }
            fn one() -> Self {
                1.0
            }
        }
    };
}

impl_float_scalar!(f32);
impl_float_scalar!(f64);

/// Binary elementwise operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// a + b
    Add,
    /// a - b
    Sub,
    /// a * b
    Mul,
    /// a / b (true division for floats, truncating for ints)
    Div,
    /// floor(a / b)
    FloorDiv,
    /// a mod b (sign of divisor, Python style, for floats; `%` for ints)
    Mod,
    /// a ^ b
    Pow,
    /// max(a, b)
    Maximum,
    /// min(a, b)
    Minimum,
    /// a * b for the residual-add pattern? No: squared difference (a-b)^2
    SquaredDifference,
}

impl BinaryOp {
    /// Stable lowercase name (used in op registries and serialized graphs).
    pub fn name(self) -> &'static str {
        match self {
            BinaryOp::Add => "add",
            BinaryOp::Sub => "sub",
            BinaryOp::Mul => "mul",
            BinaryOp::Div => "div",
            BinaryOp::FloorDiv => "floor_div",
            BinaryOp::Mod => "mod",
            BinaryOp::Pow => "pow",
            BinaryOp::Maximum => "maximum",
            BinaryOp::Minimum => "minimum",
            BinaryOp::SquaredDifference => "squared_difference",
        }
    }

    /// Inverse of [`BinaryOp::name`].
    pub fn from_name(name: &str) -> Option<BinaryOp> {
        Some(match name {
            "add" => BinaryOp::Add,
            "sub" => BinaryOp::Sub,
            "mul" => BinaryOp::Mul,
            "div" => BinaryOp::Div,
            "floor_div" => BinaryOp::FloorDiv,
            "mod" => BinaryOp::Mod,
            "pow" => BinaryOp::Pow,
            "maximum" => BinaryOp::Maximum,
            "minimum" => BinaryOp::Minimum,
            "squared_difference" => BinaryOp::SquaredDifference,
            _ => return None,
        })
    }

    /// All binary ops (for registration loops and property tests).
    pub fn all() -> &'static [BinaryOp] {
        &[
            BinaryOp::Add,
            BinaryOp::Sub,
            BinaryOp::Mul,
            BinaryOp::Div,
            BinaryOp::FloorDiv,
            BinaryOp::Mod,
            BinaryOp::Pow,
            BinaryOp::Maximum,
            BinaryOp::Minimum,
            BinaryOp::SquaredDifference,
        ]
    }

    /// Per-element evaluation on `f32`, bit-identical to the tensor
    /// kernel's math (used by the fused-kernel fast path in `tfe-graph`).
    pub fn eval_f32(self, a: f32, b: f32) -> f32 {
        self.eval_float(a, b)
    }

    fn eval_float<T: FloatScalar>(self, a: T, b: T) -> T {
        match self {
            BinaryOp::Add => T::from_f64(a.to_f64() + b.to_f64()),
            BinaryOp::Sub => T::from_f64(a.to_f64() - b.to_f64()),
            BinaryOp::Mul => T::from_f64(a.to_f64() * b.to_f64()),
            BinaryOp::Div => T::from_f64(a.to_f64() / b.to_f64()),
            BinaryOp::FloorDiv => T::from_f64((a.to_f64() / b.to_f64()).floor()),
            BinaryOp::Mod => {
                let r = a.to_f64() % b.to_f64();
                let r =
                    if r != 0.0 && (r < 0.0) != (b.to_f64() < 0.0) { r + b.to_f64() } else { r };
                T::from_f64(r)
            }
            BinaryOp::Pow => a.fpowf(b),
            BinaryOp::Maximum => a.fmax(b),
            BinaryOp::Minimum => a.fmin(b),
            BinaryOp::SquaredDifference => {
                let d = a.to_f64() - b.to_f64();
                T::from_f64(d * d)
            }
        }
    }

    fn eval_int(self, a: i64, b: i64) -> Result<i64> {
        Ok(match self {
            BinaryOp::Add => a.wrapping_add(b),
            BinaryOp::Sub => a.wrapping_sub(b),
            BinaryOp::Mul => a.wrapping_mul(b),
            BinaryOp::Div | BinaryOp::FloorDiv => {
                if b == 0 {
                    return Err(TensorError::InvalidArgument("integer division by zero".into()));
                }
                a.div_euclid(b)
            }
            BinaryOp::Mod => {
                if b == 0 {
                    return Err(TensorError::InvalidArgument("integer modulo by zero".into()));
                }
                a.rem_euclid(b)
            }
            BinaryOp::Pow => {
                if b < 0 {
                    return Err(TensorError::InvalidArgument("negative integer exponent".into()));
                }
                a.wrapping_pow(b.min(u32::MAX as i64) as u32)
            }
            BinaryOp::Maximum => a.max(b),
            BinaryOp::Minimum => a.min(b),
            BinaryOp::SquaredDifference => {
                let d = a.wrapping_sub(b);
                d.wrapping_mul(d)
            }
        })
    }
}

/// Unary elementwise operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// -x
    Neg,
    /// |x|
    Abs,
    /// sign(x) in {-1, 0, 1}
    Sign,
    /// e^x
    Exp,
    /// ln(x)
    Log,
    /// ln(1 + x)
    Log1p,
    /// sqrt(x)
    Sqrt,
    /// 1/sqrt(x)
    Rsqrt,
    /// x^2
    Square,
    /// 1/x
    Reciprocal,
    /// max(x, 0)
    Relu,
    /// 1/(1+e^-x), numerically stable
    Sigmoid,
    /// tanh(x)
    Tanh,
    /// ln(1+e^x), numerically stable
    Softplus,
    /// floor(x)
    Floor,
    /// ceil(x)
    Ceil,
    /// round(x)
    Round,
    /// sin(x)
    Sin,
    /// cos(x)
    Cos,
    /// Gauss error function (Abramowitz–Stegun 7.1.26 approximation)
    Erf,
}

impl UnaryOp {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            UnaryOp::Neg => "neg",
            UnaryOp::Abs => "abs",
            UnaryOp::Sign => "sign",
            UnaryOp::Exp => "exp",
            UnaryOp::Log => "log",
            UnaryOp::Log1p => "log1p",
            UnaryOp::Sqrt => "sqrt",
            UnaryOp::Rsqrt => "rsqrt",
            UnaryOp::Square => "square",
            UnaryOp::Reciprocal => "reciprocal",
            UnaryOp::Relu => "relu",
            UnaryOp::Sigmoid => "sigmoid",
            UnaryOp::Tanh => "tanh",
            UnaryOp::Softplus => "softplus",
            UnaryOp::Floor => "floor",
            UnaryOp::Ceil => "ceil",
            UnaryOp::Round => "round",
            UnaryOp::Sin => "sin",
            UnaryOp::Cos => "cos",
            UnaryOp::Erf => "erf",
        }
    }

    /// Inverse of [`UnaryOp::name`].
    pub fn from_name(name: &str) -> Option<UnaryOp> {
        UnaryOp::all().iter().copied().find(|op| op.name() == name)
    }

    /// All unary ops.
    pub fn all() -> &'static [UnaryOp] {
        &[
            UnaryOp::Neg,
            UnaryOp::Abs,
            UnaryOp::Sign,
            UnaryOp::Exp,
            UnaryOp::Log,
            UnaryOp::Log1p,
            UnaryOp::Sqrt,
            UnaryOp::Rsqrt,
            UnaryOp::Square,
            UnaryOp::Reciprocal,
            UnaryOp::Relu,
            UnaryOp::Sigmoid,
            UnaryOp::Tanh,
            UnaryOp::Softplus,
            UnaryOp::Floor,
            UnaryOp::Ceil,
            UnaryOp::Round,
            UnaryOp::Sin,
            UnaryOp::Cos,
            UnaryOp::Erf,
        ]
    }

    /// Whether the op is defined for integer dtypes.
    pub fn supports_int(self) -> bool {
        matches!(
            self,
            UnaryOp::Neg | UnaryOp::Abs | UnaryOp::Sign | UnaryOp::Square | UnaryOp::Relu
        )
    }

    /// Per-element evaluation on `f32`, bit-identical to the tensor
    /// kernel's math (used by the fused-kernel fast path in `tfe-graph`).
    pub fn eval_f32(self, x: f32) -> f32 {
        self.eval_float(x)
    }

    fn eval_float<T: FloatScalar>(self, x: T) -> T {
        let xf = x.to_f64();
        match self {
            UnaryOp::Neg => T::from_f64(-xf),
            UnaryOp::Abs => x.fabs(),
            UnaryOp::Sign => T::from_f64(if xf > 0.0 {
                1.0
            } else if xf < 0.0 {
                -1.0
            } else {
                xf // preserves ±0 and NaN
            }),
            UnaryOp::Exp => x.fexp(),
            UnaryOp::Log => x.fln(),
            UnaryOp::Log1p => x.fln_1p(),
            UnaryOp::Sqrt => x.fsqrt(),
            UnaryOp::Rsqrt => T::from_f64(1.0 / xf.sqrt()),
            UnaryOp::Square => T::from_f64(xf * xf),
            UnaryOp::Reciprocal => T::from_f64(1.0 / xf),
            UnaryOp::Relu => T::from_f64(if xf > 0.0 { xf } else { 0.0 }),
            UnaryOp::Sigmoid => T::from_f64(stable_sigmoid(xf)),
            UnaryOp::Tanh => x.ftanh(),
            UnaryOp::Softplus => T::from_f64(stable_softplus(xf)),
            UnaryOp::Floor => x.ffloor(),
            UnaryOp::Ceil => x.fceil(),
            UnaryOp::Round => x.fround(),
            UnaryOp::Sin => x.fsin(),
            UnaryOp::Cos => x.fcos(),
            UnaryOp::Erf => T::from_f64(erf(xf)),
        }
    }

    fn eval_int(self, x: i64) -> i64 {
        match self {
            UnaryOp::Neg => x.wrapping_neg(),
            UnaryOp::Abs => x.wrapping_abs(),
            UnaryOp::Sign => x.signum(),
            UnaryOp::Square => x.wrapping_mul(x),
            UnaryOp::Relu => x.max(0),
            _ => unreachable!("eval_int called for float-only op {:?}", self),
        }
    }
}

/// Comparison operations producing boolean tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// a == b
    Eq,
    /// a != b
    Ne,
    /// a < b
    Lt,
    /// a <= b
    Le,
    /// a > b
    Gt,
    /// a >= b
    Ge,
}

impl CmpOp {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            CmpOp::Eq => "equal",
            CmpOp::Ne => "not_equal",
            CmpOp::Lt => "less",
            CmpOp::Le => "less_equal",
            CmpOp::Gt => "greater",
            CmpOp::Ge => "greater_equal",
        }
    }

    /// Inverse of [`CmpOp::name`].
    pub fn from_name(name: &str) -> Option<CmpOp> {
        CmpOp::all().iter().copied().find(|op| op.name() == name)
    }

    /// All comparison ops.
    pub fn all() -> &'static [CmpOp] {
        &[CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge]
    }

    fn eval(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// Boolean binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicalOp {
    /// a && b
    And,
    /// a || b
    Or,
    /// a ^ b
    Xor,
}

impl LogicalOp {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            LogicalOp::And => "logical_and",
            LogicalOp::Or => "logical_or",
            LogicalOp::Xor => "logical_xor",
        }
    }

    fn eval(self, a: bool, b: bool) -> bool {
        match self {
            LogicalOp::And => a && b,
            LogicalOp::Or => a || b,
            LogicalOp::Xor => a ^ b,
        }
    }
}

fn stable_sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

fn stable_softplus(x: f64) -> f64 {
    x.max(0.0) + (-x.abs()).exp().ln_1p()
}

/// Abramowitz–Stegun 7.1.26 rational approximation of erf (|err| < 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

fn check_same_dtype(a: &TensorData, b: &TensorData) -> Result<DType> {
    if a.dtype() != b.dtype() {
        return Err(TensorError::DTypeMismatch {
            expected: a.dtype().name().to_string(),
            got: b.dtype(),
        });
    }
    Ok(a.dtype())
}

fn map2<T: Scalar, U: Scalar>(
    a: &TensorData,
    b: &TensorData,
    f: impl Fn(T, T) -> Result<U>,
) -> Result<TensorData> {
    let out_shape = broadcast_shapes(a.shape(), b.shape())?;
    let av = a.as_slice::<T>()?;
    let bv = b.as_slice::<T>()?;
    let n = out_shape.num_elements();
    let mut out = Vec::with_capacity(n);
    if a.shape() == b.shape() {
        for i in 0..n {
            out.push(f(av[i], bv[i])?);
        }
    } else {
        let wa = BroadcastWalker::new(&out_shape, a.shape());
        let wb = BroadcastWalker::new(&out_shape, b.shape());
        for (ia, ib) in wa.zip(wb) {
            out.push(f(av[ia], bv[ib])?);
        }
    }
    TensorData::from_vec(out, out_shape)
}

/// Infallible variant of [`map2`] that splits the output across the shared
/// pool; each tile walks its own [`BroadcastWalker::new_at`] cursor.
/// Element results are independent, so any partition gives identical bits.
fn map2_par<T: Scalar, U: Scalar + Default>(
    a: &TensorData,
    b: &TensorData,
    f: impl Fn(T, T) -> U + Sync,
) -> Result<TensorData> {
    let out_shape = broadcast_shapes(a.shape(), b.shape())?;
    let av = a.as_slice::<T>()?;
    let bv = b.as_slice::<T>()?;
    let mut out = vec![U::default(); out_shape.num_elements()];
    if a.shape() == b.shape() {
        crate::par::par_fill(&mut out, crate::par::GRAIN_ELEMWISE, |start, chunk| {
            for (off, o) in chunk.iter_mut().enumerate() {
                *o = f(av[start + off], bv[start + off]);
            }
        });
    } else {
        crate::par::par_fill(&mut out, crate::par::GRAIN_ELEMWISE, |start, chunk| {
            let wa = BroadcastWalker::new_at(&out_shape, a.shape(), start);
            let wb = BroadcastWalker::new_at(&out_shape, b.shape(), start);
            for ((o, ia), ib) in chunk.iter_mut().zip(wa).zip(wb) {
                *o = f(av[ia], bv[ib]);
            }
        });
    }
    TensorData::from_vec(out, out_shape)
}

/// Apply a binary elementwise op with broadcasting.
///
/// # Errors
/// Shape/broadcast mismatches, dtype mismatches, unsupported dtypes
/// (e.g. `pow` on bool), and integer division by zero.
pub fn binary(a: &TensorData, b: &TensorData, op: BinaryOp) -> Result<TensorData> {
    match check_same_dtype(a, b)? {
        DType::F32 => binary_f32_lanes(a, b, op),
        DType::F64 => map2_par::<f64, f64>(a, b, |x, y| op.eval_float(x, y)),
        DType::I32 => {
            map2::<i32, i32>(a, b, |x, y| op.eval_int(x as i64, y as i64).map(|v| v as i32))
        }
        DType::I64 => map2::<i64, i64>(a, b, |x, y| op.eval_int(x, y)),
        DType::Bool => Err(TensorError::DTypeMismatch {
            expected: "a numeric dtype".to_string(),
            got: DType::Bool,
        }),
    }
}

/// Apply a unary elementwise op.
///
/// # Errors
/// Unsupported dtype (bool always; ints for transcendental ops).
pub fn unary(a: &TensorData, op: UnaryOp) -> Result<TensorData> {
    match a.dtype() {
        DType::F32 => {
            // Lane fast path: op dispatch hoisted per tile, 8-wide blocks.
            // Bit-identical to the scalar map (no cross-element math).
            let v = a.as_slice::<f32>()?;
            let mut out = vec![0.0f32; v.len()];
            crate::par::par_fill(&mut out, crate::par::GRAIN_ELEMWISE, |start, chunk| {
                crate::lanes::unary_f32(op, &v[start..start + chunk.len()], chunk);
            });
            TensorData::from_vec(out, a.shape().clone())
        }
        DType::F64 => {
            let v = a.as_slice::<f64>()?;
            TensorData::from_vec(unary_par(v, |x| op.eval_float(x)), a.shape().clone())
        }
        DType::I32 | DType::I64 if op.supports_int() => {
            if a.dtype() == DType::I32 {
                let v = a.as_slice::<i32>()?;
                TensorData::from_vec(
                    v.iter().map(|&x| op.eval_int(x as i64) as i32).collect(),
                    a.shape().clone(),
                )
            } else {
                let v = a.as_slice::<i64>()?;
                TensorData::from_vec(v.iter().map(|&x| op.eval_int(x)).collect(), a.shape().clone())
            }
        }
        got => Err(TensorError::DTypeMismatch {
            expected: format!("a dtype supporting `{}`", op.name()),
            got,
        }),
    }
}

/// Elementwise comparison with broadcasting, producing a bool tensor.
///
/// # Errors
/// Dtype mismatch between operands; ordering comparisons on bool.
pub fn compare(a: &TensorData, b: &TensorData, op: CmpOp) -> Result<TensorData> {
    let dt = check_same_dtype(a, b)?;
    if dt == DType::Bool && !matches!(op, CmpOp::Eq | CmpOp::Ne) {
        return Err(TensorError::DTypeMismatch {
            expected: "a numeric dtype for ordering comparison".to_string(),
            got: DType::Bool,
        });
    }
    let out_shape = broadcast_shapes(a.shape(), b.shape())?;
    let n = out_shape.num_elements();
    let mut out = Vec::with_capacity(n);
    let wa = BroadcastWalker::new(&out_shape, a.shape());
    let wb = BroadcastWalker::new(&out_shape, b.shape());
    for (ia, ib) in wa.zip(wb) {
        out.push(op.eval(a.get_f64_linear(ia), b.get_f64_linear(ib)));
    }
    TensorData::from_vec(out, out_shape)
}

/// Elementwise boolean logic with broadcasting.
///
/// # Errors
/// Either operand not bool.
pub fn logical(a: &TensorData, b: &TensorData, op: LogicalOp) -> Result<TensorData> {
    if a.dtype() != DType::Bool || b.dtype() != DType::Bool {
        return Err(TensorError::DTypeMismatch {
            expected: "bool".to_string(),
            got: if a.dtype() != DType::Bool { a.dtype() } else { b.dtype() },
        });
    }
    map2_par::<bool, bool>(a, b, |x, y| op.eval(x, y))
}

/// F32 fast path for [`binary`]: same-shape operands run the fixed-width
/// lane kernel ([`crate::lanes::binary_f32`], op dispatch hoisted per tile);
/// broadcasts keep the walker-based map. Both are bit-identical to scalar
/// evaluation — lanes only restructure an element-independent map.
fn binary_f32_lanes(a: &TensorData, b: &TensorData, op: BinaryOp) -> Result<TensorData> {
    if a.shape() != b.shape() {
        return map2_par::<f32, f32>(a, b, |x, y| op.eval_float(x, y));
    }
    let av = a.as_slice::<f32>()?;
    let bv = b.as_slice::<f32>()?;
    let mut out = vec![0.0f32; av.len()];
    crate::par::par_fill(&mut out, crate::par::GRAIN_ELEMWISE, |start, chunk| {
        let end = start + chunk.len();
        crate::lanes::binary_f32(op, &av[start..end], &bv[start..end], chunk);
    });
    TensorData::from_vec(out, a.shape().clone())
}

/// Parallel map over a contiguous slice (the unary fast path).
fn unary_par<T: Scalar, U: Scalar + Default>(v: &[T], f: impl Fn(T) -> U + Sync) -> Vec<U> {
    let mut out = vec![U::default(); v.len()];
    crate::par::par_fill(&mut out, crate::par::GRAIN_ELEMWISE, |start, chunk| {
        for (off, o) in chunk.iter_mut().enumerate() {
            *o = f(v[start + off]);
        }
    });
    out
}

/// Elementwise boolean negation.
///
/// # Errors
/// Operand not bool.
pub fn logical_not(a: &TensorData) -> Result<TensorData> {
    let v = a.as_slice::<bool>()?;
    TensorData::from_vec(unary_par(v, |x: bool| !x), a.shape().clone())
}

/// `where(cond, a, b)` with three-way broadcasting.
///
/// # Errors
/// `cond` not bool; `a`/`b` dtype mismatch; incompatible shapes.
pub fn select(cond: &TensorData, a: &TensorData, b: &TensorData) -> Result<TensorData> {
    if cond.dtype() != DType::Bool {
        return Err(TensorError::DTypeMismatch { expected: "bool".to_string(), got: cond.dtype() });
    }
    let dt = check_same_dtype(a, b)?;
    let s = broadcast_shapes(cond.shape(), &broadcast_shapes(a.shape(), b.shape())?)?;
    let n = s.num_elements();
    let cv = cond.as_slice::<bool>()?;
    let wc = BroadcastWalker::new(&s, cond.shape());
    let wa = BroadcastWalker::new(&s, a.shape());
    let wb = BroadcastWalker::new(&s, b.shape());
    let mut out = TensorData::zeros(dt, s.clone());
    for (i, ((ic, ia), ib)) in wc.zip(wa).zip(wb).enumerate() {
        let v = if cv[ic] { a.get_f64_linear(ia) } else { b.get_f64_linear(ib) };
        out.set_f64_linear(i, v);
    }
    let _ = n;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;
    use proptest::prelude::*;

    fn t(v: Vec<f32>, s: impl Into<Shape>) -> TensorData {
        TensorData::from_vec(v, s).unwrap()
    }

    #[test]
    fn add_same_shape() {
        let a = t(vec![1.0, 2.0], [2]);
        let b = t(vec![10.0, 20.0], [2]);
        assert_eq!(binary(&a, &b, BinaryOp::Add).unwrap().to_f64_vec(), vec![11.0, 22.0]);
    }

    #[test]
    fn add_broadcast_scalar() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = TensorData::scalar(10.0f32);
        let r = binary(&a, &b, BinaryOp::Add).unwrap();
        assert_eq!(r.shape().dims(), &[2, 2]);
        assert_eq!(r.to_f64_vec(), vec![11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn mul_broadcast_row_col() {
        let a = t(vec![1.0, 2.0, 3.0], [3]);
        let b = t(vec![10.0, 100.0], [2, 1]);
        let r = binary(&b, &a, BinaryOp::Mul).unwrap();
        assert_eq!(r.shape().dims(), &[2, 3]);
        assert_eq!(r.to_f64_vec(), vec![10.0, 20.0, 30.0, 100.0, 200.0, 300.0]);
    }

    #[test]
    fn dtype_mismatch_rejected() {
        let a = t(vec![1.0], [1]);
        let b = TensorData::from_vec(vec![1i32], Shape::from([1])).unwrap();
        assert!(binary(&a, &b, BinaryOp::Add).is_err());
    }

    #[test]
    fn int_division_semantics() {
        let a = TensorData::from_vec(vec![7i64, -7], Shape::from([2])).unwrap();
        let b = TensorData::from_vec(vec![2i64, 2], Shape::from([2])).unwrap();
        let r = binary(&a, &b, BinaryOp::FloorDiv).unwrap();
        assert_eq!(r.to_i64_vec(), vec![3, -4]);
        let z = TensorData::from_vec(vec![0i64, 0], Shape::from([2])).unwrap();
        assert!(binary(&a, &z, BinaryOp::Div).is_err());
    }

    #[test]
    fn python_style_float_mod() {
        let a = TensorData::from_vec(vec![-7.0f64, 7.0], Shape::from([2])).unwrap();
        let b = TensorData::from_vec(vec![3.0f64, -3.0], Shape::from([2])).unwrap();
        let r = binary(&a, &b, BinaryOp::Mod).unwrap();
        assert_eq!(r.to_f64_vec(), vec![2.0, -2.0]);
    }

    #[test]
    fn bool_arithmetic_rejected() {
        let a = TensorData::from_vec(vec![true], Shape::from([1])).unwrap();
        assert!(binary(&a, &a, BinaryOp::Add).is_err());
    }

    #[test]
    fn unary_float_ops() {
        let a = t(vec![-1.0, 0.0, 2.0], [3]);
        assert_eq!(unary(&a, UnaryOp::Relu).unwrap().to_f64_vec(), vec![0.0, 0.0, 2.0]);
        assert_eq!(unary(&a, UnaryOp::Neg).unwrap().to_f64_vec(), vec![1.0, 0.0, -2.0]);
        assert_eq!(unary(&a, UnaryOp::Square).unwrap().to_f64_vec(), vec![1.0, 0.0, 4.0]);
        assert_eq!(unary(&a, UnaryOp::Sign).unwrap().to_f64_vec(), vec![-1.0, 0.0, 1.0]);
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        let a = TensorData::from_vec(vec![-1000.0f64, 0.0, 1000.0], Shape::from([3])).unwrap();
        let r = unary(&a, UnaryOp::Sigmoid).unwrap().to_f64_vec();
        assert_eq!(r[0], 0.0);
        assert_eq!(r[1], 0.5);
        assert_eq!(r[2], 1.0);
    }

    #[test]
    fn softplus_stable_and_positive() {
        let a = TensorData::from_vec(vec![-1000.0f64, 0.0, 1000.0], Shape::from([3])).unwrap();
        let r = unary(&a, UnaryOp::Softplus).unwrap().to_f64_vec();
        assert_eq!(r[0], 0.0);
        assert!((r[1] - 2.0f64.ln()).abs() < 1e-12);
        assert_eq!(r[2], 1000.0);
    }

    #[test]
    fn int_unary_subset() {
        let a = TensorData::from_vec(vec![-3i32, 4], Shape::from([2])).unwrap();
        assert_eq!(unary(&a, UnaryOp::Abs).unwrap().to_i64_vec(), vec![3, 4]);
        assert!(unary(&a, UnaryOp::Exp).is_err());
    }

    #[test]
    fn compare_broadcast() {
        let a = t(vec![1.0, 5.0], [2]);
        let b = TensorData::scalar(3.0f32);
        let r = compare(&a, &b, CmpOp::Gt).unwrap();
        assert_eq!(r.dtype(), DType::Bool);
        assert_eq!(r.to_f64_vec(), vec![0.0, 1.0]);
    }

    #[test]
    fn bool_ordering_rejected() {
        let a = TensorData::from_vec(vec![true], Shape::from([1])).unwrap();
        assert!(compare(&a, &a, CmpOp::Lt).is_err());
        assert!(compare(&a, &a, CmpOp::Eq).is_ok());
    }

    #[test]
    fn logic_ops() {
        let a = TensorData::from_vec(vec![true, true, false, false], Shape::from([4])).unwrap();
        let b = TensorData::from_vec(vec![true, false, true, false], Shape::from([4])).unwrap();
        assert_eq!(logical(&a, &b, LogicalOp::And).unwrap().to_f64_vec(), vec![1.0, 0.0, 0.0, 0.0]);
        assert_eq!(logical(&a, &b, LogicalOp::Or).unwrap().to_f64_vec(), vec![1.0, 1.0, 1.0, 0.0]);
        assert_eq!(logical(&a, &b, LogicalOp::Xor).unwrap().to_f64_vec(), vec![0.0, 1.0, 1.0, 0.0]);
        assert_eq!(logical_not(&a).unwrap().to_f64_vec(), vec![0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn select_broadcasts_condition() {
        let cond = TensorData::from_vec(vec![true, false], Shape::from([2, 1])).unwrap();
        let a = t(vec![1.0, 2.0], [2]);
        let b = t(vec![9.0, 8.0], [2]);
        let r = select(&cond, &a, &b).unwrap();
        assert_eq!(r.shape().dims(), &[2, 2]);
        assert_eq!(r.to_f64_vec(), vec![1.0, 2.0, 9.0, 8.0]);
    }

    #[test]
    fn erf_reference_points() {
        assert!((erf(0.0)).abs() < 1e-9);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn names_round_trip() {
        for op in BinaryOp::all() {
            assert_eq!(BinaryOp::from_name(op.name()), Some(*op));
        }
        for op in UnaryOp::all() {
            assert_eq!(UnaryOp::from_name(op.name()), Some(*op));
        }
        for op in CmpOp::all() {
            assert_eq!(CmpOp::from_name(op.name()), Some(*op));
        }
    }

    proptest! {
        #[test]
        fn add_commutes(xs in prop::collection::vec(-1e3f64..1e3, 1..16)) {
            let n = xs.len();
            let a = TensorData::from_vec(xs.clone(), Shape::from([n])).unwrap();
            let b = TensorData::from_vec(xs.iter().rev().copied().collect::<Vec<_>>(), Shape::from([n])).unwrap();
            let ab = binary(&a, &b, BinaryOp::Add).unwrap();
            let ba = binary(&b, &a, BinaryOp::Add).unwrap();
            prop_assert_eq!(ab.to_f64_vec(), ba.to_f64_vec());
        }

        #[test]
        fn relu_idempotent(xs in prop::collection::vec(-1e3f32..1e3, 1..16)) {
            let n = xs.len();
            let a = TensorData::from_vec(xs, Shape::from([n])).unwrap();
            let once = unary(&a, UnaryOp::Relu).unwrap();
            let twice = unary(&once, UnaryOp::Relu).unwrap();
            prop_assert_eq!(once.to_f64_vec(), twice.to_f64_vec());
        }

        #[test]
        fn sigmoid_bounded(xs in prop::collection::vec(-50f64..50.0, 1..16)) {
            let n = xs.len();
            let a = TensorData::from_vec(xs, Shape::from([n])).unwrap();
            for v in unary(&a, UnaryOp::Sigmoid).unwrap().to_f64_vec() {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }

        #[test]
        fn select_matches_manual(mask in prop::collection::vec(any::<bool>(), 1..16)) {
            let n = mask.len();
            let cond = TensorData::from_vec(mask.clone(), Shape::from([n])).unwrap();
            let a = TensorData::from_f64_vec(DType::F64, (0..n).map(|i| i as f64).collect(), Shape::from([n]));
            let b = TensorData::from_f64_vec(DType::F64, (0..n).map(|i| -(i as f64)).collect(), Shape::from([n]));
            let r = select(&cond, &a, &b).unwrap();
            for (i, m) in mask.iter().enumerate() {
                let expect = if *m { i as f64 } else { -(i as f64) };
                prop_assert_eq!(r.get_f64_linear(i), expect);
            }
        }
    }
}
