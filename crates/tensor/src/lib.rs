//! # tfe-tensor
//!
//! Dense tensor substrate for the `tf-eager` workspace — the layer that
//! plays the role of TensorFlow's Eigen/NumPy kernels in the paper
//! *TensorFlow Eager: A Multi-Stage, Python-Embedded DSL for Machine
//! Learning* (MLSys 2019).
//!
//! It provides:
//! - [`DType`], [`Shape`], and the contiguous row-major [`TensorData`];
//! - NumPy-style broadcasting ([`shape::broadcast_shapes`]);
//! - elementwise math ([`elementwise`]), reductions ([`reduce`]), matrix
//!   products ([`matmul`]), convolution ([`conv`]), pooling ([`pool`]),
//!   softmax/cross-entropy ([`softmax`]), shape manipulation
//!   ([`shape_ops`]), and seeded random generation ([`rng`]).
//!
//! Everything here is pure math with no notion of devices, graphs, or
//! automatic differentiation — those live in the crates layered above.
//!
//! ```
//! use tfe_tensor::{TensorData, Shape, elementwise::{binary, BinaryOp}};
//! # fn main() -> Result<(), tfe_tensor::TensorError> {
//! let a = TensorData::from_vec(vec![1.0f32, 2.0], Shape::from([2]))?;
//! let b = TensorData::scalar(10.0f32);
//! let c = binary(&a, &b, BinaryOp::Add)?;
//! assert_eq!(c.to_f64_vec(), vec![11.0, 12.0]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod data;
mod dtype;
mod error;

pub(crate) mod par;

pub mod conv;
pub mod elementwise;
pub mod gemm;
pub mod lanes;
pub mod matmul;
pub mod pool;
pub mod reduce;
pub mod rng;
pub mod shape;
pub mod shape_ops;
pub mod slot;
pub mod softmax;

pub use data::{Buffer, Scalar, TensorData};
pub use dtype::DType;
pub use error::{Result, TensorError};
pub use shape::{broadcast_shapes, Shape};
pub use slot::{AsyncSlot, SlotState};
