//! Error type shared by the tensor substrate.

use crate::{DType, Shape};
use std::fmt;

/// Errors produced by tensor construction and math routines.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// Two operand shapes do not broadcast together.
    BroadcastMismatch {
        /// Left operand shape.
        lhs: Shape,
        /// Right operand shape.
        rhs: Shape,
    },
    /// An operand had an unexpected dtype.
    DTypeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it got.
        got: DType,
    },
    /// An operand had an unexpected shape.
    ShapeMismatch {
        /// Description of the expectation.
        expected: String,
        /// The offending shape.
        got: Shape,
    },
    /// An axis argument was out of range for the operand's rank.
    InvalidAxis {
        /// The requested axis (possibly negative).
        axis: i64,
        /// The operand rank.
        rank: usize,
    },
    /// A catch-all for invalid arguments (bad padding, negative sizes, ...).
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::BroadcastMismatch { lhs, rhs } => {
                write!(f, "shapes {lhs} and {rhs} are not broadcast-compatible")
            }
            TensorError::DTypeMismatch { expected, got } => {
                write!(f, "expected dtype {expected}, got {got}")
            }
            TensorError::ShapeMismatch { expected, got } => {
                write!(f, "expected {expected}, got shape {got}")
            }
            TensorError::InvalidAxis { axis, rank } => {
                write!(f, "axis {axis} is out of range for rank {rank}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenience result alias used throughout the tensor crate.
pub type Result<T, E = TensorError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TensorError::BroadcastMismatch { lhs: Shape::from([2, 3]), rhs: Shape::from([4]) };
        assert_eq!(e.to_string(), "shapes (2, 3) and (4,) are not broadcast-compatible");

        let e = TensorError::InvalidAxis { axis: -3, rank: 2 };
        assert_eq!(e.to_string(), "axis -3 is out of range for rank 2");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
