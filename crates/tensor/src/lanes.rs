//! Fixed-width lane inner loops for the elementwise and reduction kernels.
//!
//! Every hot f32 loop in this crate funnels through the helpers here, which
//! restructure the work into [`LANES`]-wide blocks (8 × f32 = one 256-bit
//! vector register) that the compiler can autovectorize:
//!
//! - [`unary_f32`] / [`binary_f32`] hoist the op dispatch out of the loop
//!   (one `match` per tile, not per element) and run the op body over
//!   fixed-size `[f32; LANES]` blocks. Each lane applies exactly the same
//!   per-element function as the scalar path ([`UnaryOp::eval_f32`] /
//!   [`BinaryOp::eval_f32`]), so results are **bit-identical** to scalar
//!   evaluation — maps have no cross-element dependence to reassociate.
//! - [`lane_fold_f64`] folds a row through `LANES` independent accumulators.
//!   This **reassociates** the fold, so for non-associative ops (float
//!   `add`/`mul`) the bits differ from a strict left fold; the combine order
//!   is fixed and documented below, so results are still deterministic and
//!   thread-count invariant. Callers with an exactness contract must not use
//!   it (see DESIGN.md "Exactness vs. tolerance policy").
//! - [`fold_columns_f64`] folds one source row into per-column accumulators.
//!   Per-column fold order is unchanged from the scalar loop (column `j`
//!   still sees its elements in the same sequence), so it stays bitwise.
//!
//! # `lane_fold_f64` combine order (stable contract, tested)
//!
//! For a row of length `n` with `m = n - n % LANES`:
//! 1. lane `j` folds elements `j, j+LANES, j+2*LANES, …` of `row[..m]`
//!    (ascending), starting from `init`;
//! 2. lane accumulators are combined left to right:
//!    `f(f(…f(lane0, lane1)…), lane7)`;
//! 3. tail elements `row[m..]` are folded into that result in ascending
//!    order.

use crate::data::Scalar;
use crate::elementwise::{BinaryOp, UnaryOp};

/// Lane width of the restructured inner loops: 8 × f32 fills one 256-bit
/// vector register, and 8 × f64 accumulators fill two — enough independent
/// chains to hide FMA latency on current cores.
pub const LANES: usize = 8;

/// Apply `f` to every element of `src`, writing `dst` (equal lengths), in
/// [`LANES`]-wide blocks plus a scalar tail. Bit-identical to a plain loop.
#[inline(always)]
fn map_unary(src: &[f32], dst: &mut [f32], f: impl Fn(f32) -> f32) {
    debug_assert_eq!(src.len(), dst.len());
    let m = src.len() - src.len() % LANES;
    let (sb, st) = src.split_at(m);
    let (db, dt) = dst.split_at_mut(m);
    for (d, s) in db.chunks_exact_mut(LANES).zip(sb.chunks_exact(LANES)) {
        // Fixed-size views let the compiler fully unroll the lane loop.
        let d: &mut [f32; LANES] = d.try_into().unwrap();
        let s: &[f32; LANES] = s.try_into().unwrap();
        for (o, &x) in d.iter_mut().zip(s.iter()) {
            *o = f(x);
        }
    }
    for (o, &x) in dt.iter_mut().zip(st.iter()) {
        *o = f(x);
    }
}

/// Two-source variant of [`map_unary`].
#[inline(always)]
fn map_binary(a: &[f32], b: &[f32], dst: &mut [f32], f: impl Fn(f32, f32) -> f32) {
    debug_assert_eq!(a.len(), dst.len());
    debug_assert_eq!(b.len(), dst.len());
    let m = dst.len() - dst.len() % LANES;
    let (ab, at) = a.split_at(m);
    let (bb, bt) = b.split_at(m);
    let (db, dt) = dst.split_at_mut(m);
    for ((d, x), y) in
        db.chunks_exact_mut(LANES).zip(ab.chunks_exact(LANES)).zip(bb.chunks_exact(LANES))
    {
        let d: &mut [f32; LANES] = d.try_into().unwrap();
        let x: &[f32; LANES] = x.try_into().unwrap();
        let y: &[f32; LANES] = y.try_into().unwrap();
        for ((o, &p), &q) in d.iter_mut().zip(x.iter()).zip(y.iter()) {
            *o = f(p, q);
        }
    }
    for ((o, &p), &q) in dt.iter_mut().zip(at.iter()).zip(bt.iter()) {
        *o = f(p, q);
    }
}

/// `dst[i] = op(src[i])` over lane blocks, dispatching on `op` **once**.
///
/// Each match arm closes over a compile-time-constant op, so
/// `eval_f32`'s inner match folds away and the loop body is the bare op
/// formula — same math, same bits as the scalar path.
pub fn unary_f32(op: UnaryOp, src: &[f32], dst: &mut [f32]) {
    macro_rules! dispatch {
        ($($v:ident),* $(,)?) => {
            match op {
                $(UnaryOp::$v => map_unary(src, dst, |x| UnaryOp::$v.eval_f32(x)),)*
            }
        };
    }
    dispatch!(
        Neg, Abs, Sign, Exp, Log, Log1p, Sqrt, Rsqrt, Square, Reciprocal, Relu, Sigmoid, Tanh,
        Softplus, Floor, Ceil, Round, Sin, Cos, Erf,
    )
}

/// `dst[i] = op(a[i], b[i])` over lane blocks, dispatching on `op` once.
/// Bit-identical to the scalar path (see [`unary_f32`]).
pub fn binary_f32(op: BinaryOp, a: &[f32], b: &[f32], dst: &mut [f32]) {
    macro_rules! dispatch {
        ($($v:ident),* $(,)?) => {
            match op {
                $(BinaryOp::$v => map_binary(a, b, dst, |x, y| BinaryOp::$v.eval_f32(x, y)),)*
            }
        };
    }
    dispatch!(Add, Sub, Mul, Div, FloorDiv, Mod, Pow, Maximum, Minimum, SquaredDifference,)
}

/// Fold `row` into an `f64` with [`LANES`] independent accumulator chains.
///
/// `init` must be `f`'s identity (it seeds every lane). The combine order is
/// the stable contract documented at module level: deterministic and
/// independent of thread count, but **reassociated** relative to a strict
/// left fold — for float `add`/`mul` the result can differ from the serial
/// fold by normal rounding-reassociation error. For `max`/`min` (and any
/// associative-commutative `f` without NaN) the value is identical.
pub fn lane_fold_f64<T: Scalar>(row: &[T], init: f64, f: impl Fn(f64, f64) -> f64) -> f64 {
    let mut lanes = [init; LANES];
    let mut chunks = row.chunks_exact(LANES);
    for c in chunks.by_ref() {
        for (acc, x) in lanes.iter_mut().zip(c.iter()) {
            *acc = f(*acc, x.to_f64());
        }
    }
    let mut acc = lanes[0];
    for &l in &lanes[1..] {
        acc = f(acc, l);
    }
    for x in chunks.remainder() {
        acc = f(acc, x.to_f64());
    }
    acc
}

/// Fold one source row into per-column accumulators:
/// `acc[j] = f(acc[j], src[j])` (equal lengths), in lane blocks.
///
/// Column `j`'s fold order is exactly the scalar loop's, so this is
/// **bitwise identical** to the unblocked version — only the instruction
/// schedule changes.
pub fn fold_columns_f64<T: Scalar>(acc: &mut [f64], src: &[T], f: impl Fn(f64, f64) -> f64) {
    debug_assert_eq!(acc.len(), src.len());
    let m = acc.len() - acc.len() % LANES;
    let (ab, at) = acc.split_at_mut(m);
    let (sb, st) = src.split_at(m);
    for (a, s) in ab.chunks_exact_mut(LANES).zip(sb.chunks_exact(LANES)) {
        let a: &mut [f64; LANES] = a.try_into().unwrap();
        for (o, x) in a.iter_mut().zip(s.iter()) {
            *o = f(*o, x.to_f64());
        }
    }
    for (o, x) in at.iter_mut().zip(st.iter()) {
        *o = f(*o, x.to_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i % 97) as f32 - 48.0) * 0.37 + 0.25).collect()
    }

    #[test]
    fn unary_matches_scalar_bitwise_all_ops_odd_lengths() {
        for &n in &[0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let src = vals(n);
            for &op in UnaryOp::all() {
                let mut dst = vec![0.0f32; n];
                unary_f32(op, &src, &mut dst);
                for (i, (&got, &x)) in dst.iter().zip(src.iter()).enumerate() {
                    let want = op.eval_f32(x);
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "op {:?} n {} i {}: {} vs {}",
                        op,
                        n,
                        i,
                        got,
                        want
                    );
                }
            }
        }
    }

    #[test]
    fn binary_matches_scalar_bitwise_all_ops_odd_lengths() {
        for &n in &[0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let a = vals(n);
            let b: Vec<f32> = vals(n).iter().map(|x| x * -1.3 + 0.5).collect();
            for &op in BinaryOp::all() {
                let mut dst = vec![0.0f32; n];
                binary_f32(op, &a, &b, &mut dst);
                for i in 0..n {
                    let want = op.eval_f32(a[i], b[i]);
                    let got = dst[i];
                    assert!(
                        got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()),
                        "op {:?} n {} i {}: {} vs {}",
                        op,
                        n,
                        i,
                        got,
                        want
                    );
                }
            }
        }
    }

    /// Reference implementation of the documented lane combine order.
    fn lane_fold_reference(row: &[f64], init: f64, f: impl Fn(f64, f64) -> f64) -> f64 {
        let m = row.len() - row.len() % LANES;
        let mut lanes = [init; LANES];
        for (i, &x) in row[..m].iter().enumerate() {
            lanes[i % LANES] = f(lanes[i % LANES], x);
        }
        let mut acc = lanes[0];
        for &l in &lanes[1..] {
            acc = f(acc, l);
        }
        for &x in &row[m..] {
            acc = f(acc, x);
        }
        acc
    }

    #[test]
    fn lane_fold_matches_documented_order_bitwise() {
        for &n in &[0usize, 1, 7, 8, 9, 17, 64, 65, 4097] {
            let row: Vec<f64> = (0..n).map(|i| ((i % 89) as f64 - 44.0) * 0.731).collect();
            let got = lane_fold_f64(&row, 0.0, |a, b| a + b);
            let want = lane_fold_reference(&row, 0.0, |a, b| a + b);
            assert_eq!(got.to_bits(), want.to_bits(), "n = {n}");
        }
    }

    #[test]
    fn lane_fold_max_matches_serial_fold_value() {
        let row: Vec<f64> = (0..1003).map(|i| ((i * 31 % 997) as f64) - 500.0).collect();
        let serial = row.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let laned = lane_fold_f64(&row, f64::NEG_INFINITY, |a, b| a.max(b));
        assert_eq!(laned.to_bits(), serial.to_bits());
    }

    #[test]
    fn lane_fold_sum_close_to_serial() {
        let row: Vec<f64> = (0..4097).map(|i| ((i % 89) as f64 - 44.0) * 0.731).collect();
        let serial: f64 = row.iter().fold(0.0, |a, &b| a + b);
        let laned = lane_fold_f64(&row, 0.0, |a, b| a + b);
        assert!((laned - serial).abs() <= 1e-9 * row.len() as f64);
    }

    #[test]
    fn fold_columns_bitwise_matches_scalar() {
        for &n in &[0usize, 1, 7, 8, 9, 65, 301] {
            let rows = 5;
            let src: Vec<f64> = (0..rows * n).map(|i| ((i % 53) as f64 - 26.0) * 1.17).collect();
            let mut acc = vec![0.0f64; n];
            let mut want = vec![0.0f64; n];
            for r in 0..rows {
                let row = &src[r * n..(r + 1) * n];
                fold_columns_f64(&mut acc, row, |a, b| a + b);
                for (w, &x) in want.iter_mut().zip(row.iter()) {
                    *w += x;
                }
            }
            for (a, w) in acc.iter().zip(want.iter()) {
                assert_eq!(a.to_bits(), w.to_bits(), "n = {n}");
            }
        }
    }
}
