//! Deterministic random tensor generation.
//!
//! Stateful random ops in the runtime own one of these generators; the seed
//! makes eager and staged runs reproducible — the property the paper's
//! `add_noise` example (§4.1) turns on.

use crate::{DType, Result, Shape, TensorData, TensorError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seedable generator for random tensors.
#[derive(Debug)]
pub struct TensorRng {
    rng: StdRng,
}

impl TensorRng {
    /// Create from a 64-bit seed. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> TensorRng {
        TensorRng { rng: StdRng::seed_from_u64(seed) }
    }

    fn check_float(dtype: DType) -> Result<()> {
        if !dtype.is_float() {
            return Err(TensorError::DTypeMismatch {
                expected: "a float dtype".to_string(),
                got: dtype,
            });
        }
        Ok(())
    }

    /// Standard-normal samples scaled to `mean + stddev * z` (Box–Muller).
    ///
    /// # Errors
    /// Non-float `dtype`.
    pub fn normal(
        &mut self,
        dtype: DType,
        shape: impl Into<Shape>,
        mean: f64,
        stddev: f64,
    ) -> Result<TensorData> {
        Self::check_float(dtype)?;
        let shape = shape.into();
        let n = shape.num_elements();
        let mut vals = Vec::with_capacity(n);
        while vals.len() < n {
            let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = self.rng.gen();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            vals.push(mean + stddev * r * theta.cos());
            if vals.len() < n {
                vals.push(mean + stddev * r * theta.sin());
            }
        }
        Ok(TensorData::from_f64_vec(dtype, vals, shape))
    }

    /// Normal samples re-drawn until within two standard deviations, like
    /// `tf.truncated_normal` (used by classic initializers).
    ///
    /// # Errors
    /// Non-float `dtype`.
    pub fn truncated_normal(
        &mut self,
        dtype: DType,
        shape: impl Into<Shape>,
        mean: f64,
        stddev: f64,
    ) -> Result<TensorData> {
        Self::check_float(dtype)?;
        let shape = shape.into();
        let n = shape.num_elements();
        let mut vals = Vec::with_capacity(n);
        while vals.len() < n {
            // Inline Box–Muller; rejection keeps |z| <= 2.
            let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = self.rng.gen();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            for z in [r * theta.cos(), r * theta.sin()] {
                if z.abs() <= 2.0 && vals.len() < n {
                    vals.push(mean + stddev * z);
                }
            }
        }
        Ok(TensorData::from_f64_vec(dtype, vals, shape))
    }

    /// Uniform samples in `[low, high)`.
    ///
    /// # Errors
    /// Non-float `dtype` or `low >= high`.
    pub fn uniform(
        &mut self,
        dtype: DType,
        shape: impl Into<Shape>,
        low: f64,
        high: f64,
    ) -> Result<TensorData> {
        Self::check_float(dtype)?;
        if low >= high {
            return Err(TensorError::InvalidArgument(format!(
                "uniform range [{low}, {high}) is empty"
            )));
        }
        let shape = shape.into();
        let n = shape.num_elements();
        let vals: Vec<f64> = (0..n).map(|_| self.rng.gen_range(low..high)).collect();
        Ok(TensorData::from_f64_vec(dtype, vals, shape))
    }

    /// Uniform integer samples in `[low, high)`.
    ///
    /// # Errors
    /// Non-integer `dtype` or an empty range.
    pub fn uniform_int(
        &mut self,
        dtype: DType,
        shape: impl Into<Shape>,
        low: i64,
        high: i64,
    ) -> Result<TensorData> {
        if !dtype.is_int() {
            return Err(TensorError::DTypeMismatch {
                expected: "an integer dtype".to_string(),
                got: dtype,
            });
        }
        if low >= high {
            return Err(TensorError::InvalidArgument(format!(
                "uniform range [{low}, {high}) is empty"
            )));
        }
        let shape = shape.into();
        let n = shape.num_elements();
        let vals: Vec<f64> = (0..n).map(|_| self.rng.gen_range(low..high) as f64).collect();
        Ok(TensorData::from_f64_vec(dtype, vals, shape))
    }

    /// Bernoulli(keep_prob) mask scaled by `1/keep_prob` — the dropout mask.
    ///
    /// # Errors
    /// Non-float dtype or `keep_prob` outside `(0, 1]`.
    pub fn dropout_mask(
        &mut self,
        dtype: DType,
        shape: impl Into<Shape>,
        keep_prob: f64,
    ) -> Result<TensorData> {
        Self::check_float(dtype)?;
        if !(keep_prob > 0.0 && keep_prob <= 1.0) {
            return Err(TensorError::InvalidArgument(format!(
                "keep_prob {keep_prob} must be in (0, 1]"
            )));
        }
        let shape = shape.into();
        let n = shape.num_elements();
        let scale = 1.0 / keep_prob;
        let vals: Vec<f64> =
            (0..n).map(|_| if self.rng.gen::<f64>() < keep_prob { scale } else { 0.0 }).collect();
        Ok(TensorData::from_f64_vec(dtype, vals, shape))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = TensorRng::seed_from_u64(42);
        let mut b = TensorRng::seed_from_u64(42);
        let ta = a.normal(DType::F32, [16], 0.0, 1.0).unwrap();
        let tb = b.normal(DType::F32, [16], 0.0, 1.0).unwrap();
        assert_eq!(ta, tb);
        let mut c = TensorRng::seed_from_u64(43);
        let tc = c.normal(DType::F32, [16], 0.0, 1.0).unwrap();
        assert_ne!(ta, tc);
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = TensorRng::seed_from_u64(7);
        let t = rng.normal(DType::F64, [10_000], 2.0, 3.0).unwrap();
        let v = t.to_f64_vec();
        let mean: f64 = v.iter().sum::<f64>() / v.len() as f64;
        let var: f64 = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean={mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std={}", var.sqrt());
    }

    #[test]
    fn truncated_normal_bounded() {
        let mut rng = TensorRng::seed_from_u64(1);
        let t = rng.truncated_normal(DType::F32, [1000], 0.0, 1.0).unwrap();
        assert!(t.to_f64_vec().iter().all(|v| v.abs() <= 2.0 + 1e-6));
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = TensorRng::seed_from_u64(9);
        let t = rng.uniform(DType::F64, [1000], -1.0, 1.0).unwrap();
        assert!(t.to_f64_vec().iter().all(|&v| (-1.0..1.0).contains(&v)));
        assert!(rng.uniform(DType::F64, [1], 1.0, 1.0).is_err());
        assert!(rng.uniform(DType::I32, [1], 0.0, 1.0).is_err());
    }

    #[test]
    fn uniform_int_in_range() {
        let mut rng = TensorRng::seed_from_u64(9);
        let t = rng.uniform_int(DType::I64, [100], 0, 10).unwrap();
        assert!(t.to_i64_vec().iter().all(|&v| (0..10).contains(&v)));
        assert!(rng.uniform_int(DType::F32, [1], 0, 10).is_err());
    }

    #[test]
    fn dropout_mask_values() {
        let mut rng = TensorRng::seed_from_u64(3);
        let m = rng.dropout_mask(DType::F32, [1000], 0.8).unwrap();
        let v = m.to_f64_vec();
        assert!(v.iter().all(|&x| x == 0.0 || (x - 1.25).abs() < 1e-6));
        let kept = v.iter().filter(|&&x| x != 0.0).count();
        assert!((700..900).contains(&kept), "kept={kept}");
        assert!(rng.dropout_mask(DType::F32, [1], 0.0).is_err());
    }
}
