//! Shape-manipulating kernels: reshape, transpose, concat, split, slice,
//! pad, gather/scatter, tile, broadcast_to, one-hot, stack/unstack.

use crate::shape::{broadcast_shapes, BroadcastWalker};
use crate::{DType, Result, Shape, TensorData, TensorError};

/// Reshape with a single optional `-1` wildcard dimension (like
/// `tf.reshape`).
///
/// # Errors
/// More than one `-1`, a negative dimension other than `-1`, or an element
/// count mismatch.
pub fn reshape(a: &TensorData, dims: &[i64]) -> Result<TensorData> {
    let n = a.num_elements();
    let mut wildcard = None;
    let mut known = 1usize;
    for (i, &d) in dims.iter().enumerate() {
        if d == -1 {
            if wildcard.is_some() {
                return Err(TensorError::InvalidArgument(
                    "reshape accepts at most one -1 dimension".to_string(),
                ));
            }
            wildcard = Some(i);
        } else if d < 0 {
            return Err(TensorError::InvalidArgument(format!("invalid dimension {d}")));
        } else {
            known = known.saturating_mul(d as usize);
        }
    }
    let mut out: Vec<usize> = dims.iter().map(|&d| d.max(0) as usize).collect();
    if let Some(w) = wildcard {
        if known == 0 || !n.is_multiple_of(known) {
            return Err(TensorError::ShapeMismatch {
                expected: format!("a shape dividing {n} elements"),
                got: Shape::new(out),
            });
        }
        out[w] = n / known;
    }
    a.with_shape(out)
}

/// Permute dimensions. `perm` must be a permutation of `0..rank`.
///
/// # Errors
/// `perm` is not a permutation of the operand's axes.
pub fn transpose(a: &TensorData, perm: &[usize]) -> Result<TensorData> {
    let rank = a.shape().rank();
    if perm.len() != rank {
        return Err(TensorError::InvalidArgument(format!(
            "permutation length {} != rank {rank}",
            perm.len()
        )));
    }
    let mut seen = vec![false; rank];
    for &p in perm {
        if p >= rank || seen[p] {
            return Err(TensorError::InvalidArgument(format!("bad permutation {perm:?}")));
        }
        seen[p] = true;
    }
    let in_dims = a.shape().dims();
    let out_dims: Vec<usize> = perm.iter().map(|&p| in_dims[p]).collect();
    let in_strides = a.shape().strides();
    let out_shape = Shape::new(out_dims.clone());
    let mut out = TensorData::zeros(a.dtype(), out_shape.clone());
    let n = a.num_elements();
    // Walk output elements; map each output coordinate back through perm.
    let mut coords = vec![0usize; rank];
    for lin in 0..n {
        let mut src = 0;
        for (i, &c) in coords.iter().enumerate() {
            src += c * in_strides[perm[i]];
        }
        out.set_f64_linear(lin, a.get_f64_linear(src));
        for i in (0..rank).rev() {
            coords[i] += 1;
            if coords[i] < out_dims[i] {
                break;
            }
            coords[i] = 0;
        }
    }
    // Preserve exact bits for int64; the f64 round-trip above is exact for
    // |x| < 2^53 which covers practical index tensors, but ints deserve an
    // exact path.
    if a.dtype().is_int() || a.dtype() == DType::Bool {
        let mut exact = TensorData::zeros(a.dtype(), out_shape);
        let iv = a.to_i64_vec();
        let mut coords = vec![0usize; rank];
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            let mut src = 0;
            for (i, &c) in coords.iter().enumerate() {
                src += c * in_strides[perm[i]];
            }
            vals.push(iv[src]);
            for i in (0..rank).rev() {
                coords[i] += 1;
                if coords[i] < out_dims[i] {
                    break;
                }
                coords[i] = 0;
            }
        }
        for (i, v) in vals.into_iter().enumerate() {
            exact.set_f64_linear(i, v as f64);
        }
        return Ok(exact);
    }
    Ok(out)
}

/// Insert a size-1 dimension at `axis` (may be `rank`, i.e. append).
///
/// # Errors
/// Axis out of range.
pub fn expand_dims(a: &TensorData, axis: i64) -> Result<TensorData> {
    let rank = a.shape().rank() as i64;
    let ax = if axis < 0 { axis + rank + 1 } else { axis };
    if ax < 0 || ax > rank {
        return Err(TensorError::InvalidAxis { axis, rank: a.shape().rank() });
    }
    let mut dims = a.shape().dims().to_vec();
    dims.insert(ax as usize, 1);
    a.with_shape(dims)
}

/// Remove size-1 dimensions; with `axes` empty, removes all of them.
///
/// # Errors
/// A named axis is not size 1, or out of range.
pub fn squeeze(a: &TensorData, axes: &[i64]) -> Result<TensorData> {
    let dims = a.shape().dims();
    let mut drop = vec![false; dims.len()];
    if axes.is_empty() {
        for (i, &d) in dims.iter().enumerate() {
            drop[i] = d == 1;
        }
    } else {
        for &ax in axes {
            let r = a.shape().resolve_axis(ax)?;
            if dims[r] != 1 {
                return Err(TensorError::InvalidArgument(format!(
                    "cannot squeeze axis {ax} of size {}",
                    dims[r]
                )));
            }
            drop[r] = true;
        }
    }
    let out: Vec<usize> =
        dims.iter().enumerate().filter(|(i, _)| !drop[*i]).map(|(_, &d)| d).collect();
    a.with_shape(out)
}

/// Concatenate tensors along `axis`.
///
/// # Errors
/// Empty input list, dtype/rank mismatches, or non-`axis` dims differing.
pub fn concat(parts: &[&TensorData], axis: i64) -> Result<TensorData> {
    let first = parts.first().ok_or_else(|| {
        TensorError::InvalidArgument("concat requires at least one input".to_string())
    })?;
    let ax = first.shape().resolve_axis(axis)?;
    let rank = first.shape().rank();
    let mut axis_total = 0usize;
    for p in parts {
        if p.dtype() != first.dtype() {
            return Err(TensorError::DTypeMismatch {
                expected: first.dtype().name().to_string(),
                got: p.dtype(),
            });
        }
        if p.shape().rank() != rank {
            return Err(TensorError::ShapeMismatch {
                expected: format!("rank {rank}"),
                got: p.shape().clone(),
            });
        }
        for i in 0..rank {
            if i != ax && p.shape().dim(i) != first.shape().dim(i) {
                return Err(TensorError::ShapeMismatch {
                    expected: format!("dim {i} == {}", first.shape().dim(i)),
                    got: p.shape().clone(),
                });
            }
        }
        axis_total += p.shape().dim(ax);
    }
    let mut out_dims = first.shape().dims().to_vec();
    out_dims[ax] = axis_total;
    let out_shape = Shape::new(out_dims);
    let mut out = TensorData::zeros(first.dtype(), out_shape.clone());

    let outer: usize = first.shape().dims()[..ax].iter().product();
    let inner: usize = first.shape().dims()[ax + 1..].iter().product();
    let mut axis_offset = 0usize;
    for p in parts {
        let extent = p.shape().dim(ax);
        for o in 0..outer {
            for k in 0..extent {
                for i in 0..inner {
                    let src = (o * extent + k) * inner + i;
                    let dst = (o * axis_total + axis_offset + k) * inner + i;
                    out.set_f64_linear(dst, p.get_f64_linear(src));
                }
            }
        }
        axis_offset += extent;
    }
    Ok(out)
}

/// Split a tensor into equal parts along `axis`.
///
/// # Errors
/// `num` does not divide the axis extent.
pub fn split(a: &TensorData, num: usize, axis: i64) -> Result<Vec<TensorData>> {
    let ax = a.shape().resolve_axis(axis)?;
    let extent = a.shape().dim(ax);
    if num == 0 || !extent.is_multiple_of(num) {
        return Err(TensorError::InvalidArgument(format!(
            "cannot split axis of size {extent} into {num} equal parts"
        )));
    }
    let part = extent / num;
    let mut begins = vec![0i64; a.shape().rank()];
    let mut sizes: Vec<i64> = a.shape().dims().iter().map(|&d| d as i64).collect();
    sizes[ax] = part as i64;
    let mut out = Vec::with_capacity(num);
    for i in 0..num {
        begins[ax] = (i * part) as i64;
        out.push(slice(a, &begins, &sizes)?);
    }
    Ok(out)
}

/// Extract a contiguous slice: `begin[i] .. begin[i] + size[i]` per axis.
/// A size of `-1` means "to the end of the axis".
///
/// # Errors
/// Out-of-range begin/size.
pub fn slice(a: &TensorData, begin: &[i64], size: &[i64]) -> Result<TensorData> {
    let rank = a.shape().rank();
    if begin.len() != rank || size.len() != rank {
        return Err(TensorError::InvalidArgument(format!(
            "slice begin/size must have rank {rank}"
        )));
    }
    let dims = a.shape().dims();
    let mut b = vec![0usize; rank];
    let mut s = vec![0usize; rank];
    for i in 0..rank {
        if begin[i] < 0 || begin[i] as usize > dims[i] {
            return Err(TensorError::InvalidArgument(format!(
                "slice begin {} out of range for dim {i} of size {}",
                begin[i], dims[i]
            )));
        }
        b[i] = begin[i] as usize;
        let sz = if size[i] == -1 { dims[i] - b[i] } else { size[i] as usize };
        if size[i] < -1 || b[i] + sz > dims[i] {
            return Err(TensorError::InvalidArgument(format!(
                "slice size {} out of range for dim {i} of size {}",
                size[i], dims[i]
            )));
        }
        s[i] = sz;
    }
    let out_shape = Shape::new(s.clone());
    let mut out = TensorData::zeros(a.dtype(), out_shape.clone());
    let in_strides = a.shape().strides();
    let n = out_shape.num_elements();
    let mut coords = vec![0usize; rank];
    for lin in 0..n {
        let mut src = 0;
        for i in 0..rank {
            src += (coords[i] + b[i]) * in_strides[i];
        }
        out.set_f64_linear(lin, a.get_f64_linear(src));
        for i in (0..rank).rev() {
            coords[i] += 1;
            if coords[i] < s[i] {
                break;
            }
            coords[i] = 0;
        }
    }
    Ok(out)
}

/// Scatter a slice back into a zero tensor of shape `full` (the adjoint of
/// [`slice()`](fn@slice)): output is zero everywhere except the slice region.
///
/// # Errors
/// Region out of range.
pub fn pad_to(a: &TensorData, begin: &[i64], full: &Shape) -> Result<TensorData> {
    let rank = full.rank();
    if a.shape().rank() != rank || begin.len() != rank {
        return Err(TensorError::InvalidArgument("pad_to rank mismatch".to_string()));
    }
    let mut out = TensorData::zeros(a.dtype(), full.clone());
    let out_strides = full.strides();
    let dims = a.shape().dims();
    for i in 0..rank {
        if begin[i] < 0 || begin[i] as usize + dims[i] > full.dim(i) {
            return Err(TensorError::InvalidArgument("pad_to region out of range".to_string()));
        }
    }
    let n = a.num_elements();
    let mut coords = vec![0usize; rank];
    for lin in 0..n {
        let mut dst = 0;
        for i in 0..rank {
            dst += (coords[i] + begin[i] as usize) * out_strides[i];
        }
        out.set_f64_linear(dst, a.get_f64_linear(lin));
        for i in (0..rank).rev() {
            coords[i] += 1;
            if coords[i] < dims[i] {
                break;
            }
            coords[i] = 0;
        }
    }
    Ok(out)
}

/// Constant-pad: `paddings[i] = (before, after)` per axis.
///
/// # Errors
/// Rank mismatch.
pub fn pad(a: &TensorData, paddings: &[(usize, usize)], value: f64) -> Result<TensorData> {
    let rank = a.shape().rank();
    if paddings.len() != rank {
        return Err(TensorError::InvalidArgument(format!("paddings must have rank {rank}")));
    }
    let out_dims: Vec<usize> =
        a.shape().dims().iter().zip(paddings).map(|(&d, &(b, e))| d + b + e).collect();
    let out_shape = Shape::new(out_dims);
    let mut out = TensorData::fill_f64(a.dtype(), out_shape.clone(), value);
    let out_strides = out_shape.strides();
    let dims = a.shape().dims();
    let n = a.num_elements();
    let mut coords = vec![0usize; rank];
    for lin in 0..n {
        let mut dst = 0;
        for i in 0..rank {
            dst += (coords[i] + paddings[i].0) * out_strides[i];
        }
        out.set_f64_linear(dst, a.get_f64_linear(lin));
        for i in (0..rank).rev() {
            coords[i] += 1;
            if coords[i] < dims[i] {
                break;
            }
            coords[i] = 0;
        }
    }
    Ok(out)
}

/// Gather rows (general `axis`) by integer indices, like `tf.gather`.
///
/// # Errors
/// Non-integer indices, axis problems, or out-of-range index values.
pub fn gather(a: &TensorData, indices: &TensorData, axis: i64) -> Result<TensorData> {
    if !indices.dtype().is_int() {
        return Err(TensorError::DTypeMismatch {
            expected: "an integer dtype for indices".to_string(),
            got: indices.dtype(),
        });
    }
    let ax = a.shape().resolve_axis(axis)?;
    let extent = a.shape().dim(ax);
    let idx = indices.to_i64_vec();
    for &i in &idx {
        if i < 0 || i as usize >= extent {
            return Err(TensorError::InvalidArgument(format!(
                "gather index {i} out of range for axis of size {extent}"
            )));
        }
    }
    let outer: usize = a.shape().dims()[..ax].iter().product();
    let inner: usize = a.shape().dims()[ax + 1..].iter().product();
    let mut out_dims = a.shape().dims()[..ax].to_vec();
    out_dims.extend_from_slice(indices.shape().dims());
    out_dims.extend_from_slice(&a.shape().dims()[ax + 1..]);
    let out_shape = Shape::new(out_dims);
    let mut out = TensorData::zeros(a.dtype(), out_shape);
    let m = idx.len();
    for o in 0..outer {
        for (j, &i) in idx.iter().enumerate() {
            for k in 0..inner {
                let src = (o * extent + i as usize) * inner + k;
                let dst = (o * m + j) * inner + k;
                out.set_f64_linear(dst, a.get_f64_linear(src));
            }
        }
    }
    Ok(out)
}

/// Scatter-add `updates` rows into a zero tensor with `dim0` rows (the
/// adjoint of axis-0 [`gather`]): row `indices[j]` accumulates row `j` of
/// `updates`.
///
/// # Errors
/// Shape/index problems.
pub fn scatter_add_rows(
    indices: &TensorData,
    updates: &TensorData,
    dim0: usize,
) -> Result<TensorData> {
    if !indices.dtype().is_int() {
        return Err(TensorError::DTypeMismatch {
            expected: "an integer dtype for indices".to_string(),
            got: indices.dtype(),
        });
    }
    let idx = indices.to_i64_vec();
    if updates.shape().rank() < 1 || updates.shape().dim(0) != idx.len() {
        return Err(TensorError::ShapeMismatch {
            expected: format!("updates with leading dim {}", idx.len()),
            got: updates.shape().clone(),
        });
    }
    let inner: usize = updates.shape().dims()[1..].iter().product();
    let mut out_dims = vec![dim0];
    out_dims.extend_from_slice(&updates.shape().dims()[1..]);
    let mut out = TensorData::zeros(updates.dtype(), out_dims);
    for (j, &i) in idx.iter().enumerate() {
        if i < 0 || i as usize >= dim0 {
            return Err(TensorError::InvalidArgument(format!(
                "scatter index {i} out of range for {dim0} rows"
            )));
        }
        for k in 0..inner {
            let dst = i as usize * inner + k;
            let cur = out.get_f64_linear(dst);
            out.set_f64_linear(dst, cur + updates.get_f64_linear(j * inner + k));
        }
    }
    Ok(out)
}

/// Reverse the order of elements along `axis`.
///
/// # Errors
/// Invalid axis.
pub fn reverse(a: &TensorData, axis: i64) -> Result<TensorData> {
    let ax = a.shape().resolve_axis(axis)?;
    let extent = a.shape().dim(ax);
    let outer: usize = a.shape().dims()[..ax].iter().product();
    let inner: usize = a.shape().dims()[ax + 1..].iter().product();
    let mut out = TensorData::zeros(a.dtype(), a.shape().clone());
    for o in 0..outer {
        for k in 0..extent {
            for i in 0..inner {
                let src = (o * extent + k) * inner + i;
                let dst = (o * extent + (extent - 1 - k)) * inner + i;
                out.set_f64_linear(dst, a.get_f64_linear(src));
            }
        }
    }
    Ok(out)
}

/// Tile (repeat) each axis `multiples[i]` times.
///
/// # Errors
/// Rank mismatch.
pub fn tile(a: &TensorData, multiples: &[usize]) -> Result<TensorData> {
    let rank = a.shape().rank();
    if multiples.len() != rank {
        return Err(TensorError::InvalidArgument(format!("multiples must have rank {rank}")));
    }
    let out_dims: Vec<usize> =
        a.shape().dims().iter().zip(multiples).map(|(&d, &m)| d * m).collect();
    let out_shape = Shape::new(out_dims.clone());
    let in_dims = a.shape().dims();
    let in_strides = a.shape().strides();
    let mut out = TensorData::zeros(a.dtype(), out_shape.clone());
    let n = out_shape.num_elements();
    let mut coords = vec![0usize; rank];
    for lin in 0..n {
        let mut src = 0;
        for i in 0..rank {
            src += (coords[i] % in_dims[i]) * in_strides[i];
        }
        out.set_f64_linear(lin, a.get_f64_linear(src));
        for i in (0..rank).rev() {
            coords[i] += 1;
            if coords[i] < out_dims[i] {
                break;
            }
            coords[i] = 0;
        }
    }
    Ok(out)
}

/// Materialize a broadcast of `a` to `shape`.
///
/// # Errors
/// Shapes not broadcast-compatible, or `shape` smaller than `a`'s.
pub fn broadcast_to(a: &TensorData, shape: &Shape) -> Result<TensorData> {
    let merged = broadcast_shapes(a.shape(), shape)?;
    if &merged != shape {
        return Err(TensorError::BroadcastMismatch { lhs: a.shape().clone(), rhs: shape.clone() });
    }
    let mut out = TensorData::zeros(a.dtype(), shape.clone());
    for (dst, src) in BroadcastWalker::new(shape, a.shape()).enumerate() {
        out.set_f64_linear(dst, a.get_f64_linear(src));
    }
    Ok(out)
}

/// One-hot encode integer `indices` to `depth` classes with given dtype.
/// Appends the class axis at the end, like `tf.one_hot`.
///
/// # Errors
/// Non-integer indices.
pub fn one_hot(indices: &TensorData, depth: usize, dtype: DType) -> Result<TensorData> {
    if !indices.dtype().is_int() {
        return Err(TensorError::DTypeMismatch {
            expected: "an integer dtype for indices".to_string(),
            got: indices.dtype(),
        });
    }
    let idx = indices.to_i64_vec();
    let mut out_dims = indices.shape().dims().to_vec();
    out_dims.push(depth);
    let mut out = TensorData::zeros(dtype, out_dims);
    for (j, &i) in idx.iter().enumerate() {
        if i >= 0 && (i as usize) < depth {
            out.set_f64_linear(j * depth + i as usize, 1.0);
        }
    }
    Ok(out)
}

/// Stack tensors of identical shape along a new leading `axis`.
///
/// # Errors
/// Empty input or shape/dtype mismatches.
pub fn stack(parts: &[&TensorData], axis: i64) -> Result<TensorData> {
    let first = parts.first().ok_or_else(|| {
        TensorError::InvalidArgument("stack requires at least one input".to_string())
    })?;
    let expanded: Vec<TensorData> =
        parts.iter().map(|p| expand_dims(p, axis)).collect::<Result<_>>()?;
    let refs: Vec<&TensorData> = expanded.iter().collect();
    let _ = first;
    concat(&refs, axis)
}

/// Unstack along `axis` into `dim(axis)` tensors with that axis removed.
///
/// # Errors
/// Axis out of range.
pub fn unstack(a: &TensorData, axis: i64) -> Result<Vec<TensorData>> {
    let ax = a.shape().resolve_axis(axis)?;
    let extent = a.shape().dim(ax);
    let parts = split(a, extent, axis)?;
    parts.into_iter().map(|p| squeeze(&p, &[ax as i64])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t6() -> TensorData {
        TensorData::from_vec(vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0], Shape::from([2, 3])).unwrap()
    }

    #[test]
    fn reshape_wildcard() {
        let r = reshape(&t6(), &[3, -1]).unwrap();
        assert_eq!(r.shape().dims(), &[3, 2]);
        assert_eq!(r.to_f64_vec(), t6().to_f64_vec());
        assert!(reshape(&t6(), &[-1, -1]).is_err());
        assert!(reshape(&t6(), &[4, -1]).is_err());
    }

    #[test]
    fn transpose_2d() {
        let r = transpose(&t6(), &[1, 0]).unwrap();
        assert_eq!(r.shape().dims(), &[3, 2]);
        assert_eq!(r.to_f64_vec(), vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn transpose_3d_and_validation() {
        let a = TensorData::from_f64_vec(
            DType::F64,
            (0..24).map(|i| i as f64).collect(),
            Shape::from([2, 3, 4]),
        );
        let r = transpose(&a, &[2, 0, 1]).unwrap();
        assert_eq!(r.shape().dims(), &[4, 2, 3]);
        assert_eq!(r.get_f64(&[1, 0, 2]).unwrap(), a.get_f64(&[0, 2, 1]).unwrap());
        assert!(transpose(&a, &[0, 1]).is_err());
        assert!(transpose(&a, &[0, 0, 1]).is_err());
    }

    #[test]
    fn transpose_int_exact() {
        let a = TensorData::from_vec(vec![1i64, 2, 3, 4], Shape::from([2, 2])).unwrap();
        let r = transpose(&a, &[1, 0]).unwrap();
        assert_eq!(r.to_i64_vec(), vec![1, 3, 2, 4]);
        assert_eq!(r.dtype(), DType::I64);
    }

    #[test]
    fn expand_squeeze_round_trip() {
        let a = t6();
        let e = expand_dims(&a, 1).unwrap();
        assert_eq!(e.shape().dims(), &[2, 1, 3]);
        let s = squeeze(&e, &[1]).unwrap();
        assert_eq!(s.shape().dims(), &[2, 3]);
        let e2 = expand_dims(&a, -1).unwrap();
        assert_eq!(e2.shape().dims(), &[2, 3, 1]);
        assert!(squeeze(&a, &[0]).is_err());
        let all = squeeze(&expand_dims(&e, 0).unwrap(), &[]).unwrap();
        assert_eq!(all.shape().dims(), &[2, 3]);
    }

    #[test]
    fn concat_axis0_axis1() {
        let a = t6();
        let r0 = concat(&[&a, &a], 0).unwrap();
        assert_eq!(r0.shape().dims(), &[4, 3]);
        assert_eq!(r0.get_f64(&[2, 0]).unwrap(), 1.0);
        let r1 = concat(&[&a, &a], 1).unwrap();
        assert_eq!(r1.shape().dims(), &[2, 6]);
        assert_eq!(r1.get_f64(&[0, 3]).unwrap(), 1.0);
        assert_eq!(r1.get_f64(&[1, 5]).unwrap(), 6.0);
    }

    #[test]
    fn concat_validation() {
        let a = t6();
        let b = TensorData::zeros(DType::F32, [2, 2]);
        assert!(concat(&[&a, &b], 0).is_err());
        assert!(concat(&[&a, &b], 1).is_ok());
        let c = TensorData::zeros(DType::F64, [2, 3]);
        assert!(concat(&[&a, &c], 0).is_err());
        assert!(concat(&[], 0).is_err());
    }

    #[test]
    fn split_round_trips_concat() {
        let a = t6();
        let parts = split(&a, 3, 1).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].shape().dims(), &[2, 1]);
        let refs: Vec<&TensorData> = parts.iter().collect();
        assert_eq!(concat(&refs, 1).unwrap(), a);
        assert!(split(&a, 4, 1).is_err());
    }

    #[test]
    fn slice_basic() {
        let a = t6();
        let r = slice(&a, &[0, 1], &[2, 2]).unwrap();
        assert_eq!(r.shape().dims(), &[2, 2]);
        assert_eq!(r.to_f64_vec(), vec![2.0, 3.0, 5.0, 6.0]);
        let full = slice(&a, &[1, 0], &[-1, -1]).unwrap();
        assert_eq!(full.shape().dims(), &[1, 3]);
        assert!(slice(&a, &[0, 2], &[1, 2]).is_err());
    }

    #[test]
    fn pad_and_pad_to() {
        let a = TensorData::from_vec(vec![1.0f32, 2.0], Shape::from([2])).unwrap();
        let p = pad(&a, &[(1, 2)], 0.5).unwrap();
        assert_eq!(p.to_f64_vec(), vec![0.5, 1.0, 2.0, 0.5, 0.5]);
        let back = pad_to(&a, &[1], &Shape::from([4])).unwrap();
        assert_eq!(back.to_f64_vec(), vec![0.0, 1.0, 2.0, 0.0]);
    }

    #[test]
    fn gather_rows_and_axis1() {
        let a = t6();
        let i = TensorData::from_vec(vec![1i64, 0, 1], Shape::from([3])).unwrap();
        let r = gather(&a, &i, 0).unwrap();
        assert_eq!(r.shape().dims(), &[3, 3]);
        assert_eq!(r.get_f64(&[0, 0]).unwrap(), 4.0);
        let j = TensorData::from_vec(vec![2i64, 2], Shape::from([2])).unwrap();
        let r1 = gather(&a, &j, 1).unwrap();
        assert_eq!(r1.shape().dims(), &[2, 2]);
        assert_eq!(r1.to_f64_vec(), vec![3.0, 3.0, 6.0, 6.0]);
        let bad = TensorData::from_vec(vec![5i64], Shape::from([1])).unwrap();
        assert!(gather(&a, &bad, 0).is_err());
    }

    #[test]
    fn scatter_add_accumulates() {
        let idx = TensorData::from_vec(vec![1i64, 1, 0], Shape::from([3])).unwrap();
        let upd = TensorData::from_vec(vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0], Shape::from([3, 2]))
            .unwrap();
        let r = scatter_add_rows(&idx, &upd, 3).unwrap();
        assert_eq!(r.shape().dims(), &[3, 2]);
        assert_eq!(r.to_f64_vec(), vec![5.0, 6.0, 4.0, 6.0, 0.0, 0.0]);
    }

    #[test]
    fn gather_scatter_adjoint_property() {
        // scatter_add(gather(x)) sums duplicate rows — check one case.
        let a = TensorData::from_vec(vec![1.0f32, 2.0, 3.0, 4.0], Shape::from([2, 2])).unwrap();
        let i = TensorData::from_vec(vec![0i64, 0], Shape::from([2])).unwrap();
        let g = gather(&a, &i, 0).unwrap();
        let s = scatter_add_rows(&i, &g, 2).unwrap();
        assert_eq!(s.to_f64_vec(), vec![2.0, 4.0, 0.0, 0.0]);
    }

    #[test]
    fn reverse_axes() {
        let a = t6();
        let r = reverse(&a, 1).unwrap();
        assert_eq!(r.to_f64_vec(), vec![3.0, 2.0, 1.0, 6.0, 5.0, 4.0]);
        let r0 = reverse(&a, 0).unwrap();
        assert_eq!(r0.to_f64_vec(), vec![4.0, 5.0, 6.0, 1.0, 2.0, 3.0]);
        // Involution.
        assert_eq!(reverse(&reverse(&a, -1).unwrap(), -1).unwrap(), a);
        assert!(reverse(&a, 2).is_err());
    }

    #[test]
    fn tile_2d() {
        let a = TensorData::from_vec(vec![1.0f32, 2.0], Shape::from([1, 2])).unwrap();
        let r = tile(&a, &[2, 2]).unwrap();
        assert_eq!(r.shape().dims(), &[2, 4]);
        assert_eq!(r.to_f64_vec(), vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn broadcast_to_materializes() {
        let a = TensorData::from_vec(vec![1.0f32, 2.0], Shape::from([2, 1])).unwrap();
        let r = broadcast_to(&a, &Shape::from([2, 3])).unwrap();
        assert_eq!(r.to_f64_vec(), vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        assert!(broadcast_to(&r, &Shape::from([2, 1])).is_err());
    }

    #[test]
    fn one_hot_encodes() {
        let i = TensorData::from_vec(vec![0i64, 2, 1], Shape::from([3])).unwrap();
        let r = one_hot(&i, 3, DType::F32).unwrap();
        assert_eq!(r.shape().dims(), &[3, 3]);
        assert_eq!(r.to_f64_vec(), vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn stack_unstack_round_trip() {
        let a = TensorData::from_vec(vec![1.0f32, 2.0], Shape::from([2])).unwrap();
        let b = TensorData::from_vec(vec![3.0f32, 4.0], Shape::from([2])).unwrap();
        let s = stack(&[&a, &b], 0).unwrap();
        assert_eq!(s.shape().dims(), &[2, 2]);
        let parts = unstack(&s, 0).unwrap();
        assert_eq!(parts, vec![a, b]);
    }

    proptest! {
        #[test]
        fn reshape_preserves_order(xs in prop::collection::vec(-10.0f64..10.0, 12..=12)) {
            let a = TensorData::from_vec(xs.clone(), Shape::from([12])).unwrap();
            let r = reshape(&a, &[3, 4]).unwrap();
            prop_assert_eq!(r.to_f64_vec(), xs);
        }

        #[test]
        fn transpose_involution(xs in prop::collection::vec(-10.0f64..10.0, 6..=6)) {
            let a = TensorData::from_vec(xs, Shape::from([2, 3])).unwrap();
            let tt = transpose(&transpose(&a, &[1, 0]).unwrap(), &[1, 0]).unwrap();
            prop_assert_eq!(tt, a);
        }

        #[test]
        fn slice_of_pad_recovers(xs in prop::collection::vec(-10.0f64..10.0, 4..=4)) {
            let a = TensorData::from_vec(xs, Shape::from([4])).unwrap();
            let p = pad(&a, &[(2, 3)], 0.0).unwrap();
            let s = slice(&p, &[2], &[4]).unwrap();
            prop_assert_eq!(s, a);
        }

        #[test]
        fn tile_multiplies_elements(m in 1usize..4, n in 1usize..4) {
            let a = TensorData::ones(DType::F32, [2, 2]);
            let r = tile(&a, &[m, n]).unwrap();
            prop_assert_eq!(r.num_elements(), 4 * m * n);
        }
    }
}
