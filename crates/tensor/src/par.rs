//! Bridge between the tensor kernels and the shared worker pool.
//!
//! Kernels split large loops into tiles with [`tfe_parallel::par_for`] /
//! [`tfe_parallel::par_reduce`]; the helpers here handle the one unsafe
//! pattern those splits need — handing each tile a disjoint `&mut` view of
//! the output buffer — plus the grain-size constants that keep small
//! tensors on the serial path (eager dispatch of tiny ops must not pay
//! pool-scheduling overhead).
//!
//! Every parallel kernel in this crate is **thread-count invariant**: tiles
//! write disjoint elements whose math does not depend on the partition, and
//! reductions use `par_reduce`'s fixed chunking. See DESIGN.md
//! ("Two-level parallelism").

use std::ops::Range;

/// Minimum elements before an elementwise map goes parallel.
pub(crate) const GRAIN_ELEMWISE: usize = 4096;
/// Minimum rows before row-wise kernels (softmax, row reduce) go parallel
/// — rows are usually long, so the per-row grain is smaller.
pub(crate) const GRAIN_ROWS: usize = 8;
/// Fixed chunk length (in elements) for deterministic full reductions.
pub(crate) const GRAIN_REDUCE: usize = 8192;

/// A raw pointer that may cross thread boundaries. Used to give parallel
/// tiles disjoint mutable views of one output buffer.
pub(crate) struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: callers guarantee every thread touches a disjoint region and the
// underlying buffer outlives the parallel scope (the splitter joins all
// tiles before returning).
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    pub(crate) fn new(p: *mut T) -> Self {
        Self(p)
    }

    /// Pointer to element `i`.
    ///
    /// # Safety
    /// `i` must be in bounds of the allocation this pointer was taken from,
    /// and concurrent users must access disjoint elements.
    pub(crate) unsafe fn add(self, i: usize) -> *mut T {
        self.0.add(i)
    }

    /// Mutable subslice `[start, start + len)`.
    ///
    /// # Safety
    /// The range must be in bounds and disjoint from every other live view
    /// of the buffer.
    pub(crate) unsafe fn slice_mut<'a>(self, start: usize, len: usize) -> &'a mut [T] {
        std::slice::from_raw_parts_mut(self.add(start), len)
    }
}

/// Fill `out` in parallel: `fill(start, chunk)` receives the absolute start
/// index and the mutable chunk `out[start..start + chunk.len()]`. Chunks
/// are disjoint, so this is safe for any element-independent computation;
/// results are identical for every thread count.
pub(crate) fn par_fill<U, F>(out: &mut [U], grain: usize, fill: F)
where
    U: Send,
    F: Fn(usize, &mut [U]) + Sync,
{
    let ptr = SendPtr::new(out.as_mut_ptr());
    tfe_parallel::par_for(out.len(), grain, |r: Range<usize>| {
        // SAFETY: par_for ranges partition 0..out.len() disjointly and the
        // splitter joins before par_fill returns.
        let chunk = unsafe { ptr.slice_mut(r.start, r.len()) };
        fill(r.start, chunk);
    });
}

/// Like [`par_fill`] but chunks are aligned to `row` elements: `fill(r,
/// rows)` receives a range of row indices and the mutable row block. Used
/// by kernels whose unit of work is one output row (softmax, row-reduce,
/// conv output rows).
pub(crate) fn par_fill_rows<U, F>(out: &mut [U], row: usize, grain_rows: usize, fill: F)
where
    U: Send,
    F: Fn(Range<usize>, &mut [U]) + Sync,
{
    debug_assert!(row > 0 && out.len().is_multiple_of(row));
    let n_rows = out.len() / row;
    let ptr = SendPtr::new(out.as_mut_ptr());
    tfe_parallel::par_for(n_rows, grain_rows, |r: Range<usize>| {
        // SAFETY: disjoint row ranges; splitter joins before return.
        let chunk = unsafe { ptr.slice_mut(r.start * row, r.len() * row) };
        fill(r, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_fill_writes_every_element() {
        let mut out = vec![0usize; 100_000];
        par_fill(&mut out, 512, |start, chunk| {
            for (off, v) in chunk.iter_mut().enumerate() {
                *v = start + off;
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn par_fill_rows_aligns_to_rows() {
        let row = 33;
        let mut out = vec![0usize; row * 1000];
        par_fill_rows(&mut out, row, 4, |rows, chunk| {
            assert_eq!(chunk.len(), rows.len() * row);
            for (off, v) in chunk.iter_mut().enumerate() {
                *v = rows.start * row + off;
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }
}
