//! Max/average 2-D pooling and gradients, NHWC layout.

use crate::conv::Padding;
use crate::{Result, Shape, TensorData, TensorError};

/// Pooling kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Maximum over the window.
    Max,
    /// Mean over the window (dividing by the full window size, as TF does
    /// for interior windows; border windows divide by the valid count).
    Avg,
}

struct PoolGeometry {
    n: usize,
    h: usize,
    w: usize,
    c: usize,
    kh: usize,
    kw: usize,
    sh: usize,
    sw: usize,
    oh: usize,
    ow: usize,
    ph: usize,
    pw: usize,
}

fn geometry(
    input: &Shape,
    ksize: (usize, usize),
    strides: (usize, usize),
    padding: Padding,
) -> Result<PoolGeometry> {
    if input.rank() != 4 {
        return Err(TensorError::ShapeMismatch {
            expected: "NHWC rank-4 input".to_string(),
            got: input.clone(),
        });
    }
    let (kh, kw) = ksize;
    let (sh, sw) = strides;
    if kh == 0 || kw == 0 || sh == 0 || sw == 0 {
        return Err(TensorError::InvalidArgument(
            "pool window and strides must be positive".to_string(),
        ));
    }
    let (n, h, w, c) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let (oh, ph) = padding.resolve(h, kh, sh);
    let (ow, pw) = padding.resolve(w, kw, sw);
    Ok(PoolGeometry { n, h, w, c, kh, kw, sh, sw, oh, ow, ph, pw })
}

/// Forward pooling.
///
/// # Errors
/// Non-float input or invalid geometry.
pub fn pool2d(
    input: &TensorData,
    ksize: (usize, usize),
    strides: (usize, usize),
    padding: Padding,
    kind: PoolKind,
) -> Result<TensorData> {
    if !input.dtype().is_float() {
        return Err(TensorError::DTypeMismatch {
            expected: "a float dtype".to_string(),
            got: input.dtype(),
        });
    }
    let g = geometry(input.shape(), ksize, strides, padding)?;
    let x = input.to_f64_vec();
    let mut out = vec![0.0f64; g.n * g.oh * g.ow * g.c];
    for b in 0..g.n {
        for oy in 0..g.oh {
            for ox in 0..g.ow {
                for ci in 0..g.c {
                    let mut acc = match kind {
                        PoolKind::Max => f64::NEG_INFINITY,
                        PoolKind::Avg => 0.0,
                    };
                    let mut count = 0usize;
                    for ky in 0..g.kh {
                        let iy = (oy * g.sh + ky) as isize - g.ph as isize;
                        if iy < 0 || iy as usize >= g.h {
                            continue;
                        }
                        for kx in 0..g.kw {
                            let ix = (ox * g.sw + kx) as isize - g.pw as isize;
                            if ix < 0 || ix as usize >= g.w {
                                continue;
                            }
                            let v = x[((b * g.h + iy as usize) * g.w + ix as usize) * g.c + ci];
                            match kind {
                                PoolKind::Max => acc = acc.max(v),
                                PoolKind::Avg => acc += v,
                            }
                            count += 1;
                        }
                    }
                    let v = match kind {
                        PoolKind::Max => acc,
                        PoolKind::Avg => {
                            if count == 0 {
                                0.0
                            } else {
                                acc / count as f64
                            }
                        }
                    };
                    out[((b * g.oh + oy) * g.ow + ox) * g.c + ci] = v;
                }
            }
        }
    }
    Ok(TensorData::from_f64_vec(input.dtype(), out, Shape::from([g.n, g.oh, g.ow, g.c])))
}

/// Gradient of [`pool2d`] with respect to its input.
///
/// For max pooling the gradient routes to the (first) argmax element of each
/// window; for average pooling it spreads uniformly over the valid window.
///
/// # Errors
/// Shape or dtype mismatches.
pub fn pool2d_grad(
    input: &TensorData,
    grad_out: &TensorData,
    ksize: (usize, usize),
    strides: (usize, usize),
    padding: Padding,
    kind: PoolKind,
) -> Result<TensorData> {
    let g = geometry(input.shape(), ksize, strides, padding)?;
    if grad_out.shape().dims() != [g.n, g.oh, g.ow, g.c] {
        return Err(TensorError::ShapeMismatch {
            expected: format!("pool output shape ({},{},{},{})", g.n, g.oh, g.ow, g.c),
            got: grad_out.shape().clone(),
        });
    }
    let x = input.to_f64_vec();
    let go = grad_out.to_f64_vec();
    let mut gx = vec![0.0f64; x.len()];
    for b in 0..g.n {
        for oy in 0..g.oh {
            for ox in 0..g.ow {
                for ci in 0..g.c {
                    let gov = go[((b * g.oh + oy) * g.ow + ox) * g.c + ci];
                    match kind {
                        PoolKind::Max => {
                            let mut best = f64::NEG_INFINITY;
                            let mut best_lin = None;
                            for ky in 0..g.kh {
                                let iy = (oy * g.sh + ky) as isize - g.ph as isize;
                                if iy < 0 || iy as usize >= g.h {
                                    continue;
                                }
                                for kx in 0..g.kw {
                                    let ix = (ox * g.sw + kx) as isize - g.pw as isize;
                                    if ix < 0 || ix as usize >= g.w {
                                        continue;
                                    }
                                    let lin =
                                        ((b * g.h + iy as usize) * g.w + ix as usize) * g.c + ci;
                                    if x[lin] > best {
                                        best = x[lin];
                                        best_lin = Some(lin);
                                    }
                                }
                            }
                            if let Some(lin) = best_lin {
                                gx[lin] += gov;
                            }
                        }
                        PoolKind::Avg => {
                            let mut lins = Vec::new();
                            for ky in 0..g.kh {
                                let iy = (oy * g.sh + ky) as isize - g.ph as isize;
                                if iy < 0 || iy as usize >= g.h {
                                    continue;
                                }
                                for kx in 0..g.kw {
                                    let ix = (ox * g.sw + kx) as isize - g.pw as isize;
                                    if ix < 0 || ix as usize >= g.w {
                                        continue;
                                    }
                                    lins.push(
                                        ((b * g.h + iy as usize) * g.w + ix as usize) * g.c + ci,
                                    );
                                }
                            }
                            if !lins.is_empty() {
                                let share = gov / lins.len() as f64;
                                for lin in lins {
                                    gx[lin] += share;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(TensorData::from_f64_vec(input.dtype(), gx, input.shape().clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DType;

    fn image_4x4() -> TensorData {
        TensorData::from_f64_vec(
            DType::F32,
            (0..16).map(|i| i as f64).collect(),
            Shape::from([1, 4, 4, 1]),
        )
    }

    #[test]
    fn max_pool_2x2() {
        let y = pool2d(&image_4x4(), (2, 2), (2, 2), Padding::Valid, PoolKind::Max).unwrap();
        assert_eq!(y.shape().dims(), &[1, 2, 2, 1]);
        assert_eq!(y.to_f64_vec(), vec![5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn avg_pool_2x2() {
        let y = pool2d(&image_4x4(), (2, 2), (2, 2), Padding::Valid, PoolKind::Avg).unwrap();
        assert_eq!(y.to_f64_vec(), vec![2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn same_padding_pool() {
        let x = TensorData::ones(DType::F32, [1, 3, 3, 1]);
        let y = pool2d(&x, (2, 2), (2, 2), Padding::Same, PoolKind::Avg).unwrap();
        assert_eq!(y.shape().dims(), &[1, 2, 2, 1]);
        // Border windows average only valid elements -> still 1.0 everywhere.
        assert_eq!(y.to_f64_vec(), vec![1.0; 4]);
    }

    #[test]
    fn global_avg_pool() {
        let y = pool2d(&image_4x4(), (4, 4), (1, 1), Padding::Valid, PoolKind::Avg).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 1, 1]);
        assert_eq!(y.scalar_f64().unwrap(), 7.5);
    }

    #[test]
    fn max_pool_grad_routes_to_argmax() {
        let x = image_4x4();
        let go = TensorData::ones(DType::F32, [1, 2, 2, 1]);
        let gx = pool2d_grad(&x, &go, (2, 2), (2, 2), Padding::Valid, PoolKind::Max).unwrap();
        let v = gx.to_f64_vec();
        // Max of each window is its bottom-right element: 5, 7, 13, 15.
        assert_eq!(v.iter().filter(|&&x| x == 1.0).count(), 4);
        assert_eq!(v[5], 1.0);
        assert_eq!(v[7], 1.0);
        assert_eq!(v[13], 1.0);
        assert_eq!(v[15], 1.0);
    }

    #[test]
    fn avg_pool_grad_uniform() {
        let x = image_4x4();
        let go = TensorData::ones(DType::F32, [1, 2, 2, 1]);
        let gx = pool2d_grad(&x, &go, (2, 2), (2, 2), Padding::Valid, PoolKind::Avg).unwrap();
        assert_eq!(gx.to_f64_vec(), vec![0.25; 16]);
    }

    #[test]
    fn avg_pool_grad_finite_difference() {
        let xs: Vec<f64> = (0..16).map(|i| (i as f64) * 0.3 - 2.0).collect();
        let x = TensorData::from_vec(xs.clone(), Shape::from([1, 4, 4, 1])).unwrap();
        let loss = |x: &TensorData| -> f64 {
            pool2d(x, (3, 3), (1, 1), Padding::Same, PoolKind::Avg)
                .unwrap()
                .to_f64_vec()
                .iter()
                .sum()
        };
        let y = pool2d(&x, (3, 3), (1, 1), Padding::Same, PoolKind::Avg).unwrap();
        let go = TensorData::ones(DType::F64, y.shape().clone());
        let gx = pool2d_grad(&x, &go, (3, 3), (1, 1), Padding::Same, PoolKind::Avg).unwrap();
        let eps = 1e-6;
        for i in 0..xs.len() {
            let mut xp = xs.clone();
            xp[i] += eps;
            let xp = TensorData::from_vec(xp, Shape::from([1, 4, 4, 1])).unwrap();
            let num = (loss(&xp) - loss(&x)) / eps;
            assert!((num - gx.get_f64_linear(i)).abs() < 1e-4, "elem {i}");
        }
    }

    #[test]
    fn int_pool_rejected() {
        let x = TensorData::zeros(DType::I32, [1, 2, 2, 1]);
        assert!(pool2d(&x, (2, 2), (1, 1), Padding::Valid, PoolKind::Max).is_err());
    }

    #[test]
    fn bad_grad_shape_rejected() {
        let x = image_4x4();
        let go = TensorData::ones(DType::F32, [1, 3, 3, 1]);
        assert!(pool2d_grad(&x, &go, (2, 2), (2, 2), Padding::Valid, PoolKind::Max).is_err());
    }
}
