//! Element types supported by the tensor substrate.

use std::fmt;

/// The element type of a tensor.
///
/// Mirrors the numeric core of TensorFlow's dtype lattice. Every primitive
/// operation declares the dtypes it accepts; mixed-dtype arithmetic is an
/// error (as in TensorFlow, there is no implicit promotion between tensors —
/// use the `cast` operation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DType {
    /// 32-bit IEEE-754 float (the default ML dtype).
    F32,
    /// 64-bit IEEE-754 float.
    F64,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// Boolean.
    Bool,
}

impl DType {
    /// Size in bytes of one element of this dtype.
    pub fn size_bytes(self) -> usize {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::F64 | DType::I64 => 8,
            DType::Bool => 1,
        }
    }

    /// Whether this is a floating-point dtype.
    pub fn is_float(self) -> bool {
        matches!(self, DType::F32 | DType::F64)
    }

    /// Whether this is a signed integer dtype.
    pub fn is_int(self) -> bool {
        matches!(self, DType::I32 | DType::I64)
    }

    /// Short lowercase name, matching TensorFlow's spelling (`float32`, ...).
    pub fn name(self) -> &'static str {
        match self {
            DType::F32 => "float32",
            DType::F64 => "float64",
            DType::I32 => "int32",
            DType::I64 => "int64",
            DType::Bool => "bool",
        }
    }

    /// Parse a dtype from its [`name`](DType::name).
    pub fn from_name(name: &str) -> Option<DType> {
        match name {
            "float32" => Some(DType::F32),
            "float64" => Some(DType::F64),
            "int32" => Some(DType::I32),
            "int64" => Some(DType::I64),
            "bool" => Some(DType::Bool),
            _ => None,
        }
    }

    /// All dtypes, useful for exhaustive property tests.
    pub fn all() -> [DType; 5] {
        [DType::F32, DType::F64, DType::I32, DType::I64, DType::Bool]
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for dt in DType::all() {
            assert_eq!(DType::from_name(dt.name()), Some(dt));
        }
        assert_eq!(DType::from_name("complex64"), None);
    }

    #[test]
    fn sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F64.size_bytes(), 8);
        assert_eq!(DType::I32.size_bytes(), 4);
        assert_eq!(DType::I64.size_bytes(), 8);
        assert_eq!(DType::Bool.size_bytes(), 1);
    }

    #[test]
    fn classification() {
        assert!(DType::F32.is_float());
        assert!(DType::F64.is_float());
        assert!(!DType::I32.is_float());
        assert!(DType::I64.is_int());
        assert!(!DType::Bool.is_int());
        assert!(!DType::Bool.is_float());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(DType::F32.to_string(), "float32");
        assert_eq!(DType::Bool.to_string(), "bool");
    }
}
