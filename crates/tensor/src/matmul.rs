//! Matrix multiplication: 2-D `matmul` with transpose flags and batched
//! matmul with broadcast batch dimensions.
//!
//! Products run on the packed, register-tiled [`crate::gemm`] kernel —
//! all four transpose combinations hit the same fast path (the packing
//! step absorbs the transposes), large products split across the shared
//! worker pool, and every result is bit-for-bit identical to the serial
//! reference loop regardless of thread count.

use crate::gemm::{gemm_into, GemmScalar};
use crate::par::SendPtr;
use crate::{DType, Result, Shape, TensorData, TensorError};

/// Multiply-adds per batch above which `batch_matmul` parallelizes inside
/// each product rather than across batches.
const BATCH_INNER_PAR_MADDS: usize = 1 << 18;

/// Naive serial triple loop, kept as the reference implementation the
/// packed kernel is tested against (`crates/tensor/src/gemm.rs` tests and
/// `tests/kernel_parity.rs`).
#[allow(clippy::too_many_arguments)]
pub fn matmul_reference<T: GemmScalar>(
    a: &[T],
    b: &[T],
    m: usize,
    k: usize,
    n: usize,
    ta: bool,
    tb: bool,
    out: &mut [T],
) {
    let a_at = |i: usize, p: usize| if ta { a[p * m + i] } else { a[i * k + p] };
    let b_at = |p: usize, j: usize| if tb { b[j * k + p] } else { b[p * n + j] };
    for i in 0..m {
        for j in 0..n {
            let mut acc = T::default();
            for p in 0..k {
                acc = acc + a_at(i, p) * b_at(p, j);
            }
            out[i * n + j] = acc;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn mm_f<T: GemmScalar>(
    a: &[T],
    b: &[T],
    m: usize,
    k: usize,
    n: usize,
    ta: bool,
    tb: bool,
    out: &mut [T],
) {
    gemm_into(m, k, n, a, ta, b, tb, out, true);
}

/// 2-D matrix product `op(a) @ op(b)` where `op` optionally transposes.
///
/// Shapes: `a` is `(m, k)` (or `(k, m)` when `transpose_a`), `b` is `(k, n)`
/// (or `(n, k)` when `transpose_b`); the result is `(m, n)`.
///
/// # Errors
/// Non-rank-2 operands, dtype mismatch, non-float dtype, or inner-dimension
/// mismatch.
pub fn matmul(
    a: &TensorData,
    b: &TensorData,
    transpose_a: bool,
    transpose_b: bool,
) -> Result<TensorData> {
    let _sp = tfe_profile::span("intra", || "gemm".to_string());
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            expected: "rank-2 operands for matmul (use batch_matmul for higher ranks)".to_string(),
            got: if a.shape().rank() != 2 { a.shape().clone() } else { b.shape().clone() },
        });
    }
    check_float_pair(a, b)?;
    let (m, k1) = dims2(a, transpose_a);
    let (kb, n) = dims2(b, transpose_b);
    if k1 != kb {
        return Err(TensorError::ShapeMismatch {
            expected: format!("inner dimensions to match ({k1} vs {kb})"),
            got: b.shape().clone(),
        });
    }
    let out_shape = Shape::from([m, n]);
    match a.dtype() {
        DType::F32 => {
            let mut out = vec![0.0f32; m * n];
            mm_f(
                a.as_slice::<f32>()?,
                b.as_slice::<f32>()?,
                m,
                k1,
                n,
                transpose_a,
                transpose_b,
                &mut out,
            );
            TensorData::from_vec(out, out_shape)
        }
        DType::F64 => {
            let mut out = vec![0.0f64; m * n];
            mm_f(
                a.as_slice::<f64>()?,
                b.as_slice::<f64>()?,
                m,
                k1,
                n,
                transpose_a,
                transpose_b,
                &mut out,
            );
            TensorData::from_vec(out, out_shape)
        }
        _ => unreachable!("check_float_pair verified dtype"),
    }
}

fn dims2(t: &TensorData, transpose: bool) -> (usize, usize) {
    if transpose {
        (t.shape().dim(1), t.shape().dim(0))
    } else {
        (t.shape().dim(0), t.shape().dim(1))
    }
}

fn check_float_pair(a: &TensorData, b: &TensorData) -> Result<()> {
    if a.dtype() != b.dtype() {
        return Err(TensorError::DTypeMismatch {
            expected: a.dtype().name().to_string(),
            got: b.dtype(),
        });
    }
    if !a.dtype().is_float() {
        return Err(TensorError::DTypeMismatch {
            expected: "a float dtype".to_string(),
            got: a.dtype(),
        });
    }
    Ok(())
}

/// Batched matmul over the last two dimensions, broadcasting leading batch
/// dimensions NumPy-style. Rank ≥ 2 on both operands.
///
/// # Errors
/// Rank < 2, dtype problems, inner-dimension mismatch, or batch dims that do
/// not broadcast.
pub fn batch_matmul(
    a: &TensorData,
    b: &TensorData,
    transpose_a: bool,
    transpose_b: bool,
) -> Result<TensorData> {
    if a.shape().rank() < 2 || b.shape().rank() < 2 {
        return Err(TensorError::ShapeMismatch {
            expected: "rank >= 2 operands for batch_matmul".to_string(),
            got: if a.shape().rank() < 2 { a.shape().clone() } else { b.shape().clone() },
        });
    }
    if a.shape().rank() == 2 && b.shape().rank() == 2 {
        return matmul(a, b, transpose_a, transpose_b);
    }
    check_float_pair(a, b)?;
    let ar = a.shape().rank();
    let br = b.shape().rank();
    let a_batch = Shape::new(a.shape().dims()[..ar - 2].to_vec());
    let b_batch = Shape::new(b.shape().dims()[..br - 2].to_vec());
    let batch = crate::shape::broadcast_shapes(&a_batch, &b_batch)?;
    let (m, k1) = {
        let d = &a.shape().dims()[ar - 2..];
        if transpose_a {
            (d[1], d[0])
        } else {
            (d[0], d[1])
        }
    };
    let (kb, n) = {
        let d = &b.shape().dims()[br - 2..];
        if transpose_b {
            (d[1], d[0])
        } else {
            (d[0], d[1])
        }
    };
    if k1 != kb {
        return Err(TensorError::ShapeMismatch {
            expected: format!("inner dimensions to match ({k1} vs {kb})"),
            got: b.shape().clone(),
        });
    }
    let mut out_dims = batch.dims().to_vec();
    out_dims.extend_from_slice(&[m, n]);
    let out_shape = Shape::new(out_dims);

    let batch_n = batch.num_elements();
    let a_mat = a.shape().dim(ar - 2) * a.shape().dim(ar - 1);
    let b_mat = b.shape().dim(br - 2) * b.shape().dim(br - 1);
    let wa: Vec<usize> = crate::shape::BroadcastWalker::new(&batch, &a_batch).collect();
    let wb: Vec<usize> = crate::shape::BroadcastWalker::new(&batch, &b_batch).collect();

    match a.dtype() {
        DType::F32 => {
            let mut out = vec![0.0f32; batch_n * m * n];
            batch_mm(
                a.as_slice::<f32>()?,
                b.as_slice::<f32>()?,
                &wa,
                &wb,
                (m, k1, n),
                (transpose_a, transpose_b),
                (a_mat, b_mat),
                &mut out,
            );
            TensorData::from_vec(out, out_shape)
        }
        DType::F64 => {
            let mut out = vec![0.0f64; batch_n * m * n];
            batch_mm(
                a.as_slice::<f64>()?,
                b.as_slice::<f64>()?,
                &wa,
                &wb,
                (m, k1, n),
                (transpose_a, transpose_b),
                (a_mat, b_mat),
                &mut out,
            );
            TensorData::from_vec(out, out_shape)
        }
        _ => unreachable!("check_float_pair verified dtype"),
    }
}

/// Batched product body: a few large products keep the batch loop serial
/// and parallelize inside each gemm; many small products parallelize
/// across batches (grain sized so each task has enough work) and run each
/// gemm serially. Either way every batch's result is the same bits.
#[allow(clippy::too_many_arguments)]
fn batch_mm<T: GemmScalar>(
    av: &[T],
    bv: &[T],
    wa: &[usize],
    wb: &[usize],
    (m, k, n): (usize, usize, usize),
    (ta, tb): (bool, bool),
    (a_mat, b_mat): (usize, usize),
    out: &mut [T],
) {
    let batch_n = wa.len();
    let per = m * n * k;
    if per >= BATCH_INNER_PAR_MADDS {
        for i in 0..batch_n {
            gemm_into(
                m,
                k,
                n,
                &av[wa[i] * a_mat..][..a_mat],
                ta,
                &bv[wb[i] * b_mat..][..b_mat],
                tb,
                &mut out[i * m * n..][..m * n],
                true,
            );
        }
    } else {
        let grain = (BATCH_INNER_PAR_MADDS / per.max(1)).max(1);
        let ptr = SendPtr::new(out.as_mut_ptr());
        tfe_parallel::par_for(batch_n, grain, |bs| {
            for i in bs {
                // SAFETY: batch output slices are disjoint; par_for joins
                // before `out` is released.
                let o = unsafe { ptr.slice_mut(i * m * n, m * n) };
                gemm_into(
                    m,
                    k,
                    n,
                    &av[wa[i] * a_mat..][..a_mat],
                    ta,
                    &bv[wb[i] * b_mat..][..b_mat],
                    tb,
                    o,
                    false,
                );
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(v: Vec<f32>, s: impl Into<Shape>) -> TensorData {
        TensorData::from_vec(v, s).unwrap()
    }

    #[test]
    fn identity_matmul() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let i = TensorData::eye(DType::F32, 2);
        assert_eq!(matmul(&a, &i, false, false).unwrap(), a);
        assert_eq!(matmul(&i, &a, false, false).unwrap(), a);
    }

    #[test]
    fn known_product() {
        // [[1,2],[3,4]] @ [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = t(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = t(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
        let r = matmul(&a, &b, false, false).unwrap();
        assert_eq!(r.to_f64_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn rectangular() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let b = t(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], [3, 2]);
        let r = matmul(&a, &b, false, false).unwrap();
        assert_eq!(r.shape().dims(), &[2, 2]);
        assert_eq!(r.to_f64_vec(), vec![4.0, 5.0, 10.0, 11.0]);
    }

    #[test]
    fn transpose_flags_consistent() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let b = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [3, 2]);
        let plain = matmul(&a, &b, false, false).unwrap();
        // a^T has shape (3,2); (a^T)^T @ b == a @ b
        let at = crate::shape_ops::transpose(&a, &[1, 0]).unwrap();
        let via_ta = matmul(&at, &b, true, false).unwrap();
        assert_eq!(plain, via_ta);
        let bt = crate::shape_ops::transpose(&b, &[1, 0]).unwrap();
        let via_tb = matmul(&a, &bt, false, true).unwrap();
        assert_eq!(plain, via_tb);
        let via_both = matmul(&at, &bt, true, true).unwrap();
        assert_eq!(plain, via_both);
    }

    #[test]
    fn inner_dim_mismatch() {
        let a = t(vec![0.0; 6], [2, 3]);
        let b = t(vec![0.0; 8], [4, 2]);
        assert!(matmul(&a, &b, false, false).is_err());
    }

    #[test]
    fn int_matmul_rejected() {
        let a = TensorData::zeros(DType::I32, [2, 2]);
        assert!(matmul(&a, &a, false, false).is_err());
    }

    #[test]
    fn batch_matmul_basic() {
        // Two batches of 2x2 identity times a.
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], [2, 2, 2]);
        let eye2 = TensorData::eye(DType::F32, 2);
        let i = crate::shape_ops::tile(&eye2.with_shape([1, 2, 2]).unwrap(), &[2, 1, 1]).unwrap();
        let r = batch_matmul(&a, &i, false, false).unwrap();
        assert_eq!(r, a);
    }

    #[test]
    fn batch_matmul_broadcasts_batch_dims() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], [2, 2, 2]);
        let b = TensorData::eye(DType::F32, 2).with_shape([1, 2, 2]).unwrap();
        let r = batch_matmul(&a, &b, false, false).unwrap();
        assert_eq!(r.shape().dims(), &[2, 2, 2]);
        assert_eq!(r, a);
    }

    #[test]
    fn batch_matmul_rank2_falls_back() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = TensorData::eye(DType::F32, 2);
        assert_eq!(batch_matmul(&a, &b, false, false).unwrap(), a);
    }

    proptest! {
        #[test]
        fn matmul_matches_naive(
            m in 1usize..4, k in 1usize..4, n in 1usize..4,
            seed in 0u64..1000
        ) {
            let mut s = seed;
            let mut next = || { s = s.wrapping_mul(6364136223846793005).wrapping_add(1); ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5 };
            let av: Vec<f64> = (0..m*k).map(|_| next()).collect();
            let bv: Vec<f64> = (0..k*n).map(|_| next()).collect();
            let a = TensorData::from_vec(av.clone(), Shape::from([m, k])).unwrap();
            let b = TensorData::from_vec(bv.clone(), Shape::from([k, n])).unwrap();
            let r = matmul(&a, &b, false, false).unwrap();
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0;
                    for p in 0..k { acc += av[i*k+p] * bv[p*n+j]; }
                    prop_assert!((r.get_f64(&[i, j]).unwrap() - acc).abs() < 1e-9);
                }
            }
        }

        #[test]
        fn matmul_left_distributes(
            seed in 0u64..1000
        ) {
            let mut s = seed.wrapping_add(7);
            let mut next = || { s = s.wrapping_mul(6364136223846793005).wrapping_add(1); ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5 };
            let (m, k, n) = (3, 2, 3);
            let a = TensorData::from_vec((0..m*k).map(|_| next()).collect::<Vec<f64>>(), Shape::from([m, k])).unwrap();
            let b = TensorData::from_vec((0..k*n).map(|_| next()).collect::<Vec<f64>>(), Shape::from([k, n])).unwrap();
            let c = TensorData::from_vec((0..k*n).map(|_| next()).collect::<Vec<f64>>(), Shape::from([k, n])).unwrap();
            let bc = crate::elementwise::binary(&b, &c, crate::elementwise::BinaryOp::Add).unwrap();
            let lhs = matmul(&a, &bc, false, false).unwrap();
            let ab = matmul(&a, &b, false, false).unwrap();
            let ac = matmul(&a, &c, false, false).unwrap();
            let rhs = crate::elementwise::binary(&ab, &ac, crate::elementwise::BinaryOp::Add).unwrap();
            prop_assert!(lhs.all_close(&rhs, 1e-9, 1e-9));
        }
    }
}
