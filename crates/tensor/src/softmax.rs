//! Softmax, log-softmax and softmax cross-entropy kernels (last axis),
//! implemented with the usual max-subtraction stabilization.
//!
//! Rows are independent, so the forward kernels split row blocks across
//! the shared worker pool; per-row math depends only on the row itself,
//! making results bit-for-bit identical for every thread count. Within a
//! row, the max and the normalizer fold through
//! [`crate::lanes::lane_fold_f64`]'s fixed 8-lane order: the row max is
//! value-exact (NaN-free inputs), while the exp-sum is reassociated
//! relative to a strict left fold (tolerance mode — see DESIGN.md
//! "Exactness vs. tolerance policy").

use crate::par::{par_fill_rows, GRAIN_ROWS};
use crate::{Result, Shape, TensorData, TensorError};

fn check_float_min_rank(a: &TensorData, min_rank: usize) -> Result<(usize, usize)> {
    if !a.dtype().is_float() {
        return Err(TensorError::DTypeMismatch {
            expected: "a float dtype".to_string(),
            got: a.dtype(),
        });
    }
    if a.shape().rank() < min_rank {
        return Err(TensorError::ShapeMismatch {
            expected: format!("rank >= {min_rank}"),
            got: a.shape().clone(),
        });
    }
    let rank = a.shape().rank();
    let classes = a.shape().dim(rank - 1);
    let rows = a.num_elements() / classes.max(1);
    Ok((rows, classes))
}

/// Softmax over the last axis.
///
/// # Errors
/// Non-float input or rank 0.
pub fn softmax(a: &TensorData) -> Result<TensorData> {
    let (rows, classes) = check_float_min_rank(a, 1)?;
    let x = a.to_f64_vec();
    let mut out = vec![0.0f64; x.len()];
    if classes > 0 && rows > 0 {
        par_fill_rows(&mut out, classes, GRAIN_ROWS, |rs, chunk| {
            for (ri, orow) in rs.zip(chunk.chunks_exact_mut(classes)) {
                let row = &x[ri * classes..(ri + 1) * classes];
                let m = crate::lanes::lane_fold_f64(row, f64::NEG_INFINITY, f64::max);
                for (o, &v) in orow.iter_mut().zip(row) {
                    *o = (v - m).exp();
                }
                let z = crate::lanes::lane_fold_f64(orow, 0.0, |a, b| a + b);
                for o in orow.iter_mut() {
                    *o /= z;
                }
            }
        });
    }
    Ok(TensorData::from_f64_vec(a.dtype(), out, a.shape().clone()))
}

/// Log-softmax over the last axis.
///
/// # Errors
/// Non-float input or rank 0.
pub fn log_softmax(a: &TensorData) -> Result<TensorData> {
    let (rows, classes) = check_float_min_rank(a, 1)?;
    let x = a.to_f64_vec();
    let mut out = vec![0.0f64; x.len()];
    if classes > 0 && rows > 0 {
        par_fill_rows(&mut out, classes, GRAIN_ROWS, |rs, chunk| {
            for (ri, orow) in rs.zip(chunk.chunks_exact_mut(classes)) {
                let row = &x[ri * classes..(ri + 1) * classes];
                let m = crate::lanes::lane_fold_f64(row, f64::NEG_INFINITY, f64::max);
                // Stage the exp terms in the output row so the normalizer
                // can fold them in the fixed lane order.
                for (o, &v) in orow.iter_mut().zip(row) {
                    *o = (v - m).exp();
                }
                let z = crate::lanes::lane_fold_f64(orow, 0.0, |a, b| a + b);
                let lse = m + z.ln();
                for (o, &v) in orow.iter_mut().zip(row) {
                    *o = v - lse;
                }
            }
        });
    }
    Ok(TensorData::from_f64_vec(a.dtype(), out, a.shape().clone()))
}

/// Sparse softmax cross-entropy with integer labels.
///
/// `logits` is `(batch..., classes)`; `labels` holds class indices with
/// shape `(batch...)`. Returns per-example losses of shape `(batch...)` and
/// is paired with [`softmax_xent_grad`] for the backward pass.
///
/// # Errors
/// Dtype/shape mismatches or out-of-range labels.
pub fn sparse_softmax_xent(logits: &TensorData, labels: &TensorData) -> Result<TensorData> {
    let (rows, classes) = check_float_min_rank(logits, 1)?;
    if !labels.dtype().is_int() {
        return Err(TensorError::DTypeMismatch {
            expected: "an integer dtype for labels".to_string(),
            got: labels.dtype(),
        });
    }
    let expected_label_dims = &logits.shape().dims()[..logits.shape().rank() - 1];
    if labels.shape().dims() != expected_label_dims {
        return Err(TensorError::ShapeMismatch {
            expected: format!("labels shape {:?}", expected_label_dims),
            got: labels.shape().clone(),
        });
    }
    let ls = log_softmax(logits)?;
    let lsv = ls.to_f64_vec();
    let lbl = labels.to_i64_vec();
    let mut out = Vec::with_capacity(rows);
    for r in 0..rows {
        let c = lbl[r];
        if c < 0 || c as usize >= classes {
            return Err(TensorError::InvalidArgument(format!(
                "label {c} out of range for {classes} classes"
            )));
        }
        out.push(-lsv[r * classes + c as usize]);
    }
    Ok(TensorData::from_f64_vec(logits.dtype(), out, Shape::new(expected_label_dims.to_vec())))
}

/// Gradient of [`sparse_softmax_xent`] with respect to the logits:
/// `(softmax(logits) - one_hot(labels)) * grad_loss[..., None]`.
///
/// # Errors
/// Same conditions as the forward kernel.
pub fn softmax_xent_grad(
    logits: &TensorData,
    labels: &TensorData,
    grad_loss: &TensorData,
) -> Result<TensorData> {
    let (rows, classes) = check_float_min_rank(logits, 1)?;
    let sm = softmax(logits)?;
    let mut g = sm.to_f64_vec();
    let lbl = labels.to_i64_vec();
    let gl = grad_loss.to_f64_vec();
    if gl.len() != rows {
        return Err(TensorError::ShapeMismatch {
            expected: format!("{rows} per-example loss gradients"),
            got: grad_loss.shape().clone(),
        });
    }
    for r in 0..rows {
        let c = lbl[r];
        if c < 0 || c as usize >= classes {
            return Err(TensorError::InvalidArgument(format!(
                "label {c} out of range for {classes} classes"
            )));
        }
        g[r * classes + c as usize] -= 1.0;
        for j in 0..classes {
            g[r * classes + j] *= gl[r];
        }
    }
    Ok(TensorData::from_f64_vec(logits.dtype(), g, logits.shape().clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DType;
    use proptest::prelude::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = TensorData::from_vec(vec![1.0f64, 2.0, 3.0, 1.0, 1.0, 1.0], Shape::from([2, 3]))
            .unwrap();
        let s = softmax(&a).unwrap();
        let v = s.to_f64_vec();
        assert!((v[0] + v[1] + v[2] - 1.0).abs() < 1e-12);
        assert!((v[3] - 1.0 / 3.0).abs() < 1e-12);
        assert!(v[2] > v[1] && v[1] > v[0]);
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let a = TensorData::from_vec(vec![1000.0f64, 1001.0], Shape::from([2])).unwrap();
        let s = softmax(&a).unwrap().to_f64_vec();
        assert!(s.iter().all(|v| v.is_finite()));
        assert!((s[0] + s[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let a = TensorData::from_vec(vec![0.5f64, -1.0, 2.0], Shape::from([3])).unwrap();
        let s = softmax(&a).unwrap().to_f64_vec();
        let ls = log_softmax(&a).unwrap().to_f64_vec();
        for (p, lp) in s.iter().zip(&ls) {
            assert!((p.ln() - lp).abs() < 1e-10);
        }
    }

    #[test]
    fn xent_uniform_logits() {
        let logits = TensorData::zeros(DType::F64, [2, 4]);
        let labels = TensorData::from_vec(vec![0i64, 3], Shape::from([2])).unwrap();
        let loss = sparse_softmax_xent(&logits, &labels).unwrap();
        for v in loss.to_f64_vec() {
            assert!((v - 4.0f64.ln()).abs() < 1e-12);
        }
    }

    #[test]
    fn xent_label_validation() {
        let logits = TensorData::zeros(DType::F64, [1, 3]);
        let bad = TensorData::from_vec(vec![3i64], Shape::from([1])).unwrap();
        assert!(sparse_softmax_xent(&logits, &bad).is_err());
        let wrong_shape = TensorData::from_vec(vec![0i64, 1], Shape::from([2])).unwrap();
        assert!(sparse_softmax_xent(&logits, &wrong_shape).is_err());
        let float_labels = TensorData::zeros(DType::F32, [1]);
        assert!(sparse_softmax_xent(&logits, &float_labels).is_err());
    }

    #[test]
    fn xent_grad_finite_difference() {
        let xs = vec![0.3f64, -0.7, 1.2, 0.0, 0.5, -0.1];
        let logits = TensorData::from_vec(xs.clone(), Shape::from([2, 3])).unwrap();
        let labels = TensorData::from_vec(vec![2i64, 0], Shape::from([2])).unwrap();
        let ones = TensorData::ones(DType::F64, [2]);
        let g = softmax_xent_grad(&logits, &labels, &ones).unwrap();
        let loss_sum = |l: &TensorData| -> f64 {
            sparse_softmax_xent(l, &labels).unwrap().to_f64_vec().iter().sum()
        };
        let eps = 1e-6;
        for i in 0..xs.len() {
            let mut xp = xs.clone();
            xp[i] += eps;
            let lp = TensorData::from_vec(xp, Shape::from([2, 3])).unwrap();
            let num = (loss_sum(&lp) - loss_sum(&logits)) / eps;
            assert!((num - g.get_f64_linear(i)).abs() < 1e-5, "logit {i}");
        }
    }

    #[test]
    fn xent_grad_rows_sum_to_zero() {
        let logits =
            TensorData::from_vec(vec![0.3f64, -0.7, 1.2, 0.0, 0.5, -0.1], Shape::from([2, 3]))
                .unwrap();
        let labels = TensorData::from_vec(vec![1i64, 2], Shape::from([2])).unwrap();
        let ones = TensorData::ones(DType::F64, [2]);
        let g = softmax_xent_grad(&logits, &labels, &ones).unwrap().to_f64_vec();
        assert!((g[0] + g[1] + g[2]).abs() < 1e-12);
        assert!((g[3] + g[4] + g[5]).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn softmax_invariant_to_shift(xs in prop::collection::vec(-5.0f64..5.0, 4..=4), c in -10.0f64..10.0) {
            let a = TensorData::from_vec(xs.clone(), Shape::from([4])).unwrap();
            let shifted = TensorData::from_vec(xs.iter().map(|v| v + c).collect::<Vec<_>>(), Shape::from([4])).unwrap();
            let s1 = softmax(&a).unwrap();
            let s2 = softmax(&shifted).unwrap();
            prop_assert!(s1.all_close(&s2, 1e-9, 1e-9));
        }

        #[test]
        fn softmax_outputs_are_probabilities(xs in prop::collection::vec(-20.0f64..20.0, 1..8)) {
            let n = xs.len();
            let a = TensorData::from_vec(xs, Shape::from([n])).unwrap();
            let s = softmax(&a).unwrap().to_f64_vec();
            let total: f64 = s.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}
