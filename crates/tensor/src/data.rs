//! Concrete tensor storage: a contiguous row-major buffer plus a shape.

use crate::{DType, Result, Shape, TensorError};
use std::fmt;

/// Marker trait connecting Rust scalar types to [`DType`]s.
///
/// Sealed in practice: only the five buffer element types implement it.
pub trait Scalar: Copy + PartialEq + PartialOrd + fmt::Debug + Send + Sync + 'static {
    /// The dtype corresponding to this Rust type.
    const DTYPE: DType;
    /// Lossy conversion to `f64` (bool maps to 0.0/1.0).
    fn to_f64(self) -> f64;
    /// Lossy conversion from `f64` (bool is `v != 0.0`; ints truncate).
    fn from_f64(v: f64) -> Self;
    /// View a buffer as a slice of this type, if the dtype matches.
    fn slice(buf: &Buffer) -> Option<&[Self]>;
    /// Mutable variant of [`Scalar::slice`].
    fn slice_mut(buf: &mut Buffer) -> Option<&mut [Self]>;
    /// Wrap a vector of this type into a buffer.
    fn into_buffer(v: Vec<Self>) -> Buffer;
}

macro_rules! impl_scalar {
    ($ty:ty, $dtype:expr, $variant:ident, $to:expr, $from:expr) => {
        impl Scalar for $ty {
            const DTYPE: DType = $dtype;
            fn to_f64(self) -> f64 {
                ($to)(self)
            }
            fn from_f64(v: f64) -> Self {
                ($from)(v)
            }
            fn slice(buf: &Buffer) -> Option<&[Self]> {
                match buf {
                    Buffer::$variant(v) => Some(v),
                    _ => None,
                }
            }
            fn slice_mut(buf: &mut Buffer) -> Option<&mut [Self]> {
                match buf {
                    Buffer::$variant(v) => Some(v),
                    _ => None,
                }
            }
            fn into_buffer(v: Vec<Self>) -> Buffer {
                Buffer::$variant(v)
            }
        }
    };
}

impl_scalar!(f32, DType::F32, F32, |x: f32| x as f64, |v: f64| v as f32);
impl_scalar!(f64, DType::F64, F64, |x: f64| x, |v: f64| v);
impl_scalar!(i32, DType::I32, I32, |x: i32| x as f64, |v: f64| v as i32);
impl_scalar!(i64, DType::I64, I64, |x: i64| x as f64, |v: f64| v as i64);
impl_scalar!(bool, DType::Bool, Bool, |x: bool| if x { 1.0 } else { 0.0 }, |v: f64| v != 0.0);

/// Typed contiguous storage for tensor elements.
#[derive(Clone, PartialEq)]
pub enum Buffer {
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// 32-bit ints.
    I32(Vec<i32>),
    /// 64-bit ints.
    I64(Vec<i64>),
    /// Booleans.
    Bool(Vec<bool>),
}

impl Buffer {
    /// The dtype stored by this buffer.
    pub fn dtype(&self) -> DType {
        match self {
            Buffer::F32(_) => DType::F32,
            Buffer::F64(_) => DType::F64,
            Buffer::I32(_) => DType::I32,
            Buffer::I64(_) => DType::I64,
            Buffer::Bool(_) => DType::Bool,
        }
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        match self {
            Buffer::F32(v) => v.len(),
            Buffer::F64(v) => v.len(),
            Buffer::I32(v) => v.len(),
            Buffer::I64(v) => v.len(),
            Buffer::Bool(v) => v.len(),
        }
    }

    /// Whether the buffer holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocate a zero-filled buffer of `len` elements of `dtype`.
    pub fn zeros(dtype: DType, len: usize) -> Buffer {
        match dtype {
            DType::F32 => Buffer::F32(vec![0.0; len]),
            DType::F64 => Buffer::F64(vec![0.0; len]),
            DType::I32 => Buffer::I32(vec![0; len]),
            DType::I64 => Buffer::I64(vec![0; len]),
            DType::Bool => Buffer::Bool(vec![false; len]),
        }
    }
}

impl fmt::Debug for Buffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Buffer<{}>[{}]", self.dtype(), self.len())
    }
}

/// A dense, contiguous, row-major multi-dimensional array.
///
/// `TensorData` is the concrete value produced by executing a kernel; the
/// runtime wraps it in device-placed handles. It is immutable by convention:
/// operations return new `TensorData` values (variables swap whole buffers).
///
/// # Examples
///
/// ```
/// use tfe_tensor::{TensorData, Shape, DType};
/// let t = TensorData::from_vec(vec![1.0f32, 2.0, 3.0, 4.0], Shape::from([2, 2])).unwrap();
/// assert_eq!(t.dtype(), DType::F32);
/// assert_eq!(t.shape().dims(), &[2, 2]);
/// assert_eq!(t.get_f64(&[1, 0]).unwrap(), 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct TensorData {
    shape: Shape,
    buf: Buffer,
}

impl TensorData {
    /// Build a tensor from a flat vector and a shape.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when the element count does not
    /// match the shape.
    pub fn from_vec<T: Scalar>(data: Vec<T>, shape: impl Into<Shape>) -> Result<TensorData> {
        let shape = shape.into();
        if data.len() != shape.num_elements() {
            return Err(TensorError::ShapeMismatch {
                expected: format!("{} elements for shape {shape}", shape.num_elements()),
                got: Shape::from([data.len()]),
            });
        }
        Ok(TensorData { shape, buf: T::into_buffer(data) })
    }

    /// Build a tensor from an existing buffer and shape.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] on element-count mismatch.
    pub fn from_buffer(buf: Buffer, shape: impl Into<Shape>) -> Result<TensorData> {
        let shape = shape.into();
        if buf.len() != shape.num_elements() {
            return Err(TensorError::ShapeMismatch {
                expected: format!("{} elements for shape {shape}", shape.num_elements()),
                got: Shape::from([buf.len()]),
            });
        }
        Ok(TensorData { shape, buf })
    }

    /// A rank-0 tensor holding one value.
    pub fn scalar<T: Scalar>(value: T) -> TensorData {
        TensorData { shape: Shape::scalar(), buf: T::into_buffer(vec![value]) }
    }

    /// A zero-filled tensor.
    pub fn zeros(dtype: DType, shape: impl Into<Shape>) -> TensorData {
        let shape = shape.into();
        let buf = Buffer::zeros(dtype, shape.num_elements());
        TensorData { shape, buf }
    }

    /// A one-filled tensor.
    pub fn ones(dtype: DType, shape: impl Into<Shape>) -> TensorData {
        TensorData::fill_f64(dtype, shape, 1.0)
    }

    /// A tensor filled with `value`, converted into `dtype`.
    pub fn fill_f64(dtype: DType, shape: impl Into<Shape>, value: f64) -> TensorData {
        let shape = shape.into();
        let n = shape.num_elements();
        let buf = match dtype {
            DType::F32 => Buffer::F32(vec![value as f32; n]),
            DType::F64 => Buffer::F64(vec![value; n]),
            DType::I32 => Buffer::I32(vec![value as i32; n]),
            DType::I64 => Buffer::I64(vec![value as i64; n]),
            DType::Bool => Buffer::Bool(vec![value != 0.0; n]),
        };
        TensorData { shape, buf }
    }

    /// The identity matrix of size `n` with the given float dtype.
    pub fn eye(dtype: DType, n: usize) -> TensorData {
        let mut t = TensorData::zeros(dtype, [n, n]);
        for i in 0..n {
            t.set_f64_linear(i * n + i, 1.0);
        }
        t
    }

    /// `[start, start+step, ...)` with `count` elements, like `tf.range`.
    pub fn range_f64(dtype: DType, start: f64, step: f64, count: usize) -> TensorData {
        let vals: Vec<f64> = (0..count).map(|i| start + step * i as f64).collect();
        TensorData::from_f64_vec(dtype, vals, Shape::from([count]))
    }

    /// Build a tensor of `dtype` from `f64` values (converted per element).
    ///
    /// # Panics
    /// Panics if `vals.len()` does not match `shape` (internal constructor).
    pub fn from_f64_vec(dtype: DType, vals: Vec<f64>, shape: impl Into<Shape>) -> TensorData {
        let shape = shape.into();
        assert_eq!(vals.len(), shape.num_elements(), "from_f64_vec length mismatch");
        let buf = match dtype {
            DType::F32 => Buffer::F32(vals.iter().map(|&v| v as f32).collect()),
            DType::F64 => Buffer::F64(vals),
            DType::I32 => Buffer::I32(vals.iter().map(|&v| v as i32).collect()),
            DType::I64 => Buffer::I64(vals.iter().map(|&v| v as i64).collect()),
            DType::Bool => Buffer::Bool(vals.iter().map(|&v| v != 0.0).collect()),
        };
        TensorData { shape, buf }
    }

    /// The element dtype.
    pub fn dtype(&self) -> DType {
        self.buf.dtype()
    }

    /// The tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn num_elements(&self) -> usize {
        self.shape.num_elements()
    }

    /// The underlying buffer.
    pub fn buffer(&self) -> &Buffer {
        &self.buf
    }

    /// Consume into the underlying buffer and shape.
    pub fn into_parts(self) -> (Buffer, Shape) {
        (self.buf, self.shape)
    }

    /// Typed view of the elements.
    ///
    /// # Errors
    /// Returns [`TensorError::DTypeMismatch`] when `T` does not match.
    pub fn as_slice<T: Scalar>(&self) -> Result<&[T]> {
        T::slice(&self.buf).ok_or(TensorError::DTypeMismatch {
            expected: T::DTYPE.name().to_string(),
            got: self.dtype(),
        })
    }

    /// Mutable typed view of the elements.
    ///
    /// # Errors
    /// Returns [`TensorError::DTypeMismatch`] when `T` does not match.
    pub fn as_slice_mut<T: Scalar>(&mut self) -> Result<&mut [T]> {
        let dtype = self.dtype();
        T::slice_mut(&mut self.buf)
            .ok_or(TensorError::DTypeMismatch { expected: T::DTYPE.name().to_string(), got: dtype })
    }

    /// Read one element at a multi-index, converted to `f64`.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] for a bad index.
    pub fn get_f64(&self, index: &[usize]) -> Result<f64> {
        if index.len() != self.shape.rank() {
            return Err(TensorError::InvalidArgument(format!(
                "index rank {} does not match tensor rank {}",
                index.len(),
                self.shape.rank()
            )));
        }
        let strides = self.shape.strides();
        let mut linear = 0;
        for (i, (&ix, &d)) in index.iter().zip(self.shape.dims()).enumerate() {
            if ix >= d {
                return Err(TensorError::InvalidArgument(format!(
                    "index {ix} out of bounds for dim {i} of size {d}"
                )));
            }
            linear += ix * strides[i];
        }
        Ok(self.get_f64_linear(linear))
    }

    /// Read the element at a linear (row-major) offset as `f64`.
    ///
    /// # Panics
    /// Panics if `linear` is out of bounds.
    pub fn get_f64_linear(&self, linear: usize) -> f64 {
        match &self.buf {
            Buffer::F32(v) => v[linear] as f64,
            Buffer::F64(v) => v[linear],
            Buffer::I32(v) => v[linear] as f64,
            Buffer::I64(v) => v[linear] as f64,
            Buffer::Bool(v) => {
                if v[linear] {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Write the element at a linear offset from an `f64` value.
    ///
    /// # Panics
    /// Panics if `linear` is out of bounds.
    pub fn set_f64_linear(&mut self, linear: usize, value: f64) {
        match &mut self.buf {
            Buffer::F32(v) => v[linear] = value as f32,
            Buffer::F64(v) => v[linear] = value,
            Buffer::I32(v) => v[linear] = value as i32,
            Buffer::I64(v) => v[linear] = value as i64,
            Buffer::Bool(v) => v[linear] = value != 0.0,
        }
    }

    /// The single value of a rank-0 or single-element tensor, as `f64`.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when the tensor has more than
    /// one element.
    pub fn scalar_f64(&self) -> Result<f64> {
        if self.num_elements() != 1 {
            return Err(TensorError::ShapeMismatch {
                expected: "a single-element tensor".to_string(),
                got: self.shape.clone(),
            });
        }
        Ok(self.get_f64_linear(0))
    }

    /// All elements converted to `f64`, in row-major order.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        (0..self.num_elements()).map(|i| self.get_f64_linear(i)).collect()
    }

    /// All elements converted to `i64`, in row-major order.
    ///
    /// Float values are truncated toward zero.
    pub fn to_i64_vec(&self) -> Vec<i64> {
        match &self.buf {
            Buffer::F32(v) => v.iter().map(|&x| x as i64).collect(),
            Buffer::F64(v) => v.iter().map(|&x| x as i64).collect(),
            Buffer::I32(v) => v.iter().map(|&x| x as i64).collect(),
            Buffer::I64(v) => v.clone(),
            Buffer::Bool(v) => v.iter().map(|&x| x as i64).collect(),
        }
    }

    /// Convert this tensor to another dtype, element by element.
    ///
    /// Float→int truncates toward zero; anything→bool is `!= 0`;
    /// bool→numeric is 0/1. Casting to the same dtype is a cheap clone.
    pub fn cast(&self, dtype: DType) -> TensorData {
        if dtype == self.dtype() {
            return self.clone();
        }
        let n = self.num_elements();
        let vals: Vec<f64> = (0..n).map(|i| self.get_f64_linear(i)).collect();
        // Int64 values above 2^53 would lose precision through f64; handle
        // the int-to-int paths exactly.
        match (&self.buf, dtype) {
            (Buffer::I64(v), DType::I32) => {
                TensorData::from_vec(v.iter().map(|&x| x as i32).collect(), self.shape.clone())
                    .expect("same length")
            }
            (Buffer::I32(v), DType::I64) => {
                TensorData::from_vec(v.iter().map(|&x| x as i64).collect(), self.shape.clone())
                    .expect("same length")
            }
            _ => TensorData::from_f64_vec(dtype, vals, self.shape.clone()),
        }
    }

    /// Reinterpret the data with a new shape of equal element count.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when counts differ.
    pub fn with_shape(&self, shape: impl Into<Shape>) -> Result<TensorData> {
        let shape = shape.into();
        if shape.num_elements() != self.num_elements() {
            return Err(TensorError::ShapeMismatch {
                expected: format!("{} elements", self.num_elements()),
                got: shape,
            });
        }
        Ok(TensorData { shape, buf: self.buf.clone() })
    }

    /// Approximate equality for float tensors (exact for other dtypes).
    ///
    /// Useful in tests; `rtol`/`atol` follow the NumPy `allclose` convention.
    pub fn all_close(&self, other: &TensorData, rtol: f64, atol: f64) -> bool {
        if self.shape != other.shape || self.dtype() != other.dtype() {
            return false;
        }
        (0..self.num_elements()).all(|i| {
            let a = self.get_f64_linear(i);
            let b = other.get_f64_linear(i);
            if a.is_nan() && b.is_nan() {
                return true;
            }
            (a - b).abs() <= atol + rtol * b.abs()
        })
    }
}

impl fmt::Debug for TensorData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TensorData(shape={}, dtype={}, ", self.shape, self.dtype())?;
        let n = self.num_elements();
        let show = n.min(8);
        write!(f, "[")?;
        for i in 0..show {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.get_f64_linear(i))?;
        }
        if n > show {
            write!(f, ", ...")?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(TensorData::from_vec(vec![1.0f32, 2.0], Shape::from([3])).is_err());
        assert!(TensorData::from_vec(vec![1.0f32, 2.0, 3.0], Shape::from([3])).is_ok());
    }

    #[test]
    fn scalar_round_trip() {
        let t = TensorData::scalar(3.5f32);
        assert_eq!(t.shape().rank(), 0);
        assert_eq!(t.scalar_f64().unwrap(), 3.5);
    }

    #[test]
    fn zeros_ones_fill() {
        let z = TensorData::zeros(DType::I32, [2, 2]);
        assert_eq!(z.to_f64_vec(), vec![0.0; 4]);
        let o = TensorData::ones(DType::F64, [3]);
        assert_eq!(o.to_f64_vec(), vec![1.0; 3]);
        let f = TensorData::fill_f64(DType::F32, [2], 2.5);
        assert_eq!(f.to_f64_vec(), vec![2.5, 2.5]);
    }

    #[test]
    fn eye_matrix() {
        let e = TensorData::eye(DType::F32, 3);
        assert_eq!(e.get_f64(&[0, 0]).unwrap(), 1.0);
        assert_eq!(e.get_f64(&[0, 1]).unwrap(), 0.0);
        assert_eq!(e.get_f64(&[2, 2]).unwrap(), 1.0);
    }

    #[test]
    fn range_values() {
        let r = TensorData::range_f64(DType::I64, 2.0, 3.0, 4);
        assert_eq!(r.to_i64_vec(), vec![2, 5, 8, 11]);
    }

    #[test]
    fn get_set_multi_index() {
        let mut t = TensorData::zeros(DType::F32, [2, 3]);
        t.set_f64_linear(4, 7.0);
        assert_eq!(t.get_f64(&[1, 1]).unwrap(), 7.0);
        assert!(t.get_f64(&[2, 0]).is_err());
        assert!(t.get_f64(&[0]).is_err());
    }

    #[test]
    fn cast_paths() {
        let t = TensorData::from_vec(vec![1.7f32, -2.3, 0.0], Shape::from([3])).unwrap();
        assert_eq!(t.cast(DType::I32).to_i64_vec(), vec![1, -2, 0]);
        assert_eq!(t.cast(DType::Bool).to_f64_vec(), vec![1.0, 1.0, 0.0]);
        let b = TensorData::from_vec(vec![true, false], Shape::from([2])).unwrap();
        assert_eq!(b.cast(DType::F32).to_f64_vec(), vec![1.0, 0.0]);
        // Exact int64 -> int32 path.
        let big = TensorData::from_vec(vec![i64::from(i32::MAX)], Shape::from([1])).unwrap();
        assert_eq!(big.cast(DType::I32).to_i64_vec(), vec![i64::from(i32::MAX)]);
    }

    #[test]
    fn cast_same_dtype_is_identity() {
        let t = TensorData::from_vec(vec![1.0f64, 2.0], Shape::from([2])).unwrap();
        assert_eq!(t.cast(DType::F64), t);
    }

    #[test]
    fn as_slice_type_checked() {
        let t = TensorData::from_vec(vec![1i32, 2], Shape::from([2])).unwrap();
        assert!(t.as_slice::<i32>().is_ok());
        assert!(t.as_slice::<f32>().is_err());
    }

    #[test]
    fn with_shape_preserves_data() {
        let t = TensorData::from_vec(vec![1.0f32, 2.0, 3.0, 4.0], Shape::from([4])).unwrap();
        let r = t.with_shape([2, 2]).unwrap();
        assert_eq!(r.get_f64(&[1, 0]).unwrap(), 3.0);
        assert!(t.with_shape([3]).is_err());
    }

    #[test]
    fn all_close_tolerances() {
        let a = TensorData::from_vec(vec![1.0f32, 2.0], Shape::from([2])).unwrap();
        let b = TensorData::from_vec(vec![1.0f32 + 1e-7, 2.0], Shape::from([2])).unwrap();
        assert!(a.all_close(&b, 1e-5, 1e-6));
        let c = TensorData::from_vec(vec![1.1f32, 2.0], Shape::from([2])).unwrap();
        assert!(!a.all_close(&c, 1e-5, 1e-6));
    }

    #[test]
    fn debug_truncates() {
        let t = TensorData::zeros(DType::F32, [100]);
        let s = format!("{t:?}");
        assert!(s.contains("..."));
        assert!(s.contains("float32"));
    }
}
