//! The persistent work-helping worker pool (moved here from `tfe-runtime`
//! so the tensor kernels below the runtime can share it).
//!
//! Workers are spawned once, lazily, and parked on a condition variable;
//! both the graph scheduler and the intra-op splitter enqueue jobs on the
//! same queue. Threads that must wait for a result — the caller of a run, a
//! worker executing a nested `call`, or a kernel waiting for its tiles — do
//! not block idly: they *help*, popping jobs off the same queue until their
//! own completion condition holds. That work-helping loop is what makes
//! nested parallel runs deadlock-free even when every worker is busy.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::Duration;

/// A unit of work: one ready graph node, or one kernel tile batch.
pub type Job = Box<dyn FnOnce() + Send>;

/// The shared job queue plus its wakeup signal.
pub struct Pool {
    queue: Mutex<VecDeque<Job>>,
    signal: Condvar,
}

/// Number of worker threads the global pool runs: the machine's available
/// parallelism clamped to 1..=16, overridable with the `TFE_NUM_THREADS`
/// environment variable (read once, at first use).
pub fn worker_count() -> usize {
    static COUNT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *COUNT.get_or_init(|| {
        if let Ok(v) = std::env::var("TFE_NUM_THREADS") {
            match v.trim().parse::<usize>() {
                Ok(n) => return n.clamp(1, 64),
                Err(_) => eprintln!(
                    "tf-eager: ignoring unparseable TFE_NUM_THREADS={v:?} \
                     (expected a positive integer); using detected parallelism"
                ),
            }
        }
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).clamp(1, 16)
    })
}

/// The process-wide pool. Workers are spawned on first access.
pub fn global() -> &'static Pool {
    static POOL: std::sync::OnceLock<Pool> = std::sync::OnceLock::new();
    POOL.get_or_init(|| {
        let pool = Pool { queue: Mutex::new(VecDeque::new()), signal: Condvar::new() };
        for i in 0..worker_count() {
            std::thread::Builder::new()
                .name(format!("tfe-exec-{i}"))
                .spawn(worker_loop)
                .expect("spawn executor worker");
        }
        pool
    })
}

fn worker_loop() {
    let pool = global();
    loop {
        // Idle-gap sampling: when profiling is on, the stretch between
        // finishing one job and acquiring the next becomes an `idle` span
        // on this worker's timeline row (sub-10µs gaps are noise and
        // would swamp the trace, so they are dropped).
        let idle_from = tfe_profile::enabled().then(tfe_profile::now_ns);
        let job = {
            let mut q = pool.queue.lock();
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                pool.signal.wait(&mut q);
            }
        };
        if let Some(t0) = idle_from {
            if tfe_profile::now_ns().saturating_sub(t0) > 10_000 {
                tfe_profile::span_from("pool", || "idle".to_string(), t0);
            }
        }
        // Job bodies catch node/tile-level panics themselves; a stray panic
        // here would only kill this worker, and the helping waiters still
        // drain the queue, so the pool degrades rather than deadlocks.
        job();
    }
}

impl Pool {
    /// Enqueue a job and wake a worker. Returns the queue depth right after
    /// the push (for scheduler telemetry).
    pub fn submit(&self, job: Job) -> usize {
        tfe_metrics::static_counter!(
            "tfe_pool_jobs_total",
            "Jobs submitted to the shared worker pool (graph nodes + kernel tiles)"
        )
        .inc();
        // Pool task latency: every job is wrapped so the executing thread
        // records how long it sat in the queue (always-on histogram; the
        // profiler additionally gets per-job counters when enabled). The
        // wrapper is also the causal envelope: the submitter's trace group
        // is captured here and re-installed on whichever thread runs the
        // job, so graph nodes and kernel tiles stay attributed to the
        // request that scheduled them.
        let submitted = std::time::Instant::now();
        let profiling = tfe_profile::enabled();
        let group = tfe_profile::current_group();
        let job = Box::new(move || {
            let _trace = tfe_profile::adopt(group.as_ref(), "pool");
            let waited = submitted.elapsed().as_nanos() as u64;
            tfe_metrics::static_histogram!(
                "tfe_pool_queue_wait_ns",
                "Nanoseconds a pool job waited between submission and execution",
                tfe_metrics::DEFAULT_NS_BUCKETS
            )
            .observe(waited);
            if profiling {
                tfe_profile::counter("pool", "queue_wait_ns", waited);
            }
            job();
        }) as Job;
        let depth = {
            let mut q = self.queue.lock();
            q.push_back(job);
            q.len()
        };
        self.signal.notify_all();
        depth
    }

    /// Pop and run one job if any is queued. Returns whether a job ran.
    pub fn help_one(&self) -> bool {
        let job = self.queue.lock().pop_front();
        match job {
            Some(job) => {
                // A waiter stole work from the queue instead of blocking.
                tfe_metrics::static_counter!(
                    "tfe_pool_helped_jobs_total",
                    "Jobs executed by a work-helping waiter instead of a pool worker"
                )
                .inc();
                job();
                true
            }
            None => false,
        }
    }

    /// Block until `done()` holds, executing queued jobs while waiting.
    ///
    /// Completion signals arrive via [`Pool::notify`]; the short timeout is
    /// only a safety net against missed wakeups.
    pub fn wait_until(&self, done: impl Fn() -> bool) {
        loop {
            if done() {
                return;
            }
            if self.help_one() {
                continue;
            }
            let mut q = self.queue.lock();
            if q.is_empty() && !done() {
                self.signal.wait_for(&mut q, Duration::from_millis(1));
            }
        }
    }

    /// Wake every waiter (used when a run or tile batch completes, so
    /// threads parked in [`Pool::wait_until`] re-check their condition).
    pub fn notify(&self) {
        self.signal.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn jobs_run_on_workers() {
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let c = counter.clone();
            global().submit(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
                global().notify();
            }));
        }
        global().wait_until(|| counter.load(Ordering::SeqCst) == 64);
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn wait_until_helps_with_queued_work() {
        // Even with no workers making progress on these particular jobs,
        // the waiting thread itself drains the queue.
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = Pool { queue: Mutex::new(VecDeque::new()), signal: Condvar::new() };
        for _ in 0..8 {
            let c = counter.clone();
            pool.submit(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.wait_until(|| counter.load(Ordering::SeqCst) == 8);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn worker_count_is_bounded() {
        let w = worker_count();
        assert!((1..=64).contains(&w));
    }
}
