//! The process-wide worker pool shared by **both** levels of parallelism:
//!
//! - **Inter-op**: the dependency-counted graph scheduler in `tfe-runtime`
//!   enqueues ready nodes as jobs (see `tfe_runtime::executor`).
//! - **Intra-op**: tensor kernels split one large operation into tiles via
//!   [`par_for`]/[`par_reduce`] and run the tiles as jobs on the *same*
//!   queue, so graph-level and kernel-level parallelism never oversubscribe
//!   the machine with two competing thread pools.
//!
//! Threads that must wait — a graph run's caller, or a kernel waiting for
//! its tiles — never block idly: they *help*, popping jobs off the shared
//! queue until their own completion condition holds. That work-helping loop
//! is what makes nested graph-parallel + kernel-parallel execution
//! deadlock-free even when every worker is busy.
//!
//! # Determinism
//!
//! Kernel results are **thread-count invariant** by construction:
//!
//! - [`par_for`] tiles must write disjoint outputs whose per-element math
//!   does not depend on the partition, so any split gives identical bits.
//! - [`par_reduce`] always uses *fixed chunking*: chunk boundaries depend
//!   only on the problem size and grain, never on the thread count, and
//!   partial results are combined left-to-right in chunk order. A reduction
//!   therefore produces the same bits with 1 thread or 16.
//!
//! This is what keeps the executor differential suite's `serial == parallel`
//! bitwise guarantees intact with intra-op parallelism enabled.

pub mod pool;

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

pub use pool::{global, worker_count, Job, Pool};

// ---------------------------------------------------------------------------
// Thread-count control
// ---------------------------------------------------------------------------

/// Session override of the intra-op split width; 0 means "auto" (use the
/// pool's worker count).
static INTRA_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Override how many ways intra-op splitters divide work. `None` restores
/// the default (the pool's worker count, itself overridable with the
/// `TFE_NUM_THREADS` environment variable). Returns the previous override.
///
/// Setting `Some(1)` forces every kernel onto the serial path — used by the
/// bench harness to measure serial-vs-parallel speedups, and safe to flip
/// at any time because kernel results are thread-count invariant.
pub fn set_intra_threads(threads: Option<usize>) -> Option<usize> {
    let prev = INTRA_THREADS.swap(threads.unwrap_or(0).min(1024), Ordering::SeqCst);
    if prev == 0 {
        None
    } else {
        Some(prev)
    }
}

/// The effective intra-op split width: the [`set_intra_threads`] override
/// if set, else the pool's worker count.
pub fn intra_threads() -> usize {
    match INTRA_THREADS.load(Ordering::SeqCst) {
        0 => worker_count(),
        n => n,
    }
}

// ---------------------------------------------------------------------------
// Intra-op statistics
// ---------------------------------------------------------------------------

/// Counters describing what the intra-op splitter actually did; exposed
/// through `tfe_runtime::context::exec_stats` and the bench reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntraStats {
    /// Kernel loops that ran on the parallel path (split into tiles).
    pub par_kernels: u64,
    /// Kernel loops the grain heuristic kept serial.
    pub serial_kernels: u64,
    /// Total tiles (chunks) executed by parallel kernel loops.
    pub tiles: u64,
}

static PAR_KERNELS: AtomicU64 = AtomicU64::new(0);
static SERIAL_KERNELS: AtomicU64 = AtomicU64::new(0);
static TILES: AtomicU64 = AtomicU64::new(0);

fn metric_par_kernel(tiles: u64) {
    tfe_metrics::static_counter!(
        "tfe_intra_par_kernels_total",
        "Kernel loops the intra-op splitter ran as parallel tiles"
    )
    .inc();
    tfe_metrics::static_counter!(
        "tfe_intra_tiles_total",
        "Tiles executed by parallel kernel loops"
    )
    .add(tiles);
}

fn metric_serial_kernel() {
    tfe_metrics::static_counter!(
        "tfe_intra_serial_kernels_total",
        "Kernel loops the intra-op grain heuristic kept serial"
    )
    .inc();
}

/// Snapshot the intra-op counters.
pub fn intra_stats() -> IntraStats {
    IntraStats {
        par_kernels: PAR_KERNELS.load(Ordering::Relaxed),
        serial_kernels: SERIAL_KERNELS.load(Ordering::Relaxed),
        tiles: TILES.load(Ordering::Relaxed),
    }
}

/// Zero the intra-op counters.
pub fn reset_intra_stats() {
    PAR_KERNELS.store(0, Ordering::Relaxed);
    SERIAL_KERNELS.store(0, Ordering::Relaxed);
    TILES.store(0, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// The splitter
// ---------------------------------------------------------------------------

/// Completion latch for one batch of scoped tiles.
struct Latch {
    remaining: AtomicUsize,
    panicked: AtomicBool,
}

/// Run `f(chunk_index)` for every index in `0..num_chunks`, on the shared
/// pool. The first chunk runs inline on the calling thread (best cache
/// locality for the common two-chunk case); the caller then work-helps
/// until every chunk has finished, so borrows captured by `f` stay valid.
///
/// Panics inside a chunk are caught on the worker (a stray panic would
/// otherwise kill the pool thread) and re-raised here once all chunks have
/// drained.
fn scope_chunks(num_chunks: usize, f: &(dyn Fn(usize) + Sync)) {
    debug_assert!(num_chunks >= 1);
    // SAFETY: every job referencing `f` completes before this function
    // returns (the latch countdown below), so extending the borrow to
    // 'static never outlives the frame that owns the closure.
    let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
    let run_chunk = move |c: usize| {
        let _sp = tfe_profile::span("intra", || "tile".to_string());
        f_static(c);
    };
    let latch = Arc::new(Latch {
        remaining: AtomicUsize::new(num_chunks),
        panicked: AtomicBool::new(false),
    });
    let pool = pool::global();
    for c in 1..num_chunks {
        let l = latch.clone();
        pool.submit(Box::new(move || {
            if catch_unwind(AssertUnwindSafe(|| run_chunk(c))).is_err() {
                l.panicked.store(true, Ordering::SeqCst);
            }
            if l.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                pool::global().notify();
            }
        }));
    }
    if catch_unwind(AssertUnwindSafe(|| run_chunk(0))).is_err() {
        latch.panicked.store(true, Ordering::SeqCst);
    }
    if latch.remaining.fetch_sub(1, Ordering::SeqCst) != 1 {
        pool.wait_until(|| latch.remaining.load(Ordering::SeqCst) == 0);
    }
    if latch.panicked.load(Ordering::SeqCst) {
        panic!("a parallel kernel tile panicked");
    }
}

/// Partition `0..n` for [`par_for`]: enough chunks to balance across the
/// workers (with a little slack for uneven tiles) but never finer than
/// `grain` items per chunk.
fn for_chunk_size(n: usize, grain: usize, threads: usize) -> usize {
    grain.max(n.div_ceil(threads * 4)).max(1)
}

/// Cache-budget for one kernel's live working set when picking a tile
/// length — sized to leave headroom in a typical 48–64 KiB L1D.
const TILE_BUDGET_BYTES: usize = 32 * 1024;

/// Elements per cache-resident tile for a kernel that keeps `buffers` live
/// arrays of `elem_bytes`-byte elements per tile (inputs + scratch
/// registers + output). The result depends only on the arguments — never on
/// the thread count — so tile boundaries, and therefore any math folded at
/// tile granularity, stay deterministic across serial and parallel runs.
///
/// Clamped to `[512, 4096]` elements: below 512 the per-tile bookkeeping
/// dominates, above 4096 an f32 register blows past the L1 budget.
pub fn tile_len(elem_bytes: usize, buffers: usize) -> usize {
    let per_elem = elem_bytes.max(1) * buffers.max(1);
    (TILE_BUDGET_BYTES / per_elem.max(1)).clamp(512, 4096)
}

/// Run `body` over disjoint index ranges covering `0..n`, in parallel on
/// the shared pool when the problem is big enough.
///
/// `grain` is the minimum number of items per tile; problems of `grain` or
/// fewer items run inline on the calling thread (tiny tensors never pay
/// scheduling overhead). Tiles must be independent: `body(r1)` and
/// `body(r2)` run concurrently for disjoint ranges, and each element's
/// result must not depend on the partition, so results are identical for
/// every thread count.
pub fn par_for<F: Fn(Range<usize>) + Sync>(n: usize, grain: usize, body: F) {
    if n == 0 {
        return;
    }
    let grain = grain.max(1);
    let threads = intra_threads();
    if threads <= 1 || n <= grain {
        SERIAL_KERNELS.fetch_add(1, Ordering::Relaxed);
        metric_serial_kernel();
        body(0..n);
        return;
    }
    let chunk = for_chunk_size(n, grain, threads);
    let num_chunks = n.div_ceil(chunk);
    if num_chunks <= 1 {
        SERIAL_KERNELS.fetch_add(1, Ordering::Relaxed);
        metric_serial_kernel();
        body(0..n);
        return;
    }
    PAR_KERNELS.fetch_add(1, Ordering::Relaxed);
    TILES.fetch_add(num_chunks as u64, Ordering::Relaxed);
    metric_par_kernel(num_chunks as u64);
    tfe_profile::counter("intra", "tiles", num_chunks as u64);
    scope_chunks(num_chunks, &|c: usize| {
        let start = c * chunk;
        body(start..(start + chunk).min(n));
    });
}

/// Tree-reduce `0..n`: `map` folds one chunk, `combine` merges partials
/// left-to-right in chunk order. Returns `None` only when `n == 0`.
///
/// **Fixed chunking**: the chunk boundaries are `grain`-sized slices of
/// `0..n` regardless of thread count or the serial/parallel decision, and
/// partials combine in ascending chunk order — so floating-point results
/// are bit-identical across thread counts (the deterministic-reduction
/// guarantee the executor differential suite relies on).
pub fn par_reduce<R, M, C>(n: usize, grain: usize, map: M, combine: C) -> Option<R>
where
    R: Send,
    M: Fn(Range<usize>) -> R + Sync,
    C: Fn(R, R) -> R,
{
    if n == 0 {
        return None;
    }
    let grain = grain.max(1);
    let num_chunks = n.div_ceil(grain);
    let chunk_range = |c: usize| (c * grain)..((c + 1) * grain).min(n);
    if num_chunks == 1 || intra_threads() <= 1 {
        SERIAL_KERNELS.fetch_add(1, Ordering::Relaxed);
        metric_serial_kernel();
        // Same fixed chunk boundaries, folded sequentially.
        let mut acc = map(chunk_range(0));
        for c in 1..num_chunks {
            acc = combine(acc, map(chunk_range(c)));
        }
        return Some(acc);
    }
    PAR_KERNELS.fetch_add(1, Ordering::Relaxed);
    TILES.fetch_add(num_chunks as u64, Ordering::Relaxed);
    metric_par_kernel(num_chunks as u64);
    tfe_profile::counter("intra", "tiles", num_chunks as u64);
    let slots: Vec<parking_lot::Mutex<Option<R>>> =
        (0..num_chunks).map(|_| parking_lot::Mutex::new(None)).collect();
    scope_chunks(num_chunks, &|c: usize| {
        *slots[c].lock() = Some(map(chunk_range(c)));
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("completed chunk must have a result"))
        .reduce(combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_len_scales_with_working_set_and_clamps() {
        // One f32 buffer: clamped at the 4096-element ceiling (16 KiB).
        assert_eq!(tile_len(4, 1), 4096);
        // Four f32 buffers: 32 KiB budget / 16 B per element = 2048.
        assert_eq!(tile_len(4, 4), 2048);
        // Huge working sets clamp at the floor.
        assert_eq!(tile_len(8, 1024), 512);
        // Degenerate arguments are safe.
        assert_eq!(tile_len(0, 0), 4096);
    }

    #[test]
    fn par_for_covers_every_index_once() {
        let n = 100_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_for(n, 128, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn par_for_small_stays_serial() {
        let before = intra_stats().serial_kernels;
        let sum = AtomicUsize::new(0);
        par_for(8, 1024, |r| {
            sum.fetch_add(r.len(), Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 8);
        assert!(intra_stats().serial_kernels > before);
    }

    #[test]
    fn par_reduce_matches_serial_bitwise() {
        // Pseudo-random f64s summed with fixed chunking: forcing the serial
        // path must give the exact same bits as the parallel path.
        let xs: Vec<f64> = (0..50_000)
            .map(|i| ((i as f64) * 0.7315).sin() * 1e3 + ((i % 97) as f64) * 1e-7)
            .collect();
        let sum = |_: ()| {
            par_reduce(xs.len(), 1024, |r| xs[r].iter().fold(0.0f64, |a, &x| a + x), |a, b| a + b)
                .unwrap()
        };
        let parallel = sum(());
        let prev = set_intra_threads(Some(1));
        let serial = sum(());
        set_intra_threads(prev);
        assert_eq!(parallel.to_bits(), serial.to_bits());
    }

    #[test]
    fn par_reduce_empty_is_none() {
        assert!(par_reduce(0, 16, |_| 0u64, |a, b| a + b).is_none());
    }

    #[test]
    fn nested_par_for_does_not_deadlock() {
        let total = AtomicUsize::new(0);
        par_for(64, 1, |outer| {
            for _ in outer {
                par_for(256, 16, |inner| {
                    total.fetch_add(inner.len(), Ordering::SeqCst);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 64 * 256);
    }

    #[test]
    fn tile_panic_propagates_and_pool_survives() {
        let caught = std::panic::catch_unwind(|| {
            par_for(10_000, 1, |r| {
                if r.contains(&4321) {
                    panic!("boom");
                }
            });
        });
        assert!(caught.is_err());
        // Pool still functional afterwards.
        let sum = AtomicUsize::new(0);
        par_for(10_000, 16, |r| {
            sum.fetch_add(r.len(), Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 10_000);
    }
}
