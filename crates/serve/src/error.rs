//! Serving errors.

use tfe_runtime::RuntimeError;

/// Errors surfaced by the model server.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// No model registered under this name.
    UnknownModel(String),
    /// The model exists but not at this version.
    UnknownVersion {
        /// Model name.
        model: String,
        /// Requested version.
        version: u64,
    },
    /// A (name, version) pair was registered twice. Versions are immutable;
    /// publish a fix as a new version and let `latest` swing to it.
    DuplicateVersion {
        /// Model name.
        model: String,
        /// The already-taken version.
        version: u64,
    },
    /// The request itself is malformed (arity, missing batch dimension,
    /// inconsistent leading dimensions). Rejected at the front door, before
    /// the request can poison a batch.
    BadRequest(String),
    /// The staged call executing this request's batch failed. Every member
    /// of the batch observes the same error; `op` names the operation that
    /// faulted (exactly, when the runtime attributes it — e.g. async
    /// deferred errors — otherwise the entry function).
    Batch {
        /// Best-effort name of the faulting op.
        op: String,
        /// The underlying runtime error.
        source: RuntimeError,
    },
    /// The staged call (or the batching around it) panicked. The worker
    /// catches the unwind and fails every member of the batch — a panic
    /// degrades the one batch, it never kills the worker or strands parked
    /// callers.
    Panic {
        /// Model name.
        model: String,
        /// Stringified panic payload, best effort.
        message: String,
    },
    /// The model was unregistered (or the registry dropped) while this
    /// request was still queued.
    Shutdown {
        /// Model name.
        model: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownModel(name) => write!(f, "unknown model `{name}`"),
            ServeError::UnknownVersion { model, version } => {
                write!(f, "model `{model}` has no version {version}")
            }
            ServeError::DuplicateVersion { model, version } => {
                write!(f, "model `{model}` version {version} already registered")
            }
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Batch { op, source } => {
                write!(f, "batched call failed at op `{op}`: {source}")
            }
            ServeError::Panic { model, message } => {
                write!(f, "batched call for model `{model}` panicked: {message}")
            }
            ServeError::Shutdown { model } => {
                write!(f, "model `{model}` was shut down while the request was queued")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Best-effort extraction of the faulting op's name from a runtime error.
/// Async deferred errors carry it exactly; otherwise fall back to the
/// model's entry function so the error always names *something* actionable.
pub(crate) fn fault_op(e: &RuntimeError, fallback: &str) -> String {
    match e {
        RuntimeError::Deferred { op, .. } => op.clone(),
        RuntimeError::Op(tfe_ops::OpError::Arity { op, .. }) => op.clone(),
        RuntimeError::Op(tfe_ops::OpError::UnknownOp(op)) => op.clone(),
        RuntimeError::UnknownFunction(name) => name.clone(),
        _ => fallback.to_string(),
    }
}
