//! # tfe-serve
//!
//! A multi-tenant model server for tf-eager: the production end of the
//! paper's staging story (§4.3 — traces "can be serialized ... and executed
//! without the Python front-end"). [`ModelRegistry`] holds versioned
//! [`Servable`]s (imported `SavedFunction` bundles or live staged `Func`s);
//! each registered version runs an adaptive micro-batcher that coalesces
//! concurrent single-example requests along the leading dimension into one
//! staged call (DESIGN.md §15).
//!
//! ```
//! use tfe_core::{function1, TensorSpec};
//! use tfe_runtime::api;
//! use tfe_serve::ModelRegistry;
//! use tfe_tensor::DType;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let f = function1("doc_mlp", |x| api::relu(x))
//!     .with_input_signature(vec![TensorSpec::new(DType::F32, vec![None, Some(4)])]);
//! let registry = ModelRegistry::new();
//! registry.register("doc_mlp", 1, f)?;
//! let x = api::constant(vec![1.0f32, -2.0, 3.0, -4.0], [1, 4])?;
//! let y = registry.infer("doc_mlp", &[&x])?; // coalesced with concurrent callers
//! assert_eq!(y[0].to_f64_vec()?, vec![1.0, 0.0, 3.0, 0.0]);
//! # Ok(())
//! # }
//! ```
//!
//! Batching requires the served trace to have a dynamic leading dimension:
//! trace with `Func::with_input_signature` and `None` in position 0 (a
//! `Servable::Staged` without one will retrace per batch size and still
//! serve correctly, at trace cost — watch `Func::retrace_report()`).
//!
//! Observability: `tfe_serve_*` metric families labeled per `name@vN`
//! (queue depth, batch-size and latency SLO histograms, budget breaches),
//! plus `serve`-category profiler spans for enqueue → dispatch → split.

#![warn(missing_docs)]

mod batcher;
mod error;
mod metrics;
mod registry;

pub use batcher::{BatchPolicy, Dispatch, Model, Servable};
pub use error::ServeError;
pub use metrics::{ModelMetrics, ROWS_BUCKETS, SLO_NS_BUCKETS};
pub use registry::ModelRegistry;
