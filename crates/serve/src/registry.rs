//! Versioned model registry: the serving front door.
//!
//! Every `(name, version)` pair is immutable once registered; publishing a
//! new version atomically swings the `latest` alias under the registry write
//! lock, so concurrent `infer` calls see either the old or the new version,
//! never a torn state. In-flight requests pinned to the old version drain
//! normally — a version's batcher only stops when the model is unregistered
//! (or the registry is dropped).

use crate::batcher::{BatchPolicy, Model, Servable};
use crate::error::ServeError;
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use tfe_runtime::Tensor;

struct ModelEntry {
    versions: BTreeMap<u64, Arc<Model>>,
    latest: u64,
}

/// A thread-safe, versioned registry of servable models, each with its own
/// adaptive micro-batcher.
#[derive(Default)]
pub struct ModelRegistry {
    inner: RwLock<HashMap<String, ModelEntry>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// Register `servable` as `name` at `version` with the default
    /// [`BatchPolicy`]. `latest` moves to the highest registered version.
    ///
    /// # Errors
    /// The `(name, version)` pair is already taken.
    pub fn register(
        &self,
        name: &str,
        version: u64,
        servable: impl Into<Servable>,
    ) -> Result<(), ServeError> {
        self.register_with(name, version, servable, BatchPolicy::default())
    }

    /// [`register`](ModelRegistry::register) with an explicit policy.
    ///
    /// # Errors
    /// The `(name, version)` pair is already taken.
    pub fn register_with(
        &self,
        name: &str,
        version: u64,
        servable: impl Into<Servable>,
        policy: BatchPolicy,
    ) -> Result<(), ServeError> {
        // Start the worker outside the write lock; insertion below is the
        // atomic publish point.
        let model = Model::start(name, version, servable.into(), policy);
        let mut reg = self.inner.write();
        let entry = reg
            .entry(name.to_string())
            .or_insert_with(|| ModelEntry { versions: BTreeMap::new(), latest: version });
        if entry.versions.contains_key(&version) {
            drop(reg);
            model.shutdown();
            return Err(ServeError::DuplicateVersion { model: name.to_string(), version });
        }
        entry.versions.insert(version, model);
        entry.latest = entry.latest.max(version);
        Ok(())
    }

    /// Re-point the `latest` alias (e.g. a rollback to an older version).
    ///
    /// # Errors
    /// Unknown model or version.
    pub fn set_latest(&self, name: &str, version: u64) -> Result<(), ServeError> {
        let mut reg = self.inner.write();
        let entry = reg.get_mut(name).ok_or_else(|| ServeError::UnknownModel(name.to_string()))?;
        if !entry.versions.contains_key(&version) {
            return Err(ServeError::UnknownVersion { model: name.to_string(), version });
        }
        entry.latest = version;
        Ok(())
    }

    /// The version `latest` currently points at.
    pub fn latest(&self, name: &str) -> Option<u64> {
        self.inner.read().get(name).map(|e| e.latest)
    }

    /// All registered versions of `name`, ascending.
    pub fn versions(&self, name: &str) -> Vec<u64> {
        self.inner
            .read()
            .get(name)
            .map(|e| e.versions.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Remove `name` entirely, shutting down every version's batcher and
    /// failing still-queued requests with [`ServeError::Shutdown`]. Returns
    /// whether the model existed.
    pub fn unregister(&self, name: &str) -> bool {
        let entry = self.inner.write().remove(name);
        match entry {
            Some(e) => {
                for model in e.versions.values() {
                    model.shutdown();
                }
                true
            }
            None => false,
        }
    }

    fn resolve(&self, name: &str, version: Option<u64>) -> Result<Arc<Model>, ServeError> {
        let reg = self.inner.read();
        let entry = reg.get(name).ok_or_else(|| ServeError::UnknownModel(name.to_string()))?;
        let v = version.unwrap_or(entry.latest);
        entry
            .versions
            .get(&v)
            .cloned()
            .ok_or(ServeError::UnknownVersion { model: name.to_string(), version: v })
    }

    /// Run one inference request against `latest`, blocking until its batch
    /// resolves. Inputs must carry a leading batch dimension (a single
    /// example is shape `[1, ...]`); the batcher coalesces concurrent
    /// requests along it.
    ///
    /// # Errors
    /// Unknown model, malformed request, batch fault, or shutdown.
    pub fn infer(&self, name: &str, inputs: &[&Tensor]) -> Result<Vec<Tensor>, ServeError> {
        self.resolve(name, None)?.infer(inputs)
    }

    /// [`infer`](ModelRegistry::infer) pinned to a specific version.
    ///
    /// # Errors
    /// Unknown model/version, malformed request, batch fault, or shutdown.
    pub fn infer_version(
        &self,
        name: &str,
        version: u64,
        inputs: &[&Tensor],
    ) -> Result<Vec<Tensor>, ServeError> {
        self.resolve(name, Some(version))?.infer(inputs)
    }

    /// The live [`Model`] behind `name` (at `version`, or `latest`), for
    /// introspection (EWMA estimate, metrics).
    ///
    /// # Errors
    /// Unknown model or version.
    pub fn model(&self, name: &str, version: Option<u64>) -> Result<Arc<Model>, ServeError> {
        self.resolve(name, version)
    }
}

impl Drop for ModelRegistry {
    fn drop(&mut self) {
        for entry in self.inner.write().values() {
            for model in entry.versions.values() {
                model.shutdown();
            }
        }
    }
}
