//! Per-model serving metric families (`tfe_serve_*`), labeled by
//! `model` = `name@vN`. Families are registered once in the process-wide
//! registry; each [`ModelMetrics`](crate::metrics::ModelMetrics) resolves
//! its children once at model registration so the hot path never touches
//! the family map.

use std::sync::Arc;
use tfe_metrics::{counter_vec, gauge_vec, histogram_vec, Counter, Gauge, Histogram};

/// Latency SLO buckets: 10µs .. 100ms. Serving latencies sit well above the
/// kernel-level `DEFAULT_NS_BUCKETS` (100ns .. 10ms) ceiling.
pub const SLO_NS_BUCKETS: &[u64] = &[
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    50_000_000,
    100_000_000,
];

/// Batch-size buckets (rows per staged call).
pub const ROWS_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Resolved metric children for one registered model version.
pub struct ModelMetrics {
    /// Requests accepted by the front (before batching).
    pub requests: Arc<Counter>,
    /// Requests that completed with an error.
    pub errors: Arc<Counter>,
    /// Requests currently queued, waiting for a batch to close.
    pub queue_depth: Arc<Gauge>,
    /// Staged calls dispatched by the batcher.
    pub batches: Arc<Counter>,
    /// Rows coalesced per staged call.
    pub batch_rows: Arc<Histogram>,
    /// End-to-end request latency (enqueue -> response), the SLO signal.
    pub request_latency_ns: Arc<Histogram>,
    /// Staged-call execution time (concat -> split), feeds the EWMA.
    pub batch_exec_ns: Arc<Histogram>,
    /// Requests whose end-to-end latency exceeded the model's budget.
    pub budget_breaches: Arc<Counter>,
}

impl ModelMetrics {
    /// Resolve the `tfe_serve_*` children for `model` (= `name@vN`).
    pub fn resolve(model: &str) -> ModelMetrics {
        ModelMetrics {
            requests: counter_vec(
                "tfe_serve_requests_total",
                "Inference requests accepted, per model",
                "model",
            )
            .with(model),
            errors: counter_vec(
                "tfe_serve_errors_total",
                "Inference requests failed, per model",
                "model",
            )
            .with(model),
            queue_depth: gauge_vec(
                "tfe_serve_queue_depth",
                "Requests queued waiting for a batch, per model",
                "model",
            )
            .with(model),
            batches: counter_vec(
                "tfe_serve_batches_total",
                "Staged batch calls dispatched, per model",
                "model",
            )
            .with(model),
            batch_rows: histogram_vec(
                "tfe_serve_batch_rows",
                "Rows coalesced per staged batch call, per model",
                "model",
                ROWS_BUCKETS,
            )
            .with(model),
            request_latency_ns: histogram_vec(
                "tfe_serve_request_latency_ns",
                "End-to-end request latency (SLO), per model",
                "model",
                SLO_NS_BUCKETS,
            )
            .with(model),
            batch_exec_ns: histogram_vec(
                "tfe_serve_batch_exec_ns",
                "Staged-call execution time, per model",
                "model",
                SLO_NS_BUCKETS,
            )
            .with(model),
            budget_breaches: counter_vec(
                "tfe_serve_budget_breaches_total",
                "Requests whose latency exceeded the model's budget, per model",
                "model",
            )
            .with(model),
        }
    }
}
