//! Per-model adaptive micro-batcher.
//!
//! One worker thread per registered model version pulls queued requests and
//! coalesces them along the leading (batch) dimension into a single staged
//! call — the LazyTensor idea applied at the request boundary: defer a
//! little, then dispatch a lot. A batch closes when either
//!
//! - the coalesced row count reaches [`BatchPolicy::max_batch`], or
//! - waiting any longer would breach the *oldest* member's latency budget,
//!   where "any longer" accounts for an EWMA of observed staged-call time
//!   (the batcher closes early when the model itself is slow).
//!
//! Fan-in uses `concat` on every argument position, fan-out `split` (uniform
//! member rows) or `slice` (mixed row counts, including zero-row members).
//! A poisoned batch fails every member with [`ServeError::Batch`] naming the
//! faulting op — requests never hang on a dead batch.

use crate::error::{fault_op, ServeError};
use crate::metrics::ModelMetrics;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tfe_core::Func;
use tfe_runtime::{api, context, RuntimeError, Tensor};
use tfe_state::saved::LoadedFunction;
use tfe_tensor::TensorError;

/// Which dispatch mode the batcher's staged calls run under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dispatch {
    /// Inherit the process default (`TFE_ASYNC`).
    #[default]
    Inherit,
    /// Force synchronous execution ([`context::sync_scope`]).
    Sync,
    /// Force per-device dispatch streams ([`context::async_scope`]).
    Async,
}

/// Batching policy for one model.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Close the batch once this many rows are coalesced.
    pub max_batch: usize,
    /// Per-request latency budget; the batch closes early enough that the
    /// oldest member can still make it, given current execution-time
    /// estimates.
    pub budget: Duration,
    /// Smoothing factor for the staged-call-time EWMA in `(0, 1]`; higher
    /// weights recent observations more.
    pub ewma_alpha: f64,
    /// Dispatch mode for the staged calls.
    pub dispatch: Dispatch,
}

impl Default for BatchPolicy {
    fn default() -> BatchPolicy {
        BatchPolicy {
            max_batch: 32,
            budget: Duration::from_millis(5),
            ewma_alpha: 0.25,
            dispatch: Dispatch::Inherit,
        }
    }
}

/// Something the registry can serve: an imported bundle or a live staged
/// function.
///
/// For batching to generalize across batch sizes, the underlying trace must
/// have a dynamic leading dimension — export bundles from a
/// `Func::with_input_signature` trace with `None` in position 0, or serve a
/// `Func` carrying such a signature directly (each new batch size then
/// retraces once and lands in the trace cache).
pub enum Servable {
    /// An imported SavedFunction bundle (fixed concrete graph).
    Loaded(Arc<LoadedFunction>),
    /// A live polymorphic function; specializes per batch shape through the
    /// trace cache.
    Staged(Func),
}

impl Servable {
    /// Declared argument count, when known.
    pub fn num_args(&self) -> Option<usize> {
        match self {
            Servable::Loaded(f) => Some(f.num_args()),
            Servable::Staged(_) => None,
        }
    }

    /// Name used in error attribution and profiler spans.
    pub fn label(&self) -> String {
        match self {
            Servable::Loaded(f) => f.entry_name().to_string(),
            Servable::Staged(f) => f.name().to_string(),
        }
    }

    fn call(&self, args: &[&Tensor]) -> Result<Vec<Tensor>, RuntimeError> {
        match self {
            Servable::Loaded(f) => f.call(args),
            Servable::Staged(f) => f.call_tensors(args),
        }
    }
}

impl From<LoadedFunction> for Servable {
    fn from(f: LoadedFunction) -> Servable {
        Servable::Loaded(Arc::new(f))
    }
}

impl From<Arc<LoadedFunction>> for Servable {
    fn from(f: Arc<LoadedFunction>) -> Servable {
        Servable::Loaded(f)
    }
}

impl From<Func> for Servable {
    fn from(f: Func) -> Servable {
        Servable::Staged(f)
    }
}

/// One queued request plus the slot its caller is parked on.
struct Pending {
    inputs: Vec<Tensor>,
    rows: usize,
    enqueued: Instant,
    slot: Arc<Slot>,
    /// The caller's request context: the worker adopts the whole batch's
    /// contexts during fan-in/dispatch/fan-out so every member's causal
    /// arc follows the batch across threads.
    trace: Option<tfe_profile::TraceContext>,
}

/// Rendezvous between a waiting caller and the batcher worker.
struct Slot {
    result: Mutex<Option<Result<Vec<Tensor>, ServeError>>>,
    cv: Condvar,
}

impl Slot {
    fn deliver(&self, r: Result<Vec<Tensor>, ServeError>) {
        *self.result.lock() = Some(r);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<Vec<Tensor>, ServeError> {
        let mut guard = self.result.lock();
        loop {
            if let Some(r) = guard.take() {
                return r;
            }
            self.cv.wait(&mut guard);
        }
    }
}

struct Queue {
    pending: VecDeque<Pending>,
    shutdown: bool,
}

/// One registered model version: the servable, its queue, and the worker
/// thread batching it.
pub struct Model {
    name: String,
    version: u64,
    servable: Servable,
    policy: BatchPolicy,
    queue: Mutex<Queue>,
    cv: Condvar,
    /// EWMA of staged-call time in ns; written only by the worker.
    ewma_ns: AtomicU64,
    pub(crate) metrics: ModelMetrics,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Model {
    /// Create the model and start its batcher worker.
    pub(crate) fn start(
        name: &str,
        version: u64,
        servable: Servable,
        policy: BatchPolicy,
    ) -> Arc<Model> {
        let model = Arc::new(Model {
            name: name.to_string(),
            version,
            servable,
            policy,
            queue: Mutex::new(Queue { pending: VecDeque::new(), shutdown: false }),
            cv: Condvar::new(),
            ewma_ns: AtomicU64::new(0),
            metrics: ModelMetrics::resolve(&format!("{name}@v{version}")),
            worker: Mutex::new(None),
        });
        // The worker holds only a `Weak`, upgraded once per turn: dropping
        // the last external `Arc<Model>` actually runs `Drop` (which shuts
        // the worker down) instead of a strong worker ref keeping a parked
        // thread and the model alive forever.
        let weak = Arc::downgrade(&model);
        // The executor mode is thread-local; a fresh worker thread would
        // silently fall back to the serial default regardless of how the
        // deployment configured execution. Inherit the registrar's mode.
        let exec_mode = context::exec_mode();
        let handle = std::thread::Builder::new()
            .name(format!("tfe-serve-{name}-v{version}"))
            .spawn(move || {
                context::set_exec_mode(exec_mode);
                loop {
                    let Some(model) = weak.upgrade() else { return };
                    if !model.worker_turn() {
                        return;
                    }
                }
            })
            .expect("spawn batcher worker");
        *model.worker.lock() = Some(handle);
        model
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Model version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Current EWMA estimate of staged-call time.
    pub fn estimated_exec(&self) -> Duration {
        Duration::from_nanos(self.ewma_ns.load(Ordering::Relaxed))
    }

    /// Validate and enqueue one request, then park until its batch resolves.
    pub(crate) fn infer(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>, ServeError> {
        self.metrics.requests.inc();
        // Request root: one trace id for the whole front-door lifetime —
        // enqueue, the parked wait, and the latency accounting. The worker
        // picks the context up from the queue slot, so the batch's spans on
        // other threads link back here.
        let root = tfe_profile::request_scope("serve", || {
            format!("request:{}@v{}", self.name, self.version)
        });
        let trace = root.as_ref().map(|r| r.context());
        self.validate(inputs).inspect_err(|_| self.metrics.errors.inc())?;
        let rows = inputs[0].shape().map(|s| s.dim(0)).unwrap_or(0);
        let slot = Arc::new(Slot { result: Mutex::new(None), cv: Condvar::new() });
        let enqueued = Instant::now();
        tfe_profile::instant("serve", || format!("enqueue:{}@v{}", self.name, self.version));
        {
            let mut q = self.queue.lock();
            if q.shutdown {
                self.metrics.errors.inc();
                return Err(ServeError::Shutdown { model: self.name.clone() });
            }
            q.pending.push_back(Pending {
                inputs: inputs.iter().map(|&t| t.clone()).collect(),
                rows,
                enqueued,
                slot: Arc::clone(&slot),
                trace,
            });
            self.metrics.queue_depth.set(q.pending.len() as i64);
        }
        self.cv.notify_all();
        let result = slot.wait();
        let latency = enqueued.elapsed();
        self.metrics.request_latency_ns.observe(latency.as_nanos() as u64);
        if latency > self.policy.budget {
            self.metrics.budget_breaches.inc();
            tfe_profile::flight_dump(
                "budget_breach",
                &format!("{}@v{}", self.name, self.version),
                trace.map(|t| t.trace_id).unwrap_or_default(),
            );
        }
        if result.is_err() {
            self.metrics.errors.inc();
        }
        result
    }

    fn validate(&self, inputs: &[&Tensor]) -> Result<(), ServeError> {
        if inputs.is_empty() {
            return Err(ServeError::BadRequest("request carries no inputs".to_string()));
        }
        if let Some(n) = self.servable.num_args() {
            if inputs.len() != n {
                return Err(ServeError::BadRequest(format!(
                    "model `{}` takes {n} inputs, request has {}",
                    self.name,
                    inputs.len()
                )));
            }
        }
        let mut rows = None;
        for (i, t) in inputs.iter().enumerate() {
            let shape = t.shape().map_err(|e| ServeError::BadRequest(format!("input {i}: {e}")))?;
            if shape.rank() == 0 {
                return Err(ServeError::BadRequest(format!(
                    "input {i} is a scalar; batched serving needs a leading batch dimension"
                )));
            }
            let d0 = shape.dim(0);
            if *rows.get_or_insert(d0) != d0 {
                return Err(ServeError::BadRequest(format!(
                    "input {i} has {d0} rows, earlier inputs have {}",
                    rows.unwrap_or(0)
                )));
            }
        }
        Ok(())
    }

    /// Stop the worker and fail everything still queued. Idempotent.
    pub(crate) fn shutdown(&self) {
        let drained: Vec<Pending> = {
            let mut q = self.queue.lock();
            q.shutdown = true;
            q.pending.drain(..).collect()
        };
        self.cv.notify_all();
        for p in drained {
            // No `errors` bump here: every drained request has a caller
            // parked in `infer`, which counts the Err when it observes it.
            p.slot.deliver(Err(ServeError::Shutdown { model: self.name.clone() }));
        }
        self.metrics.queue_depth.set(0);
        let handle = self.worker.lock().take();
        if let Some(h) = handle {
            // The worker owns an Arc<Model>; if it drops the last reference
            // as it exits, this runs *on* the worker thread — never
            // self-join.
            if h.thread().id() != std::thread::current().id() {
                h.join().ok();
            }
        }
    }

    /// One batcher turn: park for work, close one batch adaptively, run it.
    /// Returns `false` once the model is shut down. Idle parks are bounded
    /// so the worker's entry loop can drop its strong reference between
    /// turns and re-check liveness through its `Weak`.
    fn worker_turn(&self) -> bool {
        const IDLE_RECHECK: Duration = Duration::from_millis(50);
        let members = {
            let mut q = self.queue.lock();
            // Park until there is work (or shutdown, or an idle heartbeat).
            loop {
                if q.shutdown {
                    return false;
                }
                if !q.pending.is_empty() {
                    break;
                }
                if self.cv.wait_for(&mut q, IDLE_RECHECK).timed_out() && q.pending.is_empty() {
                    // Still idle: end the turn so the entry loop releases
                    // its Arc and the model can be dropped.
                    return !q.shutdown;
                }
            }
            // Adaptive close: wait for more members until the batch is
            // full or the oldest member's budget (minus the current
            // execution-time estimate) would be breached.
            loop {
                let rows: usize = q.pending.iter().map(|p| p.rows).sum();
                if rows >= self.policy.max_batch {
                    break;
                }
                let est = Duration::from_nanos(self.ewma_ns.load(Ordering::Relaxed));
                let oldest = q.pending.front().expect("non-empty queue").enqueued;
                let deadline = oldest + self.policy.budget.saturating_sub(est);
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let timed_out = self.cv.wait_for(&mut q, deadline - now).timed_out();
                if q.shutdown {
                    return false;
                }
                if timed_out {
                    break;
                }
            }
            // Close the batch: take members until the row cap, but only
            // while the arity matches the batch head — the fan-in concats
            // argument position `a` across every member, so a mixed-arity
            // batch would index out of bounds. A `Staged` servable declares
            // no arity for the front door to check; a wrong-arity request
            // instead ships as its own batch and observes the servable's
            // typed arity error. Zero-row members always fit; at least one
            // member always ships.
            let mut taken: Vec<Pending> = Vec::new();
            let mut rows = 0usize;
            while let Some(front) = q.pending.front() {
                if !taken.is_empty()
                    && (rows + front.rows > self.policy.max_batch
                        || front.inputs.len() != taken[0].inputs.len())
                {
                    break;
                }
                let p = q.pending.pop_front().expect("front exists");
                rows += p.rows;
                taken.push(p);
            }
            self.metrics.queue_depth.set(q.pending.len() as i64);
            taken
        };
        self.execute_batch(members);
        true
    }

    fn execute_batch(&self, members: Vec<Pending>) {
        let total_rows: usize = members.iter().map(|p| p.rows).sum();
        self.metrics.batches.inc();
        self.metrics.batch_rows.observe(total_rows as u64);
        // Fan-in of the causal arcs: adopt every member's context for the
        // whole batch (one flow step per member lands on this worker row),
        // so concat/dispatch/split and the stream/pool work they fan out
        // stay linked to each coalesced request.
        let group = tfe_profile::TraceGroup::of(members.iter().filter_map(|p| p.trace).collect());
        let _trace = tfe_profile::adopt(group.as_ref(), "batcher");
        let _span = tfe_profile::span("serve", || {
            format!("batch:{}@v{}:{}x{}rows", self.name, self.version, members.len(), total_rows)
        });
        let started = Instant::now();
        // A panic anywhere in fan-in/dispatch/fan-out must not kill the
        // worker: parked callers would hang forever and every later request
        // would enqueue into a dead queue. Catch the unwind and fail the
        // batch instead.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.run_dispatch(&members, total_rows)
        }));
        let exec_ns = started.elapsed().as_nanos() as u64;
        self.metrics.batch_exec_ns.observe(exec_ns);
        // EWMA update (worker is the only writer; a plain store is enough).
        let prev = self.ewma_ns.load(Ordering::Relaxed);
        let next = if prev == 0 {
            exec_ns
        } else {
            let a = self.policy.ewma_alpha.clamp(0.0, 1.0);
            (a * exec_ns as f64 + (1.0 - a) * prev as f64) as u64
        };
        self.ewma_ns.store(next, Ordering::Relaxed);

        match result {
            Ok(Ok(mut per_member)) => {
                // Deliver back-to-front so we can pop without shifting.
                for p in members.iter().rev() {
                    let outs = per_member.pop().expect("one result per member");
                    p.slot.deliver(Ok(outs));
                }
            }
            Ok(Err(e)) => {
                let op = fault_op(&e, &self.servable.label());
                // Post-mortem before fan-out: the batch is poisoned, dump
                // the recent causal history naming the failing op and the
                // primary (oldest) member's trace id.
                tfe_profile::flight_dump(
                    "batch_poisoned",
                    &op,
                    group.as_ref().map(|g| g.primary().trace_id).unwrap_or_default(),
                );
                for p in &members {
                    p.slot.deliver(Err(ServeError::Batch { op: op.clone(), source: e.clone() }));
                }
            }
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                tfe_profile::flight_dump(
                    "batch_panic",
                    &self.servable.label(),
                    group.as_ref().map(|g| g.primary().trace_id).unwrap_or_default(),
                );
                for p in &members {
                    p.slot.deliver(Err(ServeError::Panic {
                        model: self.name.clone(),
                        message: message.clone(),
                    }));
                }
            }
        }
    }

    /// Run the batch under the model's dispatch mode. Always syncs before
    /// returning so async faults surface here, attributed to this batch,
    /// instead of hanging or leaking into a later one.
    fn run_dispatch(
        &self,
        members: &[Pending],
        total_rows: usize,
    ) -> Result<Vec<Vec<Tensor>>, RuntimeError> {
        let body = || -> Result<Vec<Vec<Tensor>>, RuntimeError> {
            let out = self.run_batch(members, total_rows)?;
            context::sync()?;
            Ok(out)
        };
        match self.policy.dispatch {
            Dispatch::Inherit => body(),
            Dispatch::Sync => context::sync_scope(body),
            Dispatch::Async => context::async_scope(body)?,
        }
    }

    fn run_batch(
        &self,
        members: &[Pending],
        total_rows: usize,
    ) -> Result<Vec<Vec<Tensor>>, RuntimeError> {
        // Single member: the batch *is* the request; skip fan-in/fan-out.
        if members.len() == 1 {
            let args: Vec<&Tensor> = members[0].inputs.iter().collect();
            return Ok(vec![self.servable.call(&args)?]);
        }
        let n_args = members[0].inputs.len();
        let batched: Vec<Tensor> = {
            let _s = tfe_profile::span("serve", || "concat".to_string());
            (0..n_args)
                .map(|a| {
                    let parts: Vec<&Tensor> = members.iter().map(|m| &m.inputs[a]).collect();
                    api::concat(&parts, 0)
                })
                .collect::<Result<_, _>>()?
        };
        let args: Vec<&Tensor> = batched.iter().collect();
        let outs = {
            let _s = tfe_profile::span("serve", || format!("dispatch:{}", self.servable.label()));
            self.servable.call(&args)?
        };
        // Fan out: every output must carry the coalesced batch dimension.
        let _s = tfe_profile::span("serve", || "split".to_string());
        for (i, out) in outs.iter().enumerate() {
            let shape = out.shape()?;
            if shape.rank() == 0 || shape.dim(0) != total_rows {
                return Err(TensorError::ShapeMismatch {
                    expected: format!(
                        "output {i} of `{}` to carry the batch dimension ({total_rows} rows)",
                        self.servable.label()
                    ),
                    got: shape,
                }
                .into());
            }
        }
        let uniform = members.iter().all(|m| m.rows == members[0].rows);
        let mut per_member: Vec<Vec<Tensor>> = members.iter().map(|_| Vec::new()).collect();
        for out in &outs {
            if uniform && members[0].rows > 0 {
                for (m, part) in api::split(out, members.len(), 0)?.into_iter().enumerate() {
                    per_member[m].push(part);
                }
            } else {
                // Mixed row counts (incl. zero-row members): slice each
                // member's row range.
                let rank = out.shape()?.rank();
                let dims = out.shape()?.dims().to_vec();
                let mut offset = 0usize;
                for (m, member) in members.iter().enumerate() {
                    let mut begin = vec![0i64; rank];
                    let mut size: Vec<i64> = dims.iter().map(|&d| d as i64).collect();
                    begin[0] = offset as i64;
                    size[0] = member.rows as i64;
                    per_member[m].push(api::slice(out, &begin, &size)?);
                    offset += member.rows;
                }
            }
        }
        Ok(per_member)
    }
}

impl Drop for Model {
    fn drop(&mut self) {
        // Normally shut down by the registry (shutdown is idempotent).
        // Because the worker holds only a `Weak` between turns, this also
        // genuinely fires — and reaps the worker — when the last external
        // `Arc<Model>` is dropped without a registry.
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_core::function1;

    /// Dropping the last external `Arc<Model>` must reap the model and its
    /// worker thread: the worker holds only a `Weak` between turns, so the
    /// `Drop` impl can actually run.
    #[test]
    fn dropping_last_arc_reaps_model() {
        let f = function1("serve_drop_reap", api::relu);
        let m = Model::start("drop_reap", 1, Servable::Staged(f), BatchPolicy::default());
        let w = Arc::downgrade(&m);
        drop(m);
        let deadline = Instant::now() + Duration::from_secs(10);
        while w.upgrade().is_some() {
            assert!(Instant::now() < deadline, "Model leaked after the last external Arc drop");
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}
