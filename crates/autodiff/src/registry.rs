//! The gradient registry: one vector-Jacobian-product function per
//! differentiable primitive op.
//!
//! Gradient functions are themselves expressed in terms of primitive
//! operations executed through the shared dispatcher (§4.2: "gradient
//! computation is itself expressed as a function which executes primitive
//! operations, so it is possible to stage it or not"). That is what makes
//! higher-order derivatives and staged backward passes fall out for free.

use parking_lot::RwLock;
use std::collections::HashMap;
use tfe_ops::Attrs;
use tfe_runtime::api;
use tfe_runtime::{Result, RuntimeError, TapeRecord, Tensor};
use tfe_tensor::DType;

/// Everything a gradient function sees: the forward record plus the
/// incoming output gradients (one per forward output, zero-filled when an
/// output did not influence the target).
pub struct GradCtx<'a> {
    /// The recorded forward operation.
    pub record: &'a TapeRecord,
    /// Gradients flowing into each forward output.
    pub output_grads: &'a [Tensor],
}

impl<'a> GradCtx<'a> {
    /// Forward input `i`.
    ///
    /// # Errors
    /// Out of range.
    pub fn input(&self, i: usize) -> Result<&Tensor> {
        self.record
            .inputs
            .get(i)
            .ok_or_else(|| RuntimeError::Internal(format!("gradient: missing input {i}")))
    }

    /// Forward output `i`.
    ///
    /// # Errors
    /// Out of range.
    pub fn output(&self, i: usize) -> Result<&Tensor> {
        self.record
            .outputs
            .get(i)
            .ok_or_else(|| RuntimeError::Internal(format!("gradient: missing output {i}")))
    }

    /// Incoming gradient for output `i`.
    ///
    /// # Errors
    /// Out of range.
    pub fn grad(&self, i: usize) -> Result<&Tensor> {
        self.output_grads
            .get(i)
            .ok_or_else(|| RuntimeError::Internal(format!("gradient: missing grad {i}")))
    }

    /// The forward attributes.
    pub fn attrs(&self) -> &Attrs {
        &self.record.attrs
    }
}

/// A vector-Jacobian product: returns one gradient per *gradient slot* (the
/// record's `input_ids`), `None` where no gradient flows.
pub type GradFn = fn(&GradCtx) -> Result<Vec<Option<Tensor>>>;

fn registry() -> &'static RwLock<HashMap<String, GradFn>> {
    static R: std::sync::OnceLock<RwLock<HashMap<String, GradFn>>> = std::sync::OnceLock::new();
    R.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Register (or replace) the gradient for an op. Higher layers use this to
/// add gradients for ops they own (`tfe-core` registers `call`/`cond`).
pub fn register_gradient(op: &str, f: GradFn) {
    registry().write().insert(op.to_string(), f);
}

/// Look up the gradient for `op`.
///
/// # Errors
/// [`RuntimeError::Unsupported`] when no gradient is registered.
pub fn gradient_fn(op: &str) -> Result<GradFn> {
    ensure_gradients();
    registry()
        .read()
        .get(op)
        .copied()
        .ok_or_else(|| RuntimeError::Unsupported(format!("no gradient registered for op `{op}`")))
}

/// Whether `op` has a registered gradient.
pub fn has_gradient(op: &str) -> bool {
    ensure_gradients();
    registry().read().contains_key(op)
}

/// `sum_to_like(x, reference)`: the broadcasting adjoint.
fn sum_to_like(x: &Tensor, reference: &Tensor) -> Result<Tensor> {
    let mut out = tfe_runtime::context::execute(
        "sum_to_like",
        &[x.clone(), reference.clone()],
        Attrs::new(),
    )?;
    Ok(out.remove(0))
}

fn zeros_like(x: &Tensor) -> Result<Tensor> {
    let mut out =
        tfe_runtime::context::execute("zeros_like", std::slice::from_ref(x), Attrs::new())?;
    Ok(out.remove(0))
}

fn ones_like(x: &Tensor) -> Result<Tensor> {
    let mut out =
        tfe_runtime::context::execute("ones_like", std::slice::from_ref(x), Attrs::new())?;
    Ok(out.remove(0))
}

fn two(like: &Tensor) -> Tensor {
    api::constant_data(tfe_tensor::TensorData::fill_f64(
        like.dtype(),
        tfe_tensor::Shape::scalar(),
        2.0,
    ))
}

fn step_mask(x: &Tensor) -> Result<Tensor> {
    // 1 where x > 0 else 0, in x's dtype.
    let zero = api::constant_data(tfe_tensor::TensorData::fill_f64(
        x.dtype(),
        tfe_tensor::Shape::scalar(),
        0.0,
    ));
    let m = api::greater(x, &zero)?;
    api::cast(&m, x.dtype())
}

/// Expand `g` (the reduced gradient) back to input rank by inserting the
/// reduced axes, then broadcast against the input.
fn expand_reduced(g: &Tensor, input: &Tensor, attrs: &Attrs, keep: bool) -> Result<Tensor> {
    if keep {
        return Ok(g.clone());
    }
    let rank = input.rank() as i64;
    let axes = attrs.int_list_or("axes", &[]).map_err(tfe_ops::OpError::from)?;
    let mut norm: Vec<i64> = if axes.is_empty() {
        (0..rank).collect()
    } else {
        axes.iter().map(|&a| if a < 0 { a + rank } else { a }).collect()
    };
    norm.sort_unstable();
    let mut cur = g.clone();
    for &a in &norm {
        cur = api::expand_dims(&cur, a)?;
    }
    Ok(cur)
}

/// Number of elements reduced away, as a dynamic scalar in `dtype` (uses
/// `shape_of` so it works with unknown trace-time dimensions).
fn reduced_count(input: &Tensor, attrs: &Attrs, dtype: DType) -> Result<Tensor> {
    let rank = input.rank() as i64;
    let axes = attrs.int_list_or("axes", &[]).map_err(tfe_ops::OpError::from)?;
    let norm: Vec<i64> = if axes.is_empty() {
        (0..rank).collect()
    } else {
        axes.iter().map(|&a| if a < 0 { a + rank } else { a }).collect()
    };
    let shape = api::shape_of(input)?;
    let idx = api::constant(norm.clone(), [norm.len()])?;
    let dims = api::gather(&shape, &idx, 0)?;
    let count = api::reduce_prod(&dims, &[], false)?;
    api::cast(&count, dtype)
}

macro_rules! grad {
    ($name:expr, $f:expr) => {
        register_gradient($name, $f);
    };
}

/// Register the standard gradient catalog exactly once.
pub fn ensure_gradients() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(register_all);
}

#[allow(clippy::too_many_lines)]
fn register_all() {
    // --- binary elementwise -------------------------------------------------
    grad!("add", |c| {
        let g = c.grad(0)?;
        Ok(vec![Some(sum_to_like(g, c.input(0)?)?), Some(sum_to_like(g, c.input(1)?)?)])
    });
    grad!("sub", |c| {
        let g = c.grad(0)?;
        Ok(vec![Some(sum_to_like(g, c.input(0)?)?), Some(sum_to_like(&api::neg(g)?, c.input(1)?)?)])
    });
    grad!("mul", |c| {
        let g = c.grad(0)?;
        let (a, b) = (c.input(0)?, c.input(1)?);
        Ok(vec![Some(sum_to_like(&api::mul(g, b)?, a)?), Some(sum_to_like(&api::mul(g, a)?, b)?)])
    });
    grad!("div", |c| {
        let g = c.grad(0)?;
        let (a, b) = (c.input(0)?, c.input(1)?);
        let ga = api::div(g, b)?;
        // -g * a / b^2
        let gb = api::neg(&api::div(&api::mul(g, a)?, &api::square(b)?)?)?;
        Ok(vec![Some(sum_to_like(&ga, a)?), Some(sum_to_like(&gb, b)?)])
    });
    grad!("pow", |c| {
        let g = c.grad(0)?;
        let (a, b) = (c.input(0)?, c.input(1)?);
        let y = c.output(0)?;
        // d/da = b * a^(b-1); d/db = y * ln(a) (guarded at a <= 0).
        let bm1 = api::sub(b, &ones_like(b)?)?;
        let ga = api::mul(g, &api::mul(b, &api::pow(a, &bm1)?)?)?;
        let safe_log = api::select(
            &api::greater(a, &zeros_like(a)?)?,
            &api::log(&api::maximum(
                a,
                &api::mul(
                    &ones_like(a)?,
                    &api::constant_data(tfe_tensor::TensorData::fill_f64(
                        a.dtype(),
                        tfe_tensor::Shape::scalar(),
                        1e-30,
                    )),
                )?,
            )?)?,
            &zeros_like(a)?,
        )?;
        let gb = api::mul(g, &api::mul(y, &safe_log)?)?;
        Ok(vec![Some(sum_to_like(&ga, a)?), Some(sum_to_like(&gb, b)?)])
    });
    grad!("maximum", |c| {
        let g = c.grad(0)?;
        let (a, b) = (c.input(0)?, c.input(1)?);
        let mask = api::cast(&api::greater_equal(a, b)?, g.dtype())?;
        let ga = api::mul(g, &mask)?;
        let gb = api::sub(g, &ga)?;
        Ok(vec![Some(sum_to_like(&ga, a)?), Some(sum_to_like(&gb, b)?)])
    });
    grad!("minimum", |c| {
        let g = c.grad(0)?;
        let (a, b) = (c.input(0)?, c.input(1)?);
        let mask = api::cast(&api::less_equal(a, b)?, g.dtype())?;
        let ga = api::mul(g, &mask)?;
        let gb = api::sub(g, &ga)?;
        Ok(vec![Some(sum_to_like(&ga, a)?), Some(sum_to_like(&gb, b)?)])
    });
    grad!("squared_difference", |c| {
        let g = c.grad(0)?;
        let (a, b) = (c.input(0)?, c.input(1)?);
        let d = api::sub(a, b)?;
        let ga = api::mul(g, &api::mul(&two(&d), &d)?)?;
        Ok(vec![Some(sum_to_like(&ga, a)?), Some(sum_to_like(&api::neg(&ga)?, b)?)])
    });
    grad!("mod", |c| {
        let g = c.grad(0)?;
        let (a, b) = (c.input(0)?, c.input(1)?);
        let gb = api::neg(&api::mul(g, &api::floor_div(a, b)?)?)?;
        Ok(vec![Some(sum_to_like(g, a)?), Some(sum_to_like(&gb, b)?)])
    });
    grad!("floor_div", |_c| Ok(vec![None, None]));

    // --- unary elementwise ---------------------------------------------------
    grad!("neg", |c| Ok(vec![Some(api::neg(c.grad(0)?)?)]));
    grad!("abs", |c| Ok(vec![Some(api::mul(c.grad(0)?, &api::sign(c.input(0)?)?)?)]));
    grad!("exp", |c| Ok(vec![Some(api::mul(c.grad(0)?, c.output(0)?)?)]));
    grad!("log", |c| Ok(vec![Some(api::div(c.grad(0)?, c.input(0)?)?)]));
    grad!("log1p", |c| {
        let denom = api::add(c.input(0)?, &ones_like(c.input(0)?)?)?;
        Ok(vec![Some(api::div(c.grad(0)?, &denom)?)])
    });
    grad!("sqrt", |c| {
        // g / (2*y)
        let denom = api::mul(&two(c.output(0)?), c.output(0)?)?;
        Ok(vec![Some(api::div(c.grad(0)?, &denom)?)])
    });
    grad!("rsqrt", |c| {
        // -0.5 * y^3 * g
        let y = c.output(0)?;
        let y3 = api::mul(&api::square(y)?, y)?;
        let half = api::constant_data(tfe_tensor::TensorData::fill_f64(
            y.dtype(),
            tfe_tensor::Shape::scalar(),
            -0.5,
        ));
        Ok(vec![Some(api::mul(&api::mul(&half, &y3)?, c.grad(0)?)?)])
    });
    grad!("square", |c| {
        let ga = api::mul(c.grad(0)?, &api::mul(&two(c.input(0)?), c.input(0)?)?)?;
        Ok(vec![Some(ga)])
    });
    grad!("reciprocal", |c| {
        let y = c.output(0)?;
        Ok(vec![Some(api::neg(&api::mul(c.grad(0)?, &api::square(y)?)?)?)])
    });
    grad!("relu", |c| { Ok(vec![Some(api::mul(c.grad(0)?, &step_mask(c.input(0)?)?)?)]) });
    grad!("sigmoid", |c| {
        let y = c.output(0)?;
        let one_minus = api::sub(&ones_like(y)?, y)?;
        Ok(vec![Some(api::mul(c.grad(0)?, &api::mul(y, &one_minus)?)?)])
    });
    grad!("tanh", |c| {
        let y = c.output(0)?;
        let one_minus = api::sub(&ones_like(y)?, &api::square(y)?)?;
        Ok(vec![Some(api::mul(c.grad(0)?, &one_minus)?)])
    });
    grad!("softplus", |c| { Ok(vec![Some(api::mul(c.grad(0)?, &api::sigmoid(c.input(0)?)?)?)]) });
    grad!("sin", |c| Ok(vec![Some(api::mul(c.grad(0)?, &api::cos(c.input(0)?)?)?)]));
    grad!("cos", |c| {
        Ok(vec![Some(api::neg(&api::mul(c.grad(0)?, &api::sin(c.input(0)?)?)?)?)])
    });
    grad!("erf", |c| {
        // 2/sqrt(pi) * exp(-x^2)
        let x = c.input(0)?;
        let coef = api::constant_data(tfe_tensor::TensorData::fill_f64(
            x.dtype(),
            tfe_tensor::Shape::scalar(),
            2.0 / std::f64::consts::PI.sqrt(),
        ));
        let e = api::exp(&api::neg(&api::square(x)?)?)?;
        Ok(vec![Some(api::mul(c.grad(0)?, &api::mul(&coef, &e)?)?)])
    });
    for name in ["floor", "ceil", "round", "sign"] {
        grad!(name, |c| Ok(vec![Some(zeros_like(c.input(0)?)?)]));
    }

    // --- structure -----------------------------------------------------------
    grad!("identity", |c| Ok(vec![Some(c.grad(0)?.clone())]));
    grad!("copy", |c| Ok(vec![Some(c.grad(0)?.clone())]));
    grad!("print", |c| Ok(vec![Some(c.grad(0)?.clone())]));
    grad!("zeros_like", |c| Ok(vec![Some(zeros_like(c.input(0)?)?)]));
    grad!("ones_like", |c| Ok(vec![Some(zeros_like(c.input(0)?)?)]));
    grad!("select", |c| {
        let g = c.grad(0)?;
        let cond = c.input(0)?;
        let (a, b) = (c.input(1)?, c.input(2)?);
        let ga = api::select(cond, g, &zeros_like(g)?)?;
        let gb = api::select(cond, &zeros_like(g)?, g)?;
        Ok(vec![None, Some(sum_to_like(&ga, a)?), Some(sum_to_like(&gb, b)?)])
    });
    grad!("cast", |c| {
        let src = c.input(0)?.dtype();
        if src.is_float() && c.grad(0)?.dtype().is_float() {
            Ok(vec![Some(api::cast(c.grad(0)?, src)?)])
        } else {
            Ok(vec![None])
        }
    });
    grad!("reshape", |c| Ok(vec![Some(reshape_like(c.grad(0)?, c.input(0)?)?)]));
    grad!("expand_dims", |c| Ok(vec![Some(reshape_like(c.grad(0)?, c.input(0)?)?)]));
    grad!("squeeze", |c| Ok(vec![Some(reshape_like(c.grad(0)?, c.input(0)?)?)]));
    grad!("transpose", |c| {
        let perm = c.attrs().int_list("perm").map_err(tfe_ops::OpError::from)?;
        let mut inverse = vec![0i64; perm.len()];
        for (i, &p) in perm.iter().enumerate() {
            inverse[p as usize] = i as i64;
        }
        Ok(vec![Some(api::transpose(c.grad(0)?, &inverse)?)])
    });
    grad!("concat", |c| {
        let g = c.grad(0)?;
        let axis = c.attrs().int("axis").map_err(tfe_ops::OpError::from)?;
        let rank = c.input(0)?.rank() as i64;
        let ax = if axis < 0 { axis + rank } else { axis } as usize;
        let mut grads = Vec::with_capacity(c.record.inputs.len());
        let mut offset = 0i64;
        for input in &c.record.inputs {
            let dims = input.sym_shape();
            let extent = dims.dims()[ax].ok_or_else(|| {
                RuntimeError::Unsupported("concat gradient with unknown axis extent".to_string())
            })? as i64;
            let mut begin = vec![0i64; dims.rank()];
            begin[ax] = offset;
            let mut size: Vec<i64> = vec![-1; dims.rank()];
            size[ax] = extent;
            grads.push(Some(api::slice(g, &begin, &size)?));
            offset += extent;
        }
        Ok(grads)
    });
    grad!("split", |c| {
        let axis = c.attrs().int("axis").map_err(tfe_ops::OpError::from)?;
        let parts: Vec<&Tensor> = c.output_grads.iter().collect();
        Ok(vec![Some(api::concat(&parts, axis)?)])
    });
    grad!("slice", |c| {
        let begin = c.attrs().int_list("begin").map_err(tfe_ops::OpError::from)?.to_vec();
        let mut out = tfe_runtime::context::execute(
            "slice_grad",
            &[c.input(0)?.clone(), c.grad(0)?.clone()],
            Attrs::new().with("begin", begin),
        )?;
        Ok(vec![Some(out.remove(0))])
    });
    grad!("slice_grad", |c| {
        // Adjoint of the adjoint: slice the incoming gradient back out.
        let begin = c.attrs().int_list("begin").map_err(tfe_ops::OpError::from)?.to_vec();
        let sizes: Vec<i64> = c
            .input(1)?
            .sym_shape()
            .dims()
            .iter()
            .map(|d| d.map(|v| v as i64).unwrap_or(-1))
            .collect();
        Ok(vec![None, Some(api::slice(c.grad(0)?, &begin, &sizes)?)])
    });
    grad!("pad", |c| {
        let flat = c.attrs().int_list("paddings").map_err(tfe_ops::OpError::from)?;
        let begin: Vec<i64> = flat.chunks(2).map(|p| p[0]).collect();
        let sizes: Vec<i64> = c
            .input(0)?
            .sym_shape()
            .dims()
            .iter()
            .map(|d| d.map(|v| v as i64).unwrap_or(-1))
            .collect();
        Ok(vec![Some(api::slice(c.grad(0)?, &begin, &sizes)?)])
    });
    grad!("gather", |c| {
        // Normalize a negative axis against the params rank before
        // dispatching, so gather(x, i, axis=-1) on rank-1 params hits the
        // axis-0 scatter path instead of a spurious "unsupported" error.
        let mut axis = c.attrs().int_or("axis", 0).map_err(tfe_ops::OpError::from)?;
        if axis < 0 {
            axis += c.input(0)?.rank() as i64;
        }
        let mut out = tfe_runtime::context::execute(
            "gather_grad",
            &[c.input(0)?.clone(), c.input(1)?.clone(), c.grad(0)?.clone()],
            Attrs::new().with("axis", axis),
        )?;
        Ok(vec![Some(out.remove(0)), None])
    });
    grad!("broadcast_to", |c| Ok(vec![Some(sum_to_like(c.grad(0)?, c.input(0)?)?)]));
    grad!("sum_to_like", |c| {
        // Broadcast the gradient back up to the original shape.
        let g = c.grad(0)?;
        let ga = api::mul(g, &ones_like(c.input(0)?)?)?;
        Ok(vec![Some(ga), None])
    });
    grad!("reverse", |c| {
        let axis = c.attrs().int_or("axis", 0).map_err(tfe_ops::OpError::from)?;
        Ok(vec![Some(api::reverse(c.grad(0)?, axis)?)])
    });
    grad!("cumsum", |c| {
        // adjoint of prefix-sum: reversed suffix-sum of the gradient.
        let axis = c.attrs().int_or("axis", 0).map_err(tfe_ops::OpError::from)?;
        let r = api::reverse(c.grad(0)?, axis)?;
        let cs = api::cumsum(&r, axis)?;
        Ok(vec![Some(api::reverse(&cs, axis)?)])
    });
    grad!("tile", |c| {
        let input = c.input(0)?;
        Ok(vec![Some(sum_tiled(c.grad(0)?, input, c.attrs())?)])
    });

    // --- linalg ---------------------------------------------------------------
    grad!("matmul", |c| {
        let g = c.grad(0)?;
        let (a, b) = (c.input(0)?, c.input(1)?);
        let ta = c.attrs().bool_or("transpose_a", false).map_err(tfe_ops::OpError::from)?;
        let tb = c.attrs().bool_or("transpose_b", false).map_err(tfe_ops::OpError::from)?;
        let (ga, gb) = match (ta, tb) {
            (false, false) => {
                (api::matmul_t(g, b, false, true)?, api::matmul_t(a, g, true, false)?)
            }
            (true, false) => {
                (api::matmul_t(b, g, false, true)?, api::matmul_t(a, g, false, false)?)
            }
            (false, true) => {
                (api::matmul_t(g, b, false, false)?, api::matmul_t(g, a, true, false)?)
            }
            (true, true) => (api::matmul_t(b, g, true, true)?, api::matmul_t(g, a, true, true)?),
        };
        Ok(vec![Some(ga), Some(gb)])
    });
    grad!("batch_matmul", |c| {
        let g = c.grad(0)?;
        let (a, b) = (c.input(0)?, c.input(1)?);
        let ta = c.attrs().bool_or("transpose_a", false).map_err(tfe_ops::OpError::from)?;
        let tb = c.attrs().bool_or("transpose_b", false).map_err(tfe_ops::OpError::from)?;
        let bmm = |x: &Tensor, y: &Tensor, tx: bool, ty: bool| -> Result<Tensor> {
            Ok(tfe_runtime::context::execute(
                "batch_matmul",
                &[x.clone(), y.clone()],
                Attrs::new().with("transpose_a", tx).with("transpose_b", ty),
            )?
            .remove(0))
        };
        // Same formulas as the 2-D matmul gradient, batched.
        let (ga, gb) = match (ta, tb) {
            (false, false) => (bmm(g, b, false, true)?, bmm(a, g, true, false)?),
            (true, false) => (bmm(b, g, false, true)?, bmm(a, g, false, false)?),
            (false, true) => (bmm(g, b, false, false)?, bmm(g, a, true, false)?),
            (true, true) => (bmm(b, g, true, true)?, bmm(g, a, true, true)?),
        };
        Ok(vec![Some(sum_to_like(&ga, a)?), Some(sum_to_like(&gb, b)?)])
    });

    // --- reductions -------------------------------------------------------------
    grad!("reduce_sum", |c| {
        let keep = c.attrs().bool_or("keep_dims", false).map_err(tfe_ops::OpError::from)?;
        let g = expand_reduced(c.grad(0)?, c.input(0)?, c.attrs(), keep)?;
        Ok(vec![Some(api::mul(&g, &ones_like(c.input(0)?)?)?)])
    });
    grad!("reduce_mean", |c| {
        let keep = c.attrs().bool_or("keep_dims", false).map_err(tfe_ops::OpError::from)?;
        let g = expand_reduced(c.grad(0)?, c.input(0)?, c.attrs(), keep)?;
        let count = reduced_count(c.input(0)?, c.attrs(), g.dtype())?;
        let scaled = api::div(&g, &count)?;
        Ok(vec![Some(api::mul(&scaled, &ones_like(c.input(0)?)?)?)])
    });
    grad!("reduce_max", minmax_grad);
    grad!("reduce_min", minmax_grad);
    grad!("reduce_prod", |c| {
        // Zero-safe product gradient. The naive `y/x * g` form is undefined
        // when an input element is exactly zero, so mask zeros out of the
        // product and handle the zero-count cases per reduction group
        // (inner reductions use keep_dims=true so they broadcast against x):
        //   no zeros in group: d y/d x_i = prod(x)/x_i
        //   one zero:          the zero element gets the product of the
        //                      non-zeros; every other element gets 0
        //   two or more:       everything is 0
        let keep = c.attrs().bool_or("keep_dims", false).map_err(tfe_ops::OpError::from)?;
        let axes = c.attrs().int_list_or("axes", &[]).map_err(tfe_ops::OpError::from)?.to_vec();
        let x = c.input(0)?;
        let g = expand_reduced(c.grad(0)?, x, c.attrs(), keep)?;
        let is_zero = api::cast(&api::equal(x, &zeros_like(x)?)?, x.dtype())?;
        // Zeros replaced by ones: safe to multiply and divide through.
        let safe_x = api::add(x, &is_zero)?;
        let prod_nz = api::reduce_prod(&safe_x, &axes, true)?;
        let num_zeros = api::reduce_sum(&is_zero, &axes, true)?;
        let no_zero = api::cast(&api::equal(&num_zeros, &zeros_like(&num_zeros)?)?, x.dtype())?;
        let one_zero = api::cast(&api::equal(&num_zeros, &ones_like(&num_zeros)?)?, x.dtype())?;
        let not_zero = api::sub(&ones_like(x)?, &is_zero)?;
        // prod-of-the-others for non-zero entries is prod_nz/x, valid only
        // in zero-free groups; for zero entries it is prod_nz itself, valid
        // only when that entry is the group's single zero.
        let nz_part = api::mul(&api::mul(&not_zero, &api::div(&prod_nz, &safe_x)?)?, &no_zero)?;
        let z_part = api::mul(&api::mul(&is_zero, &prod_nz)?, &one_zero)?;
        Ok(vec![Some(api::mul(&g, &api::add(&nz_part, &z_part)?)?)])
    });

    // --- nn -------------------------------------------------------------------
    grad!("softmax", |c| {
        let y = c.output(0)?;
        let g = c.grad(0)?;
        let gy = api::mul(g, y)?;
        let s = api::reduce_sum(&gy, &[-1], true)?;
        Ok(vec![Some(api::sub(&gy, &api::mul(y, &s)?)?)])
    });
    grad!("log_softmax", |c| {
        let y = c.output(0)?;
        let g = c.grad(0)?;
        let s = api::reduce_sum(g, &[-1], true)?;
        Ok(vec![Some(api::sub(g, &api::mul(&api::exp(y)?, &s)?)?)])
    });
    grad!("sparse_softmax_xent", |c| {
        let mut out = tfe_runtime::context::execute(
            "softmax_xent_grad",
            &[c.input(0)?.clone(), c.input(1)?.clone(), c.grad(0)?.clone()],
            Attrs::new(),
        )?;
        Ok(vec![Some(out.remove(0)), None])
    });
    grad!("conv2d", |c| {
        let (x, f, g) = (c.input(0)?, c.input(1)?, c.grad(0)?);
        let attrs = c.attrs().clone();
        let gx = tfe_runtime::context::execute(
            "conv2d_backprop_input",
            &[x.clone(), f.clone(), g.clone()],
            attrs.clone(),
        )?
        .remove(0);
        let gf = tfe_runtime::context::execute(
            "conv2d_backprop_filter",
            &[x.clone(), f.clone(), g.clone()],
            attrs,
        )?
        .remove(0);
        Ok(vec![Some(gx), Some(gf)])
    });
    grad!("max_pool", |c| pool_grad(c, "max_pool_grad"));
    grad!("avg_pool", |c| pool_grad(c, "avg_pool_grad"));
    grad!("dropout_mask", |_c| Ok(vec![None])); // mask depends on shape only

    // --- state ------------------------------------------------------------------
    grad!("read_variable", |c| Ok(vec![Some(c.grad(0)?.clone())]));

    // --- staged escape hatch -------------------------------------------------
    // §4.7: py_func "executes its Python function under a gradient tape and
    // as such it is differentiable". The gradient re-runs the host closure
    // under a fresh tape and differentiates it; inside a trace this emits a
    // new `host_func` node wrapping that computation.
    grad!("host_func", |c| {
        let fn_id = c.attrs().int("fn_id").map_err(tfe_ops::OpError::from)? as u64;
        let inputs: Vec<Tensor> = c.record.inputs.clone();
        let grads: Vec<Tensor> = c.output_grads.to_vec();
        let all: Vec<Tensor> = inputs.iter().chain(grads.iter()).cloned().collect();
        let n_inputs = inputs.len();
        let grad_closure: tfe_runtime::context::HostFn =
            std::sync::Arc::new(move |args: &[Tensor]| {
                let (xs, gs) = args.split_at(n_inputs);
                let f = tfe_runtime::context::host_fn(fn_id)?;
                let tape = crate::GradientTape::new();
                for x in xs {
                    tape.watch(x);
                }
                let ys = f(xs)?;
                let sources: Vec<&Tensor> = xs.iter().collect();
                let mut acc: Vec<Option<Tensor>> = vec![None; xs.len()];
                for (y, g) in ys.iter().zip(gs) {
                    let partial = tape.gradient_with_output_grad(y, Some(g.clone()), &sources)?;
                    for (slot, p) in acc.iter_mut().zip(partial) {
                        *slot = match (slot.take(), p) {
                            (None, x) => x,
                            (x, None) => x,
                            (Some(a), Some(b)) => Some(api::add(&a, &b)?),
                        };
                    }
                }
                acc.into_iter()
                    .enumerate()
                    .map(|(i, g)| match g {
                        Some(g) => Ok(g),
                        None => zeros_like(&xs[i]),
                    })
                    .collect::<Result<Vec<_>>>()
            });
        let grad_id = tfe_runtime::context::register_host_fn(grad_closure);
        let sig: Vec<(DType, tfe_ops::SymShape)> =
            inputs.iter().map(|t| (t.dtype(), t.sym_shape())).collect();
        let (d, s) = tfe_ops::catalog::encode_sig(&sig);
        let out = tfe_runtime::context::execute(
            "host_func",
            &all,
            Attrs::new().with("fn_id", grad_id as i64).with("out_dtypes", d).with("out_shapes", s),
        )?;
        Ok(out.into_iter().map(Some).collect())
    });
}

fn pool_grad(c: &GradCtx, grad_op: &str) -> Result<Vec<Option<Tensor>>> {
    let out = tfe_runtime::context::execute(
        grad_op,
        &[c.input(0)?.clone(), c.grad(0)?.clone()],
        c.attrs().clone(),
    )?;
    Ok(vec![Some(
        out.into_iter()
            .next()
            .ok_or_else(|| RuntimeError::Internal("pool grad returned nothing".to_string()))?,
    )])
}

fn minmax_grad(c: &GradCtx) -> Result<Vec<Option<Tensor>>> {
    let keep = c.attrs().bool_or("keep_dims", false).map_err(tfe_ops::OpError::from)?;
    let input = c.input(0)?;
    let g = expand_reduced(c.grad(0)?, input, c.attrs(), keep)?;
    let y = expand_reduced(c.output(0)?, input, c.attrs(), keep)?;
    let big_y = api::mul(&y, &ones_like(input)?)?;
    let indicator = api::cast(&api::equal(input, &big_y)?, g.dtype())?;
    // Split the gradient among ties, like TensorFlow.
    let axes = c.attrs().int_list_or("axes", &[]).map_err(tfe_ops::OpError::from)?.to_vec();
    let num = api::reduce_sum(&indicator, &axes, true)?;
    let share = api::div(&api::mul(&indicator, &g)?, &num)?;
    Ok(vec![Some(share)])
}

/// Reshape `g` to the (possibly partially-unknown) shape of `reference`.
fn reshape_like(g: &Tensor, reference: &Tensor) -> Result<Tensor> {
    let dims = reference.sym_shape();
    let unknown = dims.dims().iter().filter(|d| d.is_none()).count();
    if unknown > 1 {
        return Err(RuntimeError::Unsupported(
            "reshape gradient with more than one unknown dimension".to_string(),
        ));
    }
    let target: Vec<i64> = dims.dims().iter().map(|d| d.map(|v| v as i64).unwrap_or(-1)).collect();
    api::reshape(g, &target)
}

/// Gradient of `tile`: fold the repeats back with sums.
fn sum_tiled(g: &Tensor, input: &Tensor, attrs: &Attrs) -> Result<Tensor> {
    let multiples = attrs.int_list("multiples").map_err(tfe_ops::OpError::from)?;
    let in_dims = input.sym_shape();
    let Some(shape) = in_dims.to_shape() else {
        return Err(RuntimeError::Unsupported(
            "tile gradient with unknown input dimensions".to_string(),
        ));
    };
    // Reshape g to (m0, d0, m1, d1, ...) and sum the multiple axes.
    let mut interleaved: Vec<i64> = Vec::new();
    let mut sum_axes: Vec<i64> = Vec::new();
    for (i, (&d, &m)) in shape.dims().iter().zip(multiples).enumerate() {
        sum_axes.push(2 * i as i64);
        interleaved.push(m);
        interleaved.push(d as i64);
    }
    let r = api::reshape(g, &interleaved)?;
    api::reduce_sum(&r, &sum_axes, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_core_ops() {
        ensure_gradients();
        for op in [
            "add",
            "mul",
            "matmul",
            "relu",
            "reduce_sum",
            "conv2d",
            "softmax",
            "read_variable",
            "reshape",
            "sigmoid",
            "host_func",
        ] {
            assert!(has_gradient(op), "missing gradient for {op}");
        }
        assert!(!has_gradient("argmax"));
        assert!(gradient_fn("argmax").is_err());
        assert!(gradient_fn("add").is_ok());
    }
}
