//! # tfe-autodiff
//!
//! Tape-based reverse-mode automatic differentiation (§4.2 of the
//! TensorFlow Eager paper): the user-visible [`GradientTape`], a gradient
//! registry covering every differentiable primitive op, and the backprop
//! accumulator. Gradient computations are expressed in primitive ops
//! executed through the shared dispatcher, so they can be nested (tapes
//! watching tapes → higher-order derivatives) and staged (traced into graph
//! functions by `tfe-core`).
//!
//! ```
//! use tfe_autodiff::GradientTape;
//! use tfe_runtime::{api, Variable};
//! use tfe_tensor::TensorData;
//! # fn main() -> Result<(), tfe_runtime::RuntimeError> {
//! // Listing 2: variables are watched automatically.
//! let x = Variable::new(TensorData::scalar(3.0f32));
//! let tape = GradientTape::new();
//! let xv = x.read()?;
//! let y = api::mul(&xv, &xv)?;
//! let grads = tape.gradient_vars(&y, &[&x])?;
//! assert_eq!(grads[0].as_ref().unwrap().scalar_f64()?, 6.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod backprop;
pub mod registry;
mod tape_api;

pub use backprop::{accumulate, accumulate_many};
pub use registry::{
    ensure_gradients, gradient_fn, has_gradient, register_gradient, GradCtx, GradFn,
};
pub use tape_api::{value_and_grad, GradientTape};

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_runtime::{api, Variable};
    use tfe_tensor::{DType, TensorData};

    #[test]
    fn variables_auto_watched() {
        // Listing 2 without explicit watch calls.
        let x = Variable::new(TensorData::scalar(3.0f32));
        let t1 = GradientTape::new();
        let t2 = GradientTape::new();
        let xv = x.read().unwrap();
        let y = api::mul(&xv, &xv).unwrap();
        let dy = t2.gradient_vars(&y, &[&x]).unwrap();
        let dy = dy[0].clone().unwrap();
        assert_eq!(dy.scalar_f64().unwrap(), 6.0);
        let d2y = t1.gradient_vars(&dy, &[&x]).unwrap();
        assert_eq!(d2y[0].clone().unwrap().scalar_f64().unwrap(), 2.0);
    }

    #[test]
    fn multiple_reads_accumulate() {
        // y = read(v) * read(v): two separate reads, one variable gradient.
        let v = Variable::new(TensorData::scalar(4.0f64));
        let tape = GradientTape::new();
        let a = v.read().unwrap();
        let b = v.read().unwrap();
        let y = api::mul(&a, &b).unwrap();
        let g = tape.gradient_vars(&y, &[&v]).unwrap();
        assert_eq!(g[0].clone().unwrap().scalar_f64().unwrap(), 8.0);
    }

    #[test]
    fn matmul_gradient_matches_formula() {
        // y = sum(A @ B): dA = ones @ B^T, dB = A^T @ ones
        let a = api::constant(vec![1.0f64, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        let b = api::constant(vec![5.0f64, 6.0, 7.0, 8.0], [2, 2]).unwrap();
        let tape = GradientTape::new();
        tape.watch(&a);
        tape.watch(&b);
        let y = api::matmul(&a, &b).unwrap();
        let loss = api::reduce_sum(&y, &[], false).unwrap();
        let grads = tape.gradient(&loss, &[&a, &b]).unwrap();
        let ga = grads[0].clone().unwrap();
        let gb = grads[1].clone().unwrap();
        assert_eq!(ga.to_f64_vec().unwrap(), vec![11.0, 15.0, 11.0, 15.0]);
        assert_eq!(gb.to_f64_vec().unwrap(), vec![4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn broadcast_gradients_reduce() {
        // y = sum(a + b) with a: (2,3), b: (3,). db must be summed over rows.
        let a = api::zeros(DType::F64, [2, 3]);
        let b = api::zeros(DType::F64, [3]);
        let tape = GradientTape::new();
        tape.watch(&a);
        tape.watch(&b);
        let y = api::reduce_sum(&api::add(&a, &b).unwrap(), &[], false).unwrap();
        let grads = tape.gradient(&y, &[&a, &b]).unwrap();
        assert_eq!(grads[0].clone().unwrap().shape().unwrap().dims(), &[2, 3]);
        let gb = grads[1].clone().unwrap();
        assert_eq!(gb.shape().unwrap().dims(), &[3]);
        assert_eq!(gb.to_f64_vec().unwrap(), vec![2.0, 2.0, 2.0]);
    }

    fn finite_diff_check(
        f: impl Fn(&tfe_runtime::Tensor) -> tfe_runtime::Tensor,
        xs: Vec<f64>,
        tol: f64,
    ) {
        let n = xs.len();
        let x = api::constant(xs.clone(), [n]).unwrap();
        let tape = GradientTape::new();
        tape.watch(&x);
        let y = f(&x);
        let loss = api::reduce_sum(&y, &[], false).unwrap();
        let g = tape.gradient1(&loss, &x).unwrap().to_f64_vec().unwrap();
        let eps = 1e-6;
        let base: f64 = {
            let y = f(&api::constant(xs.clone(), [n]).unwrap());
            api::reduce_sum(&y, &[], false).unwrap().scalar_f64().unwrap()
        };
        for i in 0..n {
            let mut xp = xs.clone();
            xp[i] += eps;
            let yp = f(&api::constant(xp, [n]).unwrap());
            let lp = api::reduce_sum(&yp, &[], false).unwrap().scalar_f64().unwrap();
            let fd = (lp - base) / eps;
            assert!((fd - g[i]).abs() < tol, "element {i}: fd={fd} analytic={}", g[i]);
        }
    }

    #[test]
    fn finite_differences_unary_suite() {
        let xs = vec![0.3, -0.7, 1.2, 0.01, -1.5];
        finite_diff_check(|x| api::sigmoid(x).unwrap(), xs.clone(), 1e-4);
        finite_diff_check(|x| api::tanh(x).unwrap(), xs.clone(), 1e-4);
        finite_diff_check(|x| api::exp(x).unwrap(), xs.clone(), 1e-4);
        finite_diff_check(|x| api::softplus(x).unwrap(), xs.clone(), 1e-4);
        finite_diff_check(|x| api::square(x).unwrap(), xs.clone(), 1e-4);
        finite_diff_check(|x| api::sin(x).unwrap(), xs.clone(), 1e-4);
        finite_diff_check(|x| api::cos(x).unwrap(), xs.clone(), 1e-4);
        finite_diff_check(|x| api::erf(x).unwrap(), xs.clone(), 1e-4);
        finite_diff_check(|x| api::abs(x).unwrap(), xs, 1e-4);
    }

    #[test]
    fn finite_differences_positive_domain() {
        let xs = vec![0.5, 1.3, 2.0, 0.1];
        finite_diff_check(|x| api::log(x).unwrap(), xs.clone(), 1e-4);
        finite_diff_check(|x| api::sqrt(x).unwrap(), xs.clone(), 1e-4);
        finite_diff_check(|x| api::rsqrt(x).unwrap(), xs.clone(), 1e-3);
        finite_diff_check(|x| api::reciprocal(x).unwrap(), xs, 1e-3);
    }

    #[test]
    fn finite_differences_softmax() {
        let xs = vec![0.3, -0.7, 1.2];
        // softmax composed with a weighting so the gradient is non-trivial.
        finite_diff_check(
            |x| {
                let s = api::softmax(x).unwrap();
                api::mul(&s, &s).unwrap()
            },
            xs,
            1e-4,
        );
    }

    #[test]
    fn reduce_mean_gradient() {
        let x = api::constant(vec![1.0f64, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        let tape = GradientTape::new();
        tape.watch(&x);
        let y = api::reduce_mean(&x, &[], false).unwrap();
        let g = tape.gradient1(&y, &x).unwrap();
        assert_eq!(g.to_f64_vec().unwrap(), vec![0.25; 4]);
    }

    #[test]
    fn reduce_max_gradient_splits_ties() {
        let x = api::constant(vec![3.0f64, 1.0, 3.0], [3]).unwrap();
        let tape = GradientTape::new();
        tape.watch(&x);
        let y = api::reduce_max(&x, &[], false).unwrap();
        let g = tape.gradient1(&y, &x).unwrap();
        assert_eq!(g.to_f64_vec().unwrap(), vec![0.5, 0.0, 0.5]);
    }

    #[test]
    fn gather_and_concat_gradients() {
        let x = api::constant(vec![1.0f64, 2.0, 3.0, 4.0], [4]).unwrap();
        let tape = GradientTape::persistent();
        tape.watch(&x);
        let idx = api::constant(vec![1i64, 1, 3], [3]).unwrap();
        let g1 = api::gather(&x, &idx, 0).unwrap();
        let loss = api::reduce_sum(&g1, &[], false).unwrap();
        let g = tape.gradient1(&loss, &x).unwrap();
        assert_eq!(g.to_f64_vec().unwrap(), vec![0.0, 2.0, 0.0, 1.0]);

        let c = api::concat(&[&x, &x], 0).unwrap();
        let loss2 = api::reduce_sum(&c, &[], false).unwrap();
        let g2 = tape.gradient1(&loss2, &x).unwrap();
        assert_eq!(g2.to_f64_vec().unwrap(), vec![2.0; 4]);
    }

    #[test]
    fn slice_pad_reshape_gradients() {
        let x = api::constant(vec![1.0f64, 2.0, 3.0, 4.0], [4]).unwrap();
        let tape = GradientTape::persistent();
        tape.watch(&x);
        let s = api::slice(&x, &[1], &[2]).unwrap();
        let l = api::reduce_sum(&s, &[], false).unwrap();
        assert_eq!(tape.gradient1(&l, &x).unwrap().to_f64_vec().unwrap(), vec![0.0, 1.0, 1.0, 0.0]);
        let p = api::pad(&x, &[(2, 1)], 0.0).unwrap();
        let l2 = api::reduce_sum(&p, &[], false).unwrap();
        assert_eq!(tape.gradient1(&l2, &x).unwrap().to_f64_vec().unwrap(), vec![1.0; 4]);
        let r = api::reshape(&x, &[2, 2]).unwrap();
        let l3 = api::reduce_sum(&api::mul(&r, &r).unwrap(), &[], false).unwrap();
        assert_eq!(
            tape.gradient1(&l3, &x).unwrap().to_f64_vec().unwrap(),
            vec![2.0, 4.0, 6.0, 8.0]
        );
    }

    #[test]
    fn conv_and_pool_gradients_shapes() {
        let x = api::constant((0..32).map(|i| i as f64 * 0.1).collect::<Vec<_>>(), [1, 4, 4, 2])
            .unwrap();
        let f = api::constant((0..16).map(|i| i as f64 * 0.05).collect::<Vec<_>>(), [2, 2, 2, 2])
            .unwrap();
        let tape = GradientTape::new();
        tape.watch(&x);
        tape.watch(&f);
        let y = api::conv2d(&x, &f, (1, 1), "VALID").unwrap();
        let p = api::max_pool(&y, (2, 2), (2, 2), "VALID").unwrap();
        let loss = api::reduce_sum(&p, &[], false).unwrap();
        let grads = tape.gradient(&loss, &[&x, &f]).unwrap();
        assert_eq!(grads[0].clone().unwrap().shape().unwrap().dims(), &[1, 4, 4, 2]);
        assert_eq!(grads[1].clone().unwrap().shape().unwrap().dims(), &[2, 2, 2, 2]);
    }

    #[test]
    fn xent_gradient_shape_and_sign() {
        let logits = api::constant(vec![2.0f64, 0.5, -1.0], [1, 3]).unwrap();
        let labels = api::constant(vec![0i64], [1]).unwrap();
        let tape = GradientTape::new();
        tape.watch(&logits);
        let loss_vec = api::sparse_softmax_xent(&logits, &labels).unwrap();
        let loss = api::reduce_sum(&loss_vec, &[], false).unwrap();
        let g = tape.gradient1(&loss, &logits).unwrap();
        let v = g.to_f64_vec().unwrap();
        assert!(v[0] < 0.0); // correct class pushed up
        assert!(v[1] > 0.0 && v[2] > 0.0);
        assert!((v.iter().sum::<f64>()).abs() < 1e-10);
    }

    #[test]
    fn third_derivative() {
        // f = x^4; f''' = 24x -> at x=2: 48
        let x = api::scalar(2.0f64);
        let t1 = GradientTape::new();
        t1.watch(&x);
        let t2 = GradientTape::new();
        t2.watch(&x);
        let t3 = GradientTape::new();
        t3.watch(&x);
        let x2 = api::square(&x).unwrap();
        let y = api::square(&x2).unwrap();
        let d1 = t3.gradient1(&y, &x).unwrap(); // 4x^3 = 32
        let d2 = t2.gradient1(&d1, &x).unwrap(); // 12x^2 = 48
        let d3 = t1.gradient1(&d2, &x).unwrap(); // 24x = 48
        assert_eq!(d1.scalar_f64().unwrap(), 32.0);
        assert_eq!(d2.scalar_f64().unwrap(), 48.0);
        assert_eq!(d3.scalar_f64().unwrap(), 48.0);
    }

    #[test]
    fn host_func_differentiable_eagerly() {
        // §4.7: wrapping in host_func has "essentially no effect" eagerly —
        // gradients flow through the closure's internal ops.
        let f: tfe_runtime::context::HostFn = std::sync::Arc::new(|xs| {
            let x = &xs[0];
            api::mul(x, x).map(|t| vec![t])
        });
        let id = tfe_runtime::context::register_host_fn(f);
        let x = api::scalar(3.0f64);
        let tape = GradientTape::new();
        tape.watch(&x);
        let (d, s) = tfe_ops::catalog::encode_sig(&[(DType::F64, tfe_ops::SymShape::scalar())]);
        let y = tfe_runtime::context::execute(
            "host_func",
            std::slice::from_ref(&x),
            tfe_ops::Attrs::new()
                .with("fn_id", id as i64)
                .with("out_dtypes", d)
                .with("out_shapes", s),
        )
        .unwrap()
        .remove(0);
        assert_eq!(y.scalar_f64().unwrap(), 9.0);
        let g = tape.gradient1(&y, &x).unwrap();
        assert_eq!(g.scalar_f64().unwrap(), 6.0);
    }
}

#[cfg(test)]
mod extended_gradient_tests {
    use super::*;
    use tfe_runtime::api;

    #[test]
    fn cumsum_gradient_matches_finite_difference() {
        let xs = vec![0.5f64, -1.0, 2.0, 0.3];
        let x = api::constant(xs.clone(), [4]).unwrap();
        let w = api::constant(vec![1.0f64, 2.0, 3.0, 4.0], [4]).unwrap();
        let tape = GradientTape::new();
        tape.watch(&x);
        // loss = sum(w * cumsum(x)) so the gradient is non-uniform.
        let loss =
            api::reduce_sum(&api::mul(&w, &api::cumsum(&x, 0).unwrap()).unwrap(), &[], false)
                .unwrap();
        let g = tape.gradient1(&loss, &x).unwrap().to_f64_vec().unwrap();
        // d/dx_i = sum_{j >= i} w_j (suffix sums of w).
        assert_eq!(g, vec![10.0, 9.0, 7.0, 4.0]);
    }

    #[test]
    fn reverse_gradient_is_reverse() {
        let x = api::constant(vec![1.0f64, 2.0, 3.0], [3]).unwrap();
        let w = api::constant(vec![1.0f64, 10.0, 100.0], [3]).unwrap();
        let tape = GradientTape::new();
        tape.watch(&x);
        let loss =
            api::reduce_sum(&api::mul(&w, &api::reverse(&x, 0).unwrap()).unwrap(), &[], false)
                .unwrap();
        let g = tape.gradient1(&loss, &x).unwrap().to_f64_vec().unwrap();
        assert_eq!(g, vec![100.0, 10.0, 1.0]);
    }

    #[test]
    fn batch_matmul_transposed_gradients() {
        // Finite-difference check for every transpose combination.
        let a_dims = |ta: bool| if ta { [2usize, 3, 2] } else { [2usize, 2, 3] };
        let b_dims = |tb: bool| if tb { [2usize, 4, 3] } else { [2usize, 3, 4] };
        for (ta, tb) in [(false, false), (true, false), (false, true), (true, true)] {
            let na: usize = a_dims(ta).iter().product();
            let nb: usize = b_dims(tb).iter().product();
            let av: Vec<f64> = (0..na).map(|i| (i as f64) * 0.1 - 0.5).collect();
            let bv: Vec<f64> = (0..nb).map(|i| (i as f64) * 0.07 - 0.4).collect();
            let make = |av: &[f64], bv: &[f64]| {
                let a = api::constant(av.to_vec(), a_dims(ta)).unwrap();
                let b = api::constant(bv.to_vec(), b_dims(tb)).unwrap();
                (a, b)
            };
            let loss = |av: &[f64], bv: &[f64]| -> f64 {
                let (a, b) = make(av, bv);
                let y = tfe_runtime::context::execute(
                    "batch_matmul",
                    &[a, b],
                    tfe_ops::Attrs::new().with("transpose_a", ta).with("transpose_b", tb),
                )
                .unwrap()
                .remove(0);
                api::reduce_sum(&y, &[], false).unwrap().scalar_f64().unwrap()
            };
            let (a, b) = make(&av, &bv);
            let tape = GradientTape::new();
            tape.watch(&a);
            tape.watch(&b);
            let y = tfe_runtime::context::execute(
                "batch_matmul",
                &[a.clone(), b.clone()],
                tfe_ops::Attrs::new().with("transpose_a", ta).with("transpose_b", tb),
            )
            .unwrap()
            .remove(0);
            let l = api::reduce_sum(&y, &[], false).unwrap();
            let grads = tape.gradient(&l, &[&a, &b]).unwrap();
            let ga = grads[0].clone().unwrap().to_f64_vec().unwrap();
            let gb = grads[1].clone().unwrap().to_f64_vec().unwrap();
            let eps = 1e-6;
            for i in 0..na {
                let mut p = av.clone();
                p[i] += eps;
                let fd = (loss(&p, &bv) - loss(&av, &bv)) / eps;
                assert!((fd - ga[i]).abs() < 1e-4, "ta={ta} tb={tb} a[{i}]: {fd} vs {}", ga[i]);
            }
            for i in 0..nb {
                let mut p = bv.clone();
                p[i] += eps;
                let fd = (loss(&av, &p) - loss(&av, &bv)) / eps;
                assert!((fd - gb[i]).abs() < 1e-4, "ta={ta} tb={tb} b[{i}]: {fd} vs {}", gb[i]);
            }
        }
    }
}
