//! Reverse-mode accumulation over tape records.

use crate::registry::{gradient_fn, GradCtx};
use std::collections::HashMap;
use tfe_ops::Attrs;
use tfe_runtime::{api, Result, RuntimeError, TapeRecord, Tensor};

fn zeros_like(x: &Tensor) -> Result<Tensor> {
    let mut out =
        tfe_runtime::context::execute("zeros_like", std::slice::from_ref(x), Attrs::new())?;
    Ok(out.remove(0))
}

/// Run reverse-mode accumulation over `records` (in recording order),
/// starting from `seed` at `target_id`. Returns the gradient for every id
/// reached; callers look up their sources in the result.
///
/// Gradient arithmetic executes through the normal dispatcher, so any outer
/// active tapes record it (higher-order gradients, §4.2) and it can itself
/// be traced (staged backward passes).
///
/// # Errors
/// Missing gradient definitions along the differentiated path, or kernel
/// failures inside gradient functions.
pub fn accumulate(
    records: &[TapeRecord],
    target_id: u64,
    seed: Tensor,
    wanted: &[u64],
) -> Result<HashMap<u64, Tensor>> {
    let mut seeds = HashMap::new();
    seeds.insert(target_id, seed);
    let r = accumulate_many(records, seeds)?;
    let _ = wanted;
    Ok(r)
}

/// Multi-target variant of [`accumulate`]: start with a seed gradient per
/// target id. Used when differentiating graph functions, which may have
/// several outputs.
///
/// # Errors
/// Same conditions as [`accumulate`].
pub fn accumulate_many(
    records: &[TapeRecord],
    seeds: HashMap<u64, Tensor>,
) -> Result<HashMap<u64, Tensor>> {
    let mut grads: HashMap<u64, Tensor> = seeds;

    let profile = std::env::var_os("TFE_GRAD_PROFILE").is_some();
    let mut op_times: HashMap<String, (u32, std::time::Duration)> = HashMap::new();

    for record in records.iter().rev() {
        // Does any output carry gradient?
        if !record.output_ids.iter().any(|id| grads.contains_key(id)) {
            continue;
        }
        let mut output_grads = Vec::with_capacity(record.outputs.len());
        for (out, id) in record.outputs.iter().zip(&record.output_ids) {
            match grads.get(id) {
                Some(g) => output_grads.push(g.clone()),
                None => output_grads.push(zeros_like(out)?),
            }
        }
        let f = gradient_fn(&record.op)?;
        let t0 = profile.then(std::time::Instant::now);
        let input_grads = f(&GradCtx { record, output_grads: &output_grads })?;
        if let Some(t0) = t0 {
            let e = op_times.entry(record.op.clone()).or_default();
            e.0 += 1;
            e.1 += t0.elapsed();
        }
        if input_grads.len() != record.input_ids.len() {
            return Err(RuntimeError::Internal(format!(
                "gradient of `{}` returned {} grads for {} inputs",
                record.op,
                input_grads.len(),
                record.input_ids.len()
            )));
        }
        for (id, grad) in record.input_ids.iter().zip(input_grads) {
            if let Some(g) = grad {
                match grads.remove(id) {
                    Some(existing) => {
                        grads.insert(*id, api::add(&existing, &g)?);
                    }
                    None => {
                        grads.insert(*id, g);
                    }
                }
            }
        }
    }
    if profile {
        let mut rows: Vec<_> = op_times.into_iter().collect();
        rows.sort_by_key(|(_, (_, d))| std::cmp::Reverse(*d));
        for (op, (n, d)) in rows.into_iter().take(12) {
            eprintln!("[grad profile] {op}: {n} calls, {d:?}");
        }
    }
    Ok(grads)
}
