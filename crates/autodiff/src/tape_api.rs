//! The user-visible `GradientTape` (§4.2).

use crate::backprop;
use std::sync::Arc;
use tfe_runtime::{Result, RuntimeError, Tape, Tensor, Variable};

/// Records operations for reverse-mode differentiation.
///
/// Creating a tape pushes it onto the thread's active-tape stack; dropping
/// it (or letting it fall out of scope) pops it. If a tape watches a value,
/// operations taking that value as input are recorded; any scalar computed
/// while the tape is active can then be differentiated with respect to any
/// watched value. Tapes compose: one tape can record the gradient
/// computation another tape performs (Listing 1's nested tapes).
///
/// ```
/// use tfe_autodiff::GradientTape;
/// use tfe_runtime::api;
/// # fn main() -> Result<(), tfe_runtime::RuntimeError> {
/// let x = api::scalar(3.0f32);
/// let t1 = GradientTape::new();
/// let t2 = GradientTape::new();
/// t1.watch(&x);
/// t2.watch(&x);
/// let y = api::mul(&x, &x)?;
/// let dy_dx = t2.gradient1(&y, &x)?; // 6.0
/// let d2y_dx2 = t1.gradient1(&dy_dx, &x)?; // 2.0
/// assert_eq!(dy_dx.scalar_f64()?, 6.0);
/// assert_eq!(d2y_dx2.scalar_f64()?, 2.0);
/// # Ok(())
/// # }
/// ```
pub struct GradientTape {
    tape: Arc<Tape>,
}

impl GradientTape {
    /// A single-use tape that auto-watches variables.
    pub fn new() -> GradientTape {
        GradientTape::with_options(false, true)
    }

    /// A tape whose `gradient` may be called repeatedly.
    pub fn persistent() -> GradientTape {
        GradientTape::with_options(true, true)
    }

    /// Full control over persistence and variable auto-watching.
    pub fn with_options(persistent: bool, watch_accessed_variables: bool) -> GradientTape {
        crate::registry::ensure_gradients();
        let tape = Tape::new(persistent, watch_accessed_variables);
        tfe_runtime::context::push_tape(tape.clone());
        GradientTape { tape }
    }

    /// Watch a tensor (record ops consuming it).
    pub fn watch(&self, t: &Tensor) {
        self.tape.watch_id(t.id());
    }

    /// Explicitly watch a variable (usually automatic; see
    /// [`GradientTape::with_options`]).
    pub fn watch_variable(&self, v: &Variable) {
        self.tape.watch_id(v.id());
    }

    /// Number of operations recorded so far.
    pub fn num_recorded(&self) -> usize {
        self.tape.len()
    }

    /// d`target`/d`source` for a single tensor source.
    ///
    /// # Errors
    /// No gradient path, missing gradient definitions, or reuse of a
    /// non-persistent tape.
    pub fn gradient1(&self, target: &Tensor, source: &Tensor) -> Result<Tensor> {
        let mut v = self.gradient(target, &[source])?;
        v.remove(0).ok_or_else(|| {
            RuntimeError::Internal(
                "no gradient path from target to source (did you watch it?)".to_string(),
            )
        })
    }

    /// Gradients of `target` with respect to `sources` (None = unconnected).
    ///
    /// # Errors
    /// Missing gradient definitions along the path, or tape reuse.
    pub fn gradient(&self, target: &Tensor, sources: &[&Tensor]) -> Result<Vec<Option<Tensor>>> {
        self.gradient_with_output_grad(target, None, sources)
    }

    /// Gradients with respect to variables, accumulated across all reads.
    ///
    /// # Errors
    /// Missing gradient definitions along the path, or tape reuse.
    pub fn gradient_vars(
        &self,
        target: &Tensor,
        sources: &[&Variable],
    ) -> Result<Vec<Option<Tensor>>> {
        let ids: Vec<u64> = sources.iter().map(|v| v.id()).collect();
        self.gradient_ids(target, None, &ids)
    }

    /// Like [`GradientTape::gradient`] with an explicit seed gradient
    /// (defaults to ones of the target's shape).
    ///
    /// # Errors
    /// Missing gradient definitions along the path, or tape reuse.
    pub fn gradient_with_output_grad(
        &self,
        target: &Tensor,
        output_grad: Option<Tensor>,
        sources: &[&Tensor],
    ) -> Result<Vec<Option<Tensor>>> {
        let ids: Vec<u64> = sources.iter().map(|t| t.id()).collect();
        self.gradient_ids(target, output_grad, &ids)
    }

    fn gradient_ids(
        &self,
        target: &Tensor,
        output_grad: Option<Tensor>,
        source_ids: &[u64],
    ) -> Result<Vec<Option<Tensor>>> {
        self.tape.consume()?;
        // The tape must not record its own backward pass; outer tapes do
        // (that is how nesting yields higher-order derivatives).
        let was_active = tfe_runtime::context::pop_tape(self.tape.id);
        let result = (|| {
            let seed = match output_grad {
                Some(g) => g,
                None => {
                    let mut out = tfe_runtime::context::execute(
                        "ones_like",
                        std::slice::from_ref(target),
                        tfe_ops::Attrs::new(),
                    )?;
                    out.remove(0)
                }
            };
            let grads = backprop::accumulate(&self.tape.records(), target.id(), seed, source_ids)?;
            Ok(source_ids.iter().map(|id| grads.get(id).cloned()).collect())
        })();
        if was_active {
            tfe_runtime::context::push_tape(self.tape.clone());
        }
        result
    }
}

impl Default for GradientTape {
    fn default() -> GradientTape {
        GradientTape::new()
    }
}

impl Drop for GradientTape {
    fn drop(&mut self) {
        tfe_runtime::context::pop_tape(self.tape.id);
    }
}

impl std::fmt::Debug for GradientTape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GradientTape({:?})", self.tape)
    }
}

/// Convenience: compute `d f(x) / d x` at `x` for a unary function, eagerly.
///
/// # Errors
/// Propagates tape errors.
pub fn value_and_grad(
    f: impl FnOnce(&Tensor) -> Result<Tensor>,
    x: &Tensor,
) -> Result<(Tensor, Tensor)> {
    let tape = GradientTape::new();
    tape.watch(x);
    let y = f(x)?;
    let g = tape.gradient1(&y, x)?;
    Ok((y, g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_runtime::api;

    #[test]
    fn simple_gradient() {
        // d(x^2)/dx = 2x
        let x = api::scalar(3.0f32);
        let tape = GradientTape::new();
        tape.watch(&x);
        let y = api::mul(&x, &x).unwrap();
        let g = tape.gradient1(&y, &x).unwrap();
        assert_eq!(g.scalar_f64().unwrap(), 6.0);
    }

    #[test]
    fn unwatched_is_unconnected() {
        let x = api::scalar(3.0f32);
        let tape = GradientTape::new();
        let y = api::mul(&x, &x).unwrap();
        let g = tape.gradient(&y, &[&x]).unwrap();
        assert!(g[0].is_none());
    }

    #[test]
    fn nested_tapes_second_derivative() {
        // Listing 1: y = x*x; dy/dx = 2x = 6; d2y/dx2 = 2.
        let x = api::scalar(3.0f32);
        let t1 = GradientTape::new();
        let t2 = GradientTape::new();
        t1.watch(&x);
        t2.watch(&x);
        let y = api::mul(&x, &x).unwrap();
        let dy = t2.gradient1(&y, &x).unwrap();
        assert_eq!(dy.scalar_f64().unwrap(), 6.0);
        let d2y = t1.gradient1(&dy, &x).unwrap();
        assert_eq!(d2y.scalar_f64().unwrap(), 2.0);
    }

    #[test]
    fn non_persistent_single_use() {
        let x = api::scalar(2.0f32);
        let tape = GradientTape::new();
        tape.watch(&x);
        let y = api::square(&x).unwrap();
        assert!(tape.gradient1(&y, &x).is_ok());
        assert!(tape.gradient1(&y, &x).is_err());
    }

    #[test]
    fn persistent_reuse() {
        let x = api::scalar(2.0f32);
        let tape = GradientTape::persistent();
        tape.watch(&x);
        let y = api::square(&x).unwrap();
        let z = api::mul(&y, &x).unwrap(); // x^3
        assert_eq!(tape.gradient1(&y, &x).unwrap().scalar_f64().unwrap(), 4.0);
        assert_eq!(tape.gradient1(&z, &x).unwrap().scalar_f64().unwrap(), 12.0);
    }

    #[test]
    fn value_and_grad_helper() {
        let x = api::scalar(1.5f64);
        let (y, g) = value_and_grad(api::exp, &x).unwrap();
        assert!((y.scalar_f64().unwrap() - 1.5f64.exp()).abs() < 1e-12);
        assert!((g.scalar_f64().unwrap() - 1.5f64.exp()).abs() < 1e-12);
    }
}
