//! Request-scoped causal tracing: a cheap (two-u64) [`TraceContext`]
//! created at every request entry point — serve `infer()`, a top-level
//! eager op, a `Func` call, a dist RPC — and propagated across thread
//! hops so one request renders as a single causal arc across thread rows
//! instead of shattering into per-thread fragments.
//!
//! # Propagation model
//!
//! The context lives in a thread-local [`TraceGroup`] (usually a single
//! context; several inside a coalesced serve batch, whose members all
//! causally feed the same staged call). Carriers capture
//! [`current_group`] into their envelope at the send side — a batcher
//! request slot, a stream op, a pool job, an RPC frame — and the
//! receiving thread re-installs it with [`adopt`] for the duration of
//! the work. Scopes are strictly RAII: the previous group is restored on
//! drop, so nested requests and work-helping threads can't leak contexts
//! into unrelated work.
//!
//! # Flow events
//!
//! When the profiler is enabled, entry points emit a chrome-trace flow
//! *start* (`s`), every cross-thread adoption a *step* (`t`), and the
//! scope exit a *finish* (`f`), all keyed by the trace id — the trace
//! viewer draws them as arrows linking the hops. Consecutive adoptions
//! of the same group on the same thread (e.g. one pool worker executing
//! many nodes of one graph run) are deduplicated to keep the arrow count
//! proportional to hops, not jobs.

use crate::flight;
use crate::{enabled, now_ns, record, Event, EventKind, FlowPhase, SpanGuard};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// A request-scoped causal identity: which request this work belongs to
/// (`trace_id`, process-unique) and which hop within it (`span_id`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Process-unique id of the request this work belongs to.
    pub trace_id: u64,
    /// Id of the current hop/span within the request.
    pub span_id: u64,
}

impl TraceContext {
    /// Allocate a fresh root context (new trace id, new span id).
    pub fn new_root() -> TraceContext {
        TraceContext {
            trace_id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
            span_id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// A child context: same trace, fresh span id (used when a context
    /// crosses a serialization boundary, e.g. a dist RPC frame).
    pub fn child(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
        }
    }
}

/// The set of request contexts causally feeding the current work. Almost
/// always one; a coalesced serve batch carries every member's context so
/// each request's flow arc follows the batch onto the stream and pool
/// threads. `Single` is unboxed so per-op roots never allocate.
#[derive(Debug, Clone)]
pub enum TraceGroup {
    /// One request (the common case; no heap allocation).
    Single(TraceContext),
    /// Several coalesced requests; `[0]` is the primary (oldest member).
    Many(Arc<[TraceContext]>),
}

impl TraceGroup {
    /// A group of one.
    pub fn single(ctx: TraceContext) -> TraceGroup {
        TraceGroup::Single(ctx)
    }

    /// A group over `ctxs` (`[0]` becomes the primary); `None` when empty.
    pub fn of(ctxs: Vec<TraceContext>) -> Option<TraceGroup> {
        match ctxs.len() {
            0 => None,
            1 => Some(TraceGroup::Single(ctxs[0])),
            _ => Some(TraceGroup::Many(ctxs.into())),
        }
    }

    /// The primary context (spans and flight records are attributed to it).
    pub fn primary(&self) -> TraceContext {
        match self {
            TraceGroup::Single(c) => *c,
            TraceGroup::Many(cs) => cs[0],
        }
    }

    /// Every member context.
    pub fn members(&self) -> &[TraceContext] {
        match self {
            TraceGroup::Single(c) => std::slice::from_ref(c),
            TraceGroup::Many(cs) => cs,
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<TraceGroup>> = const { RefCell::new(None) };
    /// Dedup key of the last flow step emitted by this thread
    /// (group fingerprint, hop-name pointer).
    static LAST_HOP: Cell<(u64, usize)> = const { Cell::new((0, 0)) };
}

/// The primary context of the group installed on this thread, if any.
pub fn current_context() -> Option<TraceContext> {
    CURRENT.with(|c| c.borrow().as_ref().map(TraceGroup::primary))
}

/// The full group installed on this thread, if any (cheap clone — carriers
/// capture this into their envelopes at the send side of a thread hop).
pub fn current_group() -> Option<TraceGroup> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn current_pair() -> Option<(u64, u64)> {
    current_context().map(|c| (c.trace_id, c.span_id))
}

pub(crate) fn has_current() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

fn record_flow(phase: FlowPhase, ctx: TraceContext, detail: Option<String>) {
    if !enabled() {
        return;
    }
    record(Event {
        name: "request".to_string(),
        cat: "flow",
        kind: EventKind::Flow { ts_ns: now_ns(), phase, id: ctx.trace_id },
        detail,
        trace: Some((ctx.trace_id, ctx.span_id)),
    });
}

/// RAII scope of one request root: installs a fresh context on the entry
/// thread, emits the flow start/finish pair, and (for non-eager kinds)
/// opens a `request`-category span covering the whole request plus
/// flight-recorder begin/end marks.
pub struct RequestScope {
    prev: Option<TraceGroup>,
    ctx: TraceContext,
    kind: &'static str,
    label: Option<String>,
    span: Option<SpanGuard>,
}

/// Open a request root of `kind` (`"serve"`, `"func"`, `"dist"`,
/// `"eager"`). Returns `None` — at the cost of two relaxed loads and a
/// thread-local probe — when neither the profiler nor the flight recorder
/// is on, or when a group is already installed (a nested entry point
/// inherits the ambient request instead of starting a new trace). The
/// name closure only runs when the profiler is enabled.
///
/// `"eager"` roots are lightweight: they install the context and emit
/// flow events, but skip the request span and the flight begin/end marks
/// (per-op volume would drown both).
pub fn request_scope(kind: &'static str, name: impl FnOnce() -> String) -> Option<RequestScope> {
    if !crate::tracing_active() || has_current() {
        return None;
    }
    let ctx = TraceContext::new_root();
    let prev = CURRENT.with(|c| c.borrow_mut().replace(TraceGroup::Single(ctx)));
    let label = enabled().then(name);
    let heavy = kind != "eager";
    let span = match (&label, heavy) {
        (Some(l), true) => {
            Some(SpanGuard::open_profiler("request", l.clone(), Some((ctx.trace_id, ctx.span_id))))
        }
        _ => None,
    };
    record_flow(FlowPhase::Start, ctx, label.clone());
    if heavy && flight::flight_enabled() {
        flight::record(flight::Kind::RequestStart, kind, ctx, 0);
    }
    Some(RequestScope { prev, ctx, kind, label, span })
}

impl RequestScope {
    /// The root context of this request.
    pub fn context(&self) -> TraceContext {
        self.ctx
    }

    /// The request's trace id.
    pub fn trace_id(&self) -> u64 {
        self.ctx.trace_id
    }
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        record_flow(FlowPhase::End, self.ctx, self.label.take());
        if self.kind != "eager" && flight::flight_enabled() {
            flight::record(flight::Kind::RequestEnd, self.kind, self.ctx, 0);
        }
        self.span = None; // record the request span while still inside the scope
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// RAII scope of one adoption: the receiving side of a thread hop.
pub struct AdoptScope {
    prev: Option<TraceGroup>,
    installed: bool,
}

/// Install `group` on the current thread for the duration of the returned
/// guard, emitting one flow step per member (deduplicated against an
/// immediately-preceding identical adoption on this thread) plus a flight
/// hop record for the primary. A `None` group is a no-op guard, so
/// carriers can pass their envelope through unconditionally.
pub fn adopt(group: Option<&TraceGroup>, hop: &'static str) -> AdoptScope {
    let Some(g) = group else {
        return AdoptScope { prev: None, installed: false };
    };
    let prev = CURRENT.with(|c| c.borrow_mut().replace(g.clone()));
    let key = (g.primary().trace_id ^ ((g.members().len() as u64) << 48), hop.as_ptr() as usize);
    let repeat = LAST_HOP.with(|l| {
        let repeat = l.get() == key;
        l.set(key);
        repeat
    });
    if !repeat {
        if enabled() {
            for ctx in g.members() {
                record_flow(FlowPhase::Step, *ctx, Some(hop.to_string()));
            }
        }
        if flight::flight_enabled() {
            flight::record(flight::Kind::Hop, hop, g.primary(), 0);
        }
    }
    AdoptScope { prev, installed: true }
}

/// Adopt a context shipped over a serialization boundary as a bare
/// `(trace_id, span_id)` pair (e.g. a dist RPC frame); the receiving side
/// continues the trace under a fresh child span id.
pub fn adopt_remote(trace: Option<(u64, u64)>, hop: &'static str) -> AdoptScope {
    match trace {
        Some((trace_id, span_id)) => {
            let group = TraceGroup::Single(TraceContext { trace_id, span_id }.child());
            adopt(Some(&group), hop)
        }
        None => AdoptScope { prev: None, installed: false },
    }
}

impl Drop for AdoptScope {
    fn drop(&mut self) {
        if self.installed {
            CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_unique_under_concurrent_churn() {
        // Satellite contract: ids stay unique under 8-thread allocation
        // churn (the allocator is a single relaxed fetch_add, but the test
        // pins the contract against future cleverness).
        const THREADS: usize = 8;
        const PER_THREAD: usize = 10_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..PER_THREAD).map(|_| TraceContext::new_root().trace_id).collect::<Vec<_>>()
                })
            })
            .collect();
        let mut seen = std::collections::HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(seen.insert(id), "trace id {id} allocated twice");
            }
        }
        assert_eq!(seen.len(), THREADS * PER_THREAD);
    }

    #[test]
    fn request_scope_installs_and_restores() {
        let _g = crate::test_scope_lock().lock();
        crate::set_flight_enabled(true);
        assert!(current_context().is_none());
        let scope = request_scope("serve", || "r".to_string()).expect("flight recorder is on");
        let ctx = current_context().expect("scope installed");
        assert_eq!(ctx.trace_id, scope.trace_id());
        // A nested entry point inherits the ambient request.
        assert!(request_scope("func", || "nested".to_string()).is_none());
        drop(scope);
        assert!(current_context().is_none());
    }

    #[test]
    fn adopt_installs_group_and_restores_previous() {
        let _g = crate::test_scope_lock().lock();
        let a = TraceContext::new_root();
        let b = TraceContext::new_root();
        let outer = TraceGroup::single(a);
        let inner = TraceGroup::of(vec![b, a]).unwrap();
        {
            let _o = adopt(Some(&outer), "hop_a");
            assert_eq!(current_context().unwrap().trace_id, a.trace_id);
            {
                let _i = adopt(Some(&inner), "hop_b");
                assert_eq!(current_context().unwrap().trace_id, b.trace_id);
                assert_eq!(current_group().unwrap().members().len(), 2);
            }
            assert_eq!(current_context().unwrap().trace_id, a.trace_id);
        }
        assert!(current_context().is_none());
        // Adopting nothing is a no-op guard.
        let _n = adopt(None, "hop_a");
        assert!(current_context().is_none());
    }

    #[test]
    fn flow_events_link_scope_and_adoptions() {
        let _g = crate::test_scope_lock().lock();
        crate::start();
        let trace_id = {
            let scope = request_scope("serve", || "flow_req".to_string()).unwrap();
            let group = current_group().unwrap();
            let id = scope.trace_id();
            std::thread::spawn(move || {
                let _a = adopt(Some(&group), "worker");
                let _s = crate::span("serve", || "work".to_string());
            })
            .join()
            .unwrap();
            id
        };
        let profile = crate::stop();
        let mut phases = Vec::new();
        for t in &profile.threads {
            for e in &t.events {
                if let EventKind::Flow { phase, id, .. } = e.kind {
                    if id == trace_id {
                        phases.push((phase, t.tid));
                    }
                }
            }
        }
        let starts = phases.iter().filter(|(p, _)| *p == FlowPhase::Start).count();
        let steps = phases.iter().filter(|(p, _)| *p == FlowPhase::Step).count();
        let ends = phases.iter().filter(|(p, _)| *p == FlowPhase::End).count();
        assert_eq!((starts, ends), (1, 1), "one start and one finish: {phases:?}");
        assert!(steps >= 1, "the adoption must step the flow: {phases:?}");
        let tids: std::collections::HashSet<u64> = phases.iter().map(|(_, t)| *t).collect();
        assert!(tids.len() >= 2, "flow must cross threads: {phases:?}");
    }
}
