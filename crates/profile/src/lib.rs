//! Op-level profiler for the tf-eager runtime: spans, instants and
//! counters collected across every execution layer (eager dispatch, the
//! trace cache, the graph executor, the worker pool, intra-op kernels).
//!
//! # Design
//!
//! - **Disabled cost is one relaxed atomic load per probe.** Every probe
//!   ([`span`], [`instant`], [`counter`]) starts with `ENABLED.load(Relaxed)`
//!   and returns immediately when profiling is off; name strings are built
//!   lazily behind that check, so an idle profiler never allocates.
//! - **Per-thread buffers.** Each thread appends to its own buffer (an
//!   uncontended per-thread lock taken only by the owner while recording),
//!   so recording never contends across threads; [`stop`] merges all
//!   buffers into one [`Profile`].
//! - **Scoped collection.** [`start`] clears the buffers and flips the
//!   enabled flag; [`stop`] flips it back and drains. Only one scope can be
//!   active at a time (the collector is process-wide).
//!
//! # Exports
//!
//! [`Profile::chrome_trace`] renders a chrome://tracing / Perfetto
//! compatible JSON timeline: one named row per thread (pool workers as
//! `pool-worker-{i}`, serve workers as `serve:{model}@v{n}`, stream
//! threads as `tfe-stream-{n}`, grouped by `thread_sort_index`), nested
//! `X` duration events for eager dispatch → graph functions → nodes →
//! kernels → intra-op tiles, `i` instant events for trace-cache misses
//! and executor aborts, `C` counter events for ready-queue depth and pool
//! wait latency, and `s`/`t`/`f` flow events linking each request's hops
//! across thread rows (see [`request_scope`]/[`adopt`]).
//! [`Profile::summary`] aggregates the same events into per-op
//! count/total/p50/p99 rows plus cache hit rates and bytes produced;
//! [`Profile::trace_report`] splits one request's latency into
//! queue/concat/dispatch/split/kernel time.
//!
//! # Causal tracing and the flight recorder
//!
//! The [`trace`]-module primitives ([`TraceContext`], [`request_scope`],
//! [`adopt`]) attribute work to requests across thread hops, and the
//! always-on [`flight`]-module recorder keeps a per-thread ring of recent
//! causally-relevant records that [`flight_dump`] snapshots to JSON when
//! a failure fires. Both are independent of the profiling scope: spans
//! and instants in request-relevant categories reach the flight recorder
//! even while `TFE_PROFILE` collection is off.

mod flight;
mod trace;

pub use flight::{
    flight_dump, flight_enabled, flight_snapshot, last_dump, recent_dumps, set_flight_enabled,
    FlightDump, FlightRecord, FLIGHT_DUMP_WINDOW_MS, FLIGHT_RING_CAPACITY, MAX_RECENT_DUMPS,
};
pub use trace::{
    adopt, adopt_remote, current_context, current_group, request_scope, AdoptScope, RequestScope,
    TraceContext, TraceGroup,
};

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// Nanoseconds since the process-wide profiling epoch (first use).
pub fn now_ns() -> u64 {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Whether a profiling scope is active. One relaxed atomic load — this is
/// the entire per-op cost of a disabled profiler.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether any event sink is live: a profiling scope, or the always-on
/// flight recorder. Two relaxed loads; request entry points gate their
/// context allocation on this.
#[inline]
pub fn tracing_active() -> bool {
    enabled() || flight::flight_enabled()
}

struct ThreadBuf {
    tid: u64,
    name: String,
    events: Mutex<Vec<Event>>,
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static R: std::sync::OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = std::sync::OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: std::cell::OnceCell<Arc<ThreadBuf>> = const { std::cell::OnceCell::new() };
}

fn with_buf(f: impl FnOnce(&ThreadBuf)) {
    LOCAL.with(|cell| {
        let buf = cell.get_or_init(|| {
            let buf = Arc::new(ThreadBuf {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                name: std::thread::current().name().unwrap_or("thread").to_string(),
                events: Mutex::new(Vec::new()),
            });
            registry().lock().push(buf.clone());
            buf
        });
        f(buf);
    });
}

fn record(event: Event) {
    with_buf(|buf| buf.events.lock().push(event));
}

/// Begin a profiling scope: clear all per-thread buffers and enable
/// collection. Safe to call again after [`stop`].
pub fn start() {
    now_ns(); // pin the epoch before any event can be recorded
    for buf in registry().lock().iter() {
        buf.events.lock().clear();
    }
    ENABLED.store(true, Ordering::SeqCst);
}

/// End the profiling scope and merge every thread's events into a
/// [`Profile`]. Spans still open on other threads when `stop` is called
/// are dropped (their guards record after the drain and are cleared by the
/// next [`start`]).
pub fn stop() -> Profile {
    ENABLED.store(false, Ordering::SeqCst);
    let mut threads = Vec::new();
    for buf in registry().lock().iter() {
        let events = std::mem::take(&mut *buf.events.lock());
        if !events.is_empty() {
            threads.push(ThreadTrace { tid: buf.tid, name: buf.name.clone(), events });
        }
    }
    threads.sort_by_key(|t| t.tid);
    Profile { threads }
}

/// The `TFE_PROFILE` environment variable: the chrome-trace output path
/// that examples and benches use to opt into profiling.
pub fn env_trace_path() -> Option<String> {
    std::env::var("TFE_PROFILE").ok().filter(|p| !p.is_empty())
}

// ---------------------------------------------------------------------------
// Events and probes
// ---------------------------------------------------------------------------

/// One recorded profiling event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Display name (op type, function name, `tile`, `idle`, ...).
    pub name: String,
    /// Event category: `eager`, `kernel`, `graph`, `node`, `trace`,
    /// `sched`, `pool`, `intra`.
    pub cat: &'static str,
    /// Timing payload.
    pub kind: EventKind,
    /// Optional extra context (e.g. the plan-level node label).
    pub detail: Option<String>,
    /// The `(trace_id, span_id)` of the request context installed on the
    /// recording thread when the probe fired, if any.
    pub trace: Option<(u64, u64)>,
}

/// The timing payload of an [`Event`].
#[derive(Debug, Clone, Copy)]
pub enum EventKind {
    /// A duration on the recording thread's timeline.
    Span {
        /// Start, ns since the profiling epoch.
        start_ns: u64,
        /// Duration in ns.
        dur_ns: u64,
        /// Output bytes attributed to the span (0 when not applicable).
        bytes: u64,
    },
    /// A point-in-time marker (cache miss, abort).
    Instant {
        /// Timestamp, ns since the profiling epoch.
        ts_ns: u64,
    },
    /// A sampled value (queue depth, wait latency, tile count).
    Counter {
        /// Timestamp, ns since the profiling epoch.
        ts_ns: u64,
        /// Sampled value.
        value: u64,
    },
    /// A causal-flow phase (chrome-trace `s`/`t`/`f`) linking the hops of
    /// one request across thread rows.
    Flow {
        /// Timestamp, ns since the profiling epoch.
        ts_ns: u64,
        /// Start, step or end of the request's arc.
        phase: FlowPhase,
        /// The request's trace id (the flow binding key).
        id: u64,
    },
}

/// Which end of a causal arc a [`EventKind::Flow`] event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowPhase {
    /// Request entered the system (`ph: "s"`).
    Start,
    /// Request adopted on another thread (`ph: "t"`).
    Step,
    /// Request completed (`ph: "f"`).
    End,
}

/// RAII guard for an open span; records on drop — into the profiling
/// scope, the flight recorder, or both, depending on which wanted it when
/// the span opened.
pub struct SpanGuard {
    name: String,
    cat: &'static str,
    start_ns: u64,
    bytes: u64,
    detail: Option<String>,
    trace: Option<(u64, u64)>,
    to_profiler: bool,
    to_flight: bool,
}

impl SpanGuard {
    /// Attribute `bytes` of produced output to this span.
    pub fn set_bytes(&mut self, bytes: u64) {
        self.bytes = bytes;
    }

    /// Attach extra context (rendered under `args.detail` in the timeline).
    pub fn set_detail(&mut self, detail: String) {
        self.detail = Some(detail);
    }

    /// A profiler-only span with an explicit trace attribution (used by
    /// [`request_scope`] for the whole-request span, where the context is
    /// being created rather than read from the thread).
    pub(crate) fn open_profiler(
        cat: &'static str,
        name: String,
        trace: Option<(u64, u64)>,
    ) -> SpanGuard {
        SpanGuard {
            name,
            cat,
            start_ns: now_ns(),
            bytes: 0,
            detail: None,
            trace,
            to_profiler: true,
            to_flight: false,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        if self.to_flight {
            if let Some((trace_id, span_id)) = self.trace {
                flight::record(
                    flight::Kind::Span,
                    &self.name,
                    TraceContext { trace_id, span_id },
                    dur_ns,
                );
            }
        }
        if self.to_profiler {
            record(Event {
                name: std::mem::take(&mut self.name),
                cat: self.cat,
                kind: EventKind::Span { start_ns: self.start_ns, dur_ns, bytes: self.bytes },
                detail: self.detail.take(),
                trace: self.trace,
            });
        }
    }
}

/// Open a span; `None` (at the cost of two relaxed loads) when neither
/// the profiler nor the flight recorder wants it. The name closure only
/// runs when some sink is live.
#[inline]
pub fn span(cat: &'static str, name: impl FnOnce() -> String) -> Option<SpanGuard> {
    let to_profiler = enabled();
    let to_flight = flight::span_wants(cat);
    if !to_profiler && !to_flight {
        return None;
    }
    Some(SpanGuard {
        name: name(),
        cat,
        start_ns: now_ns(),
        bytes: 0,
        detail: None,
        trace: trace::current_pair(),
        to_profiler,
        to_flight,
    })
}

/// Record a span retroactively from a caller-captured start timestamp
/// (used for idle gaps, where the guard pattern does not fit).
#[inline]
pub fn span_from(cat: &'static str, name: impl FnOnce() -> String, start_ns: u64) {
    if !enabled() {
        return;
    }
    let dur_ns = now_ns().saturating_sub(start_ns);
    record(Event {
        name: name(),
        cat,
        kind: EventKind::Span { start_ns, dur_ns, bytes: 0 },
        detail: None,
        trace: trace::current_pair(),
    });
}

/// Record an instant marker. The name closure only runs when the
/// profiler or the flight recorder wants it.
#[inline]
pub fn instant(cat: &'static str, name: impl FnOnce() -> String) {
    let to_profiler = enabled();
    let to_flight = flight::span_wants(cat);
    if !to_profiler && !to_flight {
        return;
    }
    let name = name();
    if to_flight {
        if let Some(ctx) = trace::current_context() {
            flight::record(flight::Kind::Instant, &name, ctx, 0);
        }
    }
    if to_profiler {
        record(Event {
            name,
            cat,
            kind: EventKind::Instant { ts_ns: now_ns() },
            detail: None,
            trace: trace::current_pair(),
        });
    }
}

/// Record a counter sample (profiler-only; counters carry no causal
/// attribution worth ring space).
#[inline]
pub fn counter(cat: &'static str, name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    record(Event {
        name: name.to_string(),
        cat,
        kind: EventKind::Counter { ts_ns: now_ns(), value },
        detail: None,
        trace: None,
    });
}

// ---------------------------------------------------------------------------
// The collected profile
// ---------------------------------------------------------------------------

/// Events recorded by one thread, in recording order.
#[derive(Debug, Clone)]
pub struct ThreadTrace {
    /// Stable per-thread id (chrome-trace `tid`).
    pub tid: u64,
    /// Raw thread name as spawned (e.g. `tfe-exec-{i}`); the exporter
    /// maps it to a role-based row name via [`display_thread_name`].
    pub name: String,
    /// Recorded events.
    pub events: Vec<Event>,
}

/// All events of one [`start`]/[`stop`] scope, grouped by thread.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// One entry per thread that recorded anything.
    pub threads: Vec<ThreadTrace>,
}

impl Profile {
    /// Number of threads that recorded at least one event.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Total span events across all threads.
    pub fn span_count(&self) -> usize {
        self.threads
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| matches!(e.kind, EventKind::Span { .. }))
            .count()
    }

    /// Render the chrome://tracing JSON object (`{"traceEvents": [...]}`).
    /// Timestamps are microseconds as required by the trace-event format;
    /// span nesting falls out of `ts`/`dur` containment per thread row.
    /// Thread rows are named for their role ([`display_thread_name`]) and
    /// grouped front-door → serve → stream → pool → dist via
    /// `thread_sort_index`; flow events share name `"request"`, category
    /// `"flow"` and `id = trace_id` so the viewer binds each request's
    /// `s`/`t`/`f` phases into one arc.
    pub fn chrome_trace(&self) -> tfe_encode::Value {
        use tfe_encode::Value;
        let us = |ns: u64| Value::Float(ns as f64 / 1e3);
        let mut events: Vec<Value> = Vec::new();
        events.push(Value::object([
            ("name".to_string(), Value::str("process_name")),
            ("ph".to_string(), Value::str("M")),
            ("pid".to_string(), Value::Int(1)),
            ("tid".to_string(), Value::Int(0)),
            ("args".to_string(), Value::object([("name".to_string(), Value::str("tf-eager"))])),
        ]));
        for t in &self.threads {
            events.push(Value::object([
                ("name".to_string(), Value::str("thread_name")),
                ("ph".to_string(), Value::str("M")),
                ("pid".to_string(), Value::Int(1)),
                ("tid".to_string(), Value::Int(t.tid as i64)),
                (
                    "args".to_string(),
                    Value::object([("name".to_string(), Value::str(display_thread_name(&t.name)))]),
                ),
            ]));
            events.push(Value::object([
                ("name".to_string(), Value::str("thread_sort_index")),
                ("ph".to_string(), Value::str("M")),
                ("pid".to_string(), Value::Int(1)),
                ("tid".to_string(), Value::Int(t.tid as i64)),
                (
                    "args".to_string(),
                    Value::object([(
                        "sort_index".to_string(),
                        Value::Int(thread_sort_index(&t.name)),
                    )]),
                ),
            ]));
            for e in &t.events {
                let mut fields = vec![
                    ("name".to_string(), Value::str(e.name.clone())),
                    ("cat".to_string(), Value::str(e.cat)),
                    ("pid".to_string(), Value::Int(1)),
                    ("tid".to_string(), Value::Int(t.tid as i64)),
                ];
                let mut args: Vec<(String, Value)> = Vec::new();
                if let Some(d) = &e.detail {
                    args.push(("detail".to_string(), Value::str(d.clone())));
                }
                if let Some((trace_id, span_id)) = e.trace {
                    args.push(("trace_id".to_string(), Value::Int(trace_id as i64)));
                    args.push(("span_id".to_string(), Value::Int(span_id as i64)));
                }
                match e.kind {
                    EventKind::Span { start_ns, dur_ns, bytes } => {
                        fields.push(("ph".to_string(), Value::str("X")));
                        fields.push(("ts".to_string(), us(start_ns)));
                        fields.push(("dur".to_string(), us(dur_ns)));
                        if bytes > 0 {
                            args.push(("bytes".to_string(), Value::Int(bytes as i64)));
                        }
                    }
                    EventKind::Instant { ts_ns } => {
                        fields.push(("ph".to_string(), Value::str("i")));
                        fields.push(("ts".to_string(), us(ts_ns)));
                        fields.push(("s".to_string(), Value::str("t")));
                    }
                    EventKind::Counter { ts_ns, value } => {
                        fields.push(("ph".to_string(), Value::str("C")));
                        fields.push(("ts".to_string(), us(ts_ns)));
                        args.push(("value".to_string(), Value::Int(value as i64)));
                    }
                    EventKind::Flow { ts_ns, phase, id } => {
                        let ph = match phase {
                            FlowPhase::Start => "s",
                            FlowPhase::Step => "t",
                            FlowPhase::End => "f",
                        };
                        fields.push(("ph".to_string(), Value::str(ph)));
                        fields.push(("ts".to_string(), us(ts_ns)));
                        fields.push(("id".to_string(), Value::Int(id as i64)));
                        if matches!(phase, FlowPhase::End) {
                            // Bind the finish to the enclosing slice so the
                            // arrow lands where the request actually ended.
                            fields.push(("bp".to_string(), Value::str("e")));
                        }
                    }
                }
                if !args.is_empty() {
                    fields.push(("args".to_string(), Value::object(args)));
                }
                events.push(Value::object(fields));
            }
        }
        tfe_encode::Value::object([
            ("traceEvents".to_string(), Value::Array(events)),
            ("displayTimeUnit".to_string(), Value::str("ms")),
        ])
    }

    /// Write [`Profile::chrome_trace`] as pretty JSON to `path`.
    ///
    /// # Errors
    /// Filesystem errors.
    pub fn write_chrome_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_trace().to_json_pretty())
    }

    /// Aggregate the events into the metrics summary.
    pub fn summary(&self) -> Summary {
        let mut by_op: std::collections::BTreeMap<(&'static str, String), Vec<(u64, u64)>> =
            std::collections::BTreeMap::new();
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;
        let mut retraces = 0u64;
        let mut aborts = 0u64;
        for e in self.threads.iter().flat_map(|t| &t.events) {
            match e.kind {
                EventKind::Span { dur_ns, bytes, .. } => {
                    // `node` spans duplicate the kernel spans nested inside
                    // them and `graph`/`trace` spans cover whole functions;
                    // the per-op table reads best from dispatch + kernel +
                    // intra rows, keyed by category so names can collide.
                    if matches!(e.cat, "eager" | "kernel" | "intra") {
                        by_op.entry((e.cat, e.name.clone())).or_default().push((dur_ns, bytes));
                    }
                }
                // Instant names may carry a `:detail` suffix (e.g.
                // `cache_hit:train_step`); classify on the prefix.
                EventKind::Instant { .. } => match e.name.split(':').next().unwrap_or("") {
                    "cache_hit" => cache_hits += 1,
                    "cache_miss" => cache_misses += 1,
                    "retrace" => {
                        cache_misses += 1;
                        retraces += 1;
                    }
                    "abort" => aborts += 1,
                    _ => {}
                },
                EventKind::Counter { .. } | EventKind::Flow { .. } => {}
            }
        }
        let ops = by_op
            .into_iter()
            .map(|((cat, name), mut rows)| {
                rows.sort_unstable_by_key(|r| r.0);
                let count = rows.len() as u64;
                let total_ns: u64 = rows.iter().map(|r| r.0).sum();
                let bytes: u64 = rows.iter().map(|r| r.1).sum();
                let pct = |p: f64| rows[((rows.len() - 1) as f64 * p) as usize].0;
                OpStat { cat, name, count, total_ns, p50_ns: pct(0.50), p99_ns: pct(0.99), bytes }
            })
            .collect();
        Summary { ops, cache_hits, cache_misses, retraces, aborts }
    }

    /// Every trace id that appears in the profile, ascending.
    pub fn trace_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .threads
            .iter()
            .flat_map(|t| &t.events)
            .filter_map(|e| match (e.trace, e.kind) {
                (Some((trace_id, _)), _) => Some(trace_id),
                (None, EventKind::Flow { id, .. }) => Some(id),
                _ => None,
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Summarize one request: total latency split into queue, concat,
    /// dispatch, split and kernel time, plus how many threads and hops it
    /// crossed. `None` when the profile holds no events for `trace_id`.
    ///
    /// Batch-level serve spans are attributed to the batch's primary
    /// (oldest) member, so coalesced followers report their queue time
    /// but see the batch's execution phases only via the primary.
    pub fn trace_report(&self, trace_id: u64) -> Option<TraceReport> {
        let mut report = TraceReport { trace_id, ..TraceReport::default() };
        let mut min_ts = u64::MAX;
        let mut max_end = 0u64;
        let mut request_span: Option<(u64, u64)> = None;
        let mut first_work_ts = u64::MAX;
        let mut threads = std::collections::BTreeSet::new();
        for t in &self.threads {
            for e in &t.events {
                let matches_trace = match (e.trace, e.kind) {
                    (Some((id, _)), _) => id == trace_id,
                    (None, EventKind::Flow { id, .. }) => id == trace_id,
                    _ => false,
                };
                if !matches_trace {
                    continue;
                }
                report.events += 1;
                threads.insert(t.tid);
                match e.kind {
                    EventKind::Span { start_ns, dur_ns, .. } => {
                        min_ts = min_ts.min(start_ns);
                        max_end = max_end.max(start_ns + dur_ns);
                        match e.cat {
                            "request" => request_span = Some((start_ns, dur_ns)),
                            "kernel" => report.kernel_ns += dur_ns,
                            "serve" => {
                                first_work_ts = first_work_ts.min(start_ns);
                                match e.name.split(':').next().unwrap_or("") {
                                    "concat" => report.concat_ns += dur_ns,
                                    "dispatch" => report.dispatch_ns += dur_ns,
                                    "split" => report.split_ns += dur_ns,
                                    _ => {}
                                }
                            }
                            _ => first_work_ts = first_work_ts.min(start_ns),
                        }
                    }
                    EventKind::Instant { ts_ns } | EventKind::Counter { ts_ns, .. } => {
                        min_ts = min_ts.min(ts_ns);
                        max_end = max_end.max(ts_ns);
                    }
                    EventKind::Flow { ts_ns, phase, .. } => {
                        min_ts = min_ts.min(ts_ns);
                        max_end = max_end.max(ts_ns);
                        if phase == FlowPhase::Step {
                            report.hops += 1;
                        }
                    }
                }
            }
        }
        if report.events == 0 {
            return None;
        }
        report.threads = threads.len();
        report.total_ns = match request_span {
            Some((_, dur)) => dur,
            None => max_end.saturating_sub(min_ts),
        };
        let start = request_span.map_or(min_ts, |(s, _)| s);
        if first_work_ts != u64::MAX {
            report.queue_ns = first_work_ts.saturating_sub(start);
        }
        Some(report)
    }
}

/// The timeline row name for a recorded thread: runtime-internal names
/// are mapped to their role (`tfe-exec-3` → `pool-worker-3`,
/// `tfe-serve-mnist-v2` → `serve:mnist@v2`); everything else passes
/// through unchanged.
pub fn display_thread_name(name: &str) -> String {
    if let Some(idx) = name.strip_prefix("tfe-exec-") {
        return format!("pool-worker-{idx}");
    }
    if let Some(rest) = name.strip_prefix("tfe-serve-") {
        if let Some((model, version)) = rest.rsplit_once("-v") {
            return format!("serve:{model}@v{version}");
        }
    }
    name.to_string()
}

/// Chrome-trace `thread_sort_index` for a thread name: request order —
/// front-door threads first, then serve workers, stream threads, pool
/// workers, dist workers — so a request's arc reads top to bottom.
pub fn thread_sort_index(name: &str) -> i64 {
    if name.starts_with("tfe-serve-") {
        10
    } else if name.starts_with("tfe-stream-") {
        20
    } else if name.starts_with("tfe-exec-") {
        30
    } else if name.starts_with("tfe-worker-") {
        40
    } else {
        0
    }
}

/// One request's latency decomposition (see [`Profile::trace_report`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceReport {
    /// The request's trace id.
    pub trace_id: u64,
    /// End-to-end latency: the `request` span when present, else the
    /// envelope of all events carrying this trace id.
    pub total_ns: u64,
    /// Time from request start until the first work span (batcher pickup).
    pub queue_ns: u64,
    /// Serve-layer batch concat time.
    pub concat_ns: u64,
    /// Serve-layer staged-call dispatch time.
    pub dispatch_ns: u64,
    /// Serve-layer fan-out split time.
    pub split_ns: u64,
    /// Summed kernel span time attributed to this trace.
    pub kernel_ns: u64,
    /// Events recorded for this trace.
    pub events: usize,
    /// Distinct thread rows the trace touched.
    pub threads: usize,
    /// Cross-thread adoptions (flow steps).
    pub hops: usize,
}

impl std::fmt::Display for TraceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace {}: total {:.3} ms (queue {:.3} / concat {:.3} / dispatch {:.3} / split {:.3} / kernel {:.3}), {} events on {} threads, {} hops",
            self.trace_id,
            self.total_ns as f64 / 1e6,
            self.queue_ns as f64 / 1e6,
            self.concat_ns as f64 / 1e6,
            self.dispatch_ns as f64 / 1e6,
            self.split_ns as f64 / 1e6,
            self.kernel_ns as f64 / 1e6,
            self.events,
            self.threads,
            self.hops,
        )
    }
}

/// Aggregated timing for one op type (one summary row).
#[derive(Debug, Clone)]
pub struct OpStat {
    /// Originating category (`eager`, `kernel` or `intra`).
    pub cat: &'static str,
    /// Op or kernel name.
    pub name: String,
    /// Invocations recorded.
    pub count: u64,
    /// Summed wall-clock ns.
    pub total_ns: u64,
    /// Median span duration.
    pub p50_ns: u64,
    /// 99th-percentile span duration.
    pub p99_ns: u64,
    /// Output bytes attributed to these spans.
    pub bytes: u64,
}

/// The metrics summary: per-op rows plus trace-cache behaviour.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Per-(category, op) rows, sorted by key.
    pub ops: Vec<OpStat>,
    /// Trace-cache hits observed.
    pub cache_hits: u64,
    /// Trace-cache misses (including retraces).
    pub cache_misses: u64,
    /// Misses that happened after the first trace of a `Func`.
    pub retraces: u64,
    /// Executor abort markers observed.
    pub aborts: u64,
}

impl Summary {
    /// Cache hit rate in `[0, 1]`; `None` when the cache was never probed.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    /// Total bytes across all rows.
    pub fn total_bytes(&self) -> u64 {
        self.ops.iter().map(|o| o.bytes).sum()
    }

    /// Encode as JSON (embedded into bench reports).
    pub fn to_value(&self) -> tfe_encode::Value {
        use tfe_encode::Value;
        let rows = self
            .ops
            .iter()
            .map(|o| {
                Value::object([
                    ("cat".to_string(), Value::str(o.cat)),
                    ("op".to_string(), Value::str(o.name.clone())),
                    ("count".to_string(), Value::Int(o.count as i64)),
                    ("total_ns".to_string(), Value::Int(o.total_ns as i64)),
                    ("p50_ns".to_string(), Value::Int(o.p50_ns as i64)),
                    ("p99_ns".to_string(), Value::Int(o.p99_ns as i64)),
                    ("bytes".to_string(), Value::Int(o.bytes as i64)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("ops".to_string(), Value::Array(rows)),
            ("cache_hits".to_string(), Value::Int(self.cache_hits as i64)),
            ("cache_misses".to_string(), Value::Int(self.cache_misses as i64)),
            ("retraces".to_string(), Value::Int(self.retraces as i64)),
            ("aborts".to_string(), Value::Int(self.aborts as i64)),
            ("total_bytes".to_string(), Value::Int(self.total_bytes() as i64)),
        ];
        if let Some(rate) = self.cache_hit_rate() {
            fields.push(("cache_hit_rate".to_string(), Value::Float(rate)));
        }
        tfe_encode::Value::object(fields)
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<8} {:<22} {:>8} {:>12} {:>10} {:>10} {:>12}",
            "cat", "op", "count", "total ns", "p50 ns", "p99 ns", "bytes"
        )?;
        for o in &self.ops {
            writeln!(
                f,
                "{:<8} {:<22} {:>8} {:>12} {:>10} {:>10} {:>12}",
                o.cat, o.name, o.count, o.total_ns, o.p50_ns, o.p99_ns, o.bytes
            )?;
        }
        write!(
            f,
            "cache: {} hits, {} misses, {} retraces",
            self.cache_hits, self.cache_misses, self.retraces
        )?;
        if let Some(rate) = self.cache_hit_rate() {
            write!(f, " ({:.1}% hit rate)", rate * 100.0)?;
        }
        if self.aborts > 0 {
            write!(f, "; {} aborts", self.aborts)?;
        }
        Ok(())
    }
}

// The collector and the flight recorder are process-wide, so every test
// that flips the enabled flags (here or in the trace/flight submodules)
// runs under this lock to avoid cross-test interference.
#[cfg(test)]
pub(crate) fn test_scope_lock() -> &'static Mutex<()> {
    static L: std::sync::OnceLock<Mutex<()>> = std::sync::OnceLock::new();
    L.get_or_init(|| Mutex::new(()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope_lock() -> &'static Mutex<()> {
        test_scope_lock()
    }

    #[test]
    fn disabled_probes_record_nothing() {
        let _g = scope_lock().lock();
        assert!(!enabled());
        let ran = std::cell::Cell::new(false);
        let sp = span("kernel", || {
            ran.set(true);
            "nope".to_string()
        });
        assert!(sp.is_none());
        assert!(!ran.get(), "name closure must not run when disabled");
        instant("trace", || {
            ran.set(true);
            "nope".to_string()
        });
        counter("sched", "depth", 3);
        assert!(!ran.get());
    }

    #[test]
    fn span_collection_and_summary() {
        let _g = scope_lock().lock();
        start();
        {
            let mut sp = span("kernel", || "matmul".to_string()).unwrap();
            sp.set_bytes(1024);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        {
            let _sp = span("kernel", || "matmul".to_string()).unwrap();
        }
        instant("trace", || "cache_miss".to_string());
        instant("trace", || "cache_hit".to_string());
        instant("trace", || "cache_hit".to_string());
        let profile = stop();
        assert!(profile.thread_count() >= 1);
        assert!(profile.span_count() >= 2);
        let summary = profile.summary();
        let row = summary
            .ops
            .iter()
            .find(|o| o.name == "matmul" && o.cat == "kernel")
            .expect("matmul row");
        assert_eq!(row.count, 2);
        assert!(row.total_ns >= 1_000_000, "slept 1ms inside the span");
        assert_eq!(row.bytes, 1024);
        assert!(row.p50_ns <= row.p99_ns);
        assert_eq!(summary.cache_hits, 2);
        assert_eq!(summary.cache_misses, 1);
        assert!((summary.cache_hit_rate().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn multi_thread_events_land_on_separate_rows() {
        let _g = scope_lock().lock();
        start();
        let handles: Vec<_> = (0..3)
            .map(|i| {
                std::thread::Builder::new()
                    .name(format!("prof-test-{i}"))
                    .spawn(move || {
                        let _sp = span("kernel", || format!("op{i}"));
                    })
                    .unwrap()
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let profile = stop();
        let rows: Vec<&str> = profile
            .threads
            .iter()
            .filter(|t| t.name.starts_with("prof-test-"))
            .map(|t| t.name.as_str())
            .collect();
        assert_eq!(rows.len(), 3, "one timeline row per recording thread: {rows:?}");
    }

    #[test]
    fn chrome_trace_shape_and_roundtrip() {
        let _g = scope_lock().lock();
        start();
        {
            let _outer = span("graph", || "f".to_string());
            let _inner = span("kernel", || "add".to_string());
        }
        instant("sched", || "abort".to_string());
        counter("sched", "ready_queue_depth", 7);
        let profile = stop();
        let json = profile.chrome_trace().to_json_pretty();
        let parsed = tfe_encode::Value::parse(&json).expect("chrome trace JSON must parse");
        let events = parsed.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents");
        // Metadata row naming the thread, two X spans, one instant, one counter.
        assert!(events.iter().any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M")));
        let phases: Vec<&str> =
            events.iter().filter_map(|e| e.get("ph").and_then(|p| p.as_str())).collect();
        assert!(phases.iter().filter(|p| **p == "X").count() >= 2);
        assert!(phases.contains(&"i"));
        assert!(phases.contains(&"C"));
        // Spans nest: the graph span contains the kernel span in time.
        let x: Vec<(f64, f64, &str)> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .map(|e| {
                (
                    e.get("ts").and_then(|v| v.as_f64()).unwrap(),
                    e.get("dur").and_then(|v| v.as_f64()).unwrap(),
                    e.get("name").and_then(|v| v.as_str()).unwrap(),
                )
            })
            .collect();
        let outer = x.iter().find(|e| e.2 == "f").unwrap();
        let inner = x.iter().find(|e| e.2 == "add").unwrap();
        assert!(inner.0 >= outer.0 && inner.0 + inner.1 <= outer.0 + outer.1 + 1e-6);
    }

    #[test]
    fn restart_clears_previous_scope() {
        let _g = scope_lock().lock();
        start();
        let _ = span("kernel", || "stale".to_string());
        let _ = stop();
        start();
        let profile = stop();
        assert_eq!(profile.span_count(), 0, "second scope must start empty");
    }
}
