//! Always-on flight recorder: a fixed-size lock-free per-thread ring of
//! recent span/instant/hop records that can be dumped to JSON the moment
//! something goes wrong — a typed serve error, a poisoned batch, a
//! deferred async error, a latency-budget breach — so production failures
//! are diagnosable *after the fact* without rerunning under
//! `TFE_PROFILE`.
//!
//! # Design
//!
//! Each thread owns one [`FLIGHT_RING_CAPACITY`]-slot ring (compile-time
//! bounded, ~10 KiB). Slots are seqlocks: a per-slot sequence word is
//! bumped to odd before the (relaxed, word-sized atomic) payload stores
//! and to even after, so the owner thread writes without ever taking a
//! lock and a dumping thread detects torn reads by re-checking the
//! sequence. Names are truncated to 32 bytes — enough for `op:detail`
//! shapes, and what keeps a record exactly 12 words. The global registry
//! mutex is touched once per thread (registration) and during dumps,
//! never on the record path.
//!
//! The recorder is on by default (`TFE_FLIGHT_RECORDER=0` disables it);
//! the disabled path is a single relaxed load, budgeted at < 5 ns over
//! doing nothing — same contract as the metrics registry, asserted by the
//! `trace_smoke` CI gate. Dumps are kept in an in-process ring of the
//! last [`MAX_RECENT_DUMPS`] (see [`recent_dumps`]) and, when
//! `TFE_FLIGHT_DUMP` names a path prefix, written to
//! `{prefix}-{seq}.json` at most once per 100 ms.

use crate::trace::TraceContext;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use tfe_encode::Value;

/// Slots per thread-local ring. Power of two so the index wrap is a mask.
pub const FLIGHT_RING_CAPACITY: usize = 256;
/// How far back a dump reaches, in milliseconds.
pub const FLIGHT_DUMP_WINDOW_MS: u64 = 250;
/// How many dumps [`recent_dumps`] retains.
pub const MAX_RECENT_DUMPS: usize = 8;

const NAME_BYTES: usize = 32;
const NAME_WORDS: usize = NAME_BYTES / 8;
/// ts, trace, span, packed(kind|len|dur), name words.
const SLOT_WORDS: usize = 4 + NAME_WORDS;

/// What a record marks. Stored in the low byte of the packed word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum Kind {
    Span = 1,
    Instant = 2,
    Hop = 3,
    RequestStart = 4,
    RequestEnd = 5,
    Error = 6,
}

fn kind_name(kind: u64) -> &'static str {
    match kind {
        1 => "span",
        2 => "instant",
        3 => "hop",
        4 => "request_start",
        5 => "request_end",
        6 => "error",
        _ => "unknown",
    }
}

// ---------------------------------------------------------------------------
// Enablement: 0 = off, 1 = on, 2 = unresolved (read TFE_FLIGHT_RECORDER once).
// ---------------------------------------------------------------------------

static MODE: AtomicU8 = AtomicU8::new(2);

/// Is the flight recorder on? One relaxed load on the steady state.
#[inline]
pub fn flight_enabled() -> bool {
    match MODE.load(Ordering::Relaxed) {
        1 => true,
        0 => false,
        _ => init_mode(),
    }
}

#[cold]
fn init_mode() -> bool {
    let on = std::env::var("TFE_FLIGHT_RECORDER").map(|v| v != "0").unwrap_or(true);
    MODE.store(u8::from(on), Ordering::Relaxed);
    on
}

/// Force the recorder on or off (benchmarks measuring the disabled path,
/// tests pinning dump behavior). Normal operation leaves it alone.
pub fn set_flight_enabled(on: bool) {
    MODE.store(u8::from(on), Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Rings
// ---------------------------------------------------------------------------

struct Slot {
    /// Seqlock word: odd while the owner is writing, bumped by two per write.
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

struct Ring {
    tid: u64,
    thread: String,
    /// Count of records ever written; slot index is `head % capacity`.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(tid: u64, thread: String) -> Ring {
        let slots = (0..FLIGHT_RING_CAPACITY)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                words: std::array::from_fn(|_| AtomicU64::new(0)),
            })
            .collect();
        Ring { tid, thread, head: AtomicU64::new(0), slots }
    }

    /// Owner-thread-only write: claim the next slot, mark it odd, store the
    /// payload, mark it even, publish the new head. Never blocks, never
    /// allocates.
    fn push(&self, kind: Kind, name: &str, ctx: TraceContext, dur_ns: u64) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head as usize) & (FLIGHT_RING_CAPACITY - 1)];
        let seq = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(seq + 1, Ordering::Relaxed);
        fence(Ordering::Release);

        let bytes = name.as_bytes();
        let len = bytes.len().min(NAME_BYTES);
        let packed = (kind as u64) | ((len as u64) << 8) | (dur_ns.min((1 << 48) - 1) << 16);
        slot.words[0].store(crate::now_ns(), Ordering::Relaxed);
        slot.words[1].store(ctx.trace_id, Ordering::Relaxed);
        slot.words[2].store(ctx.span_id, Ordering::Relaxed);
        slot.words[3].store(packed, Ordering::Relaxed);
        for w in 0..NAME_WORDS {
            let mut word = [0u8; 8];
            let lo = w * 8;
            if lo < len {
                let hi = (lo + 8).min(len);
                word[..hi - lo].copy_from_slice(&bytes[lo..hi]);
            }
            slot.words[4 + w].store(u64::from_le_bytes(word), Ordering::Relaxed);
        }

        slot.seq.store(seq + 2, Ordering::Release);
        self.head.store(head + 1, Ordering::Release);
    }

    /// Cross-thread read of one slot; `None` when the read tore (the owner
    /// overwrote it mid-copy — the dumper just skips that record).
    fn read(&self, index: u64) -> Option<[u64; SLOT_WORDS]> {
        let slot = &self.slots[(index as usize) & (FLIGHT_RING_CAPACITY - 1)];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq & 1 == 1 {
            return None;
        }
        let mut words = [0u64; SLOT_WORDS];
        for (i, w) in words.iter_mut().enumerate() {
            *w = slot.words[i].load(Ordering::Relaxed);
        }
        fence(Ordering::Acquire);
        if slot.seq.load(Ordering::Relaxed) != seq {
            return None;
        }
        Some(words)
    }
}

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_RING: OnceLock<Arc<Ring>> = const { OnceLock::new() };
}

static NEXT_RING_TID: AtomicU64 = AtomicU64::new(1);

/// Record one event into the calling thread's ring. Callers have already
/// checked [`flight_enabled`].
pub(crate) fn record(kind: Kind, name: &str, ctx: TraceContext, dur_ns: u64) {
    LOCAL_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let ring = Arc::new(Ring::new(
                NEXT_RING_TID.fetch_add(1, Ordering::Relaxed),
                std::thread::current().name().unwrap_or("unnamed").to_string(),
            ));
            rings().lock().push(ring.clone());
            ring
        });
        ring.push(kind, name, ctx, dur_ns);
    });
}

/// Does the flight recorder want a span/instant of this category right
/// now? True only when the recorder is on, the category is
/// causally-relevant (per-request layers — not per-node/per-tile hot
/// paths), and a trace context is installed on this thread.
#[inline]
pub(crate) fn span_wants(cat: &str) -> bool {
    flight_enabled() && cat_wants(cat) && crate::trace::has_current()
}

fn cat_wants(cat: &str) -> bool {
    matches!(
        cat,
        "serve"
            | "request"
            | "trace"
            | "graph"
            | "async_op"
            | "stream"
            | "sync"
            | "eager"
            | "sched"
            | "dist"
    )
}

// ---------------------------------------------------------------------------
// Snapshots and dumps
// ---------------------------------------------------------------------------

/// One decoded flight-recorder record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    pub ts_ns: u64,
    pub dur_ns: u64,
    pub trace_id: u64,
    pub span_id: u64,
    /// `span`, `instant`, `hop`, `request_start`, `request_end`, `error`.
    pub kind: &'static str,
    /// Event name, truncated to 32 bytes at record time.
    pub name: String,
    pub tid: u64,
    pub thread: String,
}

/// Decode the last `window_ns` of history from every thread's ring,
/// sorted by timestamp. Torn slots (overwritten mid-read) are skipped;
/// the writers are never blocked or delayed.
pub fn flight_snapshot(window_ns: u64) -> Vec<FlightRecord> {
    let cutoff = crate::now_ns().saturating_sub(window_ns);
    let mut out = Vec::new();
    for ring in rings().lock().iter() {
        let head = ring.head.load(Ordering::Acquire);
        let n = head.min(FLIGHT_RING_CAPACITY as u64);
        for index in head - n..head {
            let Some(words) = ring.read(index) else { continue };
            let ts_ns = words[0];
            if ts_ns < cutoff {
                continue;
            }
            let packed = words[3];
            let len = ((packed >> 8) & 0xff) as usize;
            let mut bytes = [0u8; NAME_BYTES];
            for w in 0..NAME_WORDS {
                bytes[w * 8..w * 8 + 8].copy_from_slice(&words[4 + w].to_le_bytes());
            }
            out.push(FlightRecord {
                ts_ns,
                dur_ns: packed >> 16,
                trace_id: words[1],
                span_id: words[2],
                kind: kind_name(packed & 0xff),
                name: String::from_utf8_lossy(&bytes[..len.min(NAME_BYTES)]).into_owned(),
                tid: ring.tid,
                thread: ring.thread.clone(),
            });
        }
    }
    out.sort_by_key(|r| r.ts_ns);
    out
}

/// A post-mortem dump: why it fired, the faulting op, the trace it
/// belongs to, and the recent causally-relevant history.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// `batch_poisoned`, `batch_panic`, `deferred_error`, `budget_breach`, ...
    pub reason: String,
    /// The failing op (or model label when no op is known).
    pub op: String,
    /// Trace id of the affected request; 0 when no context was active.
    pub trace_id: u64,
    pub at_ns: u64,
    pub window_ns: u64,
    pub records: Vec<FlightRecord>,
}

impl FlightDump {
    /// The dump as a JSON value.
    pub fn to_value(&self) -> Value {
        let field = |k: &str, v: Value| (k.to_string(), v);
        Value::object(vec![
            field("reason", Value::str(self.reason.clone())),
            field("op", Value::str(self.op.clone())),
            field("trace_id", Value::Int(self.trace_id as i64)),
            field("at_ns", Value::Int(self.at_ns as i64)),
            field("window_ns", Value::Int(self.window_ns as i64)),
            field(
                "records",
                Value::Array(
                    self.records
                        .iter()
                        .map(|r| {
                            Value::object(vec![
                                field("ts_ns", Value::Int(r.ts_ns as i64)),
                                field("dur_ns", Value::Int(r.dur_ns as i64)),
                                field("trace_id", Value::Int(r.trace_id as i64)),
                                field("span_id", Value::Int(r.span_id as i64)),
                                field("kind", Value::str(r.kind)),
                                field("name", Value::str(r.name.clone())),
                                field("tid", Value::Int(r.tid as i64)),
                                field("thread", Value::str(r.thread.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn recent() -> &'static Mutex<VecDeque<Arc<FlightDump>>> {
    static RECENT: OnceLock<Mutex<VecDeque<Arc<FlightDump>>>> = OnceLock::new();
    RECENT.get_or_init(|| Mutex::new(VecDeque::new()))
}

/// Capture a dump: record the error itself into the caller's ring, then
/// snapshot the last [`FLIGHT_DUMP_WINDOW_MS`] across all rings. The dump
/// is retained in memory (see [`recent_dumps`]) and written to disk when
/// `TFE_FLIGHT_DUMP` is set. Returns `None` when the recorder is off.
pub fn flight_dump(reason: &str, op: &str, trace_id: u64) -> Option<Arc<FlightDump>> {
    if !flight_enabled() {
        return None;
    }
    record(Kind::Error, op, TraceContext { trace_id, span_id: 0 }, 0);
    let window_ns = FLIGHT_DUMP_WINDOW_MS * 1_000_000;
    let dump = Arc::new(FlightDump {
        reason: reason.to_string(),
        op: op.to_string(),
        trace_id,
        at_ns: crate::now_ns(),
        window_ns,
        records: flight_snapshot(window_ns),
    });
    {
        let mut recent = recent().lock();
        recent.push_back(dump.clone());
        while recent.len() > MAX_RECENT_DUMPS {
            recent.pop_front();
        }
    }
    maybe_write_file(&dump);
    Some(dump)
}

/// The most recent dump, if any.
pub fn last_dump() -> Option<Arc<FlightDump>> {
    recent().lock().back().cloned()
}

/// The last [`MAX_RECENT_DUMPS`] dumps, oldest first.
pub fn recent_dumps() -> Vec<Arc<FlightDump>> {
    recent().lock().iter().cloned().collect()
}

/// When `TFE_FLIGHT_DUMP={prefix}` is set, write `{prefix}-{seq}.json`,
/// rate-limited to one file per 100 ms so an error storm can't turn the
/// recorder into a disk-bandwidth incident.
fn maybe_write_file(dump: &FlightDump) {
    let Ok(prefix) = std::env::var("TFE_FLIGHT_DUMP") else { return };
    if prefix.is_empty() {
        return;
    }
    static LAST_WRITE_NS: AtomicU64 = AtomicU64::new(0);
    static FILE_SEQ: AtomicU64 = AtomicU64::new(0);
    // `now_ns` is relative to the process's first clock read, so `now` can
    // itself be < 100 ms early in the process; 0 means "never written" and
    // must not suppress the first dump.
    let now = crate::now_ns().max(1);
    let last = LAST_WRITE_NS.load(Ordering::Relaxed);
    if (last != 0 && now.saturating_sub(last) < 100_000_000)
        || LAST_WRITE_NS.compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed).is_err()
    {
        return;
    }
    let seq = FILE_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = format!("{prefix}-{seq}.json");
    if let Err(err) = std::fs::write(&path, dump.to_value().to_json_pretty()) {
        eprintln!("tfe-profile: failed to write flight dump {path}: {err}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(trace_id: u64) -> TraceContext {
        TraceContext { trace_id, span_id: trace_id }
    }

    #[test]
    fn ring_wraparound_evicts_oldest_in_order() {
        let ring = Ring::new(9000, "wrap-test".to_string());
        let total = FLIGHT_RING_CAPACITY * 2 + 17;
        for i in 0..total {
            ring.push(Kind::Instant, &format!("rec:{i}"), ctx(i as u64 + 1), 0);
        }
        let head = ring.head.load(Ordering::Relaxed);
        assert_eq!(head, total as u64);
        // Exactly the newest `capacity` records survive, in write order.
        let survivors: Vec<u64> = (head - FLIGHT_RING_CAPACITY as u64..head)
            .map(|i| ring.read(i).expect("no concurrent writer, reads never tear")[1])
            .collect();
        let expected: Vec<u64> =
            (total - FLIGHT_RING_CAPACITY..total).map(|i| i as u64 + 1).collect();
        assert_eq!(survivors, expected, "oldest records must be evicted in order");
    }

    #[test]
    fn name_truncated_at_32_bytes_and_roundtrips() {
        let ring = Ring::new(9001, "name-test".to_string());
        let long = "x".repeat(100);
        ring.push(Kind::Span, &long, ctx(7), 1234);
        ring.push(Kind::Span, "short", ctx(8), 5);
        let a = ring.read(0).unwrap();
        assert_eq!(((a[3] >> 8) & 0xff) as usize, NAME_BYTES);
        assert_eq!(a[3] >> 16, 1234);
        let b = ring.read(1).unwrap();
        assert_eq!(((b[3] >> 8) & 0xff) as usize, 5);
        assert_eq!(&b[4].to_le_bytes()[..5], b"short");
    }

    #[test]
    fn recorder_never_blocks_under_concurrent_dumps() {
        // One writer hammers its ring while readers snapshot concurrently:
        // the writer must make full progress (it takes no locks), readers
        // must only ever see well-formed records.
        let ring = Arc::new(Ring::new(9002, "race-test".to_string()));
        let writer = {
            let ring = ring.clone();
            std::thread::spawn(move || {
                for i in 0..200_000u64 {
                    ring.push(Kind::Instant, "race", ctx(i + 1), i);
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    let mut seen = 0usize;
                    while ring.head.load(Ordering::Acquire) < 200_000 {
                        let head = ring.head.load(Ordering::Acquire);
                        let n = head.min(FLIGHT_RING_CAPACITY as u64);
                        for i in head - n..head {
                            if let Some(words) = ring.read(i) {
                                // A torn read would show a trace id from one
                                // record and a dur from another; both are
                                // derived from the same counter, so a clean
                                // read always satisfies trace == dur + 1.
                                assert_eq!(
                                    words[1],
                                    (words[3] >> 16) + 1,
                                    "torn read escaped the seqlock"
                                );
                                seen += 1;
                            }
                        }
                    }
                    seen
                })
            })
            .collect();
        writer.join().unwrap();
        assert_eq!(ring.head.load(Ordering::Relaxed), 200_000);
        for r in readers {
            r.join().unwrap();
        }
    }

    #[test]
    fn dump_names_op_and_trace_and_contains_history() {
        let _g = crate::test_scope_lock().lock();
        set_flight_enabled(true);
        let scope = crate::request_scope("serve", || "dump-test".to_string()).unwrap();
        let trace_id = scope.trace_id();
        crate::instant("serve", || "enqueue:dump-test".to_string());
        let dump = flight_dump("batch_poisoned", "matmul", trace_id).expect("recorder on");
        drop(scope);
        assert_eq!(dump.reason, "batch_poisoned");
        assert_eq!(dump.op, "matmul");
        assert_eq!(dump.trace_id, trace_id);
        assert!(
            dump.records.iter().any(|r| r.trace_id == trace_id && r.kind == "error"),
            "dump must contain the error record: {:?}",
            dump.records
        );
        assert!(
            dump.records.iter().any(|r| r.trace_id == trace_id && r.name.starts_with("enqueue")),
            "dump must contain the request's recent history: {:?}",
            dump.records
        );
        let last = last_dump().expect("dump retained");
        assert_eq!(last.trace_id, trace_id);
        // And it serializes.
        let json = dump.to_value().to_json_pretty();
        let parsed = tfe_encode::Value::parse(&json).expect("dump JSON parses");
        assert_eq!(parsed.get("reason").and_then(|v| v.as_str()), Some("batch_poisoned"));
    }

    #[test]
    fn disabled_recorder_dumps_nothing() {
        let _g = crate::test_scope_lock().lock();
        set_flight_enabled(false);
        assert!(flight_dump("budget_breach", "noop", 1).is_none());
        set_flight_enabled(true);
    }
}
