//! # tfe-encode
//!
//! A minimal, self-contained JSON value model, parser and printer.
//!
//! The `tf-eager` workspace stores all its on-disk artifacts — checkpoints,
//! SavedFunction bundles, serialized graphs, benchmark reports — as JSON.
//! Rather than pull a serialization framework into the build, this crate
//! implements the subset of JSON the workspace needs (full syntax on read;
//! deterministic, sorted-key output on write) in a few hundred lines.
//!
//! ```
//! use tfe_encode::Value;
//! # fn main() -> Result<(), tfe_encode::ParseError> {
//! let v = Value::parse(r#"{"name": "add", "inputs": [1, 2.5, true, null]}"#)?;
//! assert_eq!(v.get("name").and_then(Value::as_str), Some("add"));
//! let text = v.to_json();
//! assert_eq!(Value::parse(&text)?, v);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
///
/// Numbers are split into `Int` and `Float` so integer payloads (tensor
/// dims, ids) round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer that fits in `i64` and was written without `.`/`e`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with sorted keys (deterministic output).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Build an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (String, Value)>) -> Value {
        Value::Object(pairs.into_iter().collect())
    }

    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Field lookup on objects (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload; floats with integral values also qualify.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            _ => None,
        }
    }

    /// Any numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// An array of `f64`s (all elements must be numeric).
    pub fn as_f64_array(&self) -> Option<Vec<f64>> {
        self.as_array()?.iter().map(Value::as_f64).collect()
    }

    /// An array of `i64`s (all elements must be integral).
    pub fn as_i64_array(&self) -> Option<Vec<i64>> {
        self.as_array()?.iter().map(Value::as_i64).collect()
    }

    /// Parse a JSON document.
    ///
    /// # Errors
    /// [`ParseError`] describing the position and nature of the failure;
    /// trailing non-whitespace input is an error.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Serialize compactly (no whitespace), with sorted object keys.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // Ensure a float marker so the value re-parses as Float.
                    let s = format!("{f:?}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no Inf/NaN; encode as null like serde_json.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !map.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { position: self.pos, message: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Handle surrogate pairs.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control character in string")),
                c => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let len = match c {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return Err(self.err("invalid utf-8 byte")),
                        };
                        let start = self.pos - 1;
                        let end = start + len;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated utf-8 sequence"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid utf-8 sequence"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| ParseError { position: start, message: "invalid number".to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("42").unwrap(), Value::Int(42));
        assert_eq!(Value::parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(Value::parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(Value::parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(Value::parse("\"hi\"").unwrap(), Value::str("hi"));
    }

    #[test]
    fn parse_nested() {
        let v = Value::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1].get("b"), Some(&Value::Null));
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn parse_errors() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("[1,").is_err());
        assert!(Value::parse("{\"a\" 1}").is_err());
        assert!(Value::parse("tru").is_err());
        assert!(Value::parse("1 2").is_err());
        assert!(Value::parse("\"unterminated").is_err());
        assert!(Value::parse("\"bad \\q escape\"").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\ slash / unicode: ünïcødé 👍";
        let v = Value::str(original);
        let parsed = Value::parse(&v.to_json()).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn unicode_escape_parsing() {
        assert_eq!(Value::parse(r#""A""#).unwrap().as_str(), Some("A"));
        // Surrogate pair for 👍 (U+1F44D)
        assert_eq!(Value::parse(r#""👍""#).unwrap().as_str(), Some("👍"));
        assert!(Value::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn int_float_distinction() {
        assert_eq!(Value::parse("5").unwrap(), Value::Int(5));
        assert_eq!(Value::parse("5.0").unwrap(), Value::Float(5.0));
        // Float output always re-parses as float.
        assert_eq!(Value::parse(&Value::Float(5.0).to_json()).unwrap(), Value::Float(5.0));
        // i64 overflow falls back to float.
        assert!(matches!(Value::parse("99999999999999999999").unwrap(), Value::Float(_)));
    }

    #[test]
    fn large_i64_round_trips() {
        let v = Value::Int(i64::MAX);
        assert_eq!(Value::parse(&v.to_json()).unwrap(), v);
        let v = Value::Int(i64::MIN);
        assert_eq!(Value::parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Value::Float(f64::NAN).to_json(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn pretty_output_parses() {
        let v = Value::object([
            ("list".to_string(), Value::from(vec![1i64, 2, 3])),
            ("name".to_string(), Value::str("x")),
        ]);
        let pretty = v.to_json_pretty();
        assert!(pretty.contains('\n'));
        assert_eq!(Value::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn typed_array_accessors() {
        let v = Value::parse("[1, 2, 3]").unwrap();
        assert_eq!(v.as_i64_array(), Some(vec![1, 2, 3]));
        assert_eq!(v.as_f64_array(), Some(vec![1.0, 2.0, 3.0]));
        let mixed = Value::parse("[1, \"a\"]").unwrap();
        assert_eq!(mixed.as_i64_array(), None);
    }

    #[test]
    fn deterministic_key_order() {
        let a = Value::parse(r#"{"b": 1, "a": 2}"#).unwrap();
        assert_eq!(a.to_json(), r#"{"a":2,"b":1}"#);
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            (-1e12f64..1e12).prop_map(Value::Float),
            "[a-zA-Z0-9 _]{0,12}".prop_map(Value::Str),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
                prop::collection::btree_map("[a-z]{1,6}", inner, 0..4).prop_map(Value::Object),
            ]
        })
    }

    proptest! {
        #[test]
        fn round_trip(v in arb_value()) {
            let compact = Value::parse(&v.to_json()).unwrap();
            prop_assert_eq!(&compact, &v);
            let pretty = Value::parse(&v.to_json_pretty()).unwrap();
            prop_assert_eq!(&pretty, &v);
        }

        #[test]
        fn arbitrary_strings_round_trip(s in "\\PC{0,24}") {
            let v = Value::str(s.clone());
            let parsed = Value::parse(&v.to_json()).unwrap();
            prop_assert_eq!(parsed.as_str(), Some(s.as_str()));
        }
    }
}
